"""Binomial (revolve-style) checkpointing schedules.

Stencil adjoints reverse one loop; reversing a *time-stepping* program
around them (the job the paper leaves to "a general-purpose AD tool",
Section 3.1) needs the primal state at every step, which for large grids
cannot all be stored.  The classical answer is Griewank & Walther's
*revolve* algorithm: with ``s`` checkpoint slots, recompute forward
sub-sweeps from strategically placed snapshots so that the total number
of primal step evaluations is minimal (binomial in the step count).

:func:`schedule` emits the optimal action sequence; :func:`optimal_cost`
computes the provably minimal evaluation count by dynamic programming,
which the test suite uses to certify the emitted schedule's optimality
(``schedule_cost(schedule(l, s)) == optimal_cost(l, s)``).
:class:`repro.driver.timestepping.CheckpointedAdjoint` executes schedules
against real stencil kernels.

Conventions: ``optimal_cost(l, s)`` counts one evaluation per ``advance``
step plus one per ``reverse`` (reversing a step re-evaluates it for its
intermediate values).  ``s`` counts *all* snapshot slots, including the
one holding the subrange's initial state, matching Griewank's recurrence
``t(l, s) = min_m ( m + t(l-m, s-1) + t(m, s) )`` with
``t(1, s) = 1`` and ``t(l, 1) = l (l + 1) / 2``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

__all__ = [
    "Action",
    "execute_schedule",
    "schedule",
    "optimal_cost",
    "schedule_cost",
]


@dataclass(frozen=True)
class Action:
    """One schedule action.

    kind:
        * ``"snapshot"`` — store the live state (at ``step``) in ``slot``;
        * ``"advance"``  — run primal steps ``step`` .. ``step2 - 1``,
          leaving the live state at ``step2``;
        * ``"reverse"``  — adjoin step ``step`` (live state is at ``step``);
        * ``"restore"``  — load ``slot`` (state at ``step``) as live state.
    """

    kind: str
    step: int
    step2: int = -1
    slot: int = -1


@lru_cache(maxsize=None)
def _cost(steps: int, snaps: int) -> float:
    if steps in (0, 1):
        return float(steps)
    if snaps < 1:
        return math.inf
    if snaps == 1:
        return steps * (steps + 1) / 2
    return min(
        mid + _cost(steps - mid, snaps - 1) + _cost(mid, snaps)
        for mid in range(1, steps)
    )


def optimal_cost(steps: int, snaps: int) -> int:
    """Minimal number of primal step evaluations to reverse *steps* steps
    with *snaps* snapshot slots."""
    if steps < 0:
        raise ValueError("steps must be >= 0")
    c = _cost(steps, snaps)
    if math.isinf(c):
        raise ValueError(f"cannot reverse {steps} steps with {snaps} snapshots")
    return int(c)


def _best_split(steps: int, snaps: int) -> int:
    """Arg-min of the revolve recurrence (smallest optimal split)."""
    best_mid, best_cost = None, math.inf
    for mid in range(1, steps):
        cost = mid + _cost(steps - mid, snaps - 1) + _cost(mid, snaps)
        if cost < best_cost:
            best_mid, best_cost = mid, cost
    assert best_mid is not None
    return best_mid


def schedule(steps: int, snaps: int) -> list[Action]:
    """Optimal checkpointing schedule reversing ``steps`` primal steps.

    Execution model: the state at step 0 is live when the schedule starts;
    at most ``snaps`` snapshots are resident at any time; ``reverse`` is
    emitted exactly once per step, in descending step order.  The
    schedule's evaluation count equals :func:`optimal_cost`.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if snaps < 1:
        raise ValueError("snaps must be >= 1")
    actions: list[Action] = []
    free_slots = list(range(snaps))

    def rec(begin: int, end: int, snap_slot: int | None) -> None:
        """Reverse steps [begin, end); live state is at ``begin``.

        ``snap_slot`` holds a snapshot of step ``begin`` if not None (and
        stays resident for the caller).
        """
        length = end - begin
        if length == 1:
            actions.append(Action("reverse", begin))
            return
        own = False
        if snap_slot is None:
            if not free_slots:
                raise AssertionError("schedule recursion exhausted slots")
            snap_slot = free_slots.pop()
            own = True
            actions.append(Action("snapshot", begin, slot=snap_slot))
        # Total slots for this subproblem: free ones plus the held one.
        s = len(free_slots) + 1
        if s == 1:
            # Triangular sweep from the held snapshot.
            for target in range(end - 1, begin, -1):
                actions.append(Action("advance", begin, target))
                actions.append(Action("reverse", target))
                actions.append(Action("restore", begin, slot=snap_slot))
            actions.append(Action("reverse", begin))
        else:
            mid = begin + _best_split(length, s)
            actions.append(Action("advance", begin, mid))
            rec(mid, end, None)
            actions.append(Action("restore", begin, slot=snap_slot))
            rec(begin, mid, snap_slot)
        if own:
            free_slots.append(snap_slot)

    rec(0, steps, None)
    return actions


def execute_schedule(
    actions,
    *,
    snapshot,
    advance,
    restore,
    reverse,
) -> None:
    """Drive a schedule through four action callbacks, checking validity.

    The executor owns the live-step bookkeeping every schedule consumer
    needs (and previously duplicated): ``snapshot(slot, step)`` and
    ``reverse(step)`` only fire when the live state is at ``step``,
    ``advance(begin, end)`` only from ``begin``; a schedule that
    violates this — impossible for :func:`schedule` output, possible
    for hand-built action lists — raises :class:`ValueError` instead of
    silently adjoining the wrong state.  Both
    :meth:`repro.driver.timestepping.AdjointTimeStepper.run_checkpointed`
    and :class:`repro.runtime.checkpoint.CheckpointedAdjointPlan`
    execute their sweeps through this one loop.
    """
    live = 0
    stored: dict[int, int] = {}  # slot -> step it holds
    for a in actions:
        if a.kind == "snapshot":
            if a.step != live:
                raise ValueError(
                    f"snapshot of step {a.step} but live state is at {live}"
                )
            stored[a.slot] = live
            snapshot(a.slot, a.step)
        elif a.kind == "advance":
            if a.step != live:
                raise ValueError(
                    f"advance from step {a.step} but live state is at {live}"
                )
            if a.step2 <= a.step:
                raise ValueError(
                    f"advance must move forward, got {a.step} -> {a.step2}"
                )
            advance(a.step, a.step2)
            live = a.step2
        elif a.kind == "restore":
            if a.slot not in stored:
                raise ValueError(
                    f"restore from slot {a.slot}, which holds no snapshot"
                )
            if stored[a.slot] != a.step:
                raise ValueError(
                    f"restore claims step {a.step} but slot {a.slot} holds "
                    f"step {stored[a.slot]}"
                )
            restore(a.slot, a.step)
            live = a.step
        elif a.kind == "reverse":
            if a.step != live:
                raise ValueError(
                    f"reverse of step {a.step} but live state is at {live}"
                )
            reverse(a.step)
        else:
            raise ValueError(f"unknown action kind {a.kind!r}")


def schedule_cost(actions: list[Action]) -> int:
    """Primal step evaluations performed by a schedule (advance spans plus
    the re-evaluation inside each reverse)."""
    cost = 0
    for a in actions:
        if a.kind == "advance":
            cost += a.step2 - a.step
        elif a.kind == "reverse":
            cost += 1
    return cost
