"""Adjoint time-stepping driver with optional revolve checkpointing.

Composes the stencil-level adjoints (this paper's contribution) with a
reverse sweep over the time loop (the surrounding-program reversal the
paper delegates to a general-purpose AD tool).  The driver is generic
over the state layout: the user provides a ``forward_step`` that maps a
state dict to the next state, and a ``reverse_step`` that, given the
saved primal state at step ``t`` and the incoming adjoint state, returns
the adjoint state at ``t`` (typically by seeding and running the adjoint
stencil kernels).

Two storage policies:

* :meth:`AdjointTimeStepper.run_store_all` — keep every state (the
  baseline; memory O(steps));
* :meth:`AdjointTimeStepper.run_checkpointed` — execute a revolve
  schedule with a bounded number of snapshots, recomputing forward
  sub-sweeps (memory O(snaps), evaluations provably minimal).

Both produce bitwise-identical adjoints (the reverse sweep consumes
exactly the same primal states either way), which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from .revolve import execute_schedule, schedule

__all__ = ["AdjointTimeStepper", "make_stencil_steps"]

State = dict[str, np.ndarray]


def make_stencil_steps(
    forward_run: Callable[[dict[str, np.ndarray]], object],
    reverse_run: Callable[[dict[str, np.ndarray]], object],
    shape: tuple[int, ...],
    output: str = "u",
    prev: str = "u_1",
    adjoint_map: Mapping[str, str] | None = None,
    dtype: type = np.float64,
) -> tuple[Callable[[State], State], Callable[[State, State], State]]:
    """Build ``(forward_step, reverse_step)`` around stencil runners.

    Covers the common single-field timestepping layout of the benchmarks
    and examples: the primal kernel reads ``prev`` and writes ``output``;
    the adjoint kernel reads the saved primal state plus the incoming
    adjoint of ``output`` and accumulates the adjoint of ``prev``.

    ``forward_run``/``reverse_run`` are any array-dict runners — a
    :class:`~repro.runtime.compiler.CompiledKernel`, a planned
    :meth:`~repro.runtime.plan.ExecutionPlan.run`, or a partial over a
    :class:`~repro.runtime.parallel.ParallelExecutor` — so one time loop
    composes with every execution discipline the runtime offers.  The
    persistent work arrays are allocated in ``dtype``, keeping
    reduced-precision sweeps reduced-precision end to end.

    The forward sweep is **double-buffered**: two persistent state
    arrays alternate between the ``output`` and ``prev`` roles through
    two fixed arrays dicts, instead of allocating ``np.zeros(shape)``
    per step.  Array identity is therefore stable across the whole time
    loop, so an :class:`~repro.runtime.plan.ExecutionPlan` runner binds
    each parity's arrays once and every subsequent step hits the
    allocation-free bound path.  The returned state aliases an internal
    buffer that is overwritten two steps later — the driver's storage
    policies copy states they keep (``run_store_all`` history, revolve
    snapshots), so this is only visible to callers that stash a returned
    state and keep stepping.  The reverse sweep reuses one persistent
    arrays dict the same way and returns a fresh copy of the adjoint
    (reverse results are the sweep's *output* and must outlive it).
    """
    adjoint_map = dict(adjoint_map or {output: f"{output}_b", prev: f"{prev}_b"})
    out_adj, prev_adj = adjoint_map[output], adjoint_map[prev]

    buf_a = np.zeros(shape, dtype=dtype)
    buf_b = np.zeros(shape, dtype=dtype)
    # Two fixed role assignments: whichever buffer holds the incoming
    # state plays `prev`, the other is overwritten as `output`.
    write_a = {output: buf_a, prev: buf_b}
    write_b = {output: buf_b, prev: buf_a}

    def forward_step(state: State) -> State:
        src = state[output]
        arrays = write_b if src is buf_a else write_a
        if src is not arrays[prev]:
            np.copyto(arrays[prev], src)
        arrays[output][...] = 0
        forward_run(arrays)
        return {output: arrays[output]}

    rev_arrays = {
        out_adj: np.zeros(shape, dtype=dtype),
        prev: np.zeros(shape, dtype=dtype),
        prev_adj: np.zeros(shape, dtype=dtype),
    }

    def reverse_step(saved: State, lam: State) -> State:
        np.copyto(rev_arrays[out_adj], lam[output])
        np.copyto(rev_arrays[prev], saved[output])
        rev_arrays[prev_adj][...] = 0
        reverse_run(rev_arrays)
        return {output: rev_arrays[prev_adj].copy()}

    return forward_step, reverse_step


def _copy(state: State) -> State:
    return {k: v.copy() for k, v in state.items()}


@dataclass
class AdjointTimeStepper:
    """Reverse a time loop around stencil kernels.

    Parameters
    ----------
    forward_step:
        ``state -> next state``; must not mutate its argument.
    reverse_step:
        ``(saved_state_at_t, adjoint_state) -> adjoint state at t``; may
        also accumulate parameter gradients into arrays it closes over.
    """

    forward_step: Callable[[State], State]
    reverse_step: Callable[[State, State], State]

    # -- forward -----------------------------------------------------------

    def run_forward(self, state0: State, steps: int) -> State:
        state = _copy(state0)
        for _ in range(steps):
            state = self.forward_step(state)
        # forward_step may return a view of double-buffered storage (see
        # make_stencil_steps); copy so the result survives later sweeps.
        return _copy(state)

    # -- reverse, store-all ---------------------------------------------------

    def run_store_all(
        self, state0: State, steps: int, adjoint_seed: State
    ) -> State:
        """Adjoint sweep storing every intermediate state."""
        history = [_copy(state0)]
        state = _copy(state0)
        for _ in range(steps):
            state = self.forward_step(state)
            history.append(_copy(state))
        lam = _copy(adjoint_seed)
        for t in reversed(range(steps)):
            lam = self.reverse_step(history[t], lam)
        return lam

    # -- reverse, revolve-checkpointed ---------------------------------------

    def run_checkpointed(
        self,
        state0: State,
        steps: int,
        adjoint_seed: State,
        snaps: int,
    ) -> State:
        """Adjoint sweep with at most *snaps* resident snapshots.

        Executes the optimal revolve schedule through the shared
        :func:`repro.driver.revolve.execute_schedule` driver (which owns
        the live-step bookkeeping); evaluation count equals
        :func:`repro.driver.revolve.optimal_cost` and the result is
        bitwise identical to :meth:`run_store_all`.

        This is the generic-callable compatibility path (snapshots are
        fresh state copies); time loops over compiled stencil kernels
        should prefer the allocation-free
        :class:`repro.runtime.checkpoint.CheckpointedAdjointPlan`, which
        replays the same schedule with preallocated snapshot pools and
        bound plan runs.
        """
        slots: dict[int, State] = {}
        box = {"live": _copy(state0), "lam": _copy(adjoint_seed)}

        def advance(begin: int, end: int) -> None:
            for _ in range(end - begin):
                box["live"] = self.forward_step(box["live"])

        def reverse(step: int) -> None:
            box["lam"] = self.reverse_step(box["live"], box["lam"])

        execute_schedule(
            schedule(steps, snaps),
            snapshot=lambda slot, step: slots.__setitem__(
                slot, _copy(box["live"])
            ),
            advance=advance,
            restore=lambda slot, step: box.__setitem__(
                "live", _copy(slots[slot])
            ),
            reverse=reverse,
        )
        return box["lam"]
