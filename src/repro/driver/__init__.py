"""Adjoint time-stepping drivers and revolve checkpointing."""

from .revolve import (
    Action,
    execute_schedule,
    optimal_cost,
    schedule,
    schedule_cost,
)
from .timestepping import AdjointTimeStepper, make_stencil_steps

__all__ = [
    "Action",
    "AdjointTimeStepper",
    "execute_schedule",
    "make_stencil_steps",
    "optimal_cost",
    "schedule",
    "schedule_cost",
]
