"""Adjoint time-stepping drivers and revolve checkpointing."""

from .revolve import Action, optimal_cost, schedule, schedule_cost
from .timestepping import AdjointTimeStepper

__all__ = [
    "Action",
    "AdjointTimeStepper",
    "optimal_cost",
    "schedule",
    "schedule_cost",
]
