"""Adjoint time-stepping drivers and revolve checkpointing."""

from .revolve import Action, optimal_cost, schedule, schedule_cost
from .timestepping import AdjointTimeStepper, make_stencil_steps

__all__ = [
    "Action",
    "AdjointTimeStepper",
    "make_stencil_steps",
    "optimal_cost",
    "schedule",
    "schedule_cost",
]
