"""Precomputed execution plans: decompose once, bind once, run many.

The paper's measured workflow fixes the execution configuration (thread
count, problem size) once and then runs the compiled kernel for every
timestep and repetition.  The reproduction previously redid the per-run
bookkeeping — guard-box intersection, safe-split-axis selection, thread
blocking, tile decomposition — inside every ``execute`` call, through
four separate dispatch paths (serial ``CompiledKernel.__call__``,
``ParallelExecutor.run``/``run_scatter``, ``run_tiled``).

An :class:`ExecutionPlan` is built once per ``(kernel, ExecutionConfig)``
(PyOP2's parallel-plan idea): it freezes the full work decomposition —
per-region thread tasks, per-task tiles, per-tile guard-intersected
statement boxes — and exposes a single :meth:`ExecutionPlan.run` entry
point covering all four disciplines, including fused tiled+threaded
execution.  Plans are memoised on the kernel via
:meth:`~repro.runtime.compiler.CompiledKernel.plan`.

On top of the decomposition, :meth:`ExecutionPlan.bind` resolves the
plan against concrete arrays into a
:class:`~repro.runtime.bound.BoundPlan` (PyOP2's plan/bind split): all
views, counter arrays and scratch are materialised once, and steady-
state runs touch only compute.  :meth:`run` binds transparently and
memoises the binding per arrays identity (bounded, identity-validated),
so existing callers that reuse an arrays dict across timesteps get
allocation-free steady-state execution without code changes.

Regions whose tasks would race — a region reading or overwriting what an
earlier, still-in-flight region writes — are separated by barriers
computed at build time from concrete read/write boxes; disjoint-write
regions (the Section 3.3.4 property) still all run with a single final
join, exactly as the paper's "no additional synchronisation barriers"
describes.

Results are bitwise identical to the serial path for every discipline:
gather regions write disjoint locations per task, tiles partition
full-rank regions element-wise, the scatter discipline is validated up
front (see :func:`validate_scatter_kernel`) and its thread-private
scratches merge in deterministic task order.
"""

from __future__ import annotations

import operator
import threading
import weakref
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from ..errors import ValidationError
from .compiler import (
    CompiledKernel,
    KernelError,
    RegionKernel,
    _boxes_overlap,
)
from .scheduler import safe_split_axis, split_box
from .tiling import safe_to_tile, tile_box

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .bound import BoundPlan

__all__ = [
    "ExecutionConfig",
    "ExecutionPlan",
    "ShardSpec",
    "validate_scatter_kernel",
]

Box = tuple[tuple[int, int], ...]
StmtBoxes = tuple[Box | None, ...]

# How many (arrays-identity -> BoundPlan) entries one plan retains.  A
# binding holds views (strong references) into its arrays, so the memo
# is deliberately small: steady-state callers reuse one arrays dict and
# hit the first entry forever; one-shot callers churn through and evict.
# (A weak-keyed mapping is not possible here: plain dicts — the usual
# arrays container — cannot be weak-referenced, so the memo validates
# array identity on every hit instead.)
_BOUND_MEMO_SIZE = 2
# Sightings of arrays identities that have run once unbound; the second
# sighting triggers binding.  Weak references only — bookkeeping must
# not keep anybody's arrays alive.
_SEEN_MEMO_SIZE = 4


@dataclass(frozen=True)
class ExecutionConfig:
    """Everything that selects an execution discipline for a kernel.

    ``num_threads`` > 1 runs thread-parallel (gather: race-free blocks;
    scatter: thread-private accumulation with deterministic ordered
    merge).  ``tile_shape`` cache-blocks each task's box.  ``scatter``
    selects the conventional-adjoint discipline.
    ``min_block_iterations`` keeps tiny regions on the submitting thread.
    ``backend`` selects how bound statements execute: ``"python"`` runs
    the in-place NumPy slot tape, ``"native"`` dispatches eligible
    statements to JIT-built C (:mod:`repro.runtime.native`), falling
    back statement-wise — and entirely, with one warning, when no C
    toolchain exists — to the python path with identical results.
    ``fusion`` controls the native backend's dependence-aware statement
    fusion (:mod:`repro.core.fusion`): ``"auto"`` (default) merges
    fusable statement chains of serial untiled native bindings into
    single C loop nests, ``"off"`` pins the per-statement path (the
    bitwise reference oracle).  The setting is inert for the python
    backend and for threaded/tiled/scatter plans.

    Two opt-in reliability knobs (see ``docs/reliability.md``), both
    default-off because each costs a memory sweep the fused hot path
    cannot afford:

    ``check="nan"`` arms the divergence watchdog: serial bindings run
    statement-by-statement (fusion and native chaining are disabled to
    keep the granularity) and the first non-finite value raises
    :class:`~repro.errors.NumericalDivergenceError` naming the step and
    statement.  ``transactional=True`` makes a bound ``run()`` restore
    every written array to its pre-call contents when a statement
    raises mid-run, so user arrays are never left half-updated.

    ``native_threads`` sets how many OpenMP threads the native
    backend's C loop nests use (``docs/threading.md``): ``None``
    (default) defers to the ``REPRO_NATIVE_THREADS`` environment
    variable at bind time, an explicit integer pins the count and wins
    over the environment.  Results are bitwise identical to the serial
    native path at every count; the knob is inert for the python
    backend and resolves to serial for threaded/scatter/watchdog plans
    (see :func:`repro.runtime.native.native_thread_count`).

    Invalid values raise :class:`ValueError` here; a ``tile_shape``
    whose rank does not cover the kernel's dimensionality raises
    :class:`~repro.runtime.compiler.KernelError` at plan build, where
    the kernel is known.

    >>> from repro.runtime import ExecutionConfig
    >>> ExecutionConfig(num_threads=4, tile_shape=(16, 16)).tile_shape
    (16, 16)
    >>> ExecutionConfig(backend="fortran")
    Traceback (most recent call last):
        ...
    ValueError: backend must be 'python' or 'native', got 'fortran'
    >>> ExecutionConfig(check="inf")
    Traceback (most recent call last):
        ...
    ValueError: check must be 'none' or 'nan', got 'inf'
    """

    num_threads: int = 1
    tile_shape: tuple[int, ...] | None = None
    scatter: bool = False
    min_block_iterations: int = 1024
    backend: str = "python"
    fusion: str = "auto"
    check: str = "none"
    transactional: bool = False
    native_threads: int | None = None

    def __post_init__(self) -> None:
        if self.num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        if self.native_threads is not None and self.native_threads < 1:
            raise ValueError("native_threads must be >= 1 (or None)")
        if self.backend not in ("python", "native"):
            raise ValueError(
                f"backend must be 'python' or 'native', got {self.backend!r}"
            )
        if self.fusion not in ("auto", "off"):
            raise ValueError(
                f"fusion must be 'auto' or 'off', got {self.fusion!r}"
            )
        if self.check not in ("none", "nan"):
            raise ValueError(
                f"check must be 'none' or 'nan', got {self.check!r}"
            )
        if self.min_block_iterations < 1:
            raise ValueError("min_block_iterations must be >= 1")
        if self.scatter and self.tile_shape is not None:
            raise ValueError("tiling is not supported for scatter plans")
        if self.tile_shape is not None:
            try:
                tile = tuple(operator.index(t) for t in self.tile_shape)
            except TypeError:
                raise ValueError(
                    f"tile_shape entries must be integers, got "
                    f"{tuple(self.tile_shape)!r}"
                ) from None
            if not tile or any(t < 1 for t in tile):
                raise ValueError(
                    f"tile_shape entries must be positive integers, got "
                    f"{tile!r}"
                )
            object.__setattr__(self, "tile_shape", tile)


@dataclass(frozen=True)
class RegionPlan:
    """Frozen decomposition of one region under one config.

    ``tasks`` is the parallel dimension: each task is a sequence of work
    units executed in order by one worker, and each unit is the
    per-statement guard-intersected boxes of one sub-box (tile).
    ``parallel`` marks whether the tasks may run concurrently; serial
    regions (too small, or no race-free split axis) hold a single task.
    """

    region: RegionKernel
    tasks: tuple[tuple[StmtBoxes, ...], ...]
    parallel: bool

    @property
    def unit_count(self) -> int:
        return sum(len(task) for task in self.tasks)


def validate_scatter_kernel(kernel: CompiledKernel) -> None:
    """Check that thread-private scatter accumulation is exact for *kernel*.

    The scatter discipline computes each block into zero-seeded private
    copies of the written arrays and merges them into the global arrays
    with ``+=``.  That merge is only correct when every statement is a
    pure ``+=`` scatter and no statement reads an array its region
    writes: an ``=`` statement's value would be *added* to the global
    array instead of stored, and a read of a written array would observe
    the zeroed scratch instead of the accumulated values.  Raises
    :class:`~repro.runtime.compiler.KernelError` on either violation.

    >>> from repro import heat_problem
    >>> from repro.runtime import compile_nests, validate_scatter_kernel
    >>> prob = heat_problem(1)
    >>> kernel = compile_nests([prob.primal], prob.bindings(16))
    >>> validate_scatter_kernel(kernel)   # '+=' gather stencil: accepted
    """
    for region in kernel.regions:
        written = {st.target.name for st in region.statements}
        for st in region.statements:
            if st.op != "+=":
                raise KernelError(
                    f"scatter execution requires pure '+=' statements, but "
                    f"region {region.name!r} writes {st.target.name!r} with "
                    f"'{st.op}'; the thread-private zero-seeded merge would "
                    f"add the value instead of storing it"
                )
            for acc in st.reads:
                if acc.name in written:
                    raise KernelError(
                        f"scatter execution forbids reading an array the "
                        f"region writes, but region {region.name!r} reads "
                        f"{acc.name!r}; the read would observe the zeroed "
                        f"thread-private scratch"
                    )


def _group_boxes(
    named_boxes: Sequence[tuple[str, Box]],
) -> dict[str, list[Box]]:
    out: dict[str, list[Box]] = {}
    for name, box in named_boxes:
        out.setdefault(name, []).append(box)
    return out


def _any_overlap(a: dict[str, list[Box]], b: dict[str, list[Box]]) -> bool:
    for name, boxes in a.items():
        other = b.get(name)
        if not other:
            continue
        for box_a in boxes:
            for box_b in other:
                if _boxes_overlap(box_a, box_b):
                    return True
    return False


@dataclass(frozen=True)
class ShardSpec:
    """One rank's slice of a block decomposition along frame axis 0.

    ``[own_lo, own_hi]`` are the rows this rank owns, in **global**
    coordinates.  ``slab_lo`` is the global row that local row 0 of the
    rank's slab (owned rows plus halo ghosts) maps to, and
    ``slab_extent`` is the slab's total axis-0 length.  Building a plan
    with a shard clamps every region's axis-0 bounds to the owned rows
    *before* guard intersection (guards are written in global
    coordinates), then translates the resulting statement boxes by
    ``-slab_lo`` into local slab coordinates, ready to bind against
    slab-sized arrays.

    >>> ShardSpec(rank=1, own_lo=4, own_hi=7, slab_lo=3, slab_extent=6)
    ShardSpec(rank=1, own_lo=4, own_hi=7, slab_lo=3, slab_extent=6)
    """

    rank: int
    own_lo: int
    own_hi: int
    slab_lo: int
    slab_extent: int

    def __post_init__(self) -> None:
        if self.own_lo > self.own_hi:
            raise ValidationError(
                f"shard rank {self.rank} owns no rows: "
                f"own_lo {self.own_lo} > own_hi {self.own_hi}"
            )
        if not 0 <= self.slab_lo <= self.own_lo:
            raise ValidationError(
                f"shard rank {self.rank}: slab_lo {self.slab_lo} must lie "
                f"in [0, own_lo={self.own_lo}]"
            )
        if self.slab_extent < self.own_hi - self.slab_lo + 1:
            raise ValidationError(
                f"shard rank {self.rank}: slab extent {self.slab_extent} "
                f"is too small to hold rows "
                f"[{self.slab_lo}, {self.own_hi}]"
            )


def _shift_boxes(stmt_boxes: StmtBoxes, shift: int) -> StmtBoxes:
    """Translate every statement box's axis 0 by ``-shift``."""
    if not shift:
        return stmt_boxes
    return tuple(
        None
        if box is None
        else ((box[0][0] - shift, box[0][1] - shift),) + box[1:]
        for box in stmt_boxes
    )


class ExecutionPlan:
    """A kernel frozen together with its full work decomposition.

    Build via :meth:`CompiledKernel.plan` (memoised) or
    :meth:`ExecutionPlan.build`; execute with :meth:`run` (which binds
    and memoises per arrays identity) or hold a long-lived binding
    explicitly via :meth:`bind`.  The plan owns a lazily created thread
    pool for standalone parallel runs; callers with their own pool
    (e.g. ``ParallelExecutor``) pass it to ``run``.

    >>> from repro import heat_problem
    >>> from repro.runtime import compile_nests
    >>> prob = heat_problem(1)
    >>> kernel = compile_nests([prob.primal], prob.bindings(32))
    >>> plan = kernel.plan(num_threads=2, min_block_iterations=1)
    >>> plan.task_count, plan.unit_count
    (2, 2)
    >>> kernel.plan(num_threads=2, min_block_iterations=1) is plan
    True
    """

    def __init__(
        self,
        kernel: CompiledKernel,
        config: ExecutionConfig,
        region_plans: tuple[RegionPlan, ...],
        shard: ShardSpec | None = None,
    ):
        self.kernel = kernel
        self.config = config
        self.region_plans = region_plans
        self.shard = shard
        self.barriers = self._compute_barriers(region_plans)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_finalizer: weakref.finalize | None = None
        self._bound_memo: OrderedDict[int, "BoundPlan"] = OrderedDict()
        self._seen: OrderedDict[int, dict[str, weakref.ref]] = OrderedDict()
        # Guards the memo bookkeeping: plans are memoised per kernel, so
        # one plan may be run from several threads (on their own arrays).
        self._memo_lock = threading.Lock()

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        kernel: CompiledKernel,
        config: ExecutionConfig,
        shard: ShardSpec | None = None,
    ) -> "ExecutionPlan":
        if config.scatter and config.num_threads > 1:
            validate_scatter_kernel(kernel)
        if config.tile_shape is not None:
            dim = len(kernel.counters)
            if len(config.tile_shape) < dim:
                raise KernelError(
                    f"tile_shape {config.tile_shape} has rank "
                    f"{len(config.tile_shape)} but kernel {kernel.name!r} "
                    f"iterates over {dim} axes; give one tile extent per "
                    f"axis (extra trailing entries are ignored)"
                )
        region_plans = []
        for region in kernel.regions:
            if region.is_empty:
                continue
            if shard is None:
                region_plans.append(cls._plan_region(region, config))
                continue
            lo, hi = region.bounds[0]
            lo, hi = max(lo, shard.own_lo), min(hi, shard.own_hi)
            if lo > hi:  # this rank owns none of the region's rows
                continue
            if shard.slab_lo and any(
                0 in st.bare_axes for st in region.statements
            ):
                raise ValidationError(
                    f"kernel {kernel.name!r} region {region.name!r} uses "
                    f"the axis-0 loop counter as a value; sharding "
                    f"translates axis 0 into local slab coordinates "
                    f"(offset {shard.slab_lo}), which would change the "
                    f"counter's value"
                )
            bounds = ((lo, hi),) + tuple(region.bounds[1:])
            region_plans.append(
                cls._plan_region(
                    region, config, bounds=bounds, shift=shard.slab_lo
                )
            )
        return cls(kernel, config, tuple(region_plans), shard=shard)

    @staticmethod
    def _plan_region(
        region: RegionKernel,
        config: ExecutionConfig,
        bounds: Box | None = None,
        shift: int = 0,
    ) -> RegionPlan:
        root: Box = region.bounds if bounds is None else bounds
        if config.scatter:
            blocks = split_box(root, config.num_threads)
            tasks = tuple(
                (_shift_boxes(region.statement_boxes(block), shift),)
                for block in blocks
            )
            return RegionPlan(region, tasks, parallel=config.num_threads > 1)

        parallel = False
        blocks: list[Box] = [root]
        if config.num_threads > 1 and (
            region.iteration_count(root) >= config.min_block_iterations
        ):
            axis = safe_split_axis(region)
            if axis is not None:
                blocks = split_box(root, config.num_threads, axis=axis)
                parallel = True

        tile = config.tile_shape
        tileable = tile is not None and safe_to_tile(region)
        tasks = []
        for block in blocks:
            boxes = tile_box(block, tile) if tileable else [block]
            tasks.append(
                tuple(
                    _shift_boxes(region.statement_boxes(box), shift)
                    for box in boxes
                )
            )
        return RegionPlan(region, tuple(tasks), parallel=parallel)

    @staticmethod
    def _compute_barriers(region_plans: tuple[RegionPlan, ...]) -> tuple[bool, ...]:
        """Where a region must wait for earlier regions' in-flight tasks.

        Uses concrete per-array read/write boxes: a barrier is needed
        before region B when B writes what an in-flight region reads or
        writes, or B reads what an in-flight region writes.  Name-level
        sharing with *disjoint* boxes (the PerforAD adjoint regions all
        writing disjoint slices of one adjoint array) does not barrier,
        preserving the paper's single final join for gather kernels.
        Serial (inline) regions respect the same barriers — running one
        on the submitting thread while a conflicting future is still
        writing was the read-after-write hazard this fixes.
        """
        barriers: list[bool] = []
        inflight_w: dict[str, list[Box]] = {}
        inflight_r: dict[str, list[Box]] = {}
        for rp in region_plans:
            writes = _group_boxes(rp.region.write_boxes())
            reads = _group_boxes(rp.region.read_boxes())
            need = bool(inflight_w or inflight_r) and (
                _any_overlap(writes, inflight_w)
                or _any_overlap(writes, inflight_r)
                or _any_overlap(reads, inflight_w)
            )
            if need:
                inflight_w.clear()
                inflight_r.clear()
            barriers.append(need)
            if rp.parallel:
                for name, boxes in writes.items():
                    inflight_w.setdefault(name, []).extend(boxes)
                for name, boxes in reads.items():
                    inflight_r.setdefault(name, []).extend(boxes)
        return tuple(barriers)

    # -- queries -----------------------------------------------------------

    @property
    def unit_count(self) -> int:
        """Total number of serially-executed work units (e.g. tiles)."""
        return sum(rp.unit_count for rp in self.region_plans)

    @property
    def task_count(self) -> int:
        """Total number of schedulable tasks across regions."""
        return sum(len(rp.tasks) for rp in self.region_plans)

    # -- binding -----------------------------------------------------------

    def bind(self, arrays: Mapping[str, np.ndarray]) -> "BoundPlan":
        """Resolve this plan against concrete arrays (see :mod:`.bound`).

        Hold the result for steady-state loops: repeated
        :meth:`~repro.runtime.bound.BoundPlan.run` calls perform no
        per-call geometry work and (after warm-up) no array allocations.
        Rebind after replacing any array *object* in the mapping.

        >>> from repro import heat_problem
        >>> from repro.runtime import compile_nests
        >>> prob = heat_problem(1)
        >>> kernel = compile_nests([prob.primal], prob.bindings(16))
        >>> arrays = prob.allocate(16)
        >>> bound = kernel.plan().bind(arrays)
        >>> for _ in range(100):   # steady state: no per-call rebinding
        ...     bound.run()
        >>> bound.matches(arrays)
        True
        """
        from .bound import BoundPlan  # avoids cycle

        return BoundPlan(self, arrays)

    def bound_for(self, arrays: Mapping[str, np.ndarray]) -> "BoundPlan":
        """The memoised binding for *arrays*, rebinding when stale.

        Keyed by mapping identity and validated against the actual array
        objects on every hit, so replacing an array in the dict — or an
        id-reused new dict — transparently rebinds.  The memo keeps the
        binding (and therefore the arrays) alive; it is bounded to
        ``_BOUND_MEMO_SIZE`` entries, evicting least-recently-used.
        """
        key = id(arrays)
        memo = self._bound_memo
        with self._memo_lock:
            bound = memo.get(key)
            if bound is not None:
                if bound.matches(arrays):
                    memo.move_to_end(key)
                    return bound
                del memo[key]
        # Bind outside the lock: binding a large kernel is slow and must
        # not stall concurrent steady-state runners of this plan.
        fresh = self.bind(arrays)
        with self._memo_lock:
            bound = memo.get(key)
            if bound is not None and bound.matches(arrays):
                return bound  # a racing caller bound the same arrays first
            memo[key] = fresh
            memo.move_to_end(key)
            while len(memo) > _BOUND_MEMO_SIZE:
                memo.popitem(last=False)
        return fresh

    def ensemble(
        self,
        batched: Mapping[str, np.ndarray],
        *,
        workers: int = 1,
        chunks: int | None = None,
    ) -> "EnsemblePlan":
        """Bind this plan against a stacked ensemble of scenarios.

        *batched* maps each kernel array to a ``(members, *shape)``
        array (see :func:`~repro.runtime.ensemble.stack_arrays`); the
        returned :class:`~repro.runtime.ensemble.EnsemblePlan` advances
        all members per :meth:`~repro.runtime.ensemble.EnsemblePlan.run`
        call, bitwise identical to looping single-member bound plans.

        >>> import numpy as np
        >>> from repro.apps import heat_problem
        >>> from repro.core import adjoint_loops
        >>> from repro.runtime import compile_nests, stack_arrays
        >>> prob = heat_problem(1)
        >>> kernel = compile_nests(
        ...     adjoint_loops(prob.primal, prob.adjoint_map), prob.bindings(8))
        >>> batched = stack_arrays(
        ...     [prob.allocate_state(8, seed=m) for m in range(3)])
        >>> ensemble = kernel.plan().ensemble(batched)
        >>> ensemble.run()
        >>> ensemble.members
        3
        """
        from .ensemble import EnsemblePlan  # avoids cycle

        return EnsemblePlan(self, batched, workers=workers, chunks=chunks)

    def checkpointed_adjoint(
        self,
        reverse_plan: "ExecutionPlan",
        shape: tuple[int, ...],
        *,
        steps: int,
        snaps: int,
        **kwargs,
    ) -> "CheckpointedAdjointPlan":
        """Bind this (forward) plan and *reverse_plan* into a revolve-
        checkpointed adjoint time loop (see :mod:`.checkpoint`).

        The returned :class:`~repro.runtime.checkpoint.CheckpointedAdjointPlan`
        executes the optimal binomial schedule for ``steps`` time steps
        with ``snaps`` resident snapshots, entirely through bound plan
        runs — memory O(snaps), zero steady-state allocations, bitwise
        identical to its store-all reference.  Keyword options (field
        names, constants, dtype, ensemble ``members``) are documented
        on the class.

        >>> import numpy as np
        >>> from repro import adjoint_loops, heat_problem
        >>> from repro.runtime import compile_nests
        >>> prob = heat_problem(1)
        >>> fwd = compile_nests([prob.primal], prob.bindings(16))
        >>> rev = compile_nests(
        ...     adjoint_loops(prob.primal, prob.adjoint_map), prob.bindings(16))
        >>> chk = fwd.plan().checkpointed_adjoint(
        ...     rev.plan(), prob.array_shape(16), steps=5, snaps=2)
        >>> chk.evaluation_cost  # provably minimal primal evaluations
        11
        """
        from .checkpoint import CheckpointedAdjointPlan  # avoids cycle

        return CheckpointedAdjointPlan(
            self, reverse_plan, shape, steps=steps, snaps=snaps, **kwargs
        )

    def _seen_before(self, arrays: Mapping[str, np.ndarray]) -> bool:
        """Record a sighting of *arrays*; True when seen intact before.

        Binding costs roughly one unbound call's geometry work plus its
        staging copies, so it only pays off for arrays that come back.
        ``run`` therefore executes first-time arrays unbound and binds
        from the second sighting on.  Sightings hold only weak
        references (arrays cannot be kept alive by mere bookkeeping);
        a dead or mismatched weakref — a freed dict whose id was reused
        — resets the sighting.
        """
        key = id(arrays)
        seen = self._seen
        sig = seen.get(key)
        if sig is not None:
            if len(sig) == len(arrays) and all(
                ref() is arrays.get(name) for name, ref in sig.items()
            ):
                seen.move_to_end(key)
                return True
            del seen[key]
        try:
            sig = {name: weakref.ref(arr) for name, arr in arrays.items()}
        except TypeError:  # non-weakref-able array values: never bind
            return False
        seen[key] = sig
        while len(seen) > _SEEN_MEMO_SIZE:
            seen.popitem(last=False)
        return False

    # -- execution ---------------------------------------------------------

    def run(
        self,
        arrays: Mapping[str, np.ndarray],
        pool: ThreadPoolExecutor | None = None,
    ) -> None:
        """Execute the planned kernel on *arrays*.

        One entry point for all disciplines; which one runs was fixed at
        plan-build time by the :class:`ExecutionConfig`.  Arrays seen
        for the first time run unbound (one-shot callers pay nothing
        extra); from the second sighting of the same intact arrays dict
        the call binds, memoises per arrays identity and replays the
        allocation-free steady-state path — so timestep loops that reuse
        their arrays speed up transparently.

        >>> import numpy as np
        >>> from repro import heat_problem
        >>> from repro.runtime import compile_nests
        >>> prob = heat_problem(1)
        >>> kernel = compile_nests([prob.primal], prob.bindings(16))
        >>> arrays = prob.allocate(16)
        >>> check = {k: v.copy() for k, v in arrays.items()}
        >>> plan = kernel.plan()
        >>> for _ in range(3):     # binds transparently from the 2nd call
        ...     plan.run(arrays)
        >>> for _ in range(3):
        ...     plan.run_unbound(check)    # the per-call reference path
        >>> all(np.array_equal(arrays[k], check[k]) for k in arrays)
        True
        """
        with self._memo_lock:
            key = id(arrays)
            memo = self._bound_memo
            bound = memo.get(key)
            if bound is not None and not bound.matches(arrays):
                del memo[key]  # stale: stop pinning the replaced arrays
                bound = None
            if bound is not None:
                memo.move_to_end(key)
            seen = bound is not None or self._seen_before(arrays)
        if bound is not None:
            bound.run(pool=pool)
        elif seen:
            self.bound_for(arrays).run(pool=pool)
        else:
            self.run_unbound(arrays, pool)

    def run_unbound(
        self,
        arrays: Mapping[str, np.ndarray],
        pool: ThreadPoolExecutor | None = None,
    ) -> None:
        """Execute without binding: per-call views and temporaries.

        The PR 1 execution path, kept as the baseline the bound path is
        benchmarked (and bitwise-verified) against.
        """
        if self.config.scatter and self.config.num_threads > 1:
            self._run_scatter(arrays, pool)
        elif self.config.num_threads > 1:
            self._run_threaded(arrays, pool)
        else:
            self._run_serial(arrays)

    def _run_serial(self, arrays: Mapping[str, np.ndarray]) -> None:
        for rp in self.region_plans:
            for task in rp.tasks:
                for unit in task:
                    rp.region.execute_boxes(arrays, unit)

    @staticmethod
    def _run_task(
        region: RegionKernel,
        task: tuple[StmtBoxes, ...],
        arrays: Mapping[str, np.ndarray],
    ) -> None:
        for unit in task:
            region.execute_boxes(arrays, unit)

    def _run_threaded(
        self, arrays: Mapping[str, np.ndarray], pool: ThreadPoolExecutor | None
    ) -> None:
        """Gather discipline: concurrent tasks, barriers only on conflicts."""
        pool = pool or self._ensure_pool()
        futures = []
        for rp, barrier in zip(self.region_plans, self.barriers):
            if barrier and futures:
                done, _ = wait(futures)
                for f in done:
                    f.result()
                futures.clear()
            if rp.parallel:
                for task in rp.tasks:
                    futures.append(pool.submit(self._run_task, rp.region, task, arrays))
            else:
                for task in rp.tasks:
                    self._run_task(rp.region, task, arrays)
        done, _ = wait(futures)
        for f in done:
            f.result()  # propagate exceptions

    def _run_scatter(
        self, arrays: Mapping[str, np.ndarray], pool: ThreadPoolExecutor | None
    ) -> None:
        """Scatter discipline: private accumulation, deterministic merge.

        Blocks compute into zero-seeded private scratch concurrently and
        the coordinating thread merges the scratches in task-submission
        order — reproducible run to run, unlike a merge ordered by task
        completion.
        """
        pool = pool or self._ensure_pool()

        def compute(region: RegionKernel, task: tuple[StmtBoxes, ...]):
            written = {st.target.name for st in region.statements}
            scratch = {
                name: (np.zeros_like(arr) if name in written else arr)
                for name, arr in arrays.items()
            }
            for unit in task:
                region.execute_boxes(scratch, unit)
            return sorted(written), scratch

        futures = []

        def drain() -> None:
            for f in futures:
                written, scratch = f.result()
                for name in written:
                    arrays[name] += scratch[name]
            futures.clear()

        for rp, barrier in zip(self.region_plans, self.barriers):
            if barrier and futures:
                drain()
            for task in rp.tasks:
                futures.append(pool.submit(compute, rp.region, task))
        drain()

    # -- pool lifecycle ----------------------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.config.num_threads)
            # Plans memoised on cached kernels can outlive their users;
            # the finalizer releases the worker threads as soon as the
            # plan itself is collected (e.g. on kernel-cache eviction).
            self._pool_finalizer = weakref.finalize(
                self, self._pool.shutdown, wait=False
            )
        return self._pool

    def close(self) -> None:
        """Shut down the plan's thread pool and drop memoised bindings.

        The pool otherwise lives as long as the plan — which, for plans
        memoised via :meth:`CompiledKernel.plan` on a cached kernel, can
        be the whole process.  Call ``close`` (or use the plan as a
        context manager) when a burst of runs is over; the pool is
        lazily recreated on the next run.  Dropping the bind memo also
        releases the references it holds to bound arrays.  Callers that
        manage their own pool (``ParallelExecutor``) pass it to
        :meth:`run` and are unaffected.
        """
        with self._memo_lock:
            self._bound_memo.clear()
            self._seen.clear()
        if self._pool is not None:
            if self._pool_finalizer is not None:
                self._pool_finalizer.detach()
                self._pool_finalizer = None
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ExecutionPlan":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
