"""Precomputed execution plans: decompose once, run many.

The paper's measured workflow fixes the execution configuration (thread
count, problem size) once and then runs the compiled kernel for every
timestep and repetition.  The reproduction previously redid the per-run
bookkeeping — guard-box intersection, safe-split-axis selection, thread
blocking, tile decomposition — inside every ``execute`` call, through
four separate dispatch paths (serial ``CompiledKernel.__call__``,
``ParallelExecutor.run``/``run_scatter``, ``run_tiled``).

An :class:`ExecutionPlan` is built once per ``(kernel, ExecutionConfig)``
(PyOP2's parallel-plan idea): it freezes the full work decomposition —
per-region thread tasks, per-task tiles, per-tile guard-intersected
statement boxes — and exposes a single :meth:`ExecutionPlan.run` entry
point covering all four disciplines, including fused tiled+threaded
execution.  Plans are memoised on the kernel via
:meth:`~repro.runtime.compiler.CompiledKernel.plan`.

Results are bitwise identical to the serial path for every discipline:
gather regions write disjoint locations per task (the Section 3.3.4
property), tiles partition full-rank regions element-wise, and the
scatter discipline is validated up front (see
:func:`validate_scatter_kernel`) so thread-private accumulation is exact.
"""

from __future__ import annotations

import threading
import weakref
from concurrent.futures import ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .compiler import CompiledKernel, KernelError, RegionKernel
from .scheduler import safe_split_axis, split_box
from .tiling import safe_to_tile, tile_box

__all__ = ["ExecutionConfig", "ExecutionPlan", "validate_scatter_kernel"]

Box = tuple[tuple[int, int], ...]
StmtBoxes = tuple[Box | None, ...]


@dataclass(frozen=True)
class ExecutionConfig:
    """Everything that selects an execution discipline for a kernel.

    ``num_threads`` > 1 runs thread-parallel (gather: race-free blocks;
    scatter: thread-private accumulation with locked merge).
    ``tile_shape`` cache-blocks each task's box.  ``scatter`` selects the
    conventional-adjoint discipline.  ``min_block_iterations`` keeps tiny
    regions on the submitting thread.
    """

    num_threads: int = 1
    tile_shape: tuple[int, ...] | None = None
    scatter: bool = False
    min_block_iterations: int = 1024

    def __post_init__(self) -> None:
        if self.num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        if self.scatter and self.tile_shape is not None:
            raise ValueError("tiling is not supported for scatter plans")


@dataclass(frozen=True)
class RegionPlan:
    """Frozen decomposition of one region under one config.

    ``tasks`` is the parallel dimension: each task is a sequence of work
    units executed in order by one worker, and each unit is the
    per-statement guard-intersected boxes of one sub-box (tile).
    ``parallel`` marks whether the tasks may run concurrently; serial
    regions (too small, or no race-free split axis) hold a single task.
    """

    region: RegionKernel
    tasks: tuple[tuple[StmtBoxes, ...], ...]
    parallel: bool

    @property
    def unit_count(self) -> int:
        return sum(len(task) for task in self.tasks)


def validate_scatter_kernel(kernel: CompiledKernel) -> None:
    """Check that thread-private scatter accumulation is exact for *kernel*.

    The scatter discipline computes each block into zero-seeded private
    copies of the written arrays and merges them with ``+=`` under a
    lock.  That merge is only correct when every statement is a pure
    ``+=`` scatter and no statement reads an array its region writes:
    an ``=`` statement's value would be *added* to the global array
    instead of stored, and a read of a written array would observe the
    zeroed scratch instead of the accumulated values.  Raises
    :class:`~repro.runtime.compiler.KernelError` on either violation.
    """
    for region in kernel.regions:
        written = {st.target.name for st in region.statements}
        for st in region.statements:
            if st.op != "+=":
                raise KernelError(
                    f"scatter execution requires pure '+=' statements, but "
                    f"region {region.name!r} writes {st.target.name!r} with "
                    f"'{st.op}'; the thread-private zero-seeded merge would "
                    f"add the value instead of storing it"
                )
            for acc in st.reads:
                if acc.name in written:
                    raise KernelError(
                        f"scatter execution forbids reading an array the "
                        f"region writes, but region {region.name!r} reads "
                        f"{acc.name!r}; the read would observe the zeroed "
                        f"thread-private scratch"
                    )


class ExecutionPlan:
    """A kernel frozen together with its full work decomposition.

    Build via :meth:`CompiledKernel.plan` (memoised) or
    :meth:`ExecutionPlan.build`; execute with :meth:`run`.  The plan owns
    a lazily created thread pool for standalone parallel runs; callers
    with their own pool (e.g. ``ParallelExecutor``) pass it to ``run``.
    """

    def __init__(
        self,
        kernel: CompiledKernel,
        config: ExecutionConfig,
        region_plans: tuple[RegionPlan, ...],
    ):
        self.kernel = kernel
        self.config = config
        self.region_plans = region_plans
        self._pool: ThreadPoolExecutor | None = None
        self._pool_finalizer: weakref.finalize | None = None
        self._locks: dict[str, threading.Lock] = {}
        if config.scatter:
            for rp in region_plans:
                for st in rp.region.statements:
                    self._locks.setdefault(st.target.name, threading.Lock())

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, kernel: CompiledKernel, config: ExecutionConfig) -> "ExecutionPlan":
        if config.scatter and config.num_threads > 1:
            validate_scatter_kernel(kernel)
        region_plans = []
        for region in kernel.regions:
            if region.is_empty:
                continue
            region_plans.append(cls._plan_region(region, config))
        return cls(kernel, config, tuple(region_plans))

    @staticmethod
    def _plan_region(region: RegionKernel, config: ExecutionConfig) -> RegionPlan:
        if config.scatter:
            blocks = split_box(region.bounds, config.num_threads)
            tasks = tuple((region.statement_boxes(block),) for block in blocks)
            return RegionPlan(region, tasks, parallel=config.num_threads > 1)

        parallel = False
        blocks: list[Box] = [region.bounds]
        if config.num_threads > 1 and (
            region.iteration_count() >= config.min_block_iterations
        ):
            axis = safe_split_axis(region)
            if axis is not None:
                blocks = split_box(region.bounds, config.num_threads, axis=axis)
                parallel = True

        tile = config.tile_shape
        tileable = tile is not None and safe_to_tile(region)
        tasks = []
        for block in blocks:
            boxes = tile_box(block, tile) if tileable else [block]
            tasks.append(tuple(region.statement_boxes(box) for box in boxes))
        return RegionPlan(region, tuple(tasks), parallel=parallel)

    # -- queries -----------------------------------------------------------

    @property
    def unit_count(self) -> int:
        """Total number of serially-executed work units (e.g. tiles)."""
        return sum(rp.unit_count for rp in self.region_plans)

    @property
    def task_count(self) -> int:
        """Total number of schedulable tasks across regions."""
        return sum(len(rp.tasks) for rp in self.region_plans)

    # -- execution ---------------------------------------------------------

    def run(
        self,
        arrays: Mapping[str, np.ndarray],
        pool: ThreadPoolExecutor | None = None,
    ) -> None:
        """Execute the planned kernel on *arrays*.

        One entry point for all disciplines; which one runs was fixed at
        plan-build time by the :class:`ExecutionConfig`.
        """
        if self.config.scatter and self.config.num_threads > 1:
            self._run_scatter(arrays, pool)
        elif self.config.num_threads > 1:
            self._run_threaded(arrays, pool)
        else:
            self._run_serial(arrays)

    def _run_serial(self, arrays: Mapping[str, np.ndarray]) -> None:
        for rp in self.region_plans:
            for task in rp.tasks:
                for unit in task:
                    rp.region.execute_boxes(arrays, unit)

    @staticmethod
    def _run_task(
        region: RegionKernel,
        task: tuple[StmtBoxes, ...],
        arrays: Mapping[str, np.ndarray],
    ) -> None:
        for unit in task:
            region.execute_boxes(arrays, unit)

    def _run_threaded(
        self, arrays: Mapping[str, np.ndarray], pool: ThreadPoolExecutor | None
    ) -> None:
        """Gather discipline: all parallel tasks in flight, one final join."""
        pool = pool or self._ensure_pool()
        futures = []
        for rp in self.region_plans:
            if rp.parallel:
                for task in rp.tasks:
                    futures.append(pool.submit(self._run_task, rp.region, task, arrays))
            else:
                for task in rp.tasks:
                    self._run_task(rp.region, task, arrays)
        done, _ = wait(futures)
        for f in done:
            f.result()  # propagate exceptions

    def _run_scatter(
        self, arrays: Mapping[str, np.ndarray], pool: ThreadPoolExecutor | None
    ) -> None:
        """Scatter discipline: thread-private accumulation, locked merge."""
        pool = pool or self._ensure_pool()

        def run_task(region: RegionKernel, task: tuple[StmtBoxes, ...]) -> None:
            written = {st.target.name for st in region.statements}
            scratch = {
                name: (np.zeros_like(arr) if name in written else arr)
                for name, arr in arrays.items()
            }
            for unit in task:
                region.execute_boxes(scratch, unit)
            for name in written:
                with self._locks[name]:
                    arrays[name] += scratch[name]

        futures = []
        for rp in self.region_plans:
            for task in rp.tasks:
                futures.append(pool.submit(run_task, rp.region, task))
        done, _ = wait(futures)
        for f in done:
            f.result()

    # -- pool lifecycle ----------------------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.config.num_threads)
            # Plans memoised on cached kernels can outlive their users;
            # the finalizer releases the worker threads as soon as the
            # plan itself is collected (e.g. on kernel-cache eviction).
            self._pool_finalizer = weakref.finalize(
                self, self._pool.shutdown, wait=False
            )
        return self._pool

    def close(self) -> None:
        """Shut down the plan's own thread pool (if one was created).

        The pool otherwise lives as long as the plan — which, for plans
        memoised via :meth:`CompiledKernel.plan` on a cached kernel, can
        be the whole process.  Call ``close`` (or use the plan as a
        context manager) when a burst of parallel runs is over; the pool
        is lazily recreated on the next run.  Callers that manage their
        own pool (``ParallelExecutor``) pass it to :meth:`run` and are
        unaffected.
        """
        if self._pool is not None:
            if self._pool_finalizer is not None:
                self._pool_finalizer.detach()
                self._pool_finalizer = None
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ExecutionPlan":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
