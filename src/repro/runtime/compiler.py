"""Kernel compiler: symbolic loop nests -> vectorised NumPy callables.

This is the reproduction's analogue of the paper's ``icc -O3 -fopenmp``
step: every :class:`~repro.core.loopnest.LoopNest` (primal stencil, adjoint
core/boundary nests, or conventional scatter adjoints) is lowered to a
:class:`RegionKernel` that executes the nest's statements as NumPy slice
arithmetic.  The evaluation frame of a kernel is the loop-nest iteration
space (one array axis per counter, outermost first); each array access
becomes a view aligned to that frame, so a statement evaluates in a single
vectorised expression per region — the Python idiom for a stencil loop.

``RegionKernel.execute`` accepts an optional sub-box of the region's
iteration space, which is how the shared-memory parallel executor
(:mod:`repro.runtime.parallel`) assigns disjoint blocks to threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np
import sympy as sp
from sympy.core.function import AppliedUndef

from ..codegen.base import match_derivative_call
from ..core.accesses import classify_applied, extract_access
from ..core.loopnest import LoopNest, Statement
from ..errors import KernelError
from .bindings import Bindings

__all__ = [
    "CompiledAccess",
    "CompiledStatement",
    "RegionKernel",
    "CompiledKernel",
    "compile_nests",
    "assert_disjoint_writes",
    "KernelError",
]

# KernelError used to be defined here; it now lives in repro.errors as
# part of the typed hierarchy (ReproError -> KernelError) and stays
# re-exported via __all__.  It still subclasses RuntimeError, so every
# pre-existing `except` clause keeps working.


_NUMPY_FALLBACKS = {
    # Paper semantics for the upwinding derivative: H(0) = 1 (Figure 7's
    # ``(u >= 0) ? 1.0 : 0.0``).  SymPy's own Heaviside(0) default is 1/2.
    "Heaviside": lambda x, h=None: np.where(np.asarray(x) >= 0, 1.0, 0.0),
    "DiracDelta": lambda x: np.zeros_like(np.asarray(x, dtype=float)),
}


@dataclass(frozen=True)
class CompiledAccess:
    """An array access bound to frame axes: one ``(axis, offset)`` per slot."""

    name: str
    slots: tuple[tuple[int, int], ...]  # (frame axis, constant offset)


@dataclass
class CompiledStatement:
    """One statement of a region, ready to execute on NumPy arrays."""

    target: CompiledAccess
    op: str
    eval_fn: Callable
    reads: tuple[CompiledAccess, ...]
    bare_axes: tuple[int, ...]
    guard_box: tuple[tuple[int, int], ...] | None  # per frame axis, or None
    dim: int
    # Placeholder-substituted RHS the eval_fn was lambdified from; the
    # bound-execution layer (:mod:`repro.runtime.bound`) inspects it to
    # decide whether the statement can run through in-place ufunc slots.
    rhs_expr: sp.Expr | None = None
    # Lazily filled by repro.runtime.bound (memoised eligibility check).
    inplace_ok: bool | None = None
    # Lazily filled by repro.runtime.ensemble: True when the expression
    # evaluates strictly elementwise, so stacking a member axis onto the
    # operands cannot change any per-member result bit.
    batch_safe: bool | None = None


def _frame_view(
    arr: np.ndarray, acc: CompiledAccess, bounds: Sequence[tuple[int, int]], dim: int
) -> np.ndarray:
    """Slice *arr* for *acc* and align the axes to the iteration frame.

    Returns a view shaped so that axis ``d`` of the result corresponds to
    frame axis ``d`` where the access uses it, with length-1 axes inserted
    for frame axes the access does not use (so the view broadcasts inside
    the frame).  Raises on out-of-bounds slices (NumPy would silently wrap
    negative starts, which must never happen in a stencil kernel).
    """
    slices = []
    for slot, (axis, off) in enumerate(acc.slots):
        lo, hi = bounds[axis]
        start, stop = lo + off, hi + 1 + off
        if start < 0 or stop > arr.shape[slot]:
            raise KernelError(
                f"access {acc.name}{acc.slots} out of bounds: slot {slot} "
                f"range [{start}, {stop}) exceeds extent {arr.shape[slot]}"
            )
        slices.append(slice(start, stop))
    view = arr[tuple(slices)]
    axes = [axis for axis, _ in acc.slots]
    order = sorted(range(len(axes)), key=lambda s: axes[s])
    if order != list(range(len(axes))):
        view = np.moveaxis(view, order, range(len(axes)))
    present = sorted(axes)
    if len(present) < dim:
        shape_iter = iter(view.shape)
        new_shape = tuple(
            next(shape_iter) if d in present else 1 for d in range(dim)
        )
        view = view.reshape(new_shape)
    return view


def _target_view_and_missing(
    arr: np.ndarray, acc: CompiledAccess, bounds: Sequence[tuple[int, int]], dim: int
) -> tuple[np.ndarray, tuple[int, ...]]:
    """Like :func:`_frame_view` but for write targets.

    Does not insert broadcast axes; instead returns the frame axes missing
    from the target, which the caller must reduce over (sum for ``+=``,
    last-iteration selection for ``=``).
    """
    slices = []
    for slot, (axis, off) in enumerate(acc.slots):
        lo, hi = bounds[axis]
        start, stop = lo + off, hi + 1 + off
        if start < 0 or stop > arr.shape[slot]:
            raise KernelError(
                f"write access {acc.name}{acc.slots} out of bounds: slot "
                f"{slot} range [{start}, {stop}) exceeds extent {arr.shape[slot]}"
            )
        slices.append(slice(start, stop))
    view = arr[tuple(slices)]
    axes = [axis for axis, _ in acc.slots]
    order = sorted(range(len(axes)), key=lambda s: axes[s])
    if order != list(range(len(axes))):
        view = np.moveaxis(view, order, range(len(axes)))
    missing = tuple(d for d in range(dim) if d not in axes)
    return view, missing


def _rewrite_derivative_calls(expr: sp.Expr) -> sp.Expr:
    """Replace Derivative/Subs of uninterpreted functions with named calls.

    ``Subs(Derivative(f(x, b), x), x, a)`` becomes ``f_d1(a, b)``, matching
    the call convention of the code generators, so user-supplied derivative
    implementations bind by name.
    """
    replacements = {}
    for node in expr.atoms(sp.Subs) | expr.atoms(sp.Derivative):
        call = match_derivative_call(node)
        if call is not None:
            fn = sp.Function(f"{call.func_name}_d{call.argindex}")
            replacements[node] = fn(*call.args)
    return expr.xreplace(replacements) if replacements else expr


def _compile_statement(
    stmt: Statement,
    counters: Sequence[sp.Symbol],
    bindings: Bindings,
) -> CompiledStatement:
    dim = len(counters)
    axis_of = {c: d for d, c in enumerate(counters)}

    lhs_pat = extract_access(stmt.lhs, counters)
    target = CompiledAccess(
        name=lhs_pat.name,
        slots=tuple(
            (axis_of[c], o) for c, o in zip(lhs_pat.counters, lhs_pat.offsets)
        ),
    )

    rhs = bindings.substitute(_rewrite_derivative_calls(stmt.rhs))
    accesses, _calls = classify_applied(rhs, counters)
    placeholders: list[sp.Symbol] = []
    reads: list[CompiledAccess] = []
    repl: dict[AppliedUndef, sp.Symbol] = {}
    for idx, acc in enumerate(accesses):
        ph = sp.Symbol(f"__acc{idx}")
        pat = extract_access(acc, counters)
        reads.append(
            CompiledAccess(
                name=pat.name,
                slots=tuple(
                    (axis_of[c], o) for c, o in zip(pat.counters, pat.offsets)
                ),
            )
        )
        placeholders.append(ph)
        repl[acc] = ph
    rhs_sub = rhs.xreplace(repl)

    bare = sorted(
        (s for s in rhs_sub.free_symbols if s in axis_of), key=lambda s: axis_of[s]
    )
    bare_axes = tuple(axis_of[s] for s in bare)

    leftover = rhs_sub.free_symbols - set(placeholders) - set(bare)
    if leftover:
        raise KernelError(
            f"unbound symbols {sorted(leftover, key=str)} in statement "
            f"{stmt}; bind them via Bindings.params/sizes"
        )

    modules = [dict(_NUMPY_FALLBACKS), dict(bindings.functions), "numpy"]
    # cse=True shares repeated subexpressions inside the generated code.
    # Sharing an identical subexpression is bitwise-neutral (the same ops
    # on the same operands run once instead of twice), and the bound
    # execution layer relies on the op-site sequence being fixed per call.
    eval_fn = sp.lambdify(placeholders + bare, rhs_sub, modules=modules, cse=True)

    guard_box = None
    if stmt.guard is not None:
        guard_box = _concrete_guard_box(stmt.guard, counters, bindings)

    return CompiledStatement(
        target=target,
        op=stmt.op,
        eval_fn=eval_fn,
        reads=tuple(reads),
        bare_axes=bare_axes,
        guard_box=guard_box,
        dim=dim,
        rhs_expr=rhs_sub,
    )


def _normalise_guard_cond(
    cond: sp.Basic, counters: Sequence[sp.Symbol], bindings: Bindings
) -> tuple[sp.Symbol, str, int] | None:
    """Reduce one relational guard to ``(counter, "lo"|"hi", bound)``.

    Accepts the full inequality language the pointwise interpreter
    evaluates: non-strict and strict comparisons, with the counter on
    either side.  Strict forms are normalised to inclusive integer bounds
    (``i > a`` -> ``i >= a + 1``); mirrored forms are flipped
    (``a >= i`` -> ``i <= a``).  Returns None for unsupported shapes.
    """
    if not isinstance(cond, (sp.Ge, sp.Gt, sp.Le, sp.Lt)):
        return None
    if cond.lhs in counters and not cond.rhs.free_symbols & set(counters):
        c, bound = cond.lhs, bindings.int_bound(cond.rhs)
        if isinstance(cond, sp.Ge):
            return c, "lo", bound
        if isinstance(cond, sp.Gt):
            return c, "lo", bound + 1
        if isinstance(cond, sp.Le):
            return c, "hi", bound
        return c, "hi", bound - 1
    if cond.rhs in counters and not cond.lhs.free_symbols & set(counters):
        c, bound = cond.rhs, bindings.int_bound(cond.lhs)
        if isinstance(cond, sp.Ge):  # a >= i  <=>  i <= a
            return c, "hi", bound
        if isinstance(cond, sp.Gt):  # a > i  <=>  i <= a - 1
            return c, "hi", bound - 1
        if isinstance(cond, sp.Le):  # a <= i  <=>  i >= a
            return c, "lo", bound
        return c, "lo", bound + 1  # a < i  <=>  i >= a + 1
    return None


def _concrete_guard_box(
    guard: sp.Basic, counters: Sequence[sp.Symbol], bindings: Bindings
) -> tuple[tuple[int, int], ...]:
    """Evaluate a guard condition to a concrete per-axis interval box."""
    conds = list(guard.args) if isinstance(guard, sp.And) else [guard]
    lo = {c: -np.inf for c in counters}
    hi = {c: np.inf for c in counters}
    for cond in conds:
        norm = _normalise_guard_cond(cond, counters, bindings)
        if norm is None:
            raise KernelError(f"unsupported guard condition {cond}")
        c, side, bound = norm
        if side == "lo":
            lo[c] = max(lo[c], bound)
        else:
            hi[c] = min(hi[c], bound)
    box = []
    for c in counters:
        l = int(lo[c]) if np.isfinite(lo[c]) else -(2**62)
        h = int(hi[c]) if np.isfinite(hi[c]) else 2**62
        box.append((l, h))
    return tuple(box)


def _guarded_box(
    bounds: Sequence[tuple[int, int]], st: CompiledStatement
) -> tuple[tuple[int, int], ...] | None:
    """Intersect *bounds* with *st*'s guard box; None when empty.

    The single source of truth for a statement's effective iteration
    box — used per-unit by :meth:`RegionKernel.statement_boxes` and over
    full region bounds by :meth:`RegionKernel.write_boxes` /
    :meth:`RegionKernel.read_boxes` (barrier geometry).
    """
    eff = tuple(bounds)
    if st.guard_box is not None:
        eff = tuple(
            (max(lo, glo), min(hi, ghi))
            for (lo, hi), (glo, ghi) in zip(eff, st.guard_box)
        )
    if any(lo > hi for lo, hi in eff):
        return None
    return eff


@dataclass
class RegionKernel:
    """Executable form of one loop nest (one region of an adjoint)."""

    name: str
    bounds: tuple[tuple[int, int], ...]  # inclusive, per frame axis
    statements: tuple[CompiledStatement, ...]
    dtype: type = np.float64

    @property
    def is_empty(self) -> bool:
        return any(lo > hi for lo, hi in self.bounds)

    def iteration_count(self, bounds: Sequence[tuple[int, int]] | None = None) -> int:
        bounds = self.bounds if bounds is None else bounds
        total = 1
        for lo, hi in bounds:
            total *= max(0, hi - lo + 1)
        return total

    def statement_boxes(
        self, bounds: Sequence[tuple[int, int]] | None = None
    ) -> tuple[tuple[tuple[int, int], ...] | None, ...]:
        """Guard-intersected effective box per statement over *bounds*.

        ``None`` entries mark statements whose guard excludes the whole
        box.  This is the per-execution geometry the
        :class:`~repro.runtime.plan.ExecutionPlan` precomputes once.
        """
        eff_region = self.bounds if bounds is None else tuple(bounds)
        if any(lo > hi for lo, hi in eff_region):
            return tuple(None for _ in self.statements)
        return tuple(_guarded_box(eff_region, st) for st in self.statements)

    def execute(
        self,
        arrays: Mapping[str, np.ndarray],
        bounds: Sequence[tuple[int, int]] | None = None,
    ) -> None:
        """Run the region's statements over ``bounds`` (default: full region).

        ``bounds`` must be a sub-box of the region bounds; this is what the
        parallel executor uses to hand disjoint blocks to threads.
        """
        self.execute_boxes(arrays, self.statement_boxes(bounds))

    def execute_boxes(
        self,
        arrays: Mapping[str, np.ndarray],
        stmt_boxes: Sequence[tuple[tuple[int, int], ...] | None],
    ) -> None:
        """Run the statements over precomputed per-statement boxes.

        ``stmt_boxes`` aligns with ``self.statements`` (see
        :meth:`statement_boxes`); ``None`` entries are skipped.  Execution
        plans call this directly so guard intersection happens once per
        plan instead of once per run.
        """
        for st, eff in zip(self.statements, stmt_boxes):
            if eff is None:
                continue
            self._execute_statement(st, arrays, eff)

    def _execute_statement(
        self,
        st: CompiledStatement,
        arrays: Mapping[str, np.ndarray],
        eff: tuple[tuple[int, int], ...],
    ) -> None:
        args = [
            _frame_view(arrays[acc.name], acc, eff, st.dim) for acc in st.reads
        ]
        for axis in st.bare_axes:
            lo, hi = eff[axis]
            shape = [1] * st.dim
            shape[axis] = -1
            # Counter values enter the expression in the kernel dtype:
            # an int64 arange would silently promote float32 math to
            # float64 mid-expression.
            args.append(np.arange(lo, hi + 1, dtype=self.dtype).reshape(shape))
        rhs = st.eval_fn(*args)
        tview, missing = _target_view_and_missing(
            arrays[st.target.name], st.target, eff, st.dim
        )
        if missing:
            if st.op == "+=":
                rhs = np.asarray(rhs).sum(axis=missing)
            else:
                sel = tuple(
                    -1 if d in missing else slice(None) for d in range(st.dim)
                )
                rhs = np.broadcast_to(
                    np.asarray(rhs), tuple(hi - lo + 1 for lo, hi in eff)
                )[sel]
        rhs = np.asarray(rhs)
        if rhs.dtype != tview.dtype:
            rhs = rhs.astype(tview.dtype)
        if st.op == "+=":
            tview += rhs
        else:
            tview[...] = rhs

    def write_boxes(self) -> list[tuple[str, tuple[tuple[int, int], ...]]]:
        """Concrete index boxes written by each statement (array space)."""
        out = []
        for st in self.statements:
            eff = _guarded_box(self.bounds, st)
            if eff is None:
                continue
            box = tuple(
                (eff[axis][0] + off, eff[axis][1] + off)
                for axis, off in st.target.slots
            )
            out.append((st.target.name, box))
        return out

    def read_boxes(self) -> list[tuple[str, tuple[tuple[int, int], ...]]]:
        """Concrete index boxes read by each statement (array space).

        The counterpart of :meth:`write_boxes`; the execution plan uses
        both to decide where a barrier is required between regions whose
        tasks would otherwise be in flight simultaneously (a region that
        reads what an earlier region writes must wait for it).
        """
        out = []
        for st in self.statements:
            eff = _guarded_box(self.bounds, st)
            if eff is None:
                continue
            for acc in st.reads:
                box = tuple(
                    (eff[axis][0] + off, eff[axis][1] + off)
                    for axis, off in acc.slots
                )
                out.append((acc.name, box))
        return out


@dataclass
class CompiledKernel:
    """A sequence of region kernels implementing a full computation."""

    name: str
    regions: tuple[RegionKernel, ...]
    counters: tuple[sp.Symbol, ...]
    _plans: dict = field(default_factory=dict, repr=False, compare=False)
    # (toolchain, NativeLibrary | None) memo filled by runtime.native.
    _native: tuple | None = field(default=None, repr=False, compare=False)
    # {(toolchain, nthreads): NativeLibrary | None} memo for the
    # OpenMP-threaded library variants (runtime.native, nthreads > 1).
    _native_mt: dict = field(default_factory=dict, repr=False, compare=False)

    def __call__(self, arrays: Mapping[str, np.ndarray]) -> None:
        # Serial execution also goes through the (memoised) plan, so the
        # guard-intersected statement boxes are computed once per kernel
        # rather than once per call.
        self.plan().run(arrays)

    def total_iterations(self) -> int:
        return sum(rk.iteration_count() for rk in self.regions)

    def plan(
        self,
        num_threads: int = 1,
        tile_shape: Sequence[int] | None = None,
        scatter: bool = False,
        min_block_iterations: int = 1024,
        backend: str = "python",
        fusion: str = "auto",
        check: str = "none",
        transactional: bool = False,
        native_threads: int | None = None,
    ) -> "ExecutionPlan":
        """The cached :class:`~repro.runtime.plan.ExecutionPlan` for a config.

        Plans precompute guard boxes, split axes, thread blocks and tiles
        once; repeated calls with an equal configuration return the same
        plan object, so every timestep of a run reuses the decomposition.
        ``backend="native"`` makes bindings of the plan dispatch through
        JIT-built C statement kernels (see :mod:`repro.runtime.native`);
        ``fusion="off"`` pins those bindings to the per-statement path
        instead of fusing dependence-legal statement chains.
        """
        from .plan import ExecutionConfig, ExecutionPlan  # avoids cycle

        config = ExecutionConfig(
            num_threads=num_threads,
            tile_shape=tuple(tile_shape) if tile_shape is not None else None,
            scatter=scatter,
            min_block_iterations=min_block_iterations,
            backend=backend,
            fusion=fusion,
            check=check,
            transactional=transactional,
            native_threads=native_threads,
        )
        plan = self._plans.get(config)
        if plan is None:
            plan = ExecutionPlan.build(self, config)
            self._plans[config] = plan
        return plan


def _compile_nests_uncached(
    nests: Sequence[LoopNest],
    bindings: Bindings,
    name: str,
    counters: tuple[sp.Symbol, ...],
) -> CompiledKernel:
    regions = []
    for nest in nests:
        bounds = tuple(
            (bindings.int_bound(nest.bounds[c][0]), bindings.int_bound(nest.bounds[c][1]))
            for c in counters
        )
        stmts = tuple(
            _compile_statement(st, counters, bindings) for st in nest.statements
        )
        regions.append(
            RegionKernel(
                name=nest.name or name,
                bounds=bounds,
                statements=stmts,
                dtype=bindings.dtype,
            )
        )
    return CompiledKernel(name=name, regions=tuple(regions), counters=counters)


def compile_nests(
    nests: Sequence[LoopNest],
    bindings: Bindings,
    name: str = "kernel",
    cache: "KernelCache | bool | None" = None,
) -> CompiledKernel:
    """Compile loop nests sharing one counter frame into a kernel.

    Compilation (SymPy printing + ``exec`` via ``lambdify``) dominates
    small-kernel run time, so results are memoised in a content-addressed
    cache: calling again with structurally equal nests, equal bindings and
    the same name returns the identical :class:`CompiledKernel` object.

    ``cache`` selects the cache: ``None`` (default) uses the process-wide
    cache, a :class:`~repro.runtime.cache.KernelCache` instance uses that
    cache, and ``False`` bypasses caching entirely.
    """
    nests = list(nests)
    if not nests:
        raise KernelError("no loop nests to compile")
    counters = nests[0].counters
    for nest in nests:
        if nest.counters != counters:
            raise KernelError("all nests of a kernel must share their counters")
    if cache is False:
        return _compile_nests_uncached(nests, bindings, name, counters)
    from .cache import get_kernel_cache, kernel_key  # avoids import cycle

    store = get_kernel_cache() if cache is None or cache is True else cache
    key = kernel_key(nests, bindings, name=name)
    return store.get_or_compile(
        key, lambda: _compile_nests_uncached(nests, bindings, name, counters)
    )


def _boxes_overlap(
    a: tuple[tuple[int, int], ...], b: tuple[tuple[int, int], ...]
) -> bool:
    return all(alo <= bhi and blo <= ahi for (alo, ahi), (blo, bhi) in zip(a, b))


def assert_disjoint_writes(kernel: CompiledKernel) -> None:
    """Verify that no two *regions* write overlapping index boxes.

    This is the property that lets the adjoint stencil run without any
    synchronisation between region loop nests (Section 3.3.4).  Violations
    indicate a grid too small for the disjoint split (each dimension must
    be at least as wide as the stencil's offset spread) or a transformation
    bug.  Raises :class:`KernelError` on overlap.
    """
    per_region: list[list[tuple[str, tuple[tuple[int, int], ...]]]] = [
        rk.write_boxes() if not rk.is_empty else [] for rk in kernel.regions
    ]
    for ia in range(len(per_region)):
        for ib in range(ia + 1, len(per_region)):
            for name_a, box_a in per_region[ia]:
                for name_b, box_b in per_region[ib]:
                    if name_a == name_b and _boxes_overlap(box_a, box_b):
                        raise KernelError(
                            f"regions {kernel.regions[ia].name!r} and "
                            f"{kernel.regions[ib].name!r} both write "
                            f"{name_a} on overlapping boxes {box_a} / {box_b}"
                        )
