"""Static block scheduling of iteration boxes over threads.

Mirrors OpenMP's static schedule: the outermost parallelisable axis of a
region is divided into near-equal contiguous chunks, one per thread.  The
chunks partition the box, so for gather kernels (distinct write indices
per iteration) chunk execution is race-free — the property that makes the
PerforAD adjoint parallelisable "in the same way as the primal".
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["split_box", "choose_split_axis", "safe_split_axis"]

Box = tuple[tuple[int, int], ...]


def safe_split_axis(region) -> int | None:
    """Widest axis indexed by *every* statement's write target of *region*.

    Splitting along an axis a target does not use would make two blocks
    write the same reduced locations — a race.  Returns None when no axis
    is safe (pure-reduction region), in which case the region runs
    serially.  *region* is a :class:`~repro.runtime.compiler.RegionKernel`
    (typed loosely to keep this module free of compiler imports).
    """
    common: set[int] | None = None
    for st in region.statements:
        axes = {axis for axis, _ in st.target.slots}
        common = axes if common is None else (common & axes)
    if not common:
        return None
    extents = {a: region.bounds[a][1] - region.bounds[a][0] + 1 for a in common}
    return max(sorted(common), key=lambda a: extents[a])


def choose_split_axis(bounds: Box) -> int:
    """Pick the axis with the largest extent (ties -> outermost)."""
    extents = [hi - lo + 1 for lo, hi in bounds]
    best = max(extents)
    return extents.index(best)


def split_box(bounds: Box, nblocks: int, axis: int | None = None) -> list[Box]:
    """Partition an inclusive box into up to *nblocks* disjoint sub-boxes.

    The split is along *axis* (default: the widest).  Returns fewer blocks
    when the axis extent is smaller than ``nblocks``.  Empty input boxes
    yield an empty list.
    """
    if any(lo > hi for lo, hi in bounds):
        return []
    if nblocks <= 1:
        return [tuple(bounds)]
    if axis is None:
        axis = choose_split_axis(bounds)
    lo, hi = bounds[axis]
    extent = hi - lo + 1
    nblocks = min(nblocks, extent)
    base, rem = divmod(extent, nblocks)
    out: list[Box] = []
    start = lo
    for b in range(nblocks):
        size = base + (1 if b < rem else 0)
        stop = start + size - 1
        block = tuple(
            (start, stop) if d == axis else bd for d, bd in enumerate(bounds)
        )
        out.append(block)
        start = stop + 1
    return out
