"""Scheduling: static box splitting and a work-stealing task scheduler.

Two schedulers live here, one per parallelism axis of the runtime:

* :func:`split_box` / :func:`safe_split_axis` mirror OpenMP's static
  schedule — the outermost parallelisable axis of a region is divided
  into near-equal contiguous chunks, one per thread.  The chunks
  partition the box, so for gather kernels (distinct write indices per
  iteration) chunk execution is race-free — the property that makes the
  PerforAD adjoint parallelisable "in the same way as the primal".
* :class:`WorkStealingScheduler` drives *independent* runnables (the
  member chunks of an :class:`~repro.runtime.ensemble.EnsemblePlan`)
  over a fixed set of persistent worker threads.  Each worker owns a
  deque seeded round-robin; owners pop from the front, idle workers
  steal from the back of the fullest other deque, so an unlucky worker
  whose chunks run long does not serialise the whole step.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Sequence

from ..errors import ReproError, SchedulerError
from . import faults

__all__ = [
    "split_box",
    "choose_split_axis",
    "safe_split_axis",
    "WorkStealingScheduler",
]

Box = tuple[tuple[int, int], ...]


def safe_split_axis(region) -> int | None:
    """Widest axis indexed by *every* statement's write target of *region*.

    Splitting along an axis a target does not use would make two blocks
    write the same reduced locations — a race.  Returns None when no axis
    is safe (pure-reduction region), in which case the region runs
    serially.  *region* is a :class:`~repro.runtime.compiler.RegionKernel`
    (typed loosely to keep this module free of compiler imports).
    """
    common: set[int] | None = None
    for st in region.statements:
        axes = {axis for axis, _ in st.target.slots}
        common = axes if common is None else (common & axes)
    if not common:
        return None
    extents = {a: region.bounds[a][1] - region.bounds[a][0] + 1 for a in common}
    return max(sorted(common), key=lambda a: extents[a])


def choose_split_axis(bounds: Box) -> int:
    """Pick the axis with the largest extent (ties -> outermost)."""
    extents = [hi - lo + 1 for lo, hi in bounds]
    best = max(extents)
    return extents.index(best)


class WorkStealingScheduler:
    """Persistent worker threads running independent tasks with stealing.

    Tasks are argument-less callables with no ordering constraints among
    them (ensemble member chunks: every chunk touches disjoint member
    slices).  :meth:`run` distributes them round-robin over per-worker
    deques and blocks until all have finished; workers that drain their
    own deque steal from the back of the fullest other deque.  The
    workers are created once and reused across calls, so a steady-state
    caller (one :meth:`run` per ensemble timestep) pays no thread
    creation per step.

    The scheduler is *not* reentrant: one :meth:`run` call at a time.
    The first task exception is re-raised in the caller after the batch
    drains.  Tasks already *running* on other workers complete (they
    cannot be interrupted mid-flight), but queued-but-unstarted tasks
    are **cancelled**: once a failure is recorded, the next dequeue
    drains every deque, so a poisoned batch fails fast instead of
    burning a full batch of work whose results the caller will discard.
    :attr:`last_cancelled` reports how many tasks the previous
    :meth:`run` abandoned.

    Example — four tasks over two workers:

    >>> from repro.runtime.scheduler import WorkStealingScheduler
    >>> hits = []
    >>> with WorkStealingScheduler(2) as sched:
    ...     sched.run([lambda i=i: hits.append(i) for i in range(4)])
    >>> sorted(hits)
    [0, 1, 2, 3]
    """

    def __init__(self, num_workers: int):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self._queues: list[deque] = [deque() for _ in range(num_workers)]
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._generation = 0
        self._pending = 0
        self._failure: BaseException | None = None
        self._cancelled = 0
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(w,),
                name=f"repro-steal-{w}",
                daemon=True,
            )
            for w in range(num_workers)
        ]
        for t in self._threads:
            t.start()

    # -- worker side -------------------------------------------------------

    def _take(self, worker: int):
        """Pop the worker's next task, stealing when its deque is empty.

        Owners take from the front of their own deque (cache-friendly
        seeding order); thieves take from the *back* of the fullest
        victim, the classic split that keeps owner and thief off the
        same end.

        Caller MUST hold the lock (both call sites do): the victim
        length snapshot below is only consistent under it — two thieves
        scanning concurrently could both pick the same near-empty
        victim and race a double-pop, and the cancellation bookkeeping
        (``_cancelled``/``_pending``) must move atomically with the
        deque drain.
        """
        if self._failure is not None:
            # First failure already recorded: cancel everything not yet
            # started.  The caller re-raises that failure and discards
            # the batch's results, so running the remaining tasks would
            # only burn time (and possibly cascade the same error).
            dropped = sum(len(q) for q in self._queues)
            if dropped:
                for q in self._queues:
                    q.clear()
                self._cancelled += dropped
                self._pending -= dropped
                if self._pending == 0:
                    self._idle.notify_all()
            return None
        own = self._queues[worker]
        if own:
            return own.popleft()
        # Explicit length snapshot, taken while the lock is held, so the
        # fullest-victim choice and the pop see the same queue state.
        lengths = [len(q) for q in self._queues]
        victim = self._queues[max(range(len(lengths)), key=lengths.__getitem__)]
        if victim:
            return victim.pop()
        return None

    def _worker_loop(self, worker: int) -> None:
        seen_generation = 0
        while True:
            with self._work:
                while self._generation == seen_generation and not self._closed:
                    self._work.wait()
                if self._closed:
                    return
                seen_generation = self._generation
            while True:
                with self._lock:
                    task = self._take(worker)
                if task is None:
                    break
                try:
                    faults.check("scheduler.task")
                    task()
                except BaseException as exc:  # noqa: BLE001 - re-raised in run()
                    with self._lock:
                        if self._failure is None:
                            self._failure = exc
                finally:
                    with self._lock:
                        self._pending -= 1
                        if self._pending == 0:
                            self._idle.notify_all()

    # -- caller side -------------------------------------------------------

    @property
    def last_cancelled(self) -> int:
        """Tasks the previous :meth:`run` cancelled after its first failure."""
        with self._lock:
            return self._cancelled

    def run(self, tasks: Sequence[Callable[[], None]]) -> None:
        """Execute *tasks*; re-raise the first failure, cancelling the rest.

        On a clean batch every task runs.  When a task raises, its
        exception propagates here after in-flight tasks drain, and
        tasks still queued at that moment are dropped unrun (see the
        class docstring; the count is exposed as :attr:`last_cancelled`).
        A failure that is not already a typed
        :class:`~repro.errors.ReproError` is wrapped in
        :class:`~repro.errors.SchedulerError` (itself a
        ``RuntimeError``) recording the cancellation count; typed
        errors — a member's :class:`~repro.errors.NumericalDivergenceError`,
        say — and ``BaseException``s like ``KeyboardInterrupt`` pass
        through unchanged.
        """
        tasks = list(tasks)
        if not tasks:
            return
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            if self._pending:
                raise RuntimeError("scheduler already running a batch")
            self._failure = None
            self._cancelled = 0
            for idx, task in enumerate(tasks):
                self._queues[idx % self.num_workers].append(task)
            self._pending = len(tasks)
            self._generation += 1
            self._work.notify_all()
            while self._pending:
                self._idle.wait()
            failure = self._failure
            self._failure = None
            cancelled = self._cancelled
        if failure is not None:
            if isinstance(failure, ReproError) or not isinstance(
                failure, Exception
            ):
                raise failure
            raise SchedulerError(
                f"worker task failed ({cancelled} queued task(s) "
                f"cancelled): {failure}"
            ) from failure

    def close(self) -> None:
        """Shut the worker threads down (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._work.notify_all()
        for t in self._threads:
            t.join()

    def __enter__(self) -> "WorkStealingScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def split_box(bounds: Box, nblocks: int, axis: int | None = None) -> list[Box]:
    """Partition an inclusive box into up to *nblocks* disjoint sub-boxes.

    The split is along *axis* (default: the widest).  Returns fewer blocks
    when the axis extent is smaller than ``nblocks``.  Empty input boxes
    yield an empty list.
    """
    if any(lo > hi for lo, hi in bounds):
        return []
    if nblocks <= 1:
        return [tuple(bounds)]
    if axis is None:
        axis = choose_split_axis(bounds)
    lo, hi = bounds[axis]
    extent = hi - lo + 1
    nblocks = min(nblocks, extent)
    base, rem = divmod(extent, nblocks)
    out: list[Box] = []
    start = lo
    for b in range(nblocks):
        size = base + (1 if b < rem else 0)
        stop = start + size - 1
        block = tuple(
            (start, stop) if d == axis else bd for d, bd in enumerate(bounds)
        )
        out.append(block)
        start = stop + 1
    return out
