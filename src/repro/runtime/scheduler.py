"""Static block scheduling of iteration boxes over threads.

Mirrors OpenMP's static schedule: the outermost parallelisable axis of a
region is divided into near-equal contiguous chunks, one per thread.  The
chunks partition the box, so for gather kernels (distinct write indices
per iteration) chunk execution is race-free — the property that makes the
PerforAD adjoint parallelisable "in the same way as the primal".
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["split_box", "choose_split_axis"]

Box = tuple[tuple[int, int], ...]


def choose_split_axis(bounds: Box) -> int:
    """Pick the axis with the largest extent (ties -> outermost)."""
    extents = [hi - lo + 1 for lo, hi in bounds]
    best = max(extents)
    return extents.index(best)


def split_box(bounds: Box, nblocks: int, axis: int | None = None) -> list[Box]:
    """Partition an inclusive box into up to *nblocks* disjoint sub-boxes.

    The split is along *axis* (default: the widest).  Returns fewer blocks
    when the axis extent is smaller than ``nblocks``.  Empty input boxes
    yield an empty list.
    """
    if any(lo > hi for lo, hi in bounds):
        return []
    if nblocks <= 1:
        return [tuple(bounds)]
    if axis is None:
        axis = choose_split_axis(bounds)
    lo, hi = bounds[axis]
    extent = hi - lo + 1
    nblocks = min(nblocks, extent)
    base, rem = divmod(extent, nblocks)
    out: list[Box] = []
    start = lo
    for b in range(nblocks):
        size = base + (1 if b < rem else 0)
        stop = start + size - 1
        block = tuple(
            (start, stop) if d == axis else bd for d, bd in enumerate(bounds)
        )
        out.append(block)
        start = stop + 1
    return out
