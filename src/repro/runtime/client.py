"""Client for the kernel-as-a-service daemon (:mod:`repro.runtime.server`).

A :class:`KernelClient` holds one persistent Unix-domain connection and
speaks the length-prefixed JSON protocol.  State arrays at or above
``shm_threshold`` bytes travel zero-copy through
``multiprocessing.shared_memory`` segments the client creates (and
always unlinks — the client owns segment lifecycle end to end); smaller
arrays spill to inline base64, which is bitwise-exact, unlike printing
floats through JSON.

Error responses are re-raised as the matching typed
:class:`~repro.errors.ReproError` subclass, so remote failures are
caught exactly like local ones; transport failures become
:class:`~repro.errors.ServeError`.  A connection dropped before any
response (e.g. the chaos suite firing ``server.accept``) is retried
transparently — but only for requests without shared-memory state,
whose re-run is trivially idempotent because the server only ever
mutated private copies.

>>> from repro.runtime.client import KernelClient
>>> KernelClient("/tmp/no-such.sock").ping()   # doctest: +IGNORE_EXCEPTION_DETAIL
Traceback (most recent call last):
ServeError: ...
"""

from __future__ import annotations

import socket
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Mapping

import numpy as np

from ..errors import (
    CheckpointError,
    EnsembleBindError,
    KernelError,
    NativeBuildError,
    NumericalDivergenceError,
    SchedulerError,
    ServeError,
    ValidationError,
)
from .server import encode_array, recv_frame, send_frame

__all__ = ["KernelClient", "ServeResult"]

#: Remote error-type names mapped back onto the local typed hierarchy.
_ERROR_TYPES = {
    "ValidationError": ValidationError,
    "ParseError": ValidationError,
    "LexError": ValidationError,
    "StencilRestrictionError": ValidationError,
    "KernelError": KernelError,
    "NativeBuildError": NativeBuildError,
    "EnsembleBindError": EnsembleBindError,
    "SchedulerError": SchedulerError,
    "CheckpointError": CheckpointError,
    "NumericalDivergenceError": NumericalDivergenceError,
    "ServeError": ServeError,
}


@dataclass(frozen=True)
class ServeResult:
    """One served run: fresh result arrays plus batching evidence."""

    state: dict[str, np.ndarray]
    kernel_id: str
    batched: bool
    batch_size: int
    steps: int


class KernelClient:
    """One connection to a :class:`~repro.runtime.server.KernelServer`.

    Parameters
    ----------
    socket_path:
        The daemon's Unix-domain socket.
    shm_threshold:
        Arrays of at least this many bytes ship via shared memory;
        ``None`` forces the inline path.
    timeout:
        Socket timeout per protocol exchange, seconds.
    retries:
        Reconnect attempts after a connection dropped before any
        response bytes (shared-memory requests are never retried).
    """

    def __init__(
        self,
        socket_path: str,
        *,
        shm_threshold: int | None = 1 << 15,
        timeout: float = 300.0,
        retries: int = 1,
    ) -> None:
        self.socket_path = str(socket_path)
        self.shm_threshold = shm_threshold
        self.timeout = timeout
        self.retries = max(0, retries)
        self._sock: socket.socket | None = None

    # -- connection management ----------------------------------------------

    def _connect(self) -> socket.socket:
        if self._sock is None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            try:
                sock.connect(self.socket_path)
            except OSError as exc:
                sock.close()
                raise ServeError(
                    f"cannot reach kernel server at {self.socket_path}: {exc}"
                ) from exc
            self._sock = sock
        return self._sock

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
            self._sock = None

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "KernelClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _request(self, payload: Mapping, *, allow_retry: bool = True) -> dict:
        attempts = (self.retries if allow_retry else 0) + 1
        last: BaseException | None = None
        for _ in range(attempts):
            try:
                sock = self._connect()
                send_frame(sock, payload)
                resp = recv_frame(sock)
                if resp is None:
                    raise ServeError(
                        "server closed the connection before responding"
                    )
                return resp
            except (ServeError, OSError) as exc:
                last = exc
                self._drop_connection()
        raise ServeError(
            f"request to {self.socket_path} failed after "
            f"{attempts} attempt(s): {last}"
        ) from last

    @staticmethod
    def _raise_remote(resp: dict) -> None:
        exc_type = _ERROR_TYPES.get(resp.get("error", ""), ServeError)
        raise exc_type(resp.get("message", "server reported an error"))

    # -- protocol operations -------------------------------------------------

    def ping(self) -> bool:
        resp = self._request({"op": "ping"})
        if resp.get("status") != "ok":
            self._raise_remote(resp)
        return True

    def stats(self) -> dict:
        resp = self._request({"op": "stats"})
        if resp.get("status") != "ok":
            self._raise_remote(resp)
        return resp["stats"]

    def compile(
        self,
        spec: str,
        *,
        sizes: Mapping | None = None,
        params: Mapping | None = None,
        dtype: str = "f64",
    ) -> str:
        """Register *spec* server-side; returns its content-addressed id."""
        resp = self._request(
            {
                "op": "compile",
                "spec": spec,
                "sizes": _plain(sizes),
                "params": _plain(params),
                "dtype": dtype,
            }
        )
        if resp.get("status") != "ok":
            self._raise_remote(resp)
        return resp["kernel_id"]

    def shutdown(self) -> None:
        """Ask the daemon to stop accepting and wind down."""
        resp = self._request({"op": "shutdown"}, allow_retry=False)
        if resp.get("status") != "ok":
            self._raise_remote(resp)
        self._drop_connection()

    def run(
        self,
        spec: str | None = None,
        *,
        kernel_id: str | None = None,
        state: Mapping[str, np.ndarray],
        sizes: Mapping | None = None,
        params: Mapping | None = None,
        dtype: str = "f64",
        steps: int = 1,
        backend: str = "python",
    ) -> ServeResult:
        """Run one kernel application (``steps`` times) on *state*.

        The caller's arrays are never written; the result comes back as
        fresh arrays in :attr:`ServeResult.state`.
        """
        if spec is None and kernel_id is None:
            raise ValidationError("run() needs a spec or a kernel_id")
        segments: list[shared_memory.SharedMemory] = []
        try:
            enc_state: dict[str, dict] = {}
            for name, arr in state.items():
                arr = np.ascontiguousarray(arr)
                if (
                    self.shm_threshold is not None
                    and 0 < self.shm_threshold <= arr.nbytes
                ):
                    seg = shared_memory.SharedMemory(
                        create=True, size=arr.nbytes
                    )
                    np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)[
                        ...
                    ] = arr
                    segments.append(seg)
                    enc_state[name] = {
                        "shape": list(arr.shape),
                        "dtype": arr.dtype.str,
                        "shm": seg.name,
                    }
                else:
                    enc_state[name] = encode_array(arr)
            payload: dict = {
                "op": "run",
                "steps": steps,
                "backend": backend,
                "state": enc_state,
            }
            if spec is not None:
                payload["spec"] = spec
                payload["sizes"] = _plain(sizes)
                payload["params"] = _plain(params)
                payload["dtype"] = dtype
            else:
                payload["kernel_id"] = kernel_id
            resp = self._request(payload, allow_retry=not segments)
            if resp.get("status") != "ok":
                self._raise_remote(resp)
            by_name = {seg.name: seg for seg in segments}
            out: dict[str, np.ndarray] = {}
            for name, meta in resp.get("state", {}).items():
                shape = tuple(int(s) for s in meta["shape"])
                dt = np.dtype(str(meta["dtype"]))
                if "shm" in meta:
                    seg = by_name.get(meta["shm"])
                    if seg is None:
                        raise ServeError(
                            f"response references unknown segment "
                            f"{meta['shm']!r}"
                        )
                    out[name] = np.ndarray(
                        shape, dtype=dt, buffer=seg.buf
                    ).copy()
                else:
                    raw = _decode_wire(meta, name)
                    out[name] = raw
            return ServeResult(
                state=out,
                kernel_id=resp.get("kernel_id", ""),
                batched=bool(resp.get("batched", False)),
                batch_size=int(resp.get("batch_size", 1)),
                steps=steps,
            )
        finally:
            for seg in segments:
                try:
                    seg.close()
                except BufferError:  # pragma: no cover
                    pass
                try:
                    seg.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass


def _plain(mapping: Mapping | None) -> dict:
    return {str(k): v for k, v in (mapping or {}).items()}


def _decode_wire(meta: Mapping, name: str) -> np.ndarray:
    import base64

    try:
        shape = tuple(int(s) for s in meta["shape"])
        dt = np.dtype(str(meta["dtype"]))
        raw = base64.b64decode(meta["data"], validate=True)
    except Exception as exc:
        raise ServeError(
            f"response array {name!r} is undecodable: {exc}"
        ) from exc
    return np.frombuffer(raw, dtype=dt).reshape(shape).copy()
