"""Checkpointed adjoint time loops over bound execution plans.

The paper reverses one stencil loop and delegates reversal of the
surrounding *time* loop to "a general-purpose AD tool" (Section 3.1).
:mod:`repro.driver` fills that gap generically — revolve schedules plus
an :class:`~repro.driver.timestepping.AdjointTimeStepper` over arbitrary
step callables — but every snapshot and restore there is a fresh
``.copy()``, which contradicts the allocation-free steady-state contract
the plan/bind runtime establishes.  This module is the runtime-native
integration: the revolve schedule becomes *data* executed by a layer
that owns all of its buffers, in the PyOP2 style the rest of the
runtime follows.

* :class:`SnapshotPool` — a preallocated ring of state buffers sized
  from the revolve schedule (``snaps`` slots of the full time-stepping
  state); ``np.copyto`` in and out, zero steady-state allocations.
* :class:`CheckpointedAdjointPlan` — binds a forward plan and a reverse
  (adjoint) plan **once** against a rotating set of state buffers (one
  binding per rotation parity, so every schedule action replays a bound
  ``run()``), then executes the optimal revolve action sequence per
  :meth:`~CheckpointedAdjointPlan.adjoint` call.  Memory is O(snaps)
  instead of O(steps); the evaluation count is provably minimal
  (:func:`repro.driver.revolve.optimal_cost`); and the result is
  **bitwise identical** to :meth:`~CheckpointedAdjointPlan.run_store_all`
  by construction, because the reverse sweep consumes exactly the same
  primal states either way.

The state model covers the repository's time-stepping applications: one
output field (``u``) computed from ``h`` earlier time levels
(``history = ("u_1",)`` for heat/Burgers, ``("u_1", "u_2")`` for wave)
plus optional *constant* fields (the wave velocity model ``c``) whose
gradients accumulate across the whole reverse sweep.  A forward step
rotates ``h + 1`` persistent buffers (the :func:`make_stencil_steps`
double-buffering generalised to any history depth); since rotation
only permutes *roles*, each of the ``h + 1`` parities binds the plans
once and every subsequent step of that parity is a pure bound run.

With ``members`` set, the same schedule runs across a leading member
axis through :class:`~repro.runtime.ensemble.EnsemblePlan` bindings:
one revolve action sequence advances and reverses the whole ensemble,
member ``m`` bitwise identical to its single-scenario checkpointed run.

>>> import numpy as np
>>> from repro.apps import heat_problem
>>> prob = heat_problem(1)
>>> plan = prob.checkpointed_adjoint(16, steps=6, snaps=2)
>>> u0 = prob.allocate_state(16, seed=0)["u_1"]
>>> seed = prob.allocate_adjoints(16)["u_b"]
>>> ref = {k: v.copy() for k, v in plan.run_store_all([u0], seed).items()}
>>> out = plan.adjoint([u0], seed)
>>> all(np.array_equal(out[k], ref[k]) for k in ref)
True
>>> plan.forward_steps == plan.evaluation_cost - plan.steps
True
"""

from __future__ import annotations

import weakref
from typing import Mapping, Sequence

import numpy as np

from ..driver.revolve import execute_schedule, schedule, schedule_cost
from ..errors import CheckpointError, ReproError
from . import faults
from .compiler import KernelError

__all__ = [
    "SnapshotPool",
    "CheckpointedAdjointPlan",
    "ShardedCheckpointedAdjoint",
]


class SnapshotPool:
    """A preallocated ring of revolve snapshot buffers.

    ``slots`` snapshots, each holding ``fields`` state arrays of
    ``shape``/``dtype`` (one per history level of the time stepper).
    All memory is allocated here, once; :meth:`store` and :meth:`load`
    are pure ``np.copyto`` calls, so a steady-state revolve sweep
    performs zero snapshot allocations.

    >>> import numpy as np
    >>> pool = SnapshotPool(3, (4, 4), np.float64, fields=2)
    >>> pool.slots, pool.fields, pool.nbytes
    (3, 2, 768)
    >>> state = [np.ones((4, 4)), np.zeros((4, 4))]
    >>> pool.store(1, state)
    >>> out = [np.empty((4, 4)), np.empty((4, 4))]
    >>> pool.load(1, out)
    >>> bool(np.array_equal(out[0], state[0]))
    True
    """

    __slots__ = ("_bufs", "shape", "dtype")

    def __init__(
        self, slots: int, shape: tuple[int, ...], dtype, fields: int = 1
    ) -> None:
        if slots < 1:
            raise ValueError("snapshot pool needs at least one slot")
        if fields < 1:
            raise ValueError("snapshot pool needs at least one field per slot")
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self._bufs = tuple(
            tuple(np.empty(self.shape, dtype=self.dtype) for _ in range(fields))
            for _ in range(slots)
        )

    @property
    def slots(self) -> int:
        return len(self._bufs)

    @property
    def fields(self) -> int:
        return len(self._bufs[0])

    @property
    def nbytes(self) -> int:
        """Total bytes held by the pool (the resident snapshot memory)."""
        return sum(buf.nbytes for slot in self._bufs for buf in slot)

    def store(self, slot: int, state: Sequence[np.ndarray]) -> None:
        """Copy *state* (one array per field) into *slot*.

        A failed copy (the OS refusing to commit the preallocated pages,
        surfacing as ``MemoryError``/``OSError`` under memory pressure)
        raises :class:`~repro.errors.CheckpointError` naming the slot;
        the pool's buffers are still valid and the owning sweep is
        recoverable by its next :meth:`CheckpointedAdjointPlan.adjoint`
        call, which reloads all state from scratch.
        """
        bufs = self._bufs[slot]
        if len(state) != len(bufs):
            raise ValueError(
                f"snapshot needs {len(bufs)} field(s), got {len(state)}"
            )
        try:
            faults.check("checkpoint.snapshot")
            for buf, arr in zip(bufs, state):
                np.copyto(buf, arr)
        except (MemoryError, OSError) as exc:
            raise CheckpointError(
                f"storing snapshot into pool slot {slot} failed: {exc}"
            ) from exc

    def load(self, slot: int, out: Sequence[np.ndarray]) -> None:
        """Copy *slot*'s snapshot into the *out* arrays (one per field)."""
        bufs = self._bufs[slot]
        if len(out) != len(bufs):
            raise ValueError(
                f"snapshot holds {len(bufs)} field(s), got {len(out)} outputs"
            )
        for buf, arr in zip(bufs, out):
            np.copyto(arr, buf)


def _kernel_array_names(plan) -> set[str]:
    """All array names a plan's kernel touches."""
    return {
        name
        for rp in plan.region_plans
        for st in rp.region.statements
        for name in (st.target.name, *(acc.name for acc in st.reads))
    }


class CheckpointedAdjointPlan:
    """A revolve schedule executed entirely through bound plan runs.

    Parameters
    ----------
    forward_plan:
        :class:`~repro.runtime.plan.ExecutionPlan` of the primal kernel:
        writes *output* reading the *history* fields (and *constants*).
    reverse_plan:
        Plan of the adjoint kernel: reads the adjoint of *output* plus
        the saved primal state, accumulates (``+=``) into the adjoints
        of the history fields and constants.
    shape:
        Per-member array shape of every state field.
    steps:
        Time steps to reverse (the primal runs ``steps`` steps).
    snaps:
        Resident snapshot slots; memory is ``snaps`` states instead of
        the ``steps`` states a store-all sweep keeps.
    output, history:
        Field names: the written field and the earlier time levels it
        is computed from, newest first (``("u_1",)`` or
        ``("u_1", "u_2")``).
    constants:
        Name -> array for kernel fields constant in time (e.g. the wave
        velocity model ``c``).  In ensemble mode these carry the member
        axis like everything else.
    adjoint_map:
        Primal name -> adjoint name; defaults to ``name + "_b"``.
    dtype:
        State dtype (reduced-precision sweeps stay reduced end to end).
    members:
        ``None`` for a single scenario; an integer ``m >= 1`` runs one
        schedule across a leading member axis of extent ``m`` via
        :class:`~repro.runtime.ensemble.EnsemblePlan` bindings.
    workers:
        Ensemble worker threads (ignored without *members*).

    The plan preallocates everything at construction: ``h + 1`` rotating
    state buffers bound against both plans once per parity, the reverse
    working set, and a :class:`SnapshotPool` sized ``snaps`` from the
    revolve schedule.  Steady-state :meth:`adjoint` calls (after the
    first, which records the slot tapes) perform **zero array
    allocations** — asserted by ``tests/test_checkpoint_plan.py`` and
    recorded by ``benchmarks/bench_checkpoint.py``.

    The returned mapping holds the plan's persistent result buffers
    (adjoints of the step-0 state in the history-adjoint names, plus
    the constant adjoints); they are overwritten by the next sweep, so
    copy anything that must survive one.
    """

    def __init__(
        self,
        forward_plan,
        reverse_plan,
        shape: tuple[int, ...],
        *,
        steps: int,
        snaps: int,
        output: str = "u",
        history: Sequence[str] = ("u_1",),
        constants: Mapping[str, np.ndarray] | None = None,
        adjoint_map: Mapping[str, str] | None = None,
        dtype=np.float64,
        members: int | None = None,
        workers: int = 1,
    ) -> None:
        if steps < 1:
            raise ValueError("steps must be >= 1")
        if snaps < 1:
            raise ValueError("snaps must be >= 1")
        if members is not None and members < 1:
            raise ValueError("members must be >= 1")
        history = tuple(history)
        if not history:
            raise ValueError("need at least one history field")
        if forward_plan.config.scatter or reverse_plan.config.scatter:
            raise KernelError(
                "checkpointed adjoints do not support scatter plans: the "
                "sweep replays bound runs, and ensembles of scatter plans "
                "are rejected outright; use the gather discipline"
            )
        constants = dict(constants or {})
        adjoint_map = dict(adjoint_map or {})
        adj = lambda name: adjoint_map.get(name, f"{name}_b")  # noqa: E731

        self.steps = steps
        self.snaps = snaps
        self.members = members
        self.output = output
        self.history = history
        self.dtype = np.dtype(dtype)
        shape = tuple(shape)
        full_shape = shape if members is None else (members, *shape)
        self._full_shape = full_shape
        h = len(history)

        # Validate the plans against the state model up front: a missing
        # field would otherwise surface as a bare KeyError from binding.
        fwd_names = _kernel_array_names(forward_plan)
        allowed_fwd = {output, *history, *constants}
        if not fwd_names <= allowed_fwd:
            raise KernelError(
                f"forward kernel touches arrays "
                f"{sorted(fwd_names - allowed_fwd)} outside the time-"
                f"stepping state (output={output!r}, history={history}, "
                f"constants={sorted(constants)})"
            )
        rev_names = _kernel_array_names(reverse_plan)
        # The reverse binding holds the saved history, the constants and
        # the adjoint working set — *not* the primal output, which the
        # repository's adjoint kernels never read (they consume its
        # adjoint instead).  A reverse kernel reading it must fail here,
        # not as a bare KeyError from binding.
        allowed_rev = {*history, *constants, adj(output)} | {
            adj(name) for name in (*history, *constants)
        }
        if not rev_names <= allowed_rev:
            raise KernelError(
                f"reverse kernel touches arrays "
                f"{sorted(rev_names - allowed_rev)} outside the adjoint "
                f"state (allowed: {sorted(allowed_rev)})"
            )
        for name, arr in constants.items():
            if tuple(arr.shape) != full_shape:
                raise ValueError(
                    f"constant {name!r} has shape {arr.shape}, expected "
                    f"{full_shape} (the member axis leads in ensemble mode)"
                )
            if arr.dtype != self.dtype:
                raise ValueError(
                    f"constant {name!r} is {arr.dtype}, expected "
                    f"{self.dtype}: a promoted constant would break the "
                    f"end-to-end reduced-precision contract; cast it first"
                )

        # h + 1 rotating state buffers; buffer q holds the *newest*
        # state component, q-1 the one before, and so on (mod h + 1).
        # A forward step writes the oldest buffer, so rotation is a
        # pointer move, never a copy, and each parity's role assignment
        # is a fixed arrays dict that binds once.
        self._rot = tuple(
            np.zeros(full_shape, dtype=self.dtype) for _ in range(h + 1)
        )
        self._pool = SnapshotPool(snaps, full_shape, self.dtype, fields=h)

        # Reverse working set: the output-adjoint seed buffer and one
        # accumulator per history field, plus the constant adjoints.
        self._seed_buf = np.zeros(full_shape, dtype=self.dtype)
        self._hist_adj = tuple(
            np.zeros(full_shape, dtype=self.dtype) for _ in range(h)
        )
        self._const = constants
        self._const_adj = {
            adj(name): np.zeros(full_shape, dtype=self.dtype)
            for name in sorted(constants)
            if adj(name) in rev_names
        }
        self._result = {
            **{adj(history[k]): self._hist_adj[k] for k in range(h)},
            **self._const_adj,
        }

        # One scheduler serves every parity binding: each schedule
        # action runs exactly one binding at a time, so per-binding
        # worker pools would be 2 * (h + 1) idle thread sets.
        self._scheduler = None
        self._scheduler_finalizer = None
        if members is not None and workers > 1:
            from .scheduler import WorkStealingScheduler

            self._scheduler = WorkStealingScheduler(workers)
            self._scheduler_finalizer = weakref.finalize(
                self, self._scheduler.close
            )

        def bind(plan, arrays):
            if members is None:
                return plan.bind(arrays)
            from .ensemble import EnsemblePlan  # avoids import cycle

            return EnsemblePlan(
                plan, arrays, workers=workers, scheduler=self._scheduler
            )

        # One forward binding per parity p (output lands in buffer p),
        # one reverse binding per live pointer q (newest state in q).
        m = h + 1
        self._fwd = tuple(
            bind(
                forward_plan,
                {
                    output: self._rot[p],
                    **{history[k]: self._rot[(p - 1 - k) % m] for k in range(h)},
                    **constants,
                },
            )
            for p in range(m)
        )
        rev_arrays_base = {
            adj(output): self._seed_buf,
            **{adj(history[k]): self._hist_adj[k] for k in range(h)},
            **constants,
            **self._const_adj,
        }
        self._rev = tuple(
            bind(
                reverse_plan,
                {
                    **rev_arrays_base,
                    **{history[k]: self._rot[(q - k) % m] for k in range(h)},
                },
            )
            for q in range(m)
        )

        self._actions = tuple(schedule(steps, snaps))
        self.evaluation_cost = schedule_cost(list(self._actions))
        self.forward_steps = 0  # actual primal runs of the last sweep
        self._live = 0  # rotation pointer: buffer holding the newest state
        self._fresh_seed = True  # next reverse consumes the seed directly

    # -- queries -----------------------------------------------------------

    @property
    def actions(self) -> tuple:
        """The revolve action sequence executed per :meth:`adjoint` call."""
        return self._actions

    @property
    def snapshot_pool(self) -> SnapshotPool:
        return self._pool

    @property
    def snapshot_bytes(self) -> int:
        """Resident snapshot memory (the checkpointed sweep's state cost)."""
        return self._pool.nbytes

    @property
    def store_all_bytes(self) -> int:
        """State bytes a store-all sweep keeps (``steps`` saved states)."""
        per_state = len(self.history) * int(
            np.prod(self._full_shape, dtype=np.int64)
        ) * self.dtype.itemsize
        return self.steps * per_state

    # -- state plumbing ----------------------------------------------------

    def _live_state(self) -> list[np.ndarray]:
        """The live state's arrays, newest first."""
        m = len(self._rot)
        return [self._rot[(self._live - k) % m] for k in range(len(self.history))]

    def _load_state0(self, state0: Sequence[np.ndarray]) -> None:
        h = len(self.history)
        state0 = list(state0)
        if len(state0) != h:
            raise ValueError(
                f"state0 must hold {h} array(s) (newest first, one per "
                f"history field {self.history}), got {len(state0)}"
            )
        for arr in state0:
            if tuple(np.shape(arr)) != self._full_shape:
                raise ValueError(
                    f"state0 arrays must have shape {self._full_shape}, "
                    f"got {tuple(np.shape(arr))}"
                )
        self._live = 0
        for k, arr in enumerate(state0):
            np.copyto(self._rot[(-k) % len(self._rot)], arr)

    def _advance(self, count: int) -> None:
        m = len(self._rot)
        for _ in range(count):
            p = (self._live + 1) % m
            out = self._rot[p]
            out[...] = 0
            self._fwd[p].run()
            self._live = p
        self.forward_steps += count

    def _begin_reverse(self, seed: np.ndarray) -> None:
        np.copyto(self._seed_buf, seed)
        for buf in self._hist_adj:
            buf[...] = 0
        for buf in self._const_adj.values():
            buf[...] = 0

    def _rotate_adjoint(self) -> None:
        # lambda state for step t from step t+1: the output adjoint is
        # the previous newest history adjoint; each history adjoint
        # accumulator is preloaded with the next-older one (the pure
        # "shift" part of the state adjoint); the oldest starts at 0.
        np.copyto(self._seed_buf, self._hist_adj[0])
        for k in range(len(self._hist_adj) - 1):
            np.copyto(self._hist_adj[k], self._hist_adj[k + 1])
        self._hist_adj[-1][...] = 0

    # -- schedule action handlers (bound once, reused every sweep) ---------

    def _on_snapshot(self, slot: int, step: int) -> None:
        self._pool.store(slot, self._live_state())

    def _on_advance(self, begin: int, end: int) -> None:
        self._advance(end - begin)

    def _on_restore(self, slot: int, step: int) -> None:
        self._pool.load(slot, self._live_state())

    def _on_reverse(self, step: int) -> None:
        # The first reverse of a sweep consumes the caller's seed
        # directly; every later one first shifts the adjoint state.
        if self._fresh_seed:
            self._fresh_seed = False
        else:
            self._rotate_adjoint()
        self._rev[self._live].run()

    # -- execution ---------------------------------------------------------

    def run_forward(self, state0: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Run the primal ``steps`` steps; returns copies of the final
        state (newest first — the final output field leads)."""
        self._load_state0(state0)
        self.forward_steps = 0
        self._advance(self.steps)
        return [arr.copy() for arr in self._live_state()]

    def adjoint(
        self, state0: Sequence[np.ndarray], seed: np.ndarray
    ) -> dict[str, np.ndarray]:
        """One checkpointed adjoint sweep: revolve with bound runs.

        *state0* holds the initial state (newest first, one array per
        history field); *seed* is the adjoint of the final output
        (``dJ/du^T``).  Returns the plan's persistent result buffers:
        the adjoint of initial-state component ``k`` under the adjoint
        name of ``history[k]``, plus accumulated constant adjoints.
        Bitwise identical to :meth:`run_store_all` by construction —
        the reverse sweep consumes exactly the same primal states.
        """
        if tuple(np.shape(seed)) != self._full_shape:
            raise ValueError(
                f"seed must have shape {self._full_shape}, got "
                f"{tuple(np.shape(seed))}"
            )
        self._load_state0(state0)
        self.forward_steps = 0
        self._begin_reverse(seed)
        self._fresh_seed = True
        try:
            execute_schedule(
                self._actions,
                snapshot=self._on_snapshot,
                advance=self._on_advance,
                restore=self._on_restore,
                reverse=self._on_reverse,
            )
        except ReproError:
            # Already typed (CheckpointError from the pool, KernelError
            # from a bound run, ...).  The caller's arrays are untouched
            # either way: the sweep works exclusively on plan-owned
            # buffers, and the next adjoint() call reloads and re-zeros
            # all of them, so a failed sweep leaves no poisoned state.
            raise
        except Exception as exc:
            raise CheckpointError(
                f"checkpointed adjoint sweep failed mid-schedule: {exc}; "
                "the plan is reusable — the next adjoint() call reloads "
                "all state"
            ) from exc
        return self._result

    def run_store_all(
        self, state0: Sequence[np.ndarray], seed: np.ndarray
    ) -> dict[str, np.ndarray]:
        """The O(steps)-memory reference sweep over the same bound plans.

        Stores a copy of every intermediate state during one forward
        pass (``steps`` states — the baseline the memory gate compares
        against), then reverses consuming them in descending step
        order.  This path allocates its history per call; it exists as
        the bitwise reference and benchmark baseline, not a steady-state
        path.
        """
        if tuple(np.shape(seed)) != self._full_shape:
            raise ValueError(
                f"seed must have shape {self._full_shape}, got "
                f"{tuple(np.shape(seed))}"
            )
        self._load_state0(state0)
        self.forward_steps = 0
        history = []
        for _ in range(self.steps):
            history.append([arr.copy() for arr in self._live_state()])
            self._advance(1)
        self._begin_reverse(seed)
        self._fresh_seed = True
        for t in reversed(range(self.steps)):
            for arr, saved in zip(self._live_state(), history[t]):
                np.copyto(arr, saved)
            self._on_reverse(t)
        return self._result

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release ensemble worker threads (no-op in single mode)."""
        for bound in (*self._fwd, *self._rev):
            close = getattr(bound, "close", None)
            if close is not None:
                close()
        if self._scheduler is not None:
            if self._scheduler_finalizer is not None:
                self._scheduler_finalizer.detach()
                self._scheduler_finalizer = None
            self._scheduler.close()
            self._scheduler = None

    def __enter__(self) -> "CheckpointedAdjointPlan":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ShardedCheckpointedAdjoint:
    """Checkpointed adjoint sweeps over a block-decomposed sharded grid.

    The sharded sibling of :class:`CheckpointedAdjointPlan`: the same
    ``h + 1`` rotating-buffer state model and the same **single**
    revolve schedule, but every buffer is block-decomposed across the
    ranks of one :class:`~repro.runtime.distributed.ShardedPlan`, and
    every schedule action runs as one sharded step — per-shard bound
    plans for each rotation parity (keys ``("fwd", p)`` / ``("rev", q)``
    with alias maps assigning the rotating physical buffers to kernel
    roles), a history-field halo exchange before each run, and the
    adjoint accumulate-back merged in fixed rank order after each
    reverse run.  Snapshots store **global** assemblies of the owned
    rows (halo state is canonical — a restore re-scatters exactly what
    an exchange would produce), so the pool is rank-count independent
    and a mid-sweep single-shard degradation keeps every stored
    snapshot usable.

    Results are bitwise identical to the unsharded
    :class:`CheckpointedAdjointPlan` for any rank count — asserted by
    ``tests/test_sharded_plan.py``.  Unlike the unsharded plan, the
    result mapping holds fresh gathered arrays, not persistent buffers.
    """

    def __init__(
        self,
        forward_kernel,
        reverse_kernel,
        shape: tuple[int, ...],
        *,
        nranks: int,
        halo: int,
        steps: int,
        snaps: int,
        output: str = "u",
        history: Sequence[str] = ("u_1",),
        constants: Mapping[str, np.ndarray] | None = None,
        adjoint_map: Mapping[str, str] | None = None,
        dtype=np.float64,
        config=None,
        use_workers: bool = True,
    ) -> None:
        from .distributed import ShardedPlan  # avoids import cycle

        if steps < 1:
            raise ValueError("steps must be >= 1")
        if snaps < 1:
            raise ValueError("snaps must be >= 1")
        history = tuple(history)
        if not history:
            raise ValueError("need at least one history field")
        constants = dict(constants or {})
        adjoint_map = dict(adjoint_map or {})
        adj = lambda name: adjoint_map.get(name, f"{name}_b")  # noqa: E731

        self.steps = steps
        self.snaps = snaps
        self.output = output
        self.history = history
        self.dtype = np.dtype(dtype)
        shape = tuple(shape)
        self._shape = shape
        h = len(history)
        m = h + 1
        for name, arr in constants.items():
            if tuple(arr.shape) != shape:
                raise ValueError(
                    f"constant {name!r} has shape {arr.shape}, expected "
                    f"{shape}"
                )
            if arr.dtype != self.dtype:
                raise ValueError(
                    f"constant {name!r} is {arr.dtype}, expected "
                    f"{self.dtype}: a promoted constant would break the "
                    f"end-to-end reduced-precision contract; cast it first"
                )

        rev_names = {
            name
            for region in reverse_kernel.regions
            for st in region.statements
            for name in (st.target.name, *(acc.name for acc in st.reads))
        }
        # Physical buffer namespace: h + 1 rotating state buffers, the
        # reverse working set, and the constants.  Role assignment per
        # rotation parity happens through the ShardedPlan alias maps.
        self._rot = tuple(f"__rot{k}" for k in range(m))
        self._seed_name = adj(output)
        self._hist_adj = tuple(adj(name) for name in history)
        self._const_adj = tuple(
            adj(name) for name in sorted(constants) if adj(name) in rev_names
        )
        arrays: dict[str, np.ndarray] = {
            name: np.zeros(shape, dtype=self.dtype)
            for name in (
                *self._rot,
                self._seed_name,
                *self._hist_adj,
                *self._const_adj,
            )
        }
        arrays.update(constants)

        kernels = {}
        aliases = {}
        for p in range(m):
            kernels[("fwd", p)] = forward_kernel
            aliases[("fwd", p)] = {
                output: self._rot[p],
                **{
                    history[k]: self._rot[(p - 1 - k) % m]
                    for k in range(h)
                },
            }
        for q in range(m):
            kernels[("rev", q)] = reverse_kernel
            aliases[("rev", q)] = {
                history[k]: self._rot[(q - k) % m] for k in range(h)
            }
        self._plan = ShardedPlan(
            kernels,
            arrays,
            nranks=nranks,
            halo=halo,
            config=config,
            aliases=aliases,
            use_workers=use_workers,
        )
        self.nranks = self._plan.nranks
        self.effective_nranks = self._plan.effective_nranks

        # Snapshots hold global assemblies, so one pool serves any rank
        # count and survives a mid-sweep single-shard degradation.
        self._pool = SnapshotPool(snaps, shape, self.dtype, fields=h)
        self._scratch = tuple(
            np.empty(shape, dtype=self.dtype) for _ in range(h)
        )
        self._actions = tuple(schedule(steps, snaps))
        self.evaluation_cost = schedule_cost(list(self._actions))
        self.forward_steps = 0
        self._live = 0
        self._fresh_seed = True

    # -- queries -----------------------------------------------------------

    @property
    def actions(self) -> tuple:
        """The revolve action sequence executed per :meth:`adjoint` call."""
        return self._actions

    @property
    def snapshot_pool(self) -> SnapshotPool:
        return self._pool

    @property
    def degraded(self) -> bool:
        """Whether the underlying sharded plan fell back to one shard."""
        return self._plan.degraded

    # -- state plumbing ----------------------------------------------------

    def _live_names(self) -> list[str]:
        """Physical buffer names of the live state, newest first."""
        m = len(self._rot)
        return [
            self._rot[(self._live - k) % m] for k in range(len(self.history))
        ]

    def _load_state0(self, state0: Sequence[np.ndarray]) -> None:
        h = len(self.history)
        state0 = list(state0)
        if len(state0) != h:
            raise ValueError(
                f"state0 must hold {h} array(s) (newest first, one per "
                f"history field {self.history}), got {len(state0)}"
            )
        for arr in state0:
            if tuple(np.shape(arr)) != self._shape:
                raise ValueError(
                    f"state0 arrays must have shape {self._shape}, got "
                    f"{tuple(np.shape(arr))}"
                )
        self._live = 0
        for k, arr in enumerate(state0):
            self._plan.load(self._rot[(-k) % len(self._rot)], arr)

    def _advance(self, count: int) -> None:
        h = len(self.history)
        m = len(self._rot)
        for _ in range(count):
            p = (self._live + 1) % m
            self._plan.fill(self._rot[p], 0.0)
            self._plan.step(
                ("fwd", p),
                exchange=[self._rot[(p - 1 - k) % m] for k in range(h)],
            )
            self._live = p
        self.forward_steps += count

    def _begin_reverse(self, seed: np.ndarray) -> None:
        self._plan.load(self._seed_name, seed)
        for name in (*self._hist_adj, *self._const_adj):
            self._plan.fill(name, 0.0)

    def _rotate_adjoint(self) -> None:
        self._plan.copy(self._seed_name, self._hist_adj[0])
        for k in range(len(self._hist_adj) - 1):
            self._plan.copy(self._hist_adj[k], self._hist_adj[k + 1])
        self._plan.fill(self._hist_adj[-1], 0.0)

    # -- schedule action handlers ------------------------------------------

    def _on_snapshot(self, slot: int, step: int) -> None:
        for name, dst in zip(self._live_names(), self._scratch):
            self._plan.gather_into(name, dst)
        self._pool.store(slot, self._scratch)

    def _on_advance(self, begin: int, end: int) -> None:
        self._advance(end - begin)

    def _on_restore(self, slot: int, step: int) -> None:
        self._pool.load(slot, self._scratch)
        for name, src in zip(self._live_names(), self._scratch):
            self._plan.load(name, src)

    def _on_reverse(self, step: int) -> None:
        if self._fresh_seed:
            self._fresh_seed = False
        else:
            self._rotate_adjoint()
        h = len(self.history)
        m = len(self._rot)
        q = self._live
        self._plan.step(
            ("rev", q),
            exchange=[
                self._seed_name,
                *(self._rot[(q - k) % m] for k in range(h)),
            ],
            accumulate=[*self._hist_adj, *self._const_adj],
        )

    # -- execution ---------------------------------------------------------

    def run_forward(self, state0: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Run the primal ``steps`` steps; returns the gathered final
        state (newest first — the final output field leads)."""
        self._load_state0(state0)
        self.forward_steps = 0
        self._advance(self.steps)
        gathered = self._plan.gather(self._live_names())
        return [gathered[name] for name in self._live_names()]

    def adjoint(
        self, state0: Sequence[np.ndarray], seed: np.ndarray
    ) -> dict[str, np.ndarray]:
        """One sharded checkpointed adjoint sweep.

        Same calling convention as
        :meth:`CheckpointedAdjointPlan.adjoint`; returns freshly
        gathered global adjoint arrays (the initial-state adjoints under
        the history-field adjoint names, plus constant adjoints).
        """
        if tuple(np.shape(seed)) != self._shape:
            raise ValueError(
                f"seed must have shape {self._shape}, got "
                f"{tuple(np.shape(seed))}"
            )
        self._load_state0(state0)
        self.forward_steps = 0
        self._begin_reverse(seed)
        self._fresh_seed = True
        try:
            execute_schedule(
                self._actions,
                snapshot=self._on_snapshot,
                advance=self._on_advance,
                restore=self._on_restore,
                reverse=self._on_reverse,
            )
        except ReproError:
            raise
        except Exception as exc:
            raise CheckpointError(
                f"sharded checkpointed adjoint sweep failed mid-schedule: "
                f"{exc}; the plan is reusable — the next adjoint() call "
                f"reloads all state"
            ) from exc
        return self._plan.gather([*self._hist_adj, *self._const_adj])

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Stop shard workers and release shared-memory segments."""
        self._plan.close()

    def __enter__(self) -> "ShardedCheckpointedAdjoint":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
