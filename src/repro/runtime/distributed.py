"""Simulated distributed-memory execution with halo exchange.

The paper's related work covers AD of MPI-parallel programs (Hovland
[13]) and notes that stencil compilers "can parallelise in MPI or shared
memory" given the stencil structure.  This module provides that
distributed-memory substrate in simulated form (no MPI available in this
environment; per DESIGN.md §4 the substitution keeps the communication
pattern and data ownership exact, replacing network transport with array
copies between per-rank storage):

* the domain is block-decomposed along the outermost axis; every rank
  owns an interior slab and allocates a halo of the stencil radius;
* **forward**: ranks exchange interior boundary layers into neighbours'
  halos (the classic ghost-cell exchange), then run the compiled kernel
  on their local box — bitwise equal to the global run;
* **adjoint**: ranks run the adjoint stencil kernels locally; adjoint
  contributions that land in a rank's *halo* belong to the neighbour's
  interior, so the reverse of the halo exchange is an *accumulate-back*
  (receive-and-add) — the standard adjoint-MPI transformation where a
  send becomes a receive-increment.

Because the gather-form adjoint writes each index from one rank's
iterations only (plus halo contributions), the distributed adjoint equals
the global adjoint to machine precision, which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .compiler import CompiledKernel

__all__ = ["RankSlab", "DistributedExecutor", "decompose"]


def decompose(extent: int, nranks: int) -> list[tuple[int, int]]:
    """Split ``range(extent)`` into near-equal contiguous ownership ranges."""
    if nranks < 1:
        raise ValueError("nranks must be >= 1")
    nranks = min(nranks, extent)
    base, rem = divmod(extent, nranks)
    out = []
    start = 0
    for r in range(nranks):
        size = base + (1 if r < rem else 0)
        out.append((start, start + size - 1))
        start += size
    return out


@dataclass
class RankSlab:
    """One rank's storage: owned global rows plus halo layers."""

    rank: int
    own_lo: int  # global first owned row (axis 0)
    own_hi: int  # global last owned row (inclusive)
    halo: int
    slab_lo: int  # global index of local row 0 (halo clamped at edges)
    arrays: dict[str, np.ndarray]

    def local_index(self, global_index: int) -> int:
        return global_index - self.slab_lo


class DistributedExecutor:
    """Execute compiled kernels on a block-decomposed domain.

    Parameters
    ----------
    nranks:
        Number of simulated ranks.
    halo:
        Halo width (the stencil radius; must cover every access offset of
        the kernels run through this executor).
    """

    def __init__(self, nranks: int, halo: int):
        if halo < 0:
            raise ValueError("halo must be >= 0")
        self.nranks = nranks
        self.halo = halo

    # -- setup -----------------------------------------------------------------

    def scatter(self, global_arrays: Mapping[str, np.ndarray]) -> list[RankSlab]:
        """Distribute global arrays into per-rank slabs (with halos)."""
        shapes = {a.shape for a in global_arrays.values()}
        if len(shapes) != 1:
            raise ValueError("all arrays must share one shape")
        extent = next(iter(shapes))[0]
        ranges = decompose(extent, self.nranks)
        slabs = []
        for r, (lo, hi) in enumerate(ranges):
            slab_lo = max(0, lo - self.halo)
            slab_hi = min(extent - 1, hi + self.halo)
            local = {
                name: arr[slab_lo : slab_hi + 1].copy()
                for name, arr in global_arrays.items()
            }
            slabs.append(
                RankSlab(
                    rank=r, own_lo=lo, own_hi=hi, halo=self.halo,
                    slab_lo=slab_lo, arrays=local,
                )
            )
        return slabs

    def gather(
        self, slabs: Sequence[RankSlab], names: Sequence[str], extent: int
    ) -> dict[str, np.ndarray]:
        """Assemble owned rows of each rank back into global arrays."""
        sample = slabs[0].arrays[names[0]]
        out = {
            name: np.zeros((extent,) + sample.shape[1:]) for name in names
        }
        for slab in slabs:
            lo, hi = slab.own_lo, slab.own_hi
            a = lo - slab.slab_lo
            for name in names:
                out[name][lo : hi + 1] = slab.arrays[name][a : a + hi - lo + 1]
        return out

    # -- communication ------------------------------------------------------------

    def halo_exchange(self, slabs: Sequence[RankSlab], names: Sequence[str]) -> None:
        """Forward ghost-cell exchange: copy neighbours' interior rows into
        each rank's halo layers (both directions)."""
        h = self.halo
        if h == 0:
            return
        for left, right in zip(slabs, slabs[1:]):
            for name in names:
                la, ra = left.arrays[name], right.arrays[name]
                l_own_hi = left.own_hi - left.slab_lo
                r_own_lo = right.own_lo - right.slab_lo
                # left's top halo <- right's first owned rows
                la[l_own_hi + 1 : l_own_hi + 1 + h] = ra[r_own_lo : r_own_lo + h]
                # right's bottom halo <- left's last owned rows
                ra[r_own_lo - h : r_own_lo] = la[l_own_hi + 1 - h : l_own_hi + 1]

    def halo_accumulate_back(
        self, slabs: Sequence[RankSlab], names: Sequence[str]
    ) -> None:
        """Adjoint of the halo exchange: add each rank's halo contributions
        into the owning neighbour's interior, then zero the halo (a send
        in the primal becomes a receive-and-increment in the adjoint)."""
        h = self.halo
        if h == 0:
            return
        for left, right in zip(slabs, slabs[1:]):
            for name in names:
                la, ra = left.arrays[name], right.arrays[name]
                l_own_hi = left.own_hi - left.slab_lo
                r_own_lo = right.own_lo - right.slab_lo
                # left's top halo rows belong to right's interior.
                ra[r_own_lo : r_own_lo + h] += la[l_own_hi + 1 : l_own_hi + 1 + h]
                la[l_own_hi + 1 : l_own_hi + 1 + h] = 0.0
                # right's bottom halo rows belong to left's interior.
                la[l_own_hi + 1 - h : l_own_hi + 1] += ra[r_own_lo - h : r_own_lo]
                ra[r_own_lo - h : r_own_lo] = 0.0

    # -- execution -------------------------------------------------------------

    def run(
        self,
        kernel: CompiledKernel,
        slabs: Sequence[RankSlab],
    ) -> None:
        """Run *kernel* on every rank's owned portion of each region.

        Region bounds (global indices) are intersected with the rank's
        owned rows along axis 0 and translated to local indices.
        """
        for slab in slabs:
            shift = slab.slab_lo
            for region in kernel.regions:
                bounds = list(region.bounds)
                lo, hi = bounds[0]
                lo = max(lo, slab.own_lo)
                hi = min(hi, slab.own_hi)
                if lo > hi:
                    continue
                bounds[0] = (lo - shift, hi - shift)
                region.execute(slab.arrays, tuple(bounds))
