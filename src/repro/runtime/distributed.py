"""Sharded distributed-memory execution with halo exchange.

The paper's related work covers AD of MPI-parallel programs (Hovland
[13]) and notes that stencil compilers "can parallelise in MPI or shared
memory" given the stencil structure.  This module provides that
distributed-memory substrate in two layers:

* :class:`DistributedExecutor` — the simulated substrate (per DESIGN.md
  §4: no MPI in this environment, so network transport is replaced by
  array copies between per-rank storage while the communication pattern
  and data ownership stay exact).  The domain is block-decomposed along
  the outermost axis; every rank owns an interior slab plus a halo of
  the stencil radius.
* :class:`ShardedPlan` — real multi-process execution wired into the
  plan/bind runtime.  Each rank's slab lives in a
  ``multiprocessing.shared_memory`` segment; one
  :class:`~repro.runtime.bound.BoundPlan` per shard (python or native
  backend) is bound against the slab views and executed by a forked
  worker process; the parent performs the forward ghost-cell exchange
  and the adjoint accumulate-back between steps.

The communication pattern, in both layers:

* **forward**: ranks exchange interior boundary layers into neighbours'
  halos (the classic ghost-cell exchange), then run the kernel on their
  owned rows — bitwise equal to the global run;
* **adjoint**: ranks run the adjoint stencil kernels locally; adjoint
  contributions that land in a rank's *halo* belong to the neighbour's
  interior, so the reverse of the halo exchange is an *accumulate-back*
  (receive-and-add) — the standard adjoint-MPI transformation where a
  send becomes a receive-increment.  Pairs are visited left-to-right in
  fixed rank order, so the scatter-add merge is deterministic.

Because the gather-form adjoint (the paper's construction) writes each
index from one rank's iterations only, the sharded adjoint is **bitwise
identical** to the global adjoint for any rank count, which the tests
assert.

Failure behaviour (see :mod:`repro.runtime.faults`): the
``shard.exchange`` and ``shard.worker`` fault points both carry the
*fallback* contract — a failed halo copy or a worker found dead before
dispatch degrades the plan to single-shard execution on the caller's
global arrays, bitwise-identically, with one warning.  A worker that
fails *mid-step* (after dispatch) raises a typed
:class:`~repro.errors.ShardError` instead, because some ranks may
already have advanced.
"""

from __future__ import annotations

import multiprocessing
import os
import secrets
import warnings
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Mapping, Sequence

import numpy as np

from ..errors import ShardError, ValidationError
from . import faults
from .compiler import CompiledKernel
from .plan import ExecutionConfig, ExecutionPlan, ShardSpec

__all__ = [
    "RankSlab",
    "DistributedExecutor",
    "ShardedPlan",
    "decompose",
]

# Prefix of every shared-memory segment a ShardedPlan creates; the CI
# shard job removes /dev/shm/repro_shard_* on failure.
_SEGMENT_PREFIX = "repro_shard_"


def decompose(extent: int, nranks: int) -> list[tuple[int, int]]:
    """Split ``range(extent)`` into near-equal contiguous ownership ranges."""
    if nranks < 1:
        raise ValueError("nranks must be >= 1")
    nranks = min(nranks, extent)
    base, rem = divmod(extent, nranks)
    out = []
    start = 0
    for r in range(nranks):
        size = base + (1 if r < rem else 0)
        out.append((start, start + size - 1))
        start += size
    return out


def _validate_halo(ranges: Sequence[tuple[int, int]], halo: int) -> None:
    """Reject halos wider than the smallest owned slab.

    A wider halo would make the exchange read a neighbour's *halo* rows
    as if they were interior — stale data silently exchanged as owned.
    """
    sizes = [hi - lo + 1 for lo, hi in ranges]
    smallest = min(sizes)
    if halo > smallest:
        rank = sizes.index(smallest)
        raise ValidationError(
            f"halo {halo} exceeds the smallest owned slab ({smallest} "
            f"row(s) on rank {rank} of {len(ranges)}): the exchange "
            f"would read past that rank's owned rows; use fewer ranks "
            f"or a narrower halo"
        )


@dataclass
class RankSlab:
    """One rank's storage: owned global rows plus halo layers."""

    rank: int
    own_lo: int  # global first owned row (axis 0)
    own_hi: int  # global last owned row (inclusive)
    halo: int
    slab_lo: int  # global index of local row 0 (halo clamped at edges)
    arrays: dict[str, np.ndarray]

    def local_index(self, global_index: int) -> int:
        return global_index - self.slab_lo


def _exchange_pairs(
    slabs: Sequence[RankSlab],
    names: Sequence[str],
    halo: int,
    check: bool = False,
) -> None:
    """Ghost-cell exchange between neighbouring slabs, both directions."""
    h = halo
    if h == 0:
        return
    for left, right in zip(slabs, slabs[1:]):
        if check:
            faults.check("shard.exchange")
        for name in names:
            la, ra = left.arrays[name], right.arrays[name]
            l_own_hi = left.own_hi - left.slab_lo
            r_own_lo = right.own_lo - right.slab_lo
            # left's top halo <- right's first owned rows
            la[l_own_hi + 1 : l_own_hi + 1 + h] = ra[r_own_lo : r_own_lo + h]
            # right's bottom halo <- left's last owned rows
            ra[r_own_lo - h : r_own_lo] = la[l_own_hi + 1 - h : l_own_hi + 1]


def _accumulate_pairs(
    slabs: Sequence[RankSlab], names: Sequence[str], halo: int
) -> None:
    """Adjoint of the exchange: add halo contributions to the owner.

    Pairs are visited left-to-right and, within a pair, left-halo before
    right-halo — a fixed merge order, so the scatter-add is
    deterministic.  An all-zero halo block is skipped rather than added:
    ``x += 0.0`` flips ``-0.0`` to ``+0.0``, which would break the
    bitwise contract for contributions that never happened.
    """
    h = halo
    if h == 0:
        return
    for left, right in zip(slabs, slabs[1:]):
        for name in names:
            la, ra = left.arrays[name], right.arrays[name]
            l_own_hi = left.own_hi - left.slab_lo
            r_own_lo = right.own_lo - right.slab_lo
            # left's top halo rows belong to right's interior.
            block = la[l_own_hi + 1 : l_own_hi + 1 + h]
            if block.any():
                ra[r_own_lo : r_own_lo + h] += block
            la[l_own_hi + 1 : l_own_hi + 1 + h] = 0.0
            # right's bottom halo rows belong to left's interior.
            block = ra[r_own_lo - h : r_own_lo]
            if block.any():
                la[l_own_hi + 1 - h : l_own_hi + 1] += block
            ra[r_own_lo - h : r_own_lo] = 0.0


class DistributedExecutor:
    """Execute compiled kernels on a block-decomposed domain.

    Parameters
    ----------
    nranks:
        Number of simulated ranks requested.  When the extent is smaller
        the decomposition clamps; :attr:`effective_nranks` records the
        rank count actually used (one warning per executor).
    halo:
        Halo width (the stencil radius; must cover every access offset of
        the kernels run through this executor).
    """

    def __init__(self, nranks: int, halo: int):
        if halo < 0:
            raise ValueError("halo must be >= 0")
        self.nranks = nranks
        self.halo = halo
        self.effective_nranks: int | None = None
        self._warned_clamp = False

    # -- setup -----------------------------------------------------------------

    def scatter(self, global_arrays: Mapping[str, np.ndarray]) -> list[RankSlab]:
        """Distribute global arrays into per-rank slabs (with halos)."""
        shapes = {a.shape for a in global_arrays.values()}
        if len(shapes) != 1:
            raise ValueError("all arrays must share one shape")
        extent = next(iter(shapes))[0]
        ranges = decompose(extent, self.nranks)
        self.effective_nranks = len(ranges)
        if self.effective_nranks < self.nranks and not self._warned_clamp:
            self._warned_clamp = True
            warnings.warn(
                f"requested {self.nranks} ranks but the axis-0 extent is "
                f"{extent}; using {self.effective_nranks} rank(s)",
                RuntimeWarning,
                stacklevel=2,
            )
        _validate_halo(ranges, self.halo)
        slabs = []
        for r, (lo, hi) in enumerate(ranges):
            slab_lo = max(0, lo - self.halo)
            slab_hi = min(extent - 1, hi + self.halo)
            local = {
                name: arr[slab_lo : slab_hi + 1].copy()
                for name, arr in global_arrays.items()
            }
            slabs.append(
                RankSlab(
                    rank=r, own_lo=lo, own_hi=hi, halo=self.halo,
                    slab_lo=slab_lo, arrays=local,
                )
            )
        return slabs

    def gather(
        self, slabs: Sequence[RankSlab], names: Sequence[str], extent: int
    ) -> dict[str, np.ndarray]:
        """Assemble owned rows of each rank back into global arrays."""
        out = {
            name: np.zeros(
                (extent,) + slabs[0].arrays[name].shape[1:],
                dtype=slabs[0].arrays[name].dtype,
            )
            for name in names
        }
        for slab in slabs:
            lo, hi = slab.own_lo, slab.own_hi
            a = lo - slab.slab_lo
            for name in names:
                out[name][lo : hi + 1] = slab.arrays[name][a : a + hi - lo + 1]
        return out

    # -- communication ------------------------------------------------------------

    def halo_exchange(self, slabs: Sequence[RankSlab], names: Sequence[str]) -> None:
        """Forward ghost-cell exchange: copy neighbours' interior rows into
        each rank's halo layers (both directions)."""
        _exchange_pairs(slabs, names, self.halo)

    def halo_accumulate_back(
        self, slabs: Sequence[RankSlab], names: Sequence[str]
    ) -> None:
        """Adjoint of the halo exchange: add each rank's halo contributions
        into the owning neighbour's interior, then zero the halo (a send
        in the primal becomes a receive-and-increment in the adjoint)."""
        _accumulate_pairs(slabs, names, self.halo)

    # -- execution -------------------------------------------------------------

    def run(
        self,
        kernel: CompiledKernel,
        slabs: Sequence[RankSlab],
    ) -> None:
        """Run *kernel* on every rank's owned portion of each region.

        Region bounds (global indices) are intersected with the rank's
        owned rows along axis 0 and translated to local indices.
        """
        for slab in slabs:
            shift = slab.slab_lo
            for region in kernel.regions:
                bounds = list(region.bounds)
                lo, hi = bounds[0]
                lo = max(lo, slab.own_lo)
                hi = min(hi, slab.own_hi)
                if lo > hi:
                    continue
                bounds[0] = (lo - shift, hi - shift)
                region.execute(slab.arrays, tuple(bounds))


# -- sharded plan/bind execution -----------------------------------------------


def _kernel_array_names(kernel: CompiledKernel) -> set[str]:
    names: set[str] = set()
    for region in kernel.regions:
        for st in region.statements:
            names.add(st.target.name)
            names.update(acc.name for acc in st.reads)
    return names


def _worker_main(conn, plans) -> None:
    """Command loop of one forked shard worker process.

    *plans* maps kernel key -> the rank's :class:`BoundPlan`, already
    bound (pre-fork) against views into the rank's shared-memory slab,
    so ``run()`` writes are visible to the parent and siblings.
    """
    try:
        while True:
            msg = conn.recv()
            if msg[0] == "run":
                try:
                    plans[msg[1]].run()
                except Exception as exc:
                    conn.send(("error", f"{type(exc).__name__}: {exc}"))
                else:
                    conn.send(("done", msg[1]))
            elif msg[0] == "exit":
                return
    except (EOFError, OSError, KeyboardInterrupt):  # parent went away
        return


def _release(workers: list, conns: list, segments: list) -> None:
    """Stop worker processes and unlink shared-memory segments.

    Module-level (not a method) so a ``weakref.finalize`` safety net can
    call it without keeping the plan alive.  Mutates the lists in place
    so a second call — finalizer after an explicit ``close()`` — is a
    no-op.
    """
    for conn in conns:
        try:
            conn.send(("exit",))
        except Exception:
            pass
    for proc in workers:
        proc.join(timeout=5)
        if proc.is_alive():  # pragma: no cover - stuck worker
            proc.terminate()
            proc.join(timeout=5)
    for conn in conns:
        try:
            conn.close()
        except Exception:
            pass
    workers.clear()
    conns.clear()
    for shm in segments:
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already removed
            pass
        try:
            shm.close()
        except BufferError:
            # A numpy view into the segment is still alive (e.g. the
            # caller holds a slab reference); the mapping is released
            # when the view dies or the process exits — the name is
            # already unlinked either way.
            pass
    segments.clear()


class ShardedPlan:
    """Block-decomposed multi-process execution of bound plans.

    The axis-0 extent of *arrays* is decomposed into ``nranks``
    near-equal contiguous slabs (plus ``halo`` ghost rows); every slab
    lives in a ``multiprocessing.shared_memory`` segment, and one
    :class:`~repro.runtime.bound.BoundPlan` per (rank, kernel key) is
    bound against views into it — planned with a
    :class:`~repro.runtime.plan.ShardSpec`, so each rank executes only
    its owned rows, in local slab coordinates.  Forked worker processes
    (one per rank) run the bound plans; the parent orchestrates halo
    exchange, dispatch, and adjoint accumulate-back per :meth:`step`.

    *kernels* is a single :class:`CompiledKernel` (key ``"main"``) or a
    mapping of keys to kernels; *aliases* optionally maps, per key, a
    kernel-side array name to the physical buffer name it should bind
    (how the checkpointing layer points rotation parities at rotating
    physical buffers).

    The contract: results and gradients are **bitwise identical** to a
    single-shard :class:`BoundPlan` run for any rank count.  On a halo
    copy failure (``shard.exchange``) or a worker found dead before
    dispatch (``shard.worker``), the plan degrades — permanently, with
    one warning — to single-shard execution on the caller's global
    arrays, preserving that contract.
    """

    def __init__(
        self,
        kernels: CompiledKernel | Mapping[object, CompiledKernel],
        arrays: Mapping[str, np.ndarray],
        *,
        nranks: int,
        halo: int,
        config: ExecutionConfig | None = None,
        aliases: Mapping[object, Mapping[str, str]] | None = None,
        use_workers: bool = True,
    ):
        if isinstance(kernels, CompiledKernel):
            kernels = {"main": kernels}
        if not kernels:
            raise ValidationError("ShardedPlan needs at least one kernel")
        if not arrays:
            raise ValidationError("ShardedPlan needs at least one array")
        if halo < 0:
            raise ValidationError("halo must be >= 0")
        self._kernels = dict(kernels)
        self.config = config if config is not None else ExecutionConfig()
        self._aliases = {
            key: dict((aliases or {}).get(key, ())) for key in self._kernels
        }
        shapes = {a.shape for a in arrays.values()}
        if len(shapes) != 1:
            raise ValidationError(
                "all sharded arrays must share one shape; got "
                f"{sorted(shapes)}"
            )
        for key, kernel in self._kernels.items():
            amap = self._aliases[key]
            missing = {
                amap.get(n, n) for n in _kernel_array_names(kernel)
            } - set(arrays)
            if missing:
                raise ValidationError(
                    f"kernel {key!r} needs arrays {sorted(missing)} that "
                    f"are not in the sharded namespace"
                )
        self.extent = next(iter(shapes))[0]
        ranges = decompose(self.extent, nranks)
        self.nranks = nranks
        self.effective_nranks = len(ranges)
        if self.effective_nranks < nranks:
            warnings.warn(
                f"requested {nranks} ranks but the axis-0 extent is "
                f"{self.extent}; using {self.effective_nranks} rank(s)",
                RuntimeWarning,
                stacklevel=2,
            )
        _validate_halo(ranges, halo)
        self.halo = halo
        self._globals = dict(arrays)
        self._names = list(arrays)
        self._degraded = False
        self._single: dict[object, object] = {}
        self._segments: list[shared_memory.SharedMemory] = []
        self._workers: list[multiprocessing.process.BaseProcess] = []
        self._conns: list = []
        self.slabs: list[RankSlab] = []
        try:
            self._build_slabs(ranges)
            self._bound = [self._bind_rank(slab) for slab in self.slabs]
            if use_workers and "fork" in multiprocessing.get_all_start_methods():
                self._start_workers()
        except BaseException:
            _release(self._workers, self._conns, self._segments)
            raise
        self._finalizer = weakref.finalize(
            self, _release, self._workers, self._conns, self._segments
        )

    # -- construction ------------------------------------------------------

    def _build_slabs(self, ranges: Sequence[tuple[int, int]]) -> None:
        tag = f"{os.getpid()}_{secrets.token_hex(4)}"
        for r, (lo, hi) in enumerate(ranges):
            slab_lo = max(0, lo - self.halo)
            slab_hi = min(self.extent - 1, hi + self.halo)
            local: dict[str, np.ndarray] = {}
            for name, arr in self._globals.items():
                src = np.ascontiguousarray(arr[slab_lo : slab_hi + 1])
                shm = shared_memory.SharedMemory(
                    name=f"{_SEGMENT_PREFIX}{tag}_{len(self._segments)}",
                    create=True,
                    size=max(1, src.nbytes),
                )
                self._segments.append(shm)
                view = np.ndarray(src.shape, dtype=arr.dtype, buffer=shm.buf)
                view[...] = src
                local[name] = view
            self.slabs.append(
                RankSlab(
                    rank=r, own_lo=lo, own_hi=hi, halo=self.halo,
                    slab_lo=slab_lo, arrays=local,
                )
            )

    def _bind_rank(self, slab: RankSlab) -> dict:
        spec = ShardSpec(
            rank=slab.rank,
            own_lo=slab.own_lo,
            own_hi=slab.own_hi,
            slab_lo=slab.slab_lo,
            slab_extent=next(iter(slab.arrays.values())).shape[0],
        )
        per_key = {}
        for key, kernel in self._kernels.items():
            plan = ExecutionPlan.build(kernel, self.config, shard=spec)
            amap = self._aliases[key]
            local = {
                name: slab.arrays[amap.get(name, name)]
                for name in _kernel_array_names(kernel)
            }
            per_key[key] = plan.bind(local)
        return per_key

    def _start_workers(self) -> None:
        ctx = multiprocessing.get_context("fork")
        for plans in self._bound:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main, args=(child_conn, plans), daemon=True
            )
            proc.start()
            child_conn.close()
            self._workers.append(proc)
            self._conns.append(parent_conn)

    # -- queries -----------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """Whether the plan fell back to single-shard execution."""
        return self._degraded

    @property
    def multiprocess(self) -> bool:
        """Whether steps are executed by forked worker processes."""
        return bool(self._workers)

    # -- stepping ----------------------------------------------------------

    def step(
        self,
        key: object = "main",
        exchange: Sequence[str] = (),
        accumulate: Sequence[str] = (),
    ) -> None:
        """Run kernel *key* once on every shard.

        *exchange* names arrays whose halos are refreshed from the
        neighbours' owned rows before the run (forward ghost-cell
        exchange); *accumulate* names arrays whose halo contributions
        are added back to the owning neighbour after the run (adjoint
        accumulate-back), in fixed rank order.  Accumulate-target halos
        are zeroed *before* the run so only contributions this step
        produced travel back.
        """
        if key not in self._kernels:
            raise ValidationError(
                f"unknown kernel key {key!r}; have {sorted(map(repr, self._kernels))}"
            )
        if self._degraded:
            self._single[key].run()
            return
        try:
            _exchange_pairs(self.slabs, exchange, self.halo, check=True)
            self._zero_halos(accumulate)
            self._heartbeat()
        except OSError as exc:
            self._degrade(str(exc))
            self._single[key].run()
            return
        self._dispatch(key)
        _accumulate_pairs(self.slabs, accumulate, self.halo)

    def _heartbeat(self) -> None:
        """Probe worker liveness for every rank, before any dispatch.

        Runs *before* the first ``send`` so a dead worker is discovered
        while no rank has advanced — the state every rank holds is still
        the consistent pre-step state the degradation path gathers.
        """
        for _ in range(self.effective_nranks):
            faults.check("shard.worker")
        for rank, proc in enumerate(self._workers):
            if not proc.is_alive():
                raise OSError(f"shard worker for rank {rank} is dead")

    def _dispatch(self, key: object) -> None:
        if not self._conns:  # in-process mode
            for plans in self._bound:
                plans[key].run()
            return
        for conn in self._conns:
            conn.send(("run", key))
        for rank, conn in enumerate(self._conns):
            try:
                reply = conn.recv()
            except (EOFError, OSError) as exc:
                raise ShardError(
                    f"shard worker for rank {rank} vanished mid-step "
                    f"running {key!r}: {exc!r}",
                    rank=rank,
                ) from exc
            if reply[0] != "done":
                raise ShardError(
                    f"shard worker for rank {rank} failed running "
                    f"{key!r}: {reply[1]}",
                    rank=rank,
                )

    def _zero_halos(self, names: Sequence[str]) -> None:
        h = self.halo
        if h == 0 or not names:
            return
        for slab in self.slabs:
            lo = slab.own_lo - slab.slab_lo
            hi = slab.own_hi - slab.slab_lo
            for name in names:
                arr = slab.arrays[name]
                if lo > 0:
                    arr[:lo] = 0.0
                arr[hi + 1 :] = 0.0

    # -- halo communication (test/tooling surface) -------------------------

    def exchange(self, names: Sequence[str]) -> None:
        """Forward ghost-cell exchange for *names* (no-op when degraded)."""
        if not self._degraded:
            _exchange_pairs(self.slabs, names, self.halo)

    def accumulate_back(self, names: Sequence[str]) -> None:
        """Adjoint accumulate-back for *names* (no-op when degraded)."""
        if not self._degraded:
            _accumulate_pairs(self.slabs, names, self.halo)

    # -- data movement -----------------------------------------------------

    def gather(self, names: Sequence[str] | None = None) -> dict[str, np.ndarray]:
        """Owned rows of each rank assembled into fresh global arrays."""
        names = self._names if names is None else list(names)
        out = {}
        for name in names:
            if self._degraded:
                out[name] = self._globals[name].copy()
            else:
                dst = np.empty_like(self._globals[name])
                self._collect(name, dst)
                out[name] = dst
        return out

    def gather_into(self, name: str, dst: np.ndarray) -> None:
        """Assemble owned rows of *name* into the preallocated *dst*."""
        if self._degraded:
            np.copyto(dst, self._globals[name])
        else:
            self._collect(name, dst)

    def _collect(self, name: str, dst: np.ndarray) -> None:
        for slab in self.slabs:
            lo, hi = slab.own_lo, slab.own_hi
            a = lo - slab.slab_lo
            dst[lo : hi + 1] = slab.arrays[name][a : a + hi - lo + 1]

    def load(self, name: str, values: np.ndarray) -> None:
        """Scatter a global array into every rank's slab (halos included)."""
        if self._degraded:
            np.copyto(self._globals[name], values)
            return
        for slab in self.slabs:
            arr = slab.arrays[name]
            arr[...] = values[slab.slab_lo : slab.slab_lo + arr.shape[0]]

    def fill(self, name: str, value: float = 0.0) -> None:
        """Fill an array with a constant on every rank (halos included)."""
        if self._degraded:
            self._globals[name].fill(value)
            return
        for slab in self.slabs:
            slab.arrays[name].fill(value)

    def copy(self, dst: str, src: str) -> None:
        """Copy array *src* into *dst* on every rank (halos included)."""
        if self._degraded:
            np.copyto(self._globals[dst], self._globals[src])
            return
        for slab in self.slabs:
            np.copyto(slab.arrays[dst], slab.arrays[src])

    # -- degradation and shutdown ------------------------------------------

    def _degrade(self, reason: str) -> None:
        """Fall back to single-shard execution on the global arrays.

        Every rank still holds its consistent pre-step state (the
        heartbeat runs before any dispatch), so gathering owned rows and
        re-binding unsharded plans continues the run bitwise-identically.
        """
        warnings.warn(
            f"sharded execution degraded to a single shard: {reason}; "
            f"owned rows were gathered and the run continues "
            f"bitwise-identically on one shard",
            RuntimeWarning,
            stacklevel=3,
        )
        for name in self._names:
            self._collect(name, self._globals[name])
        for key, kernel in self._kernels.items():
            plan = ExecutionPlan.build(kernel, self.config)
            amap = self._aliases[key]
            local = {
                name: self._globals[amap.get(name, name)]
                for name in _kernel_array_names(kernel)
            }
            self._single[key] = plan.bind(local)
        self._degraded = True
        self._bound = []
        self.slabs = []
        _release(self._workers, self._conns, self._segments)

    def close(self) -> None:
        """Stop workers and release shared-memory segments (idempotent)."""
        self._bound = []
        self.slabs = []
        _release(self._workers, self._conns, self._segments)

    def __enter__(self) -> "ShardedPlan":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
