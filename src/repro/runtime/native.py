"""Native execution backend: JIT-built C statement kernels behind ctypes.

PR 1–2 took the Python interpreter path to cached, allocation-free
steady state; the remaining per-timestep cost is NumPy ufunc dispatch
itself.  This module removes it the way PyOP2 does: each compiled
kernel's statements are lowered to C
(:mod:`repro.codegen.native_c`), built once with the system C compiler
into a shared object that is content-addressed on disk (keyed like
``compile_nests``: everything that determines the generated code), and
dispatched through the *same* plan/bind layer — a
:class:`~repro.runtime.bound.BoundPlan` built with
``ExecutionConfig(backend="native")`` binds the identical preallocated
buffers and calls the native entry points per unit.

Execution granularity: consecutive native statements of a task collapse
into a single :class:`NativeChain` dispatched through one C chain-runner
call, so a steady-state serial timestep costs one FFI crossing.
``ctypes`` releases the GIL around calls, so threaded plans run native
tasks genuinely in parallel.

In-kernel threading (``docs/threading.md``): with
``ExecutionConfig(native_threads=N)`` or ``REPRO_NATIVE_THREADS=N`` the
library is built as an OpenMP variant — each eligible statement's
outermost loop is block-partitioned across ``N`` threads
(:func:`~repro.codegen.native_c.parallel_eligibility`: gather-form
writes are injective, so the partition is race-free without scratch or
atomics and bitwise identical to the serial build by construction).
The ``-fopenmp`` capability is probed once per compiler like the
``-march=native`` probe; a compiler without it falls back to the
serial native library with one warning.  The threaded source text and
flags differ, so the content-addressed ``.so`` cache keys the
threading mode automatically.

Fallback is graceful and total: no C toolchain, a failing compile, an
ineligible statement (see :func:`~repro.codegen.native_c.native_eligibility`)
or a bind-time mismatch (foreign dtype, unaligned strides) all leave the
affected statements on the bound Python path, bitwise-identical by
construction.  A missing toolchain warns once per process.

Toolchain discovery: the ``REPRO_CC`` environment variable wins (set it
to a nonexistent path to force the fallback, e.g. in tests); otherwise
the first of ``cc``, ``gcc``, ``clang`` on ``PATH``.  Build flags pin
``-ffp-contract=off`` — fused multiply-adds would break bitwise
identity with NumPy's two-rounding multiply-then-add.

Compiler invocation is hardened against the real world: every build
runs under a subprocess timeout (``REPRO_CC_TIMEOUT``, default 300 s —
a hung compiler must not hang the runtime), transient spawn failures
and signal-killed compilers are retried with exponential backoff
(``REPRO_CC_RETRIES``/``REPRO_CC_BACKOFF``), and anything that still
fails degrades to the python path through
:class:`~repro.errors.NativeBuildError`.  The fault points
``native.toolchain``, ``native.cc.spawn``, ``native.cc.timeout``,
``native.cache.write`` and ``native.cache.load`` (see
:mod:`repro.runtime.faults`) let the chaos suite fire each of these
failures deterministically.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
import time
import warnings
from pathlib import Path

import numpy as np

from ..codegen.base import CodegenError
from ..codegen.native_c import (
    CHAIN_RUNNER_NAME,
    NATIVE_ABI_VERSION,
    generate_fused_source,
    generate_native_source,
)
from ..errors import NativeBuildError
from . import faults
from .cache import native_cache_dir

__all__ = [
    "native_toolchain",
    "native_available",
    "native_thread_count",
    "NativeBuildError",
    "NativeLibrary",
    "library_for_kernel",
    "NativeStatement",
    "NativeChain",
    "FusedStatement",
    "make_native_statement",
    "make_fused_statement",
    "chain_runnables",
]

_CFLAGS = ("-O3", "-fPIC", "-shared", "-ffp-contract=off", "-fno-math-errno")

_I64 = ctypes.c_int64
_I64P = ctypes.POINTER(_I64)

# NativeBuildError used to be defined here; it now lives in
# repro.errors as part of the typed hierarchy (ReproError ->
# KernelError -> NativeBuildError) and stays re-exported via __all__.


# -- toolchain ----------------------------------------------------------------

_toolchain_lock = threading.Lock()
_toolchain_memo: dict[str | None, str | None] = {}
_warned_lock = threading.Lock()
_warned: set[str] = set()


def _warn_once(key: str, message: str) -> None:
    """Warn once per process per *key*, safely under concurrent callers.

    Ensemble workers can race a fallback warning (each member bind can
    fail independently on its own thread); the check-then-add on the
    module-global set must be atomic or two threads both warn — or
    worse, mutate the set mid-iteration elsewhere.
    """
    with _warned_lock:
        if key in _warned:
            return
        _warned.add(key)
    warnings.warn(message, RuntimeWarning, stacklevel=3)


def _reset_warnings() -> None:
    """Test hook: make the next fallback warn again."""
    with _warned_lock:
        _warned.clear()


def native_toolchain() -> str | None:
    """Path of the C compiler to use, or None when none is usable.

    ``REPRO_CC`` overrides discovery entirely: when set, its value must
    name an existing executable (absolute path or on ``PATH``) or the
    toolchain is reported missing — no silent fallback, so tests and
    deployments can pin or disable the compiler deterministically.

    >>> from repro.runtime import native_toolchain
    >>> cc = native_toolchain()
    >>> cc is None or isinstance(cc, str)   # a path, or None without a cc
    True
    """
    env = os.environ.get("REPRO_CC")
    with _toolchain_lock:
        if env in _toolchain_memo:
            return _toolchain_memo[env]
        try:
            faults.check("native.toolchain")
            if env is not None:
                found = shutil.which(env)
            else:
                found = next(
                    (w for c in ("cc", "gcc", "clang") if (w := shutil.which(c))),
                    None,
                )
        except OSError:
            # Discovery itself failed (an unreadable PATH entry can make
            # which() raise).  Report the toolchain missing — callers
            # fall back to the python path — but do NOT memoise: a
            # transient failure should not pin the fallback forever.
            return None
        _toolchain_memo[env] = found
        return found


def native_available() -> bool:
    """True when the native backend can compile on this machine.

    >>> from repro.runtime import native_available
    >>> isinstance(native_available(), bool)
    True
    """
    return native_toolchain() is not None


_compiler_id_memo: dict[str, str] = {}


def _compiler_id(cc: str) -> str:
    """Version line identifying the compiler (part of the cache key).

    Memoised per compiler path: this runs on every cache-key
    computation, including pure disk-cache hits, and a subprocess per
    lookup would dominate bind time for many small cached kernels.
    """
    cached = _compiler_id_memo.get(cc)
    if cached is not None:
        return cached
    try:
        out = subprocess.run(
            [cc, "--version"], capture_output=True, text=True, timeout=30
        ).stdout
    except (OSError, subprocess.SubprocessError):
        out = ""
    ident = out.splitlines()[0] if out else cc
    _compiler_id_memo[cc] = ident
    return ident


# -- compiler invocation: timeout, bounded retry, backoff ---------------------


def _env_limit(name: str, default: float, minimum: float = 0.0) -> float:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value if value >= minimum else default


def _cc_limits() -> tuple[float, int, float]:
    """(timeout seconds, retries, initial backoff seconds) for cc runs.

    Environment knobs, all optional (invalid values fall back to the
    defaults rather than erroring — a misconfigured knob must not take
    the build path down):

    ``REPRO_CC_TIMEOUT``  seconds before a compile is declared hung
    (default 300); ``REPRO_CC_RETRIES`` extra attempts after a
    *transient* failure (default 2); ``REPRO_CC_BACKOFF`` initial sleep
    between attempts, doubled each retry (default 0.05).
    """
    timeout = _env_limit("REPRO_CC_TIMEOUT", 300.0)
    retries = int(_env_limit("REPRO_CC_RETRIES", 2.0))
    backoff = _env_limit("REPRO_CC_BACKOFF", 0.05)
    return timeout, retries, backoff


def _invoke_cc(cmd: list[str], what: str) -> subprocess.CompletedProcess:
    """Run the compiler command with the timeout/retry/backoff ladder.

    The failure taxonomy, from field experience with JIT caches:

    * **Timeout** (:class:`subprocess.TimeoutExpired`): the compiler
      hung.  No retry — a hung compiler hangs again, and the caller's
      deadline is already blown.  Degrades immediately.
    * **Transient** (``OSError``/``SubprocessError`` from the spawn,
      or the compiler killed by a signal — negative returncode, e.g.
      the OOM killer or a crashing wrapper script): retried up to
      ``REPRO_CC_RETRIES`` times with exponential backoff.
    * **Deterministic** (nonzero exit status): the source does not
      compile; retrying cannot help.  Returned to the caller, which
      raises :class:`~repro.errors.NativeBuildError` with the diagnostics.
    """
    timeout, retries, backoff = _cc_limits()
    for attempt in range(retries + 1):
        try:
            faults.check("native.cc.timeout")
            faults.check("native.cc.spawn")
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=timeout or None
            )
        except subprocess.TimeoutExpired as exc:
            raise NativeBuildError(
                f"{cmd[0]} timed out after {timeout:g}s building {what} "
                f"(set REPRO_CC_TIMEOUT to adjust)"
            ) from exc
        except (OSError, subprocess.SubprocessError) as exc:
            if attempt < retries:
                time.sleep(backoff * (2.0**attempt))
                continue
            raise NativeBuildError(
                f"invoking {cmd[0]} failed after {attempt + 1} "
                f"attempt(s): {exc}"
            ) from exc
        if proc.returncode < 0 and attempt < retries:
            # Killed by a signal: transient (OOM kill, crashed wrapper).
            time.sleep(backoff * (2.0**attempt))
            continue
        return proc
    raise AssertionError("unreachable")  # pragma: no cover


# -- disk-cached build --------------------------------------------------------

_lib_lock = threading.Lock()
_lib_memo: dict[str, ctypes.CDLL] = {}


def _build_key(source: str, cc: str, flags: tuple[str, ...] = _CFLAGS) -> str:
    payload = "\n".join(
        [
            f"abi={NATIVE_ABI_VERSION}",
            f"cc={_compiler_id(cc)}",
            f"flags={' '.join(flags)}",
            source,
        ]
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _build_shared_object(
    source: str, cc: str, flags: tuple[str, ...] = _CFLAGS
) -> Path:
    """Compile *source* into the disk cache; return the ``.so`` path.

    Content-addressed: an existing object for the same (source,
    compiler, flags) is reused without invoking the compiler.  The
    compile itself targets a temporary file atomically renamed into
    place, so a concurrent process building the same key either sees
    nothing at the final path or a complete object, never a partial
    write; racing builders produce identical bytes and the last rename
    wins benignly.  The temporary carries a ``.so.tmp`` suffix so cache
    scans matching ``*.so`` cannot pick up an in-flight object, and the
    finished file is opened up to the usual read bits (``mkstemp``
    creates mode 0600, which would break a cache shared between users).
    """
    cache = native_cache_dir()
    key = _build_key(source, cc, flags)
    so_path = cache / f"{key}.so"
    if so_path.exists():
        return so_path
    try:
        faults.check("native.cache.write")
        cache.mkdir(parents=True, exist_ok=True)
        c_path = cache / f"{key}.c"
        if not c_path.exists():
            tmp_c = tempfile.NamedTemporaryFile(
                "w", dir=cache, suffix=".c.tmp", delete=False
            )
            with tmp_c as fh:
                fh.write(source)
            os.chmod(tmp_c.name, 0o644)
            os.replace(tmp_c.name, c_path)
        tmp_fd, tmp_so = tempfile.mkstemp(dir=cache, suffix=".so.tmp")
        os.close(tmp_fd)
    except OSError as exc:
        # Unwritable cache dir (read-only volume, permissions): a cache
        # problem must degrade like a build problem, not crash the run.
        raise NativeBuildError(
            f"cannot write native cache at {cache}: {exc}"
        ) from exc
    cmd = [cc, *flags, "-o", tmp_so, str(c_path), "-lm"]
    try:
        proc = _invoke_cc(cmd, what=str(c_path))
    except NativeBuildError:
        _unlink_quiet(tmp_so)
        raise
    if proc.returncode != 0:
        _unlink_quiet(tmp_so)
        raise NativeBuildError(
            f"{cc} failed (exit {proc.returncode}) on {c_path}:\n{proc.stderr}"
        )
    try:
        os.chmod(tmp_so, 0o755)
        os.replace(tmp_so, so_path)
    except OSError as exc:
        _unlink_quiet(tmp_so)
        raise NativeBuildError(
            f"cannot finalise native cache entry {so_path}: {exc}"
        ) from exc
    return so_path


def _unlink_quiet(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


def _load_library(so_path: Path) -> ctypes.CDLL:
    key = str(so_path)
    with _lib_lock:
        lib = _lib_memo.get(key)
        if lib is None:
            faults.check("native.cache.load")
            lib = _lib_memo[key] = ctypes.CDLL(key)
        return lib


def _build_and_load(
    source: str, cc: str, flags: tuple[str, ...] = _CFLAGS
) -> tuple[ctypes.CDLL, Path]:
    """Build (or reuse) and load *source*, recovering a corrupt cache entry.

    A truncated or garbage ``.so`` at the content-keyed path — left by a
    crashed writer predating the atomic-rename scheme, or by disk
    corruption — makes ``CDLL`` raise ``OSError`` forever on a pure
    cache-hit path.  Since the file is content-addressed, deleting it
    and rebuilding once is always safe and self-heals the cache.
    """
    so_path = _build_shared_object(source, cc, flags)
    try:
        return _load_library(so_path), so_path
    except OSError:
        with _lib_lock:
            _lib_memo.pop(str(so_path), None)
        try:
            os.unlink(so_path)
        except OSError:
            pass
        so_path = _build_shared_object(source, cc, flags)
        return _load_library(so_path), so_path


# -- host-targeted flags for fused builds -------------------------------------

_host_flags_memo: dict[str, tuple[str, ...]] = {}


def _host_cflags(cc: str) -> tuple[str, ...]:
    """Extra codegen flags targeting the build host, probed once per cc.

    Fused nests bake their geometry per binding, so they can afford
    host-specific code generation: ``-march=native`` lets the compiler
    vectorise the merged loops with the widest units available.  This
    preserves the bitwise contract — with ``-ffp-contract=off`` every
    SIMD lane performs the same IEEE-754 add/mul/div/sqrt the scalar
    code would, libm calls stay scalar (no ``-ffast-math``), and the
    fuzz suite asserts identity empirically.  Probed with a one-line
    compile because some toolchains/targets reject the flag; on failure
    fused builds silently use the baseline flags.
    """
    cached = _host_flags_memo.get(cc)
    if cached is not None:
        return cached
    flags: tuple[str, ...] = ("-march=native",)
    try:
        _build_shared_object(
            "int repro_march_probe(void) { return 0; }\n", cc, _CFLAGS + flags
        )
    except NativeBuildError:
        flags = ()
    _host_flags_memo[cc] = flags
    return flags


# -- OpenMP capability and thread-count resolution ----------------------------

_OMP_PROBE_SOURCE = (
    "#include <omp.h>\n"
    "int repro_omp_probe(void) {\n"
    "  int n = 0;\n"
    "#pragma omp parallel num_threads(2)\n"
    "  { n = omp_get_num_threads(); }\n"
    "  return n;\n"
    "}\n"
)

_OMP_UNPROBED = object()
_omp_flags_memo: dict[str, tuple[str, ...] | None] = {}


def _omp_cflags(cc: str) -> tuple[str, ...] | None:
    """OpenMP build flags for *cc*, probed once; None when unsupported.

    Same shape as the ``-march=native`` probe: compile a small OpenMP
    translation unit once per compiler and memoise the verdict.  Some
    toolchains (pared-down clang, tcc) accept no ``-fopenmp`` or lack
    ``libgomp``; for them threaded requests degrade to the serial
    native library — bitwise identical, one warning.  The
    ``native.omp.probe`` fault point lets the chaos suite force that
    degradation deterministically.
    """
    cached = _omp_flags_memo.get(cc, _OMP_UNPROBED)
    if cached is not _OMP_UNPROBED:
        return cached
    flags: tuple[str, ...] | None = ("-fopenmp",)
    try:
        faults.check("native.omp.probe")
        _build_shared_object(_OMP_PROBE_SOURCE, cc, _CFLAGS + flags)
    except NativeBuildError:
        flags = None
    _omp_flags_memo[cc] = flags
    return flags


def native_thread_count(config) -> int:
    """Resolved OpenMP thread count for a native binding of *config*.

    Knob precedence, highest first: an explicit
    ``ExecutionConfig(native_threads=…)``; the ``REPRO_NATIVE_THREADS``
    environment variable (read here, at bind time); the serial default
    of 1.  Invalid or non-positive values resolve to 1 — a
    misconfigured knob must not take the run down.  Disciplines that
    already own the parallelism or need per-statement granularity
    resolve to serial regardless: python-threaded plans
    (``num_threads > 1``), the scatter discipline, and the divergence
    watchdog (``check="nan"``).

    >>> from repro.runtime import ExecutionConfig, native_thread_count
    >>> native_thread_count(ExecutionConfig(backend="native", native_threads=4))
    4
    >>> native_thread_count(                # scatter owns its threading
    ...     ExecutionConfig(num_threads=2, scatter=True, native_threads=4))
    1
    """
    nt = config.native_threads
    if nt is None:
        raw = os.environ.get("REPRO_NATIVE_THREADS", "")
        try:
            nt = int(raw)
        except ValueError:
            nt = 1
    if nt < 1:
        nt = 1
    if nt > 1 and (
        config.num_threads > 1 or config.scatter or config.check == "nan"
    ):
        return 1
    return nt


# -- per-kernel native library ------------------------------------------------


class NativeLibrary:
    """The loaded native functions of one compiled kernel.

    Holds the per-statement entry points (keyed by region identity and
    statement index) and the chain runner.  Constructed once per kernel
    via :func:`library_for_kernel` and shared by every plan/binding of
    that kernel.
    """

    def __init__(
        self, kernel, cdll: ctypes.CDLL, manifest, so_path: Path,
        nthreads: int = 1,
    ):
        self.kernel = kernel
        self.so_path = so_path
        self.nthreads = nthreads
        self._fns: dict[tuple[int, int], ctypes._CFuncPtr] = {}
        self._region_index = {id(r): ri for ri, r in enumerate(kernel.regions)}
        for (ri, si), fname in manifest.items():
            fn = getattr(cdll, fname)
            fn.restype = None
            fn.argtypes = (ctypes.POINTER(ctypes.c_void_p), _I64P)
            self._fns[(ri, si)] = fn
        runner = getattr(cdll, CHAIN_RUNNER_NAME)
        runner.restype = None
        runner.argtypes = (_I64, ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p)
        self.run_chain = runner

    @property
    def statement_count(self) -> int:
        return len(self._fns)

    def stmt_fn(self, region, si: int):
        """The native entry for statement *si* of *region*, or None."""
        ri = self._region_index.get(id(region))
        if ri is None:
            return None
        return self._fns.get((ri, si))


def library_for_kernel(kernel, nthreads: int = 1) -> NativeLibrary | None:
    """The (memoised) native library for *kernel*, or None on fallback.

    Memoised on the kernel object together with the toolchain used, so a
    kernel cached across a toolchain change (e.g. tests pinning
    ``REPRO_CC``) revalidates instead of reusing a stale verdict.
    Returns None — warning once per process per reason — when no
    toolchain exists or the build fails.

    ``nthreads > 1`` requests the OpenMP-threaded library variant
    (memoised separately per ``(toolchain, nthreads)``).  The threaded
    ladder degrades one rung at a time, bitwise-identically at each:
    no OpenMP support or a failed threaded build falls back to the
    *serial native* library (warning once), and only a missing
    toolchain or failed serial build falls all the way to the python
    path.
    """
    cc = native_toolchain()
    if nthreads <= 1:
        memo = getattr(kernel, "_native", None)
        if memo is not None and memo[0] == cc:
            return memo[1]
        lib: NativeLibrary | None = None
        if cc is None:
            _warn_once(
                "no-toolchain",
                "backend='native' requested but no C compiler was found "
                "(checked REPRO_CC, cc, gcc, clang); falling back to the "
                "python backend — results are identical, only slower",
            )
        else:
            try:
                source, manifest = generate_native_source(kernel)
                cdll, so_path = _build_and_load(source, cc)
                lib = NativeLibrary(kernel, cdll, manifest, so_path)
            except (NativeBuildError, OSError) as exc:
                # OSError covers a cache entry that stays unloadable even
                # after _build_and_load's one-shot self-heal rebuild.
                _warn_once(
                    f"build-failed:{kernel.name}",
                    f"native build of kernel {kernel.name!r} failed "
                    f"(cache: {native_cache_dir()}); falling back to the "
                    f"python backend — results are identical, only slower: "
                    f"{exc}",
                )
                lib = None
        kernel._native = (cc, lib)
        return lib
    if cc is None:
        # The serial path owns the no-toolchain warning and verdict.
        return library_for_kernel(kernel, 1)
    memo_mt = getattr(kernel, "_native_mt", None)
    if memo_mt is None:
        memo_mt = kernel._native_mt = {}
    key = (cc, nthreads)
    if key in memo_mt:
        return memo_mt[key]
    omp = _omp_cflags(cc)
    if omp is None:
        _warn_once(
            f"no-openmp:{cc}",
            f"native_threads={nthreads} requested but {cc} cannot build "
            f"OpenMP code (the -fopenmp probe failed); falling back to "
            f"the serial native path — results are identical",
        )
        lib = library_for_kernel(kernel, 1)
    else:
        try:
            source, manifest = generate_native_source(kernel, nthreads)
            cdll, so_path = _build_and_load(source, cc, _CFLAGS + omp)
            lib = NativeLibrary(
                kernel, cdll, manifest, so_path, nthreads=nthreads
            )
        except (NativeBuildError, OSError) as exc:
            _warn_once(
                f"mt-build-failed:{kernel.name}",
                f"threaded native build of kernel {kernel.name!r} failed "
                f"(cache: {native_cache_dir()}); falling back to the "
                f"serial native path — results are identical: {exc}",
            )
            lib = library_for_kernel(kernel, 1)
    memo_mt[key] = lib
    return lib


# -- bound native statements and chains ---------------------------------------


class NativeStatement:
    """One statement of one work unit, bound to native code.

    The counterpart of :class:`~repro.runtime.bound._BoundStatement`:
    everything — data pointers, box bounds, element strides — is packed
    into ctypes buffers once at bind time; :meth:`run` is a single
    foreign call.  Holds references to the bound arrays so the pointers
    stay valid for the binding's lifetime.
    """

    __slots__ = ("fn", "ptrs", "geom", "arrays")

    def __init__(self, fn, ptrs, geom, arrays) -> None:
        self.fn = fn
        self.ptrs = ptrs
        self.geom = geom
        self.arrays = arrays  # keepalive: pointers reference their data

    def run(self) -> None:
        self.fn(self.ptrs, self.geom)


def make_native_statement(
    lib: NativeLibrary, region, si: int, stmt, arrays, eff
) -> NativeStatement | None:
    """Bind statement *si* of *region* natively, or None to fall back.

    Returns None when the library has no entry for the statement (it
    was ineligible at lowering time) or when the concrete *arrays*
    break a lowering assumption: dtype differing from the kernel dtype,
    strides not a whole number of elements, or a read-only target.
    """
    fn = lib.stmt_fn(region, si)
    if fn is None:
        return None
    expected = np.dtype(region.dtype)
    target = arrays[stmt.target.name]
    if not target.flags.writeable:
        return None
    involved = [target] + [arrays[acc.name] for acc in stmt.reads]
    itemsize = expected.itemsize
    geom_vals: list[int] = []
    for lo, hi in eff:
        geom_vals.extend((lo, hi))
    for arr, acc in zip(involved[1:], stmt.reads):
        # Lowering gated same-*name* self-reads (and emitted the loop
        # without `restrict` for them); arrays aliasing the target under
        # a *different* name are only discoverable here.  The fused C
        # loop would read freshly written elements (and break the
        # `restrict` promise), so fall back to the Python statement's
        # snapshot semantics.  may_share_memory is the cheap bounds
        # check: false positives merely cost the fallback.
        if acc.name != stmt.target.name and np.may_share_memory(target, arr):
            return None
    for arr, acc in zip(involved, (stmt.target, *stmt.reads)):
        if arr.dtype != expected:
            return None
        if arr.ndim != len(acc.slots):
            # Rank mismatch: the Python path's view construction (one
            # slot per array dimension) fails loudly on these; the C
            # index formula would silently address only the leading
            # dimensions.  Fall back so the error surfaces identically.
            return None
        strides = arr.strides
        for slot, (axis, off) in enumerate(acc.slots):
            lo, hi = eff[axis]
            if lo + off < 0 or hi + 1 + off > arr.shape[slot]:
                # Out-of-bounds access (e.g. arrays smaller than the
                # kernel bounds): fall back so the Python statement's
                # _frame_view raises the proper KernelError instead of
                # the C loop scribbling past the buffer.
                return None
            stride = strides[slot]
            if stride % itemsize:
                return None  # misaligned view: NumPy path handles it
            geom_vals.append(stride // itemsize)
    ptrs = (ctypes.c_void_p * len(involved))(
        *(arr.ctypes.data for arr in involved)
    )
    geom = (_I64 * len(geom_vals))(*geom_vals)
    return NativeStatement(fn, ptrs, geom, tuple(involved))


class FusedStatement(NativeStatement):
    """A whole fused statement group bound to one generated C loop nest.

    Runs exactly like a :class:`NativeStatement` — same calling
    convention, same keepalive discipline — so chains, counters and the
    serial runner treat it uniformly; ``members`` records how many
    source statements the nest replaces (the sweep-count bookkeeping).
    """

    __slots__ = ("members",)

    def __init__(self, fn, ptrs, geom, arrays, members: int) -> None:
        super().__init__(fn, ptrs, geom, arrays)
        self.members = members


def make_fused_statement(
    kernel, entries, arrays, nthreads: int = 1
) -> FusedStatement | None:
    """Bind one fusion group natively, or None to fall back group-wise.

    ``nthreads > 1`` requests an OpenMP-threaded nest; the generator
    applies it only when the group's dependences allow partitioning the
    outer axis (:func:`repro.core.fusion.parallel_safe_group`), and a
    compiler without OpenMP support quietly builds the serial nest.

    *entries* is the entry tuple of a fused
    :class:`~repro.core.fusion.FusionGroup` (dependence-legal by
    construction); *arrays* the concrete binding.  The bind gates mirror
    :func:`make_native_statement` — dtype, rank, bounds, element-aligned
    strides, writeable targets — plus the cross-name aliasing check
    applied group-wide: the dependence analysis reasons per array
    *name*, so any written array sharing memory with a differently-named
    array of the group voids it.  Any gate failing, or the generate/
    build step raising, leaves the group on the per-statement path
    (native or Python), bitwise identical by construction.
    """
    cc = native_toolchain()
    if cc is None:
        return None
    expected = np.dtype(entries[0].dtype)
    itemsize = expected.itemsize
    order: list[str] = []
    written: set[str] = set()
    for entry in entries:
        st = entry.stmt
        for name in (st.target.name, *(acc.name for acc in st.reads)):
            if name not in order:
                order.append(name)
        written.add(st.target.name)
    involved: dict[str, np.ndarray] = {}
    for name in order:
        arr = arrays.get(name)
        if arr is None or arr.dtype != expected:
            return None
        if any(s % itemsize for s in arr.strides):
            return None
        involved[name] = arr
    for name in written:
        if not involved[name].flags.writeable:
            return None
        for other in order:
            if other != name and np.may_share_memory(
                involved[name], involved[other]
            ):
                return None
    for entry in entries:
        st = entry.stmt
        for acc in (st.target, *st.reads):
            arr = involved[acc.name]
            if arr.ndim != len(acc.slots):
                return None
            for slot, (axis, off) in enumerate(acc.slots):
                lo, hi = entry.box[axis]
                if lo + off < 0 or hi + 1 + off > arr.shape[slot]:
                    return None
    flags = _CFLAGS + _host_cflags(cc)
    if nthreads > 1:
        omp = _omp_cflags(cc)
        if omp is None:
            nthreads = 1
        else:
            flags += omp
    try:
        source, fn_name, ptr_order = generate_fused_source(
            entries, involved, kernel.counters, nthreads
        )
        cdll, _ = _build_and_load(source, cc, flags)
    except (CodegenError, NativeBuildError, OSError) as exc:
        _warn_once(
            f"fused-build-failed:{kernel.name}",
            f"fused native build for kernel {kernel.name!r} failed "
            f"(cache: {native_cache_dir()}); the group falls back to "
            f"per-statement execution: {exc}",
        )
        return None
    fn = getattr(cdll, fn_name)
    fn.restype = None
    fn.argtypes = (ctypes.POINTER(ctypes.c_void_p), _I64P)
    arrs = tuple(involved[name] for name in ptr_order)
    ptrs = (ctypes.c_void_p * len(arrs))(*(a.ctypes.data for a in arrs))
    geom = (_I64 * 1)(0)  # unused: the fused nest bakes its geometry
    return FusedStatement(fn, ptrs, geom, arrs, len(entries))


class NativeChain:
    """A run of consecutive native statements executed in one C call.

    Packs the statements' function pointers and argument blocks into
    arrays the generated chain runner walks, so an all-native serial
    plan crosses the FFI once per timestep rather than once per
    statement.
    """

    __slots__ = ("run_chain", "n", "fns", "ptrss", "geoms", "stmts")

    def __init__(self, run_chain, stmts: list[NativeStatement]) -> None:
        self.run_chain = run_chain
        self.n = len(stmts)
        self.stmts = tuple(stmts)  # keepalive for the argument blocks
        self.fns = (ctypes.c_void_p * self.n)(
            *(ctypes.cast(s.fn, ctypes.c_void_p).value for s in stmts)
        )
        self.ptrss = (ctypes.c_void_p * self.n)(
            *(ctypes.addressof(s.ptrs) for s in stmts)
        )
        self.geoms = (ctypes.c_void_p * self.n)(
            *(ctypes.addressof(s.geom) for s in stmts)
        )

    def run(self) -> None:
        self.run_chain(self.n, self.fns, self.ptrss, self.geoms)


def chain_runnables(lib: NativeLibrary | None, stmts: list) -> list:
    """Collapse consecutive native statements into chains.

    *stmts* is a task's ordered list of bound statements (native or
    Python); the returned list preserves execution order, replacing
    every maximal run of :class:`NativeStatement` with one
    :class:`NativeChain`.  With no library (fallback) the list is
    returned unchanged.

    >>> from repro.runtime.native import chain_runnables
    >>> chain_runnables(None, ["python-stmt-a", "python-stmt-b"])
    ['python-stmt-a', 'python-stmt-b']
    """
    if lib is None:
        return stmts
    out: list = []
    run: list[NativeStatement] = []
    for s in stmts:
        if isinstance(s, NativeStatement):
            run.append(s)
            continue
        if run:
            out.append(run[0] if len(run) == 1 else NativeChain(lib.run_chain, run))
            run = []
        out.append(s)
    if run:
        out.append(run[0] if len(run) == 1 else NativeChain(lib.run_chain, run))
    return out
