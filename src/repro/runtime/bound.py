"""Bound execution plans: allocation-free steady-state kernel runs.

The paper's measured regime is steady state — one compiled adjoint
stencil executed for thousands of timesteps on fixed-size arrays — where
per-iteration overhead, not compilation, decides throughput.  The
:class:`~repro.runtime.plan.ExecutionPlan` (PR 1) froze the work
*decomposition*; this module freezes the work *bindings*: everything an
``ExecutionPlan.run`` call used to redo per timestep that is invariant
for a fixed set of arrays.

:meth:`ExecutionPlan.bind(arrays) <repro.runtime.plan.ExecutionPlan.bind>`
resolves, once per (plan, arrays):

* every per-unit per-statement ndarray **view** — the slice/moveaxis/
  reshape geometry ``_frame_view``/``_target_view_and_missing`` used to
  rebuild on every call;
* **counter arrays** — bare loop counters materialise as ``np.arange``
  arrays cached process-wide per ``(axis, lo, hi, dim, dtype)`` instead
  of being reallocated per statement per call;
* a per-statement **ufunc slot pool** so the expression itself evaluates
  through ``out=``-style in-place NumPy ops (see below);
* for the scatter discipline, **persistent thread-private scratch**
  arrays that are zeroed in place per run instead of ``np.zeros_like``
  per task per run.

After a warm-up call (which lets NumPy size and type the slot buffers),
a steady-state :meth:`BoundPlan.run` performs **zero NumPy array
allocations** for gather kernels built from ``+``, ``*``, ``**`` and
plain ufunc math — the benchmark/test suite asserts this with
``tracemalloc``.

How in-place evaluation stays bitwise identical
-----------------------------------------------

We do *not* re-derive an evaluation order from the SymPy tree (any
re-association would change floating-point results).  Instead the bound
statement calls the *same* ``lambdify``-generated ``eval_fn`` as the
allocating path, but passes :class:`_Operand` wrappers around the
pre-resolved views.  Every NumPy operation inside the generated code
then dispatches through ``_Operand.__array_ufunc__``, which executes the
identical ufunc on the identical operands — only routing the result into
a preallocated slot buffer via ``out=``.  The op-site sequence of a
generated expression is fixed (no data-dependent branches survive
compilation), so slot ``k`` of a statement always receives the result of
the same operation on the same shapes and dtypes: the first call
allocates each slot from the ufunc's own natural result, and subsequent
calls replay into it.  The computation is therefore bitwise identical to
the allocating path by construction, for every discipline.

Statements whose expression contains constructs that do not evaluate as
pure ufunc calls (user-bound functions, ``Heaviside``/``DiracDelta``
fallbacks, ``Piecewise``) keep the allocating ``eval_fn`` path — still
through pre-resolved views, so they avoid the per-call geometry work.

Lifetime and invalidation
-------------------------

A ``BoundPlan`` holds concrete views into the arrays it was bound to.
It is valid exactly as long as the mapping still contains the *same
array objects*; :meth:`BoundPlan.matches` checks that cheaply, and
``ExecutionPlan.run`` rebinds automatically when a caller replaces an
array (see the plan's bounded bind-memo).  Rebinding is required after
replacing any array object in the mapping; resizing is impossible
without replacement, and in-place value updates (``arr[...] = ...``)
never invalidate a binding.

Threading caveats: slot pools and scatter scratch are private to one
work task, so one ``BoundPlan`` may run its own tasks concurrently; but
a single ``BoundPlan`` must not be entered by two *callers* at once (the
same is true of the unbound path, which mutates the same arrays).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Mapping, Sequence

import numpy as np
import sympy as sp

from ..codegen.native_c import native_eligibility
from ..core.fusion import FusionEntry, describe_groups, plan_groups
from ..errors import (
    KernelError,
    NumericalDivergenceError,
    ReproError,
    ValidationError,
)
from . import faults
from .compiler import (
    CompiledStatement,
    RegionKernel,
    _frame_view,
    _target_view_and_missing,
)
from .native import (
    NativeStatement,
    chain_runnables,
    library_for_kernel,
    make_fused_statement,
    make_native_statement,
    native_thread_count,
)

__all__ = ["BoundPlan"]

Box = tuple[tuple[int, int], ...]


# -- cached counter arrays ----------------------------------------------------

_COUNTER_CACHE: dict[tuple, np.ndarray] = {}
_COUNTER_LOCK = threading.Lock()


def _counter_array(
    axis: int,
    lo: int,
    hi: int,
    dim: int,
    dtype,
    frame_shape: tuple[int, ...] | None = None,
) -> np.ndarray:
    """The frame-aligned counter values for one bare loop counter.

    Cached process-wide and marked read-only: every plan bound over the
    same (axis, range, rank, dtype) shares one array instead of
    materialising a fresh ``np.arange`` per statement per call.  With
    *frame_shape*, the values are materialised full-frame and contiguous
    (what the in-place ufunc path needs — broadcast operands would make
    NumPy buffer internally); those constant arrays are cached under the
    extended key so every statement, task and binding over the same
    frame shares one copy.
    """
    key = (axis, lo, hi, dim, np.dtype(dtype).str, frame_shape)
    arr = _COUNTER_CACHE.get(key)
    if arr is None:
        shape = [1] * dim
        shape[axis] = -1
        arr = np.arange(lo, hi + 1, dtype=dtype).reshape(shape)
        if frame_shape is not None:
            arr = np.ascontiguousarray(np.broadcast_to(arr, frame_shape))
        arr.flags.writeable = False
        with _COUNTER_LOCK:
            arr = _COUNTER_CACHE.setdefault(key, arr)
    return arr


# -- in-place ufunc evaluation -------------------------------------------------

_ALLOWED_FUNCS = (
    sp.sin, sp.cos, sp.tan, sp.asin, sp.acos, sp.atan, sp.atan2,
    sp.sinh, sp.cosh, sp.tanh, sp.exp, sp.log, sp.Abs, sp.sign,
)


def _supports_inplace(stmt: CompiledStatement) -> bool:
    """True when *stmt*'s generated code evaluates as pure ufunc calls.

    Arithmetic (Add/Mul/Pow) and the whitelisted elementary functions
    print to operators and ``numpy.<ufunc>`` calls, all of which dispatch
    through ``__array_ufunc__`` and accept ``out=``.  Anything else —
    user-bound functions, ``Heaviside``/``DiracDelta`` (module-dict
    fallbacks calling ``np.where``), ``Piecewise`` (``numpy.select``) —
    would bypass the protocol, so the statement keeps the allocating
    path.  Memoised on the statement.
    """
    if stmt.inplace_ok is None:
        ok = stmt.rhs_expr is not None
        if ok:
            for node in sp.preorder_traversal(stmt.rhs_expr):
                if isinstance(node, (sp.Add, sp.Mul, sp.Pow)):
                    continue
                if isinstance(node, (sp.Number, sp.NumberSymbol, sp.Symbol)):
                    continue
                if isinstance(node, _ALLOWED_FUNCS):
                    continue
                ok = False
                break
        stmt.inplace_ok = ok
    return stmt.inplace_ok


class _SlotPool:
    """Records one statement's ufunc call sites into a replay tape.

    The generated expression code executes the same ufunc sequence every
    call — no data-dependent branches survive compilation — so the first
    (recording) run captures, per call site, the ufunc, its resolved
    operand objects and its natural result array.  Every operand is
    either a bound view/stage/counter array (stable object, live
    values), an earlier site's result buffer (same), or a Python/NumPy
    scalar folded from constants (stable value).  Replaying
    ``ufunc(*args, out=buf)`` over the tape therefore recomputes the
    identical expression with zero allocations and without re-entering
    the generated code.  ``dirty`` flags dispatches the tape cannot
    represent (never produced by whitelisted expressions); the statement
    then stays on per-call wrapped evaluation.
    """

    __slots__ = ("tape", "dirty")

    def __init__(self) -> None:
        self.tape: list[tuple] = []
        self.dirty = False

    def run(self, ufunc, args):
        res = ufunc(*args)
        if isinstance(res, np.ndarray):
            # Scalar results (constant subexpressions) need no slot: the
            # value is baked into the recorded args of later sites.
            self.tape.append((ufunc, tuple(args), res))
        return res


class _Operand(np.lib.mixins.NDArrayOperatorsMixin):
    """An ndarray wrapper that routes every ufunc into pooled buffers.

    Arithmetic operators come from ``NDArrayOperatorsMixin`` and NumPy
    module functions (``numpy.sin`` ...) dispatch here via the
    ``__array_ufunc__`` protocol, so the lambdify-generated code runs
    unchanged — same ops, same order, same operands — with results
    landing in reused slots instead of fresh allocations.
    """

    __slots__ = ("array", "pool")

    def __init__(self, array, pool: _SlotPool) -> None:
        self.array = array
        self.pool = pool

    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        pool = self.pool
        args = [x.array if type(x) is _Operand else x for x in inputs]
        if method != "__call__" or kwargs:
            # Reductions/kwargs never occur in whitelisted expression
            # code; execute allocating and mark the tape unusable.
            pool.dirty = True
            kwargs = {
                k: (v.array if type(v) is _Operand else v)
                for k, v in kwargs.items()
            }
            res = getattr(ufunc, method)(*args, **kwargs)
            return _Operand(res, pool) if isinstance(res, np.ndarray) else res
        return _Operand(pool.run(ufunc, args), pool)


# -- bound statements / units ---------------------------------------------------


class _BoundStatement:
    """One statement of one work unit, resolved against concrete arrays.

    Holds the read views, counter arrays, target view and reduction
    geometry that the unbound path rebuilt on every call; :meth:`run`
    only computes.

    For in-place-eligible statements every expression operand is kept
    **full-frame and C-contiguous**: NumPy's ufunc machinery internally
    allocates iteration buffers for strided or broadcast operands even
    when ``out=`` is given, so strided/broadcast read views are staged
    into persistent contiguous buffers with ``np.copyto`` (which never
    allocates) at the top of each run, and bare-counter values are
    materialised full-frame once at bind time.  Staging only changes
    operand *layout*, never values, so results stay bitwise identical.
    """

    __slots__ = (
        "eval_fn", "op", "args", "wrapped", "pool", "stages", "tview",
        "tstage", "missing", "sel", "frame_shape", "_red", "_cast",
        "_tape", "_rhs_src", "inplace",
    )

    def __init__(
        self,
        st: CompiledStatement,
        arrays: Mapping[str, np.ndarray],
        eff: Box,
        dtype,
    ) -> None:
        frame_shape = tuple(hi - lo + 1 for lo, hi in eff)
        self.frame_shape = frame_shape
        self.eval_fn = st.eval_fn
        self.op = st.op
        self.inplace = _supports_inplace(st)
        views = [
            _frame_view(arrays[acc.name], acc, eff, st.dim) for acc in st.reads
        ]
        stages: list[tuple[np.ndarray, np.ndarray]] = []
        args: list[np.ndarray] = []
        if self.inplace:
            for v in views:
                if v.shape == frame_shape and v.flags.c_contiguous:
                    args.append(v)
                else:
                    stage = np.empty(frame_shape, dtype=v.dtype)
                    stages.append((stage, v))
                    args.append(stage)
            for axis in st.bare_axes:
                lo, hi = eff[axis]
                args.append(
                    _counter_array(axis, lo, hi, st.dim, dtype, frame_shape)
                )
            self.pool = _SlotPool()
            self.wrapped = tuple(_Operand(a, self.pool) for a in args)
        else:
            args = views
            for axis in st.bare_axes:
                lo, hi = eff[axis]
                args.append(_counter_array(axis, lo, hi, st.dim, dtype))
            self.pool = None
            self.wrapped = None
        self.args = tuple(args)
        self.stages = tuple(stages)
        self.tview, self.missing = _target_view_and_missing(
            arrays[st.target.name], st.target, eff, st.dim
        )
        self.sel = tuple(
            -1 if d in self.missing else slice(None) for d in range(st.dim)
        )
        # '+=' into a strided target would make the final add buffer
        # internally; round-trip through a contiguous stage instead.
        if self.op == "+=" and not self.tview.flags.c_contiguous:
            self.tstage = np.empty(self.tview.shape, dtype=self.tview.dtype)
        else:
            self.tstage = None
        self._red = None
        self._cast = None
        self._tape = None  # None: record next run; False: never tape
        self._rhs_src = None

    def run(self) -> None:
        # Mirrors RegionKernel._execute_statement step for step; every
        # branch performs the same NumPy operation on the same operand
        # values, only with preallocated outputs.
        pool = self.pool
        if pool is None:
            rhs = self.eval_fn(*self.args)
        else:
            for stage, view in self.stages:
                np.copyto(stage, view)
            tape = self._tape
            if tape is None or tape is False:
                pool.tape.clear()
                rhs = self.eval_fn(*self.wrapped)
                if type(rhs) is _Operand:
                    rhs = rhs.array
                if tape is None:  # first run: adopt the recording
                    if pool.dirty:
                        self._tape = False
                    else:
                        self._tape = tuple(pool.tape)
                        self._rhs_src = (
                            rhs if isinstance(rhs, np.ndarray) else np.asarray(rhs)
                        )
                    pool.tape.clear()
            else:
                for ufunc, op_args, out in tape:
                    ufunc(*op_args, out=out)
                rhs = self._rhs_src
        if self.missing:
            if self.op == "+=":
                red = self._red
                if red is None:
                    # np.sum dispatches to np.add.reduce; letting the
                    # first call allocate fixes the replay dtype/shape.
                    rhs = self._red = np.asarray(rhs).sum(axis=self.missing)
                else:
                    np.add.reduce(rhs, axis=self.missing, out=red)
                    rhs = red
            else:
                rhs = np.broadcast_to(np.asarray(rhs), self.frame_shape)[self.sel]
        if not isinstance(rhs, np.ndarray):
            rhs = np.asarray(rhs)
        tview = self.tview
        if rhs.dtype != tview.dtype:
            cast = self._cast
            if cast is None:
                rhs = self._cast = rhs.astype(tview.dtype)
            else:
                np.copyto(cast, rhs, casting="unsafe")
                rhs = cast
        if self.op == "+=":
            tstage = self.tstage
            if tstage is None:
                np.add(tview, rhs, out=tview)
            else:
                np.copyto(tstage, tview)
                np.add(tstage, rhs, out=tstage)
                np.copyto(tview, tstage)
        else:
            np.copyto(tview, rhs)


def _bind_unit(
    region: RegionKernel,
    stmt_boxes: Sequence[Box | None],
    arrays: Mapping[str, np.ndarray],
    native_lib=None,
) -> list:
    """Bind one work unit's statements, native where possible.

    With a native library, each statement that was lowered to C *and*
    whose concrete arrays satisfy the lowering assumptions binds to a
    :class:`~repro.runtime.native.NativeStatement`; everything else
    keeps the Python slot-tape path.  Both expose ``run()``.  Returns
    ``(bound, statement, eff_box)`` triples so the caller can feed the
    fusion planner without re-deriving the statement stream.
    """
    out: list = []
    for si, (st, eff) in enumerate(zip(region.statements, stmt_boxes)):
        if eff is None:
            continue
        bound = None
        if native_lib is not None:
            bound = make_native_statement(native_lib, region, si, st, arrays, eff)
        if bound is None:
            bound = _BoundStatement(st, arrays, eff, region.dtype)
        out.append((bound, st, eff))
    return out


class _CheckedStatement:
    """Divergence-watchdog wrapper: scan the target after each statement.

    Installed by ``ExecutionConfig(check="nan")`` bindings around every
    runnable (fusion and native chaining are disabled there, so the
    granularity is exactly one statement).  After the inner statement
    runs, its written values are scanned; the first non-finite value
    raises :class:`~repro.errors.NumericalDivergenceError` carrying the
    plan's step counter and the statement's identity — turning "the
    simulation went NaN somewhere" into "statement X at step N".
    """

    __slots__ = ("inner", "target", "label", "owner")

    def __init__(self, inner, target: np.ndarray, label: str, owner) -> None:
        self.inner = inner
        self.target = target
        self.label = label
        self.owner = owner

    def run(self) -> None:
        self.inner.run()
        finite = np.isfinite(self.target)
        if not finite.all():
            flat_idx = int(np.argmin(finite.ravel()))
            idx = np.unravel_index(flat_idx, self.target.shape)
            value = self.target[idx]
            step = self.owner._step
            raise NumericalDivergenceError(
                f"non-finite value {value!r} first written at index "
                f"{tuple(int(i) for i in idx)} by statement {self.label} "
                f"during run #{step}",
                step=step,
                statement=self.label,
            )


class _BoundTask:
    """One schedulable task: its runnables plus optional scatter scratch.

    ``items`` are execution-ordered runnables: Python bound statements,
    native statements, or chains of consecutive native statements fused
    into one FFI call.
    """

    __slots__ = ("items", "scratch")

    def __init__(self, items, scratch=None) -> None:
        self.items = tuple(items)
        self.scratch = scratch  # {name: persistent private array} | None

    def run(self) -> None:
        scratch = self.scratch
        if scratch is not None:
            for buf in scratch.values():
                buf[...] = 0
        for s in self.items:
            faults.check("bound.run")
            s.run()


class _BoundRegion:
    """All tasks of one region, plus its scheduling metadata."""

    __slots__ = ("region", "tasks", "barrier", "parallel")

    def __init__(self, region, tasks, barrier, parallel) -> None:
        self.region = region
        self.tasks = tasks
        self.barrier = barrier
        self.parallel = parallel

    def run_serial(self) -> None:
        for t in self.tasks:
            t.run()


# -- the bound plan --------------------------------------------------------------


class BoundPlan:
    """An :class:`~repro.runtime.plan.ExecutionPlan` resolved against arrays.

    Build via :meth:`ExecutionPlan.bind`; ``ExecutionPlan.run`` also
    builds (and memoises) one transparently.  :meth:`run` executes the
    kernel with the discipline fixed at plan-build time, touching only
    compute in steady state.

    >>> from repro import adjoint_loops, heat_problem
    >>> from repro.runtime import compile_nests
    >>> prob = heat_problem(1)
    >>> kernel = compile_nests(
    ...     adjoint_loops(prob.primal, prob.adjoint_map), prob.bindings(16))
    >>> arrays = prob.allocate_state(16, seed=0)
    >>> bound = kernel.plan().bind(arrays)
    >>> for _ in range(10):     # first run records, the rest replay
    ...     bound.run()
    >>> bound.inplace_statement_count == bound.statement_count
    True
    >>> bound.matches(arrays)   # still bound to these exact objects
    True
    >>> bound.matches({**arrays, "u_b": arrays["u_b"].copy()})
    False
    """

    def __init__(self, plan, arrays: Mapping[str, np.ndarray]) -> None:
        self.plan = plan
        config = plan.config
        scatter_mode = config.scatter and config.num_threads > 1
        native_lib = (
            library_for_kernel(plan.kernel, native_thread_count(config))
            if config.backend == "native"
            else None
        )
        shard = getattr(plan, "shard", None)
        if shard is not None:
            # Shard-aware bind: the plan's statement boxes were
            # translated into local slab coordinates, so every bound
            # array must span exactly the shard's slab.  Catching a
            # mismatch here names the rank and the array instead of
            # surfacing as an opaque out-of-bounds view error.
            names = set()
            for rp in plan.region_plans:
                for st in rp.region.statements:
                    names.add(st.target.name)
                    names.update(acc.name for acc in st.reads)
            for name in sorted(names):
                extent = arrays[name].shape[0]
                if extent != shard.slab_extent:
                    raise ValidationError(
                        f"shard rank {shard.rank}: array {name!r} has "
                        f"axis-0 extent {extent} but the shard's slab "
                        f"spans {shard.slab_extent} rows (global rows "
                        f"[{shard.slab_lo}, "
                        f"{shard.slab_lo + shard.slab_extent - 1}]); "
                        f"bind slab-sized arrays"
                    )
        sources: dict[str, np.ndarray] = {}

        def resolve(name: str) -> np.ndarray:
            arr = sources.get(name)
            if arr is None:
                arr = sources[name] = arrays[name]
            return arr

        # Serial configs execute through the cross-task _serial_items
        # chain; threaded/scatter configs execute through per-task
        # chains.  Pack only the variant this config's run() uses —
        # the other would be dead ctypes-array weight per bind.
        serial_mode = config.num_threads == 1
        # The divergence watchdog needs per-statement granularity:
        # chaining and fusion would hide which statement produced the
        # first non-finite value, so both stay off under check="nan".
        check_mode = config.check == "nan"
        regions: list[_BoundRegion] = []
        flat: list = []
        meta: list = []  # (region, statement, eff box) aligned with flat
        for rp, barrier in zip(plan.region_plans, plan.barriers):
            names = {st.target.name for st in rp.region.statements}
            names.update(
                acc.name for st in rp.region.statements for acc in st.reads
            )
            local = {name: resolve(name) for name in sorted(names)}
            written = sorted(
                {st.target.name for st in rp.region.statements}
            )
            tasks = []
            for task_boxes in rp.tasks:
                if scatter_mode:
                    scratch = {
                        name: np.zeros_like(local[name]) for name in written
                    }
                    task_arrays = {**local, **scratch}
                else:
                    scratch = None
                    task_arrays = local
                stmts: list = []
                for boxes in task_boxes:
                    for bound, st, eff in _bind_unit(
                        rp.region, boxes, task_arrays, native_lib
                    ):
                        stmts.append(bound)
                        meta.append((rp.region, st, eff))
                items = (
                    stmts
                    if serial_mode or check_mode
                    else chain_runnables(native_lib, stmts)
                )
                task = _BoundTask(items, scratch)
                tasks.append(task)
                flat.extend(stmts)
            regions.append(_BoundRegion(rp.region, tuple(tasks), barrier, rp.parallel))
        self._sources = sources
        self._regions: tuple[_BoundRegion, ...] = tuple(regions)
        self._flat: tuple = tuple(flat)
        # Dependence-aware fusion is a post-pass over the serial stream:
        # per-statement binds stay (counters, profiler, the reference
        # oracle); fused groups substitute contiguous slices of the
        # execution stream only.  Restricted to serial untiled native
        # bindings — the fused nests bake their geometry, so per-tile or
        # per-thread boxes would mean one compile per tile.
        self.fused_group_count = 0
        self.fused_statement_count = 0
        self._fusion_groups: tuple = ()
        self._fusion_bound: tuple[bool, ...] = ()
        # The *effective* thread count: the library's, after the OpenMP
        # probe and build-failure fallbacks, so fused binds and
        # introspection agree with what the C code actually does.
        self.native_threads = native_lib.nthreads if native_lib else 1
        stream: list = flat
        if (
            serial_mode
            and native_lib is not None
            and config.fusion != "off"
            and config.tile_shape is None
            and not scatter_mode
            and not check_mode
        ):
            stream = self._apply_fusion(flat, meta)
        # Reliability bookkeeping: the run counter feeds the divergence
        # watchdog's reports; written-array identities and their lazily
        # allocated backups implement the transactional guard.
        self._step = 0
        written_names = sorted(
            {
                st.target.name
                for rp in plan.region_plans
                for st in rp.region.statements
            }
        )
        self._written = tuple(
            sources[name] for name in written_names if name in sources
        )
        self._backups: tuple | None = None
        if check_mode:
            labels = {
                id(b): f"{st.target.name!r} of region {region.name!r}"
                for b, (region, st, _eff) in zip(flat, meta)
            }

            def _wrap(bound):
                target = (
                    bound.arrays[0]
                    if isinstance(bound, NativeStatement)
                    else bound.tview
                )
                return _CheckedStatement(bound, target, labels[id(bound)], self)

            for br in regions:
                for task in br.tasks:
                    task.items = tuple(_wrap(s) for s in task.items)
            stream = [_wrap(s) for s in stream]
        # Serial execution order is the flat statement order, so chain
        # across region/task boundaries: a fully native kernel runs one
        # FFI call per timestep.  (Unused — and unchained — for
        # threaded/scatter configs, whose run() goes through the tasks.)
        if serial_mode:
            self._serial_items: tuple = (
                tuple(stream)
                if check_mode
                else tuple(chain_runnables(native_lib, stream))
            )
        else:
            self._serial_items = self._flat

    def _apply_fusion(self, flat: list, meta: list) -> list:
        """Substitute fused groups into the serial execution stream.

        Plans groups over the bound statement stream (statements that
        fell back to Python, or were never lowered, enter as blocked
        singletons), then binds each multi-statement group to one
        generated nest.  A group failing a bind-time gate or its build
        keeps its original per-statement slice — fallback is per group,
        never all-or-nothing.
        """
        kernel = self.plan.kernel
        dim = len(kernel.counters)
        entries = []
        for bound, (region, st, eff) in zip(flat, meta):
            dtype_name = (
                getattr(region.dtype, "__name__", None) or str(region.dtype)
            )
            if isinstance(bound, NativeStatement):
                blocker = None
            else:
                blocker = native_eligibility(st, dim, region.dtype) or (
                    "bind-time native fallback (arrays failed a lowering gate)"
                )
            entries.append(
                FusionEntry(
                    stmt=st, box=eff, dim=dim, dtype=dtype_name, blocker=blocker
                )
            )
        groups = plan_groups(entries)
        stream: list = []
        bound_flags: list[bool] = []
        pos = 0
        for group in groups:
            n = len(group.entries)
            fused = None
            if group.fused:
                fused = make_fused_statement(
                    kernel, group.entries, self._sources,
                    nthreads=self.native_threads,
                )
            if fused is not None:
                stream.append(fused)
                self.fused_group_count += 1
                self.fused_statement_count += fused.members
                bound_flags.append(True)
            else:
                stream.extend(flat[pos:pos + n])
                bound_flags.append(False)
            pos += n
        self._fusion_groups = tuple(groups)
        self._fusion_bound = tuple(bound_flags)
        return stream

    # -- queries -----------------------------------------------------------

    @property
    def regions(self) -> tuple[_BoundRegion, ...]:
        """Bound regions in execution order (used by the profiler)."""
        return self._regions

    @property
    def statement_count(self) -> int:
        return len(self._flat)

    @property
    def inplace_statement_count(self) -> int:
        """Statements running through the allocation-free ufunc slots."""
        return sum(1 for s in self._flat if getattr(s, "inplace", False))

    @property
    def native_statement_count(self) -> int:
        """Statements dispatched to JIT-built C (0 on the python backend)."""
        return sum(1 for s in self._flat if isinstance(s, NativeStatement))

    @property
    def sweep_count(self) -> int:
        """Memory sweeps per serial run after fusion.

        Each unfused statement is one pass over its arrays; each fused
        group is one.  Without fusion this equals ``statement_count``.
        """
        return (
            self.statement_count
            - self.fused_statement_count
            + self.fused_group_count
        )

    def fusion_explain(self) -> list[str]:
        """Human lines describing what fused and why the rest did not.

        Backs ``repro fuse --explain``.  Groups that planned fusable but
        failed a bind-time gate (aliasing arrays, a failed build) are
        annotated — they execute per-statement.
        """
        if not self._fusion_groups:
            return [
                "fusion inactive for this binding (python backend, "
                "threaded/tiled/scatter config, fusion='off', or no C "
                "toolchain)"
            ]
        lines = describe_groups(self._fusion_groups)
        for gi, (group, ok) in enumerate(
            zip(self._fusion_groups, self._fusion_bound)
        ):
            if group.fused and not ok:
                lines.append(
                    f"group {gi}: planned fusable but failed a bind-time "
                    f"gate; executing per-statement"
                )
        lines.append(
            f"sweeps per timestep: {self.sweep_count} "
            f"({self.statement_count} statements; {self.fused_group_count} "
            f"fused groups covering {self.fused_statement_count})"
        )
        return lines

    def matches(self, arrays: Mapping[str, np.ndarray]) -> bool:
        """True while *arrays* still holds the exact bound array objects.

        Replacing an array object (rather than updating values in place)
        invalidates the binding; ``ExecutionPlan.run`` uses this check to
        rebind transparently.
        """
        for name, arr in self._sources.items():
            if arrays.get(name) is not arr:
                return False
        return True

    # -- execution ---------------------------------------------------------

    def run(self, pool: ThreadPoolExecutor | None = None) -> None:
        """Execute the bound kernel (all disciplines, like the plan's run).

        With ``ExecutionConfig(transactional=True)``, a statement
        raising mid-run restores every written array to its pre-call
        contents before the exception propagates (re-typed as
        :class:`~repro.errors.KernelError` unless already a
        :class:`~repro.errors.ReproError`) — the graceful-degradation
        contract's "no half-updated user arrays" clause.  Off by
        default: the backup copy costs one memory sweep per run, which
        the fused native hot path cannot afford.
        """
        self._step += 1
        if not self.plan.config.transactional:
            self._run_inner(pool)
            return
        backups = self._backups
        if backups is None:
            backups = self._backups = tuple(
                (arr, np.empty_like(arr)) for arr in self._written
            )
        for arr, buf in backups:
            np.copyto(buf, arr)
        try:
            self._run_inner(pool)
        except BaseException as exc:
            for arr, buf in backups:
                np.copyto(arr, buf)
            if isinstance(exc, ReproError) or not isinstance(exc, Exception):
                raise
            raise KernelError(
                f"bound run of kernel {self.plan.kernel.name!r} failed "
                f"mid-execution; user arrays were restored: {exc}"
            ) from exc

    def _run_inner(self, pool: ThreadPoolExecutor | None) -> None:
        config = self.plan.config
        if config.scatter and config.num_threads > 1:
            self._run_scatter(pool)
        elif config.num_threads > 1:
            self._run_threaded(pool)
        else:
            for s in self._serial_items:
                faults.check("bound.run")
                s.run()

    def _run_threaded(self, pool: ThreadPoolExecutor | None) -> None:
        """Gather discipline: concurrent tasks, barriers where regions conflict."""
        pool = pool or self.plan._ensure_pool()
        futures = []
        for br in self._regions:
            if br.barrier and futures:
                for f in futures:
                    f.result()
                futures.clear()
            if br.parallel:
                for task in br.tasks:
                    futures.append(pool.submit(task.run))
            else:
                for task in br.tasks:
                    task.run()
        for f in futures:
            f.result()

    def _run_scatter(self, pool: ThreadPoolExecutor | None) -> None:
        """Scatter discipline: private accumulation, deterministic merge.

        Tasks zero and fill their persistent thread-private scratch
        concurrently; the coordinating thread merges the scratches into
        the global arrays in task-submission order, so threaded scatter
        runs are reproducible call to call.
        """
        pool = pool or self.plan._ensure_pool()
        pending: list[_BoundTask] = []
        futures = []

        def drain() -> None:
            for f in futures:
                f.result()
            futures.clear()
            for task in pending:
                # The deterministic merge: scratches fold into the
                # global arrays in task-submission order.  A failure
                # here leaves the arrays partially merged — exactly the
                # state the transactional guard exists to restore, so
                # the fault point sits inside the loop.
                faults.check("scatter.merge")
                for name, buf in task.scratch.items():
                    tgt = self._sources[name]
                    np.add(tgt, buf, out=tgt)
            pending.clear()

        for br in self._regions:
            if br.barrier and futures:
                drain()
            for task in br.tasks:
                futures.append(pool.submit(task.run))
                pending.append(task)
        drain()
