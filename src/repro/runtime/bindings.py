"""Concrete bindings that turn symbolic loop nests into executable kernels.

A :class:`Bindings` object supplies everything the symbolic representation
left open: integer values for size symbols (``n``), floats for scalar
parameters (``C``, ``D``), Python callables for uninterpreted functions
and their derivatives (``f``, ``f_d1``, ...), and the floating dtype.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np
import sympy as sp

__all__ = ["Bindings"]


@dataclass(frozen=True)
class Bindings:
    """Concrete parameter values for kernel compilation.

    Attributes
    ----------
    sizes:
        Values for the integer size symbols in loop bounds, e.g. ``{n: 256}``.
        Keys may be SymPy symbols or their string names.
    params:
        Values for real scalar parameters, e.g. ``{C: 0.1, D: 0.4}``.
    functions:
        Implementations for uninterpreted functions appearing in the nests,
        keyed by name (``"f"``, ``"f_d1"``, ...).  Each callable receives
        NumPy arrays (or scalars in the interpreter) and must broadcast.
    dtype:
        Floating dtype used for evaluation.
    """

    sizes: Mapping[sp.Symbol | str, int] = field(default_factory=dict)
    params: Mapping[sp.Symbol | str, float] = field(default_factory=dict)
    functions: Mapping[str, Callable] = field(default_factory=dict)
    dtype: type = np.float64

    def _normalised(self, mapping: Mapping) -> dict[str, float]:
        return {str(k): v for k, v in mapping.items()}

    def size_subs(self) -> dict[str, int]:
        return self._normalised(self.sizes)

    def param_subs(self) -> dict[str, float]:
        return self._normalised(self.params)

    def substitute(self, expr: sp.Expr) -> sp.Expr:
        """Substitute sizes and params into a SymPy expression by name."""
        subs = {}
        merged = {**self.size_subs(), **self.param_subs()}
        for s in expr.free_symbols:
            if s.name in merged:
                subs[s] = merged[s.name]
        return expr.subs(subs) if subs else expr

    def int_bound(self, expr: sp.Expr) -> int:
        """Evaluate a loop-bound expression to a concrete int."""
        val = self.substitute(sp.sympify(expr))
        if not val.is_Integer:
            raise ValueError(
                f"loop bound {expr} did not reduce to an integer under "
                f"sizes {dict(self.sizes)} (got {val})"
            )
        return int(val)
