"""Shared-memory parallel execution of compiled kernels.

``ParallelExecutor`` is the OpenMP analogue for this reproduction: each
region's iteration box is statically chunked (:mod:`.scheduler`) and the
chunks run on a thread pool.  NumPy releases the GIL inside large slice
operations, so on a multi-core machine this achieves real concurrency; on
any machine it exercises exactly the decomposition and synchronisation
structure whose *cost model* :mod:`repro.machine` evaluates at the paper's
core counts.

Two execution disciplines are provided:

* **gather** (``run``): regions have disjoint writes (PerforAD adjoints and
  primal stencils), so all blocks of all regions are submitted at once with
  no locking and a single join at the end — "no additional synchronisation
  barriers" (Section 1).
* **serialised scatter** (``run_scatter``): for conventional adjoints whose
  statements scatter into overlapping locations, every write-back takes a
  per-array lock, emulating the serialisation that atomic updates impose;
  the values are still computed concurrently, which is the best case for
  the atomics baseline.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor, wait
from typing import Mapping, Sequence

import numpy as np

from .compiler import CompiledKernel, RegionKernel
from .scheduler import split_box

__all__ = ["ParallelExecutor"]


def _safe_split_axis(region: RegionKernel) -> int | None:
    """Widest axis indexed by *every* statement's write target.

    Splitting along an axis a target does not use would make two blocks
    write the same reduced locations — a race.  Returns None when no axis
    is safe (pure-reduction region), in which case the region runs serially.
    """
    common: set[int] | None = None
    for st in region.statements:
        axes = {axis for axis, _ in st.target.slots}
        common = axes if common is None else (common & axes)
    if not common:
        return None
    extents = {a: region.bounds[a][1] - region.bounds[a][0] + 1 for a in common}
    return max(sorted(common), key=lambda a: extents[a])


class ParallelExecutor:
    """Thread-pool execution of compiled kernels with static chunking."""

    def __init__(self, num_threads: int = 2, min_block_iterations: int = 1024):
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.num_threads = num_threads
        self.min_block_iterations = min_block_iterations
        self._pool: ThreadPoolExecutor | None = None

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "ParallelExecutor":
        self._pool = ThreadPoolExecutor(max_workers=self.num_threads)
        return self

    def __exit__(self, *exc) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.num_threads)
        return self._pool

    # -- gather (race-free) execution ---------------------------------------

    def run(self, kernel: CompiledKernel, arrays: Mapping[str, np.ndarray]) -> None:
        """Execute a gather kernel: all blocks concurrent, one final join.

        Caller is responsible for the kernel having disjoint writes across
        regions *and* along the split axis within each region (true for all
        stencil gather kernels; use
        :func:`repro.runtime.compiler.assert_disjoint_writes` to verify the
        inter-region part).
        """
        if self.num_threads == 1:
            kernel(arrays)
            return
        pool = self._ensure_pool()
        futures = []
        for region in kernel.regions:
            if region.is_empty:
                continue
            if region.iteration_count() < self.min_block_iterations:
                region.execute(arrays)
                continue
            axis = _safe_split_axis(region)
            if axis is None:
                region.execute(arrays)  # reduction target: no safe split
                continue
            for block in split_box(region.bounds, self.num_threads, axis=axis):
                futures.append(pool.submit(region.execute, arrays, block))
        done, _ = wait(futures)
        for f in done:
            f.result()  # propagate exceptions

    # -- scatter (lock-serialised) execution ---------------------------------

    def run_scatter(
        self, kernel: CompiledKernel, arrays: Mapping[str, np.ndarray]
    ) -> None:
        """Execute a scatter kernel with per-array write locks.

        Emulates the parallel structure of the paper's atomics baseline:
        partial results are computed concurrently per block, but updates to
        each output array are serialised by a lock, so writers contend
        exactly as atomic increments do.
        """
        if self.num_threads == 1:
            kernel(arrays)
            return
        pool = self._ensure_pool()
        locks: dict[str, threading.Lock] = {}
        for region in kernel.regions:
            for st in region.statements:
                locks.setdefault(st.target.name, threading.Lock())

        def run_block(region: RegionKernel, block) -> None:
            # Compute into private scratch copies of the written arrays,
            # then merge under the lock (a thread-private reduction with
            # serialised commit — the practical upper bound for atomics).
            written = {st.target.name for st in region.statements}
            scratch = {
                name: (np.zeros_like(arrays[name]) if name in written else arr)
                for name, arr in arrays.items()
            }
            region.execute(scratch, block)
            for name in written:
                with locks[name]:
                    arrays[name] += scratch[name]

        futures = []
        for region in kernel.regions:
            if region.is_empty:
                continue
            for block in split_box(region.bounds, self.num_threads):
                futures.append(pool.submit(run_block, region, block))
        done, _ = wait(futures)
        for f in done:
            f.result()
