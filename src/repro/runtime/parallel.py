"""Shared-memory parallel execution of compiled kernels.

``ParallelExecutor`` is the OpenMP analogue for this reproduction: each
region's iteration box is statically chunked (:mod:`.scheduler`) and the
chunks run on a thread pool.  NumPy releases the GIL inside large slice
operations, so on a multi-core machine this achieves real concurrency; on
any machine it exercises exactly the decomposition and synchronisation
structure whose *cost model* :mod:`repro.machine` evaluates at the paper's
core counts.

Both execution disciplines delegate to the kernel's memoised
:class:`~repro.runtime.plan.ExecutionPlan`, so the decomposition is
computed once per (kernel, configuration); the plan in turn binds (and
memoises per arrays identity) a
:class:`~repro.runtime.bound.BoundPlan`, so callers that reuse one
arrays dict across timesteps run the allocation-free steady-state path
— views, counter arrays and scatter scratch resolved once:

* **gather** (``run``): regions have disjoint writes (PerforAD adjoints and
  primal stencils), so all blocks of all regions are submitted with no
  locking and a single join at the end — "no additional synchronisation
  barriers" (Section 1).  Regions that *read* what an earlier in-flight
  region writes (mixed primal/consumer kernels) are separated by a
  barrier computed at plan build from concrete read/write boxes.
* **serialised scatter** (``run_scatter``): for conventional adjoints whose
  statements scatter into overlapping locations, each block accumulates
  into persistent thread-private scratch (zeroed in place per run) and
  the coordinating thread merges the scratches in deterministic task
  order, emulating the serialisation that atomic updates impose while
  keeping threaded runs reproducible.  The discipline is only exact for
  pure ``+=`` scatter kernels, which
  :func:`~repro.runtime.plan.validate_scatter_kernel` enforces at plan
  build time.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Mapping

import numpy as np

from .compiler import CompiledKernel
from .scheduler import safe_split_axis

__all__ = ["ParallelExecutor"]

# Backwards-compatible alias: the safe-axis analysis now lives with the
# other scheduling decisions in :mod:`.scheduler`.
_safe_split_axis = safe_split_axis


class ParallelExecutor:
    """Thread-pool execution of compiled kernels with static chunking."""

    def __init__(self, num_threads: int = 2, min_block_iterations: int = 1024):
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.num_threads = num_threads
        self.min_block_iterations = min_block_iterations
        self._pool: ThreadPoolExecutor | None = None

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "ParallelExecutor":
        self._pool = ThreadPoolExecutor(max_workers=self.num_threads)
        return self

    def __exit__(self, *exc) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.num_threads)
        return self._pool

    def _plan(self, kernel: CompiledKernel, scatter: bool):
        return kernel.plan(
            num_threads=self.num_threads,
            scatter=scatter,
            min_block_iterations=self.min_block_iterations,
        )

    # -- gather (race-free) execution ---------------------------------------

    def run(self, kernel: CompiledKernel, arrays: Mapping[str, np.ndarray]) -> None:
        """Execute a gather kernel: all blocks concurrent, one final join.

        Caller is responsible for the kernel having disjoint writes across
        regions *and* along the split axis within each region (true for all
        stencil gather kernels; use
        :func:`repro.runtime.compiler.assert_disjoint_writes` to verify the
        inter-region part).
        """
        if self.num_threads == 1:
            kernel(arrays)
            return
        self._plan(kernel, scatter=False).run(arrays, pool=self._ensure_pool())

    # -- scatter (lock-serialised) execution ---------------------------------

    def run_scatter(
        self, kernel: CompiledKernel, arrays: Mapping[str, np.ndarray]
    ) -> None:
        """Execute a scatter kernel with per-array write locks.

        Emulates the parallel structure of the paper's atomics baseline:
        partial results are computed concurrently per block into private
        scratch, and the merge into each output array is serialised by a
        lock, so writers contend exactly as atomic increments do.

        Raises :class:`~repro.runtime.compiler.KernelError` for kernels the
        discipline cannot execute exactly — any ``=``-op statement, or a
        statement reading an array its region writes (the zero-seeded
        scratch would corrupt both).
        """
        if self.num_threads == 1:
            kernel(arrays)
            return
        self._plan(kernel, scatter=True).run(arrays, pool=self._ensure_pool())
