"""Per-region profiling of compiled kernels.

"No optimization without measuring": the profiler wraps a
:class:`~repro.runtime.compiler.CompiledKernel` and records wall-clock
time and iteration counts per region, so the boundary/core cost split the
paper argues about ("the time spent executing the remainder statements
will be insignificant compared with that spent inside the [core] loop",
Section 3.2) can be *measured* rather than assumed.  Timing goes through
the kernel's bound execution plan, so it measures the steady-state
compute path rather than per-call geometry bookkeeping, and arrays are
restored between repeats so every repeat times identical values.  The
``bench_ablation_strategies`` benchmark and the EXPERIMENTS.md notes use
these numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from .compiler import CompiledKernel

__all__ = ["RegionProfile", "KernelProfile", "profile_kernel"]


@dataclass(frozen=True)
class RegionProfile:
    """Timing record for one region loop nest."""

    name: str
    iterations: int
    seconds: float

    @property
    def ns_per_iteration(self) -> float:
        return 1e9 * self.seconds / max(1, self.iterations)


@dataclass(frozen=True)
class KernelProfile:
    """Aggregated per-region profile of one kernel execution."""

    kernel_name: str
    regions: tuple[RegionProfile, ...]

    @property
    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.regions)

    @property
    def total_iterations(self) -> int:
        return sum(r.iterations for r in self.regions)

    def core_fraction(self) -> float:
        """Fraction of time spent in the largest (core) region.

        The paper's Section 3.2 claim is that this approaches 1 for grids
        much larger than the stencil.
        """
        if not self.regions:
            return 0.0
        core = max(self.regions, key=lambda r: r.iterations)
        total = self.total_seconds
        return core.seconds / total if total > 0 else 0.0

    def report(self) -> str:
        lines = [f"kernel {self.kernel_name}: {self.total_seconds * 1e3:.3f} ms total"]
        for r in sorted(self.regions, key=lambda r: -r.seconds):
            lines.append(
                f"  {r.name:24s} {r.iterations:>12d} it "
                f"{r.seconds * 1e3:>9.3f} ms  {r.ns_per_iteration:>8.1f} ns/it"
            )
        return "\n".join(lines)


def profile_kernel(
    kernel: CompiledKernel,
    arrays: Mapping[str, np.ndarray],
    repeats: int = 1,
) -> KernelProfile:
    """Time *kernel* region by region on *arrays* (best of *repeats*).

    Times the planned, bound execution units — the steady-state path the
    timestep loop actually runs — rather than raw ``region.execute``
    calls, which would re-intersect guard boxes and rebuild views on
    every repeat and so measure geometry bookkeeping alongside compute.

    The arrays are snapshotted once up front and restored between
    repeats, so every repeat times the same values (``+=`` statements
    would otherwise accumulate across repeats and later repeats would
    time different data).  On return the arrays hold the result of
    exactly one kernel application, regardless of ``repeats``.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    plan = kernel.plan()
    bound = plan.bind(arrays)
    snapshot = {name: arr.copy() for name, arr in arrays.items()}
    # Warm-up: first bound run sizes the in-place evaluation buffers, so
    # the timed repeats below all measure the steady state.
    bound.run()
    bound_by_region = {id(br.region): br for br in bound.regions}
    best: dict[int, float] = {}
    for _ in range(repeats):
        for name, arr in snapshot.items():
            arrays[name][...] = arr
        for idx, region in enumerate(kernel.regions):
            br = bound_by_region.get(id(region))
            if br is None:  # empty region: no planned work
                best[idx] = 0.0
                continue
            t0 = time.perf_counter()
            br.run_serial()
            dt = time.perf_counter() - t0
            if idx not in best or dt < best[idx]:
                best[idx] = dt
    profiles = tuple(
        RegionProfile(
            name=region.name,
            iterations=region.iteration_count(),
            seconds=best[idx],
        )
        for idx, region in enumerate(kernel.regions)
    )
    return KernelProfile(kernel_name=kernel.name, regions=profiles)
