"""Kernel-as-a-service: a compile-and-serve daemon with dynamic batching.

Every subsystem the "millions of users" north star needs exists in
isolation — the warm :class:`~repro.runtime.cache.KernelCache`, the
content-addressed native ``.so`` cache, member-axis
:class:`~repro.runtime.ensemble.EnsemblePlan` batching — but a fresh
process pays cold-start compilation and every request runs alone.
:class:`KernelServer` is the inference-server move: one long-lived
process owns the warm caches and accepts requests over a Unix-domain
socket, and a batching queue coalesces concurrent requests for the
*same kernel* into one ensemble run over the member axis.

Protocol
--------

Length-prefixed JSON frames in both directions: a 4-byte big-endian
payload length followed by that many bytes of UTF-8 JSON (one object
per frame, at most ``MAX_FRAME_BYTES``).  Requests carry an ``op``:
``run``, ``compile``, ``ping``, ``stats`` or ``shutdown``.  A ``run``
request names its kernel either by inline ``spec`` source (parsed with
:func:`~repro.frontend.parser.parse_stencil` under
:class:`~repro.core.validate.SpecLimits` — this is an untrusted input
path) plus ``sizes``/``params``/``dtype``, or by the content-addressed
``kernel_id`` a previous response returned.  State arrays travel either
inline (base64 of the raw bytes, bitwise-exact) or zero-copy as named
``multiprocessing.shared_memory`` segments the server attaches and
writes results back into.  ``docs/serving.md`` specifies the frame and
message formats in full.

Batching semantics
------------------

Requests are grouped by ``(kernel_id, backend, steps, state
signature)``.  A group flushes when it reaches ``max_batch`` members or
its oldest request has waited ``batch_window_ms``; a flushed group of
two or more becomes **one** :class:`EnsemblePlan` run over stacked
member state (bitwise identical to per-member bound runs by
construction), a group of one runs through a warm per-kernel
:class:`~repro.runtime.bound.BoundPlan` kept keyed by state signature.
``batch_window_ms=0`` disables coalescing entirely.

Failure contract (PR 7): typed errors map onto the existing exit-code
scheme, a failed member never poisons its batchmates (a batch whose
bind fails falls back to per-request single runs), and every response
reports per-request status.  Fault points ``server.accept``,
``server.batch.bind`` and ``server.shm.attach`` make the contract
testable (see :mod:`repro.runtime.faults` and the chaos suite).

>>> import numpy as np, os, tempfile
>>> from repro.runtime.server import KernelServer
>>> from repro.runtime.client import KernelClient
>>> spec = '''
... stencil smooth {
...   iterate i = 1 .. n-2
...   u[i] += c*(v[i-1] - 2.0*v[i] + v[i+1])
... }
... '''
>>> path = os.path.join(tempfile.mkdtemp(), "serve.sock")
>>> server = KernelServer(path, workers=1, batch_window_ms=0.0)
>>> server.start()
>>> state = {"u": np.zeros(8), "v": np.ones(8)}
>>> with KernelClient(path) as client:
...     result = client.run(spec, sizes={"n": 8}, params={"c": 0.25},
...                         state=state)
>>> result.batch_size
1
>>> result.state["u"]    # second difference of a constant field: zero
array([0., 0., 0., 0., 0., 0., 0., 0.])
>>> state["u"]           # the client's arrays are never written in place
array([0., 0., 0., 0., 0., 0., 0., 0.])
>>> server.stats()["single_runs"]
1
>>> server.close()
"""

from __future__ import annotations

import base64
import json
import queue
import socket
import struct
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import shared_memory
from pathlib import Path
from typing import Mapping

import numpy as np
import sympy as sp

from ..core.validate import DEFAULT_SPEC_LIMITS, SpecLimits
from ..errors import ReproError, ServeError, ValidationError
from ..frontend.parser import parse_stencil
from . import faults
from .bindings import Bindings
from .cache import kernel_key
from .compiler import compile_nests
from .ensemble import EnsemblePlan, stack_arrays

__all__ = [
    "KernelServer",
    "MAX_FRAME_BYTES",
    "encode_array",
    "recv_frame",
    "send_frame",
    "seeded_state",
    "state_shapes",
]

#: Hard cap on one protocol frame; oversize frames are a typed error,
#: never an allocation the peer controls.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")

_DTYPES = {"f64": np.float64, "f32": np.float32}

_STOP = object()


# -- framing ------------------------------------------------------------------


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly *n* bytes; None on EOF at a frame boundary."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if got == 0:
                return None
            raise ServeError(f"connection closed mid-frame ({got}/{n} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict | None:
    """Read one length-prefixed JSON frame; None on clean EOF."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ServeError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    body = _recv_exact(sock, length)
    if body is None:
        raise ServeError("connection closed between header and body")
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ServeError("frame must decode to a JSON object")
    return message


def send_frame(sock: socket.socket, message: Mapping) -> None:
    """Serialise *message* and write it as one length-prefixed frame."""
    body = json.dumps(message, sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ServeError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    sock.sendall(_HEADER.pack(len(body)) + body)


# -- array codec --------------------------------------------------------------


def encode_array(arr: np.ndarray) -> dict:
    """Inline wire form of *arr*: raw bytes, base64 — bitwise exact.

    >>> import numpy as np
    >>> meta = encode_array(np.array([1.5, -2.25]))
    >>> sorted(meta)
    ['data', 'dtype', 'shape']
    """
    arr = np.ascontiguousarray(arr)
    return {
        "shape": list(arr.shape),
        "dtype": arr.dtype.str,
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def _array_meta(meta, name: str) -> tuple[tuple[int, ...], np.dtype, int]:
    """Validate one request array's shape/dtype metadata."""
    if not isinstance(meta, dict):
        raise ValidationError(f"state entry {name!r} must be an object")
    try:
        shape = tuple(int(s) for s in meta["shape"])
        dtype = np.dtype(str(meta["dtype"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise ValidationError(
            f"state entry {name!r} has invalid shape/dtype: {exc}"
        ) from exc
    if any(s < 0 for s in shape):
        raise ValidationError(f"state entry {name!r} has a negative extent")
    if dtype.kind not in "fiu":
        raise ValidationError(
            f"state entry {name!r} has unsupported dtype {dtype.str!r}"
        )
    nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    if nbytes > MAX_FRAME_BYTES:
        raise ValidationError(
            f"state entry {name!r} is {nbytes} bytes, over the cap"
        )
    return shape, dtype, nbytes


def _decode_inline(meta, name: str) -> np.ndarray:
    shape, dtype, nbytes = _array_meta(meta, name)
    try:
        raw = base64.b64decode(meta["data"], validate=True)
    except Exception as exc:
        raise ValidationError(
            f"state entry {name!r} carries undecodable data: {exc}"
        ) from exc
    if len(raw) != nbytes:
        raise ValidationError(
            f"state entry {name!r}: got {len(raw)} bytes, expected {nbytes}"
        )
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()


# -- state-shape inference ----------------------------------------------------


def state_shapes(nest, bindings: Bindings) -> dict[str, tuple[int, ...]]:
    """Smallest array shapes covering every access of *nest*.

    Walks each array access under the concrete loop bounds of
    *bindings* and returns, per array, the per-axis extent reached by
    the most-shifted access — what a client must allocate to serve the
    kernel.  Raises :class:`ValidationError` when an access reaches a
    negative index or an index does not reduce to ``counter + const``.

    >>> from repro.frontend import parse_stencil
    >>> from repro.runtime import Bindings
    >>> nest = parse_stencil(
    ...     "stencil s { iterate i = 1 .. n-2  u[i] += v[i+1] }")
    >>> state_shapes(nest, Bindings(sizes={"n": 8}))
    {'u': (7,), 'v': (8,)}
    """
    concrete = {
        c: (bindings.int_bound(nest.bounds[c][0]),
            bindings.int_bound(nest.bounds[c][1]))
        for c in nest.counters
    }
    shapes: dict[str, list[int]] = {}

    def visit(acc) -> None:
        name = acc.func.__name__
        dims = shapes.setdefault(name, [0] * len(acc.args))
        if len(dims) != len(acc.args):
            raise ValidationError(
                f"array {name!r} is accessed with inconsistent rank"
            )
        for axis, arg in enumerate(acc.args):
            arg = sp.sympify(arg)
            used = [c for c in nest.counters if c in arg.free_symbols]
            if len(used) > 1:
                raise ValidationError(
                    f"access {acc} mixes loop counters in one subscript"
                )
            if used:
                off = bindings.substitute(arg - used[0])
                if not off.is_Integer:
                    raise ValidationError(
                        f"access {acc} is not counter + constant on axis {axis}"
                    )
                lo = concrete[used[0]][0] + int(off)
                hi = concrete[used[0]][1] + int(off)
            else:
                val = bindings.substitute(arg)
                if not val.is_Integer:
                    raise ValidationError(
                        f"access {acc} has a non-constant subscript"
                    )
                lo = hi = int(val)
            if lo < 0:
                raise ValidationError(
                    f"access {acc} reaches negative index {lo} on axis {axis}"
                )
            dims[axis] = max(dims[axis], hi + 1)

    for st in nest.statements:
        visit(st.lhs)
        for acc in st.read_accesses():
            visit(acc)
    return {name: tuple(dims) for name, dims in sorted(shapes.items())}


def seeded_state(nest, bindings: Bindings, seed: int = 0) -> dict[str, np.ndarray]:
    """Deterministic random state covering *nest* (for CLI and benches)."""
    rng = np.random.default_rng(seed)
    dtype = np.dtype(bindings.dtype)
    return {
        name: rng.standard_normal(shape).astype(dtype)
        for name, shape in state_shapes(nest, bindings).items()
    }


def _state_signature(arrays: Mapping[str, np.ndarray]) -> tuple:
    return tuple(
        (name, arrays[name].shape, arrays[name].dtype.str)
        for name in sorted(arrays)
    )


# -- served kernels -----------------------------------------------------------


class _WarmBound:
    """One warm binding: persistent arrays + the BoundPlan over them."""

    __slots__ = ("lock", "arrays", "bound")

    def __init__(self, plan, arrays: Mapping[str, np.ndarray]) -> None:
        self.lock = threading.Lock()
        self.arrays = {k: np.zeros_like(v) for k, v in arrays.items()}
        self.bound = plan.bind(self.arrays)

    def run(self, request_arrays: Mapping[str, np.ndarray], steps: int) -> None:
        with self.lock:
            for name, arr in request_arrays.items():
                np.copyto(self.arrays[name], arr)
            for _ in range(steps):
                self.bound.run()
            for name, arr in request_arrays.items():
                np.copyto(arr, self.arrays[name])


class _ServedKernel:
    """A registered kernel: nest + bindings, compiled lazily, kept warm."""

    def __init__(self, kernel_id: str, nest, bindings: Bindings) -> None:
        self.kernel_id = kernel_id
        self.nest = nest
        self.bindings = bindings
        self.required = set(nest.written_arrays()) | set(nest.read_arrays())
        self._lock = threading.Lock()
        self._kernel = None
        self._warm: dict[tuple, _WarmBound] = {}

    def kernel(self):
        with self._lock:
            if self._kernel is None:
                self._kernel = compile_nests(
                    [self.nest], self.bindings,
                    name=self.nest.name or "served",
                )
            return self._kernel

    def plan(self, backend: str):
        return self.kernel().plan(backend=backend)

    def warm_bound(self, backend: str, arrays: Mapping[str, np.ndarray]):
        key = (backend, _state_signature(arrays))
        with self._lock:
            warm = self._warm.get(key)
        if warm is not None:
            return warm
        plan = self.plan(backend)  # may compile: outside our own lock
        with self._lock:
            warm = self._warm.get(key)
            if warm is None:
                warm = _WarmBound(plan, arrays)
                self._warm[key] = warm
            return warm


class _Pending:
    """One decoded run request travelling through the batching queue."""

    __slots__ = (
        "served", "backend", "steps", "arrays", "sources", "segments",
        "sig", "event", "meta", "error",
    )

    def __init__(self, served, backend, steps, arrays, sources, segments):
        self.served = served
        self.backend = backend
        self.steps = steps
        self.arrays = arrays
        self.sources = sources
        self.segments = segments
        self.sig = _state_signature(arrays)
        self.event = threading.Event()
        self.meta: dict | None = None
        self.error: BaseException | None = None

    @property
    def group_key(self) -> tuple:
        return (self.served.kernel_id, self.backend, self.steps, self.sig)

    def release(self) -> None:
        """Drop array views, then detach shared-memory segments."""
        self.arrays.clear()
        segments, self.segments = self.segments, []
        for seg in segments:
            try:
                seg.close()
            except BufferError:  # pragma: no cover - a view still alive
                pass


def _error_payload(exc: BaseException) -> dict:
    from ..cli import exit_code_for  # local import: cli imports runtime

    if not isinstance(exc, ReproError):
        exc = ServeError(f"{type(exc).__name__}: {exc}")
    return {
        "status": "error",
        "error": type(exc).__name__,
        "message": str(exc),
        "exit_code": exit_code_for(exc),
    }


# -- the daemon ---------------------------------------------------------------


class KernelServer:
    """Compile-and-serve daemon over a Unix-domain socket.

    Parameters
    ----------
    socket_path:
        Filesystem path to listen on; created on :meth:`start`,
        unlinked on :meth:`close`.
    workers:
        Threads executing flushed request groups.
    max_batch:
        A group flushes as soon as it holds this many requests.
    batch_window_ms:
        How long the oldest request of a group may wait for batchmates
        before the group flushes; ``0`` disables coalescing.
    limits:
        :class:`SpecLimits` applied to every inbound spec (``None``
        trusts the peer — only for in-process tests).
    request_timeout:
        Seconds a connection handler waits for its request's group to
        execute before answering with a typed timeout error.
    """

    def __init__(
        self,
        socket_path: str,
        *,
        workers: int = 2,
        max_batch: int = 8,
        batch_window_ms: float = 2.0,
        limits: SpecLimits | None = DEFAULT_SPEC_LIMITS,
        request_timeout: float = 300.0,
    ) -> None:
        if workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        if max_batch < 1:
            raise ValidationError(f"max_batch must be >= 1, got {max_batch}")
        if batch_window_ms < 0:
            raise ValidationError(
                f"batch_window_ms must be >= 0, got {batch_window_ms}"
            )
        self.socket_path = str(socket_path)
        self.workers = workers
        self.max_batch = max_batch
        self.batch_window = batch_window_ms / 1000.0
        self.limits = limits
        self.request_timeout = request_timeout
        self._lock = threading.Lock()
        self._kernels: dict[str, _ServedKernel] = {}
        self._queue: queue.Queue = queue.Queue()
        self._conns: set[socket.socket] = set()
        self._listener: socket.socket | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._threads: list[threading.Thread] = []
        self._running = False
        self._closed = False
        self._stop_event = threading.Event()
        self._counters = {
            "requests": 0,
            "ok": 0,
            "errors": 0,
            "batched_runs": 0,
            "batched_requests": 0,
            "single_runs": 0,
            "batch_fallbacks": 0,
            "accept_drops": 0,
            "max_batch_seen": 0,
        }
        self._last_batch: dict | None = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Bind the socket and launch accept/dispatch threads."""
        if self._listener is not None:
            raise ServeError("server already started")
        path = Path(self.socket_path)
        if path.exists():
            path.unlink()
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self.socket_path)
        listener.listen(64)
        listener.settimeout(0.2)  # poll _running without a wake-up pipe
        self._listener = listener
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve-worker"
        )
        self._running = True
        for target, name in (
            (self._accept_loop, "repro-serve-accept"),
            (self._dispatch_loop, "repro-serve-dispatch"),
        ):
            t = threading.Thread(target=target, name=name, daemon=True)
            t.start()
            self._threads.append(t)

    def wait(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`close`) arrives."""
        self._stop_event.wait()

    def close(self) -> None:
        """Stop serving, join threads, unlink the socket.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._running = False
        self._stop_event.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
        self._queue.put(_STOP)
        for t in self._threads:
            t.join(timeout=10.0)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        with self._lock:
            conns = list(self._conns)
            self._conns.clear()
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        try:
            Path(self.socket_path).unlink()
        except OSError:
            pass

    def __enter__(self) -> "KernelServer":
        if self._listener is None:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> dict:
        """Service counters (the plan-level batching evidence)."""
        with self._lock:
            out = dict(self._counters)
            out["kernels"] = len(self._kernels)
            out["last_batch"] = (
                dict(self._last_batch) if self._last_batch else None
            )
        out["workers"] = self.workers
        out["max_batch"] = self.max_batch
        out["batch_window_ms"] = self.batch_window * 1000.0
        return out

    # -- accept / connection handling ---------------------------------------

    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            try:
                faults.check("server.accept")
            except Exception:
                # Degradation contract "fallback": drop only this
                # connection; the client reconnects and is served
                # bitwise-identically.
                with self._lock:
                    self._counters["accept_drops"] += 1
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
                continue
            with self._lock:
                self._conns.add(conn)
            threading.Thread(
                target=self._handle_conn,
                args=(conn,),
                name="repro-serve-conn",
                daemon=True,
            ).start()

    def _handle_conn(self, conn: socket.socket) -> None:
        try:
            while self._running:
                try:
                    msg = recv_frame(conn)
                except ServeError as exc:
                    # Framing violation: answer (best effort), then drop
                    # the connection — resync is impossible mid-stream.
                    try:
                        send_frame(conn, _error_payload(exc))
                    except OSError:
                        pass
                    break
                if msg is None:
                    break
                op = msg.get("op")
                try:
                    resp = self._handle_op(op, msg)
                except Exception as exc:  # typed per-request status
                    resp = _error_payload(exc)
                send_frame(conn, resp)
                if op == "shutdown" and resp.get("status") == "ok":
                    break
        except OSError:
            pass
        finally:
            with self._lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def _handle_op(self, op, msg: dict) -> dict:
        if op == "ping":
            return {"status": "ok", "op": "ping"}
        if op == "stats":
            return {"status": "ok", "stats": self.stats()}
        if op == "compile":
            if not isinstance(msg.get("spec"), str):
                raise ValidationError("compile request needs a 'spec' string")
            served = self._resolve_kernel(msg)
            return {"status": "ok", "kernel_id": served.kernel_id}
        if op == "shutdown":
            self._running = False
            self._stop_event.set()
            if self._listener is not None:
                try:
                    self._listener.close()
                except OSError:  # pragma: no cover
                    pass
            return {"status": "ok", "op": "shutdown"}
        if op == "run":
            return self._serve_run(msg)
        raise ValidationError(f"unknown op {op!r}")

    # -- request decoding ----------------------------------------------------

    def _resolve_kernel(self, msg: dict) -> _ServedKernel:
        spec = msg.get("spec")
        if spec is not None:
            if not isinstance(spec, str):
                raise ValidationError("'spec' must be a string")
            sizes = _validated_mapping(msg.get("sizes"), "sizes", int)
            params = _validated_mapping(msg.get("params"), "params", float)
            dtype_tag = msg.get("dtype", "f64")
            if dtype_tag not in _DTYPES:
                raise ValidationError(
                    f"dtype must be one of {sorted(_DTYPES)}, got {dtype_tag!r}"
                )
            nest = parse_stencil(spec, limits=self.limits)
            missing = [
                s.name for s in nest.size_symbols() if s.name not in sizes
            ]
            if missing:
                raise ValidationError(f"unbound size symbols: {missing}")
            missing = [
                s.name for s in nest.scalar_parameters()
                if s.name not in params
            ]
            if missing:
                raise ValidationError(f"unbound scalar parameters: {missing}")
            bindings = Bindings(
                sizes=sizes, params=params, dtype=_DTYPES[dtype_tag]
            )
            name = nest.name or "served"
            kid = kernel_key([nest], bindings, name)
            with self._lock:
                served = self._kernels.get(kid)
                if served is None:
                    served = _ServedKernel(kid, nest, bindings)
                    self._kernels[kid] = served
            return served
        kid = msg.get("kernel_id")
        if not isinstance(kid, str):
            raise ValidationError("run request needs 'spec' or 'kernel_id'")
        with self._lock:
            served = self._kernels.get(kid)
        if served is None:
            raise ValidationError(
                f"unknown kernel_id {kid[:16]!r}...; send the spec once first"
            )
        return served

    def _attach_state(self, state) -> tuple[dict, list, dict]:
        if not isinstance(state, dict) or not state:
            raise ValidationError(
                "run request needs a non-empty 'state' mapping"
            )
        arrays: dict[str, np.ndarray] = {}
        segments: list[shared_memory.SharedMemory] = []
        sources: dict[str, dict] = {}
        try:
            for name in sorted(state):
                if not isinstance(name, str) or not name.isidentifier():
                    raise ValidationError(f"bad array name {name!r}")
                meta = state[name]
                if isinstance(meta, dict) and "shm" in meta:
                    shape, dtype, nbytes = _array_meta(meta, name)
                    try:
                        faults.check("server.shm.attach")
                        seg = shared_memory.SharedMemory(name=str(meta["shm"]))
                    except Exception as exc:
                        # Contract "typed-error": this request fails with
                        # one ReproError; batchmates are untouched since
                        # attach happens before grouping.
                        raise ServeError(
                            f"cannot attach shared-memory segment "
                            f"{meta['shm']!r} for array {name!r}: {exc}"
                        ) from exc
                    if seg.size < nbytes:
                        seg.close()
                        raise ServeError(
                            f"segment {meta['shm']!r} holds {seg.size} bytes,"
                            f" array {name!r} needs {nbytes}"
                        )
                    segments.append(seg)
                    arrays[name] = np.ndarray(
                        shape, dtype=dtype, buffer=seg.buf
                    )
                else:
                    arrays[name] = _decode_inline(meta, name)
                sources[name] = {"shm": meta["shm"]} if (
                    isinstance(meta, dict) and "shm" in meta
                ) else {}
        except BaseException:
            arrays.clear()
            for seg in segments:
                try:
                    seg.close()
                except BufferError:  # pragma: no cover
                    pass
            raise
        return arrays, segments, sources

    def _decode_run(self, msg: dict) -> _Pending:
        steps = msg.get("steps", 1)
        if not isinstance(steps, int) or not 1 <= steps <= 1_000_000:
            raise ValidationError(
                f"steps must be an int in [1, 1000000], got {steps!r}"
            )
        backend = msg.get("backend", "python")
        if backend not in ("python", "native"):
            raise ValidationError(
                f"backend must be 'python' or 'native', got {backend!r}"
            )
        served = self._resolve_kernel(msg)
        arrays, segments, sources = self._attach_state(msg.get("state"))
        try:
            missing = sorted(served.required - set(arrays))
            if missing:
                raise ValidationError(
                    f"state is missing kernel arrays: {missing}"
                )
            shapes = state_shapes(served.nest, served.bindings)
            want_dtype = np.dtype(served.bindings.dtype)
            for name, minimal in shapes.items():
                arr = arrays[name]
                if arr.ndim != len(minimal) or any(
                    have < need for have, need in zip(arr.shape, minimal)
                ):
                    raise ValidationError(
                        f"array {name!r} has shape {arr.shape}, kernel "
                        f"needs at least {minimal}"
                    )
                if arr.dtype != want_dtype:
                    raise ValidationError(
                        f"array {name!r} has dtype {arr.dtype.str}, kernel "
                        f"is bound for {want_dtype.str}"
                    )
        except BaseException:
            arrays.clear()
            for seg in segments:
                try:
                    seg.close()
                except BufferError:  # pragma: no cover
                    pass
            raise
        return _Pending(served, backend, steps, arrays, sources, segments)

    # -- run execution -------------------------------------------------------

    def _serve_run(self, msg: dict) -> dict:
        with self._lock:
            self._counters["requests"] += 1
        try:
            pending = self._decode_run(msg)
        except Exception:
            with self._lock:
                self._counters["errors"] += 1
            raise
        self._queue.put(pending)
        if not pending.event.wait(self.request_timeout):
            pending.error = ServeError(
                f"request timed out after {self.request_timeout}s"
            )
        try:
            resp = self._build_response(pending)
        finally:
            pending.release()
        with self._lock:
            key = "ok" if resp.get("status") == "ok" else "errors"
            self._counters[key] += 1
        return resp

    def _build_response(self, pending: _Pending) -> dict:
        if pending.error is not None:
            return _error_payload(pending.error)
        state_meta: dict[str, dict] = {}
        for name in sorted(pending.arrays):
            arr = pending.arrays[name]
            src = pending.sources[name]
            if "shm" in src:
                # Zero-copy: the result was written into the segment in
                # place; echo the reference, not the bytes.
                state_meta[name] = {
                    "shape": list(arr.shape),
                    "dtype": arr.dtype.str,
                    "shm": src["shm"],
                }
            else:
                state_meta[name] = encode_array(arr)
        meta = pending.meta or {}
        return {
            "status": "ok",
            "kernel_id": pending.served.kernel_id,
            "steps": pending.steps,
            "batched": meta.get("batched", False),
            "batch_size": meta.get("batch_size", 1),
            "state": state_meta,
        }

    def _dispatch_loop(self) -> None:
        """Coalesce queued requests per group, flush on size or deadline."""
        groups: dict[tuple, list[_Pending]] = {}
        deadlines: dict[tuple, float] = {}

        def flush(key: tuple) -> None:
            batch = groups.pop(key)
            deadlines.pop(key, None)
            self._pool.submit(self._run_group, batch)

        while True:
            timeout = None
            if deadlines:
                timeout = max(0.0, min(deadlines.values()) - time.monotonic())
            try:
                item = self._queue.get(timeout=timeout)
            except queue.Empty:
                item = None
            if item is _STOP:
                for key in list(groups):
                    flush(key)
                return
            if item is not None:
                if self.batch_window <= 0 or self.max_batch <= 1:
                    self._pool.submit(self._run_group, [item])
                else:
                    key = item.group_key
                    batch = groups.setdefault(key, [])
                    batch.append(item)
                    deadlines.setdefault(
                        key, time.monotonic() + self.batch_window
                    )
                    if len(batch) >= self.max_batch:
                        flush(key)
            now = time.monotonic()
            for key in [k for k, d in deadlines.items() if d <= now]:
                flush(key)

    def _run_group(self, batch: list[_Pending]) -> None:
        try:
            if len(batch) == 1:
                self._run_single(batch[0])
            else:
                self._run_batch(batch)
        finally:
            for pending in batch:
                pending.event.set()

    def _run_single(self, pending: _Pending) -> None:
        try:
            warm = pending.served.warm_bound(pending.backend, pending.arrays)
            warm.run(pending.arrays, pending.steps)
        except Exception as exc:
            pending.error = exc
            return
        pending.meta = {"batched": False, "batch_size": 1}
        with self._lock:
            self._counters["single_runs"] += 1

    def _run_batch(self, batch: list[_Pending]) -> None:
        served = batch[0].served
        try:
            faults.check("server.batch.bind")
            batched = stack_arrays([p.arrays for p in batch])
            plan = served.plan(batch[0].backend)
            ensemble = EnsemblePlan(plan, batched)
            try:
                for _ in range(batch[0].steps):
                    ensemble.run()
                for m, pending in enumerate(batch):
                    views = ensemble.member_arrays(m)
                    for name, arr in pending.arrays.items():
                        np.copyto(arr, views[name])
            finally:
                ensemble.close()
        except Exception:
            # Contract "fallback": a batch that cannot bind (or fails
            # mid-run before any request array was written — member
            # state lives in the stacked copy until copy-out) degrades
            # to per-request single runs.  A deterministic per-request
            # failure then surfaces on that request alone: batchmates
            # are never poisoned.
            with self._lock:
                self._counters["batch_fallbacks"] += 1
            for pending in batch:
                self._run_single(pending)
            return
        meta = {"batched": True, "batch_size": len(batch)}
        for pending in batch:
            pending.meta = dict(meta)
        with self._lock:
            self._counters["batched_runs"] += 1
            self._counters["batched_requests"] += len(batch)
            self._counters["max_batch_seen"] = max(
                self._counters["max_batch_seen"], len(batch)
            )
            self._last_batch = {
                "members": ensemble.members,
                "kernel_id": served.kernel_id,
                "batched_statements": ensemble.batched_statement_count,
                "native_statements": ensemble.native_statement_count,
                "member_statements": ensemble.member_statement_count,
            }


def _validated_mapping(raw, label: str, cast) -> dict:
    if raw is None:
        return {}
    if not isinstance(raw, dict):
        raise ValidationError(f"{label!r} must be an object")
    out = {}
    for key, value in raw.items():
        try:
            out[str(key)] = cast(value)
        except (TypeError, ValueError) as exc:
            raise ValidationError(
                f"{label}[{key!r}] is not a {cast.__name__}: {exc}"
            ) from exc
    return out
