"""Deterministic fault injection for the runtime's hot layers.

The runtime promises a graceful-degradation contract (see
:mod:`repro.errors` and ``docs/reliability.md``): every failure either
recovers bitwise-identically through a documented fallback, or raises
one typed :class:`~repro.errors.ReproError` subclass with user arrays
intact.  A contract nobody exercises is a comment — this module makes
it *testable* by threading named **fault points** through the layers
that talk to the outside world (compiler subprocesses, the ``.so``
disk cache, worker threads, snapshot pools, per-member binds) and
letting tests fire realistic low-level failures *at the site*, so the
surrounding error handling is what gets tested, not a mock of it.

Design constraints, in order:

1. **Zero cost when idle.**  Production code calls
   :func:`check` inside hot loops; when no injector is active this is
   one module-global load and a ``None`` test.  No locks, no dict
   lookups, no environment reads.
2. **Deterministic.**  Scripted injection (``inject("point")``) fires
   on an exact occurrence; randomised chaos
   (:class:`FaultInjector` with ``seed``/``rate``) is seeded, so a
   failing chaos run replays exactly.
3. **Closed registry.**  Every fault point is declared here, in one
   table, with the exception it simulates and the contract clause it
   must satisfy — the chaos suite iterates the registry and *fails* if
   a point has no covering scenario, and ``docs/reliability.md``'s
   fault-point table is checked against it.

>>> from repro.runtime import faults
>>> sorted(p.name for p in faults.registered_fault_points())[:3]
['bound.run', 'checkpoint.snapshot', 'ensemble.bind']
>>> with faults.inject("scheduler.task"):
...     try:
...         faults.check("scheduler.task")
...     except RuntimeError as exc:
...         print("fired:", exc)
fired: injected fault at scheduler.task
>>> faults.check("scheduler.task")   # inactive outside the context: no-op
"""

from __future__ import annotations

import random
import subprocess
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable

from ..errors import NativeBuildError

__all__ = [
    "FaultPoint",
    "FaultInjector",
    "registered_fault_points",
    "fault_point",
    "check",
    "inject",
    "activate",
    "deactivate",
    "active_injector",
]


# -- registry -----------------------------------------------------------------


@dataclass(frozen=True)
class FaultPoint:
    """One named site where a fault can be injected.

    ``default`` builds the exception a firing injects when the test
    does not supply one — chosen to be exactly what the real world
    would raise at that site (``OSError`` from a failed spawn,
    ``TimeoutExpired`` from a hung compiler, ``MemoryError`` from an
    exhausted pool), so the production ``except`` clauses are the code
    under test.  ``contract`` names the degradation clause the chaos
    suite asserts: ``"fallback"`` (bitwise-identical recovery) or
    ``"typed-error"`` (one ReproError subclass, user arrays intact).
    """

    name: str
    description: str
    contract: str
    default: Callable[[], BaseException]


def _timeout_exc() -> BaseException:
    return subprocess.TimeoutExpired(cmd="cc", timeout=300.0)


_REGISTRY: dict[str, FaultPoint] = {}


def _register(
    name: str,
    description: str,
    contract: str,
    default: Callable[[], BaseException],
) -> None:
    if name in _REGISTRY:  # pragma: no cover - registration is static
        raise ValueError(f"duplicate fault point {name!r}")
    _REGISTRY[name] = FaultPoint(name, description, contract, default)


def _default(message: str, exc_type: type = OSError):
    return lambda: exc_type(f"injected fault at {message}")


_register(
    "native.toolchain",
    "C compiler discovery fails (PATH probe raises OSError)",
    "fallback",
    _default("native.toolchain"),
)
_register(
    "native.cc.spawn",
    "spawning the C compiler subprocess raises a transient OSError",
    "fallback",
    _default("native.cc.spawn"),
)
_register(
    "native.cc.timeout",
    "the C compiler hangs until the subprocess timeout expires",
    "fallback",
    _timeout_exc,
)
_register(
    "native.cache.write",
    "writing a .c/.so cache entry is denied (read-only cache dir)",
    "fallback",
    _default("native.cache.write", PermissionError),
)
_register(
    "native.cache.load",
    "dlopen of a cached .so fails (corrupt or truncated entry)",
    "fallback",
    _default("native.cache.load"),
)
_register(
    "native.omp.probe",
    "the -fopenmp capability probe fails (compiler without OpenMP)",
    "fallback",
    _default("native.omp.probe", NativeBuildError),
)
_register(
    "scheduler.task",
    "a worker task raises mid-batch",
    "typed-error",
    _default("scheduler.task", RuntimeError),
)
_register(
    "checkpoint.snapshot",
    "storing a snapshot exhausts the pool (MemoryError on copy)",
    "typed-error",
    _default("checkpoint.snapshot", MemoryError),
)
_register(
    "ensemble.bind",
    "binding one ensemble member fails (allocation during bind)",
    "typed-error",
    _default("ensemble.bind", MemoryError),
)
_register(
    "bound.run",
    "a bound statement raises mid-run (half the arrays updated)",
    "typed-error",
    _default("bound.run", RuntimeError),
)
_register(
    "scatter.merge",
    "merging thread-private scatter scratch raises mid-merge",
    "typed-error",
    _default("scatter.merge", RuntimeError),
)
_register(
    "server.accept",
    "the daemon drops a freshly accepted connection (transient OSError)",
    "fallback",
    _default("server.accept", ConnectionResetError),
)
_register(
    "server.batch.bind",
    "binding a coalesced request batch to one ensemble fails",
    "fallback",
    _default("server.batch.bind", MemoryError),
)
_register(
    "server.shm.attach",
    "attaching a client's shared-memory state segment fails",
    "typed-error",
    _default("server.shm.attach", FileNotFoundError),
)
_register(
    "shard.exchange",
    "a halo-exchange copy between shard slabs fails mid-step",
    "fallback",
    _default("shard.exchange", OSError),
)
_register(
    "shard.worker",
    "a shard worker process is found dead before dispatch",
    "fallback",
    _default("shard.worker", OSError),
)


def registered_fault_points() -> tuple[FaultPoint, ...]:
    """All fault points, in registration order (the docs-table order)."""
    return tuple(_REGISTRY.values())


def fault_point(name: str) -> FaultPoint:
    """The registered point called *name* (KeyError when unknown)."""
    return _REGISTRY[name]


# -- injector -----------------------------------------------------------------


@dataclass
class _Plan:
    """Scripted firings for one point: skip N occurrences, fire M."""

    skip: int
    times: int
    exc: Callable[[], BaseException]
    fired: int = 0


class FaultInjector:
    """Fires registered fault points, scripted or seeded-random.

    Scripted mode: :meth:`arm` a point with ``skip``/``times`` and an
    optional exception factory; the plan fires on exact occurrences.
    Random mode: construct with ``seed`` and ``rate`` and every
    :func:`check` of every registered point fires its default
    exception with probability ``rate`` — deterministic for a given
    seed and call sequence (single-threaded chaos runs only; scripted
    mode is thread-safe).

    Bookkeeping: :meth:`hits` counts how often execution *reached* a
    point while this injector was active, :meth:`fired` how often it
    actually raised — tests assert ``hits > 0`` to prove the fault
    point sits on the executed path even when nothing fires.
    """

    def __init__(self, *, seed: int | None = None, rate: float = 0.0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be within [0, 1], got {rate}")
        self._lock = threading.Lock()
        self._plans: dict[str, _Plan] = {}
        self._hits: dict[str, int] = {}
        self._fired: dict[str, int] = {}
        self._rate = rate
        self._rng = random.Random(seed)

    def arm(
        self,
        name: str,
        *,
        times: int = 1,
        skip: int = 0,
        exc: BaseException | Callable[[], BaseException] | None = None,
    ) -> None:
        """Script *name* to fire on its next *times* occurrences after *skip*."""
        point = _REGISTRY[name]  # KeyError on unregistered names: a test bug
        if exc is None:
            factory: Callable[[], BaseException] = point.default
        elif isinstance(exc, BaseException):
            factory = lambda: exc  # noqa: E731 - capture the instance
        else:
            factory = exc
        with self._lock:
            self._plans[name] = _Plan(skip=skip, times=times, exc=factory)

    def disarm(self, name: str) -> None:
        with self._lock:
            self._plans.pop(name, None)

    def hits(self, name: str) -> int:
        with self._lock:
            return self._hits.get(name, 0)

    def fired(self, name: str) -> int:
        with self._lock:
            return self._fired.get(name, 0)

    def hit(self, name: str) -> None:
        """Called (via :func:`check`) when execution reaches *name*."""
        if name not in _REGISTRY:  # unregistered check(): a wiring bug
            raise LookupError(f"check() on unregistered fault point {name!r}")
        with self._lock:
            self._hits[name] = self._hits.get(name, 0) + 1
            plan = self._plans.get(name)
            if plan is not None:
                if plan.skip > 0:
                    plan.skip -= 1
                    return
                if plan.fired < plan.times:
                    plan.fired += 1
                    self._fired[name] = self._fired.get(name, 0) + 1
                    raise plan.exc()
                return
            if self._rate and self._rng.random() < self._rate:
                self._fired[name] = self._fired.get(name, 0) + 1
                raise _REGISTRY[name].default()


# -- activation ---------------------------------------------------------------

# The module-global active injector.  `check` reads it without a lock:
# assignment is atomic in CPython, and the only writers are tests
# activating/deactivating around a scenario.
_ACTIVE: FaultInjector | None = None


def check(name: str) -> None:
    """Production hook: fire *name* if an injector is active.

    The inactive path — the only one production traffic ever takes —
    is a global load and a ``None`` test.
    """
    inj = _ACTIVE
    if inj is not None:
        inj.hit(name)


def active_injector() -> FaultInjector | None:
    return _ACTIVE


def activate(injector: FaultInjector) -> FaultInjector:
    """Install *injector* as the process-wide active injector."""
    global _ACTIVE
    _ACTIVE = injector
    return injector


def deactivate() -> None:
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def inject(
    name: str,
    *,
    times: int = 1,
    skip: int = 0,
    exc: BaseException | Callable[[], BaseException] | None = None,
):
    """Scripted injection scope: arm *name*, yield the injector, restore.

    Nests: inside an active injector's scope it arms the existing
    injector and disarms only its own point on exit; at top level it
    installs a fresh injector and deactivates it on exit.
    """
    created = _ACTIVE is None
    inj = _ACTIVE if _ACTIVE is not None else FaultInjector()
    inj.arm(name, times=times, skip=skip, exc=exc)
    if created:
        activate(inj)
    try:
        yield inj
    finally:
        inj.disarm(name)
        if created:
            deactivate()
