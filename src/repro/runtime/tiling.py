"""Loop tiling (cache blocking) for compiled region kernels.

The paper plans to combine the transformation "with polyhedral compilers
... to target more applications" (Section 6); tiling is the canonical
such optimisation for stencils.  Because the adjoint stencil regions are
gather loops whose iterations are independent, any rectangular tiling of
a region's iteration box executes the same element-wise expressions and
is bitwise identical to the untiled execution — which the tests assert —
while improving temporal locality for grids larger than cache.

``run_tiled`` is a thin wrapper over the plan layer: it builds (or
reuses) the kernel's serial tiled :class:`~repro.runtime.plan.ExecutionPlan`
and runs it.  Fused tiled+threaded execution is available by planning
with both ``tile_shape`` and ``num_threads``.
"""

from __future__ import annotations

import itertools
from typing import Mapping, Sequence

import numpy as np

from .compiler import CompiledKernel, RegionKernel

__all__ = ["tile_box", "run_tiled", "safe_to_tile"]

Box = tuple[tuple[int, int], ...]


def tile_box(bounds: Box, tile_shape: Sequence[int]) -> list[Box]:
    """Decompose an inclusive box into lexicographically ordered tiles.

    ``tile_shape`` gives the tile extent per dimension; dimensions beyond
    ``len(tile_shape)`` (or entries <= 0) are left unsplit.  Returns the
    empty list for empty boxes.
    """
    if any(lo > hi for lo, hi in bounds):
        return []
    per_dim: list[list[tuple[int, int]]] = []
    for d, (lo, hi) in enumerate(bounds):
        size = tile_shape[d] if d < len(tile_shape) else 0
        if size is None or size <= 0 or size >= hi - lo + 1:
            per_dim.append([(lo, hi)])
            continue
        ranges = []
        start = lo
        while start <= hi:
            ranges.append((start, min(start + size - 1, hi)))
            start += size
        per_dim.append(ranges)
    return [tuple(combo) for combo in itertools.product(*per_dim)]


def run_tiled(
    kernel: CompiledKernel,
    arrays: Mapping[str, np.ndarray],
    tile_shape: Sequence[int],
) -> int:
    """Execute every region of *kernel* tile by tile; returns tile count.

    Only regions whose statements all write at full rank are tiled (a
    reduced write target would accumulate differently across tiles for
    '=' semantics); other regions run untiled.  Delegates to the memoised
    serial tiled :class:`~repro.runtime.plan.ExecutionPlan`, so the tile
    decomposition is computed once per (kernel, tile shape).
    """
    plan = kernel.plan(tile_shape=tuple(tile_shape))
    plan.run(arrays)
    return plan.unit_count


def safe_to_tile(region: RegionKernel) -> bool:
    """True when every statement of *region* writes at full rank.

    A reduced write target (fewer target axes than frame axes) would
    accumulate differently across tiles for '=' semantics, so such
    regions run untiled.
    """
    dim = len(region.bounds)
    for st in region.statements:
        axes = {axis for axis, _ in st.target.slots}
        if len(axes) != dim:
            return False
    return True


# Backwards-compatible alias (pre-plan internal name).
_safe_to_tile = safe_to_tile
