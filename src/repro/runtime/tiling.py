"""Loop tiling (cache blocking) for compiled region kernels.

The paper plans to combine the transformation "with polyhedral compilers
... to target more applications" (Section 6); tiling is the canonical
such optimisation for stencils.  Because the adjoint stencil regions are
gather loops whose iterations are independent, any rectangular tiling of
a region's iteration box executes the same element-wise expressions and
is bitwise identical to the untiled execution — which the tests assert —
while improving temporal locality for grids larger than cache.

``run_tiled`` composes with :class:`~repro.runtime.parallel.ParallelExecutor`
conceptually (tiles are the same sub-box mechanism the thread executor
uses); here tiles are executed in lexicographic order on one thread.
"""

from __future__ import annotations

import itertools
from typing import Mapping, Sequence

import numpy as np

from .compiler import CompiledKernel, RegionKernel

__all__ = ["tile_box", "run_tiled"]

Box = tuple[tuple[int, int], ...]


def tile_box(bounds: Box, tile_shape: Sequence[int]) -> list[Box]:
    """Decompose an inclusive box into lexicographically ordered tiles.

    ``tile_shape`` gives the tile extent per dimension; dimensions beyond
    ``len(tile_shape)`` (or entries <= 0) are left unsplit.  Returns the
    empty list for empty boxes.
    """
    if any(lo > hi for lo, hi in bounds):
        return []
    per_dim: list[list[tuple[int, int]]] = []
    for d, (lo, hi) in enumerate(bounds):
        size = tile_shape[d] if d < len(tile_shape) else 0
        if size is None or size <= 0 or size >= hi - lo + 1:
            per_dim.append([(lo, hi)])
            continue
        ranges = []
        start = lo
        while start <= hi:
            ranges.append((start, min(start + size - 1, hi)))
            start += size
        per_dim.append(ranges)
    return [tuple(combo) for combo in itertools.product(*per_dim)]


def run_tiled(
    kernel: CompiledKernel,
    arrays: Mapping[str, np.ndarray],
    tile_shape: Sequence[int],
) -> int:
    """Execute every region of *kernel* tile by tile; returns tile count.

    Only regions whose statements all write at full rank are tiled (a
    reduced write target would accumulate differently across tiles for
    '=' semantics); other regions run untiled.
    """
    tiles_run = 0
    for region in kernel.regions:
        if region.is_empty:
            continue
        if _safe_to_tile(region):
            for tile in tile_box(region.bounds, tile_shape):
                region.execute(arrays, tile)
                tiles_run += 1
        else:
            region.execute(arrays)
            tiles_run += 1
    return tiles_run


def _safe_to_tile(region: RegionKernel) -> bool:
    dim = len(region.bounds)
    for st in region.statements:
        axes = {axis for axis, _ in st.target.slots}
        if len(axes) != dim:
            return False
    return True
