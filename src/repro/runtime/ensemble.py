"""Batched ensemble execution: many scenarios through one bound plan.

The gather-form adjoint transformation makes each timestep of a stencil
kernel embarrassingly parallel *within* one scenario; this module adds
the next scale axis the ROADMAP calls for — many scenarios (ensemble
members: different initial conditions, different parameter values)
through the same compiled kernel at hardware speed.

An :class:`EnsemblePlan` binds one
:class:`~repro.runtime.plan.ExecutionPlan` against arrays carrying a
**leading member axis**: every array of the kernel's working set is
stacked as ``(members, *shape)``, and member ``m``'s scenario lives in
the slice ``batched[name][m]``.  All members share the compiled
statements, the plan's frozen decomposition and the scratch layout;
per-member views are resolved once at bind time through the same
machinery as :class:`~repro.runtime.bound.BoundPlan`.

Three execution shapes, chosen per statement at bind time:

* **Fused batched** (python backend) — statements whose expression
  evaluates strictly elementwise (:func:`batch_safe_statement`) bind a
  single :class:`~repro.runtime.bound._BoundStatement` whose geometry is
  *batch-shifted*: the member axis becomes frame axis 0, every access
  slot moves one axis right, and one ufunc call sweeps all members of a
  chunk.  On small grids this amortises NumPy's per-call dispatch over
  the whole ensemble — the dominant cost of a single-member steady
  state — and is where the ensemble throughput win comes from.
* **Native chained** (native backend) — each statement binds per member
  to the JIT-built C entry (:mod:`repro.runtime.native`), and all
  consecutive native statements of a chunk collapse into one
  chain-runner FFI call: a whole member-timestep — in fact a whole
  chunk-timestep — stays one C call.
* **Per-member fallback** — statements that are neither (user-bound
  functions whose NumPy implementations might mix members, e.g. via
  reductions) bind one python statement per member against the member's
  slice views.

Why per-member results are bitwise identical by construction
------------------------------------------------------------

The fused path executes the *same* lambdify-generated code on the same
per-member operand values; every operation in it is a NumPy ufunc (or a
composition of ufuncs: ``where``/``select``), and ufuncs are elementwise
— the value at output index ``(m, i, j)`` depends only on the inputs at
``(m, i, j)``, computed by the same scalar kernel regardless of the
leading extent.  Reductions over *frame* axes (reduced targets) reduce
the same operand sequence per member.  Stacking members therefore
changes operand shapes but not one per-member bit; the batched run
equals a loop of single-member runs by construction, and
``tests/test_ensemble.py`` asserts it bit for bit across apps, backends
and dtypes.  The native path inherits the native backend's own bitwise
contract unchanged, since each member binds exactly like a
single-scenario run.

Member chunks and scheduling
----------------------------

Members are split into contiguous chunks (``split_box`` over the member
range).  With ``workers == 1`` there is a single chunk — maximal
fusion, no threads.  With ``workers > 1`` the chunks (about four per
worker, so stealing has slack to rebalance) are driven by a
:class:`~repro.runtime.scheduler.WorkStealingScheduler`; chunks touch
disjoint member slices, so they need no synchronisation beyond the
final join.  Results are bitwise independent of ``workers`` and chunk
count.

Example
-------

>>> import numpy as np
>>> from repro.apps import heat_problem
>>> from repro.core import adjoint_loops
>>> from repro.runtime import compile_nests, stack_arrays
>>> prob = heat_problem(1)
>>> kernel = compile_nests(
...     adjoint_loops(prob.primal, prob.adjoint_map), prob.bindings(8))
>>> states = [prob.allocate_state(8, seed=m) for m in range(4)]
>>> ensemble = kernel.plan().ensemble(stack_arrays(states))
>>> ensemble.run()                        # one timestep, all 4 members
>>> member0 = ensemble.member_arrays(0)   # views into the batched state
>>> single = {k: v.copy() for k, v in states[0].items()}
>>> kernel.plan().bind(single).run()
>>> bool(np.array_equal(member0["u_1_b"], single["u_1_b"]))
True
"""

from __future__ import annotations

import weakref
from typing import Mapping, Sequence

import numpy as np
import sympy as sp

from ..codegen.native_c import native_eligibility
from ..core.fusion import FusionEntry, plan_groups
from ..errors import EnsembleBindError, ReproError
from . import faults
from .bound import _ALLOWED_FUNCS, _BoundStatement, _supports_inplace
from .compiler import CompiledAccess, CompiledStatement, KernelError
from .native import (
    chain_runnables,
    library_for_kernel,
    make_fused_statement,
    make_native_statement,
    native_thread_count,
)
from .scheduler import WorkStealingScheduler, split_box

__all__ = ["EnsemblePlan", "stack_arrays", "batch_safe_statement"]


def stack_arrays(
    member_arrays: Sequence[Mapping[str, np.ndarray]],
) -> dict[str, np.ndarray]:
    """Stack per-member array dicts into one batched dict.

    Every member mapping must hold the same names with equal shapes and
    dtypes; the result maps each name to a fresh C-contiguous
    ``(members, *shape)`` array (member values are copied, so mutating
    the batched state never aliases the inputs).

    >>> import numpy as np
    >>> from repro.runtime import stack_arrays
    >>> batched = stack_arrays([{"u": np.zeros(3)}, {"u": np.ones(3)}])
    >>> batched["u"].shape
    (2, 3)
    """
    members = list(member_arrays)
    if not members:
        raise ValueError("need at least one ensemble member")
    names = sorted(members[0])
    for m, arrays in enumerate(members):
        if sorted(arrays) != names:
            raise ValueError(
                f"member {m} holds arrays {sorted(arrays)}, expected {names}"
            )
        for name in names:
            # np.stack would silently promote mixed dtypes (and raise a
            # shapeless error on ragged shapes) — and a promoted member
            # is no longer bitwise-comparable to its single-scenario
            # run, so mismatches must fail loudly here.
            arr, ref = arrays[name], members[0][name]
            if arr.dtype != ref.dtype or arr.shape != ref.shape:
                raise ValueError(
                    f"member {m} array {name!r} is "
                    f"{arr.dtype}{arr.shape}, but member 0 has "
                    f"{ref.dtype}{ref.shape}; members must match exactly"
                )
    return {name: np.stack([mem[name] for mem in members]) for name in names}


# -- batch eligibility --------------------------------------------------------

# Constructs whose lambdify-generated NumPy evaluation is strictly
# elementwise, so a leading member axis cannot change per-member bits:
# the inplace whitelist (pure ufuncs), Min/Max (pairwise
# minimum/maximum), Heaviside/DiracDelta (where/zeros_like fallbacks)
# and Piecewise with relational/boolean conditions (numpy.select).
_BATCH_FUNCS = _ALLOWED_FUNCS + (
    sp.Min,
    sp.Max,
    sp.Heaviside,
    sp.DiracDelta,
)
_BATCH_NODES = (
    sp.Add,
    sp.Mul,
    sp.Pow,
    sp.Number,
    sp.NumberSymbol,
    sp.Symbol,
    sp.Piecewise,
    sp.functions.elementary.piecewise.ExprCondPair,
    sp.core.relational.Relational,
    sp.logic.boolalg.BooleanFunction,
    sp.logic.boolalg.BooleanAtom,
)


def batch_safe_statement(stmt: CompiledStatement) -> bool:
    """True when *stmt* may evaluate with a stacked member axis.

    Conservative whitelist over the statement's substituted RHS: only
    constructs known to evaluate elementwise qualify.  User-bound
    functions (arbitrary callables that could reduce across what they
    are given) and statements compiled without an inspectable expression
    stay on the per-member path.  Memoised on the statement.
    """
    if stmt.batch_safe is None:
        ok = stmt.rhs_expr is not None
        if ok:
            for node in sp.preorder_traversal(stmt.rhs_expr):
                if isinstance(node, _BATCH_FUNCS):
                    continue
                if isinstance(node, _BATCH_NODES):
                    continue
                ok = False
                break
        stmt.batch_safe = ok
    return stmt.batch_safe


def _batch_shifted(stmt: CompiledStatement) -> CompiledStatement:
    """*stmt* with its access geometry shifted one axis right.

    Frame axis 0 becomes the member axis: every access gains a leading
    ``(0, 0)`` slot (member ``m`` of the batch maps to member ``m`` of
    every operand), existing slots and bare counters move up one axis,
    and the rank grows by one.  The eval function and expression are
    shared — only geometry changes — so
    :class:`~repro.runtime.bound._BoundStatement` binds the shifted
    statement exactly as it would a ``dim+1``-dimensional kernel.
    """

    def shift(slots: tuple[tuple[int, int], ...]) -> tuple[tuple[int, int], ...]:
        return ((0, 0),) + tuple((axis + 1, off) for axis, off in slots)

    _supports_inplace(stmt)  # fill the memo so the verdict transfers
    return CompiledStatement(
        target=CompiledAccess(stmt.target.name, shift(stmt.target.slots)),
        op=stmt.op,
        eval_fn=stmt.eval_fn,
        reads=tuple(
            CompiledAccess(acc.name, shift(acc.slots)) for acc in stmt.reads
        ),
        bare_axes=tuple(axis + 1 for axis in stmt.bare_axes),
        guard_box=None,  # boxes arrive pre-intersected from the plan
        dim=stmt.dim + 1,
        rhs_expr=stmt.rhs_expr,
        inplace_ok=stmt.inplace_ok,
        batch_safe=stmt.batch_safe,
    )


class _MemberChunk:
    """One schedulable unit: a contiguous member range, fully bound.

    ``items`` are execution-ordered runnables — fused batched
    statements over the chunk's member window, native chains, or
    per-member python statements.  Statement order follows the plan's
    flat serial order, so every member's statements run in the same
    order as a single-scenario serial run; interleaving *across*
    members is free because member slices are disjoint.
    """

    __slots__ = ("lo", "hi", "items")

    def __init__(self, lo: int, hi: int, items: Sequence) -> None:
        self.lo = lo
        self.hi = hi
        self.items = tuple(items)

    def run(self) -> None:
        for item in self.items:
            item.run()


class EnsemblePlan:
    """One execution plan bound against a stacked ensemble of scenarios.

    Build via :meth:`ExecutionPlan.ensemble
    <repro.runtime.plan.ExecutionPlan.ensemble>` (or directly); call
    :meth:`run` once per ensemble timestep.  The binding holds views
    into the batched array objects — like a
    :class:`~repro.runtime.bound.BoundPlan`, it stays valid while the
    caller updates values in place and must be rebuilt after replacing
    an array object.

    Parameters
    ----------
    plan:
        The member execution plan.  Any non-scatter configuration works
        — serial, threaded or tiled decompositions are replayed per
        member in the plan's flat serial order (ensemble parallelism
        comes from ``workers``, not from the member plan's threads);
        ``backend="native"`` dispatches member statements to JIT-built C
        and chains them across members.  Scatter plans are rejected:
        their thread-private merge discipline has no batched equivalent.
    batched:
        Mapping of array name to ``(members, *shape)`` array; every
        kernel array must be present with the same leading extent (see
        :func:`stack_arrays`).
    workers:
        Ensemble worker threads.  ``1`` (default) runs a single fused
        chunk on the calling thread; ``> 1`` splits members into chunks
        driven by a work-stealing scheduler.
    chunks:
        Override the chunk count (default: 1 for serial, about four per
        worker otherwise).  More chunks mean finer stealing granularity
        but less fusion per ufunc call.
    scheduler:
        An externally owned
        :class:`~repro.runtime.scheduler.WorkStealingScheduler` to run
        chunks on, shared between several ensembles (the checkpointed
        adjoint runtime binds one plan per rotation parity and drives
        them all through one scheduler).  The caller keeps ownership:
        :meth:`close` leaves a shared scheduler running.
    """

    def __init__(
        self,
        plan,
        batched: Mapping[str, np.ndarray],
        *,
        workers: int = 1,
        chunks: int | None = None,
        scheduler: WorkStealingScheduler | None = None,
    ) -> None:
        config = plan.config
        if config.scatter:
            raise KernelError(
                "ensemble execution does not support scatter plans: the "
                "thread-private zero-seeded merge has no batched "
                "equivalent; use the gather discipline"
            )
        if workers < 1:
            raise ValueError("workers must be >= 1")
        kernel_names = {
            name
            for rp in plan.region_plans
            for st in rp.region.statements
            for name in (st.target.name, *(acc.name for acc in st.reads))
        }
        missing = sorted(kernel_names - set(batched))
        if missing:
            raise KernelError(
                f"batched arrays missing kernel arrays {missing}"
            )
        # Keep every provided array (callers extract full member states,
        # including arrays this kernel happens not to touch), but they
        # must all share the member axis.
        names = sorted(batched)
        extents = {name: batched[name].shape[0] if batched[name].ndim else 0
                   for name in names}
        members = min(extents.values(), default=0)
        if members < 1 or len(set(extents.values())) != 1:
            raise KernelError(
                f"batched arrays must share one leading member axis; got "
                f"extents {extents}"
            )
        self.plan = plan
        self.members = members
        self.workers = workers
        self._batched = {name: batched[name] for name in names}
        self._member_views = [
            {name: self._batched[name][m] for name in names}
            for m in range(members)
        ]
        if chunks is None:
            chunks = 1 if workers == 1 else min(members, workers * 4)
        chunks = max(1, min(chunks, members))
        # Member kernels inherit in-kernel OpenMP threading through the
        # member plan's config; with multiple ensemble workers the
        # parallelism multiplies (workers x native threads), which the
        # bitwise contract tolerates — each member's arithmetic is
        # partition-invariant — but docs/threading.md flags for cost.
        native_lib = (
            library_for_kernel(plan.kernel, native_thread_count(config))
            if config.backend == "native"
            else None
        )
        self.native_threads = native_lib.nthreads if native_lib else 1
        self.batched_statement_count = 0
        self.native_statement_count = 0
        self.member_statement_count = 0
        self.fused_group_count = 0
        self.fused_statement_count = 0
        self._stream = tuple(self._flat_statements())
        # Dependence-aware fusion (repro.core.fusion): groups planned
        # once over the member plan's serial stream, bound per member.
        # Same scope as BoundPlan — serial untiled native member plans;
        # member views of one stacked array share strides, so every
        # member's fused nest is one content-keyed build.
        self._fusion_groups = None
        if (
            native_lib is not None
            and config.fusion != "off"
            and config.num_threads == 1
            and config.tile_shape is None
        ):
            dim = len(plan.kernel.counters)
            entries = []
            for region, si, st, eff in self._stream:
                dtype_name = (
                    getattr(region.dtype, "__name__", None)
                    or str(region.dtype)
                )
                entries.append(
                    FusionEntry(
                        stmt=st,
                        box=eff,
                        dim=dim,
                        dtype=dtype_name,
                        blocker=native_eligibility(st, dim, region.dtype),
                    )
                )
            self._fusion_groups = plan_groups(entries)
        shifted_memo: dict[int, CompiledStatement] = {}
        self._chunks = tuple(
            self._bind_chunk(lo, hi, native_lib, shifted_memo)
            for ((lo, hi),) in split_box(((0, members - 1),), chunks)
        )
        self._shared_scheduler = scheduler
        self._scheduler: WorkStealingScheduler | None = None
        self._scheduler_finalizer: weakref.finalize | None = None

    # -- binding -----------------------------------------------------------

    def _flat_statements(self):
        """(region, si, st, eff) in the plan's flat serial order."""
        for rp in self.plan.region_plans:
            for task in rp.tasks:
                for boxes in task:
                    for si, (st, eff) in enumerate(
                        zip(rp.region.statements, boxes)
                    ):
                        if eff is not None:
                            yield rp.region, si, st, eff

    @staticmethod
    def _member_bind(m, fn):
        """Bind one member, typing any failure as :class:`EnsembleBindError`.

        Per-member binding is where the ensemble first touches member
        ``m``'s slice views (and, on the native path, allocates argument
        buffers) — a failure here must name the member so the caller
        knows which scenario poisoned the batch, and must not be a bare
        ``MemoryError``/``ValueError`` from three layers down.
        """
        try:
            faults.check("ensemble.bind")
            return fn()
        except ReproError:
            raise
        except Exception as exc:
            raise EnsembleBindError(
                f"binding ensemble member {m} failed: {exc}", member=m
            ) from exc

    def _bind_chunk(self, lo, hi, native_lib, shifted_memo) -> _MemberChunk:
        """Bind members ``lo..hi``, fused-group-major.

        Fusable groups of the member plan's stream bind one generated
        nest per member; everything else binds statement-major as
        before: all members native when every member can (uniform
        geometry makes that all-or-nothing in practice), else one fused
        batch-shifted statement when the expression is elementwise, else
        one python statement per member.  Consecutive native statements
        — across members *and* statements — collapse into single
        chain-runner calls.  Member slices are disjoint, so any
        interleaving across members preserves per-member order.
        """
        items: list = []
        if self._fusion_groups is None:
            for region, si, st, eff in self._stream:
                self._bind_stmt_members(
                    items, lo, hi, native_lib, shifted_memo, region, si, st, eff
                )
        else:
            pos = 0
            for group in self._fusion_groups:
                n = len(group.entries)
                fused = None
                if group.fused:
                    fused = [
                        self._member_bind(
                            m,
                            lambda m=m: make_fused_statement(
                                self.plan.kernel,
                                group.entries,
                                self._member_views[m],
                                nthreads=self.native_threads,
                            ),
                        )
                        for m in range(lo, hi + 1)
                    ]
                    if any(fs is None for fs in fused):
                        fused = None  # group-wise fallback, all members
                if fused is not None:
                    items.extend(fused)
                    self.fused_group_count += len(fused)
                    self.fused_statement_count += n * len(fused)
                    self.native_statement_count += n * len(fused)
                else:
                    for region, si, st, eff in self._stream[pos:pos + n]:
                        self._bind_stmt_members(
                            items, lo, hi, native_lib, shifted_memo,
                            region, si, st, eff,
                        )
                pos += n
        return _MemberChunk(lo, hi, chain_runnables(native_lib, items))

    def _bind_stmt_members(
        self, items, lo, hi, native_lib, shifted_memo, region, si, st, eff
    ) -> None:
        """Bind one statement for members ``lo..hi`` (the unfused shapes)."""
        if native_lib is not None:
            native = [
                self._member_bind(
                    m,
                    lambda m=m: make_native_statement(
                        native_lib, region, si, st, self._member_views[m], eff
                    ),
                )
                for m in range(lo, hi + 1)
            ]
            if all(ns is not None for ns in native):
                items.extend(native)
                self.native_statement_count += len(native)
                return
        if batch_safe_statement(st):
            shifted = shifted_memo.get(id(st))
            if shifted is None:
                shifted = shifted_memo[id(st)] = _batch_shifted(st)
            items.append(
                self._member_bind(
                    f"{lo}..{hi}",
                    lambda: _BoundStatement(
                        shifted,
                        self._batched,
                        ((lo, hi),) + tuple(eff),
                        region.dtype,
                    ),
                )
            )
            self.batched_statement_count += 1
        else:
            for m in range(lo, hi + 1):
                items.append(
                    self._member_bind(
                        m,
                        lambda m=m: _BoundStatement(
                            st, self._member_views[m], eff, region.dtype
                        ),
                    )
                )
            self.member_statement_count += hi - lo + 1

    # -- queries -----------------------------------------------------------

    @property
    def chunk_count(self) -> int:
        """Schedulable member chunks (1 means fully fused, no threads)."""
        return len(self._chunks)

    @property
    def statement_count(self) -> int:
        """Bound runnable statements across all chunks and members."""
        return (
            self.batched_statement_count
            + self.native_statement_count
            + self.member_statement_count
        )

    def member_arrays(self, m: int) -> dict[str, np.ndarray]:
        """Member *m*'s working set as views into the batched arrays.

        Reading gives the member's current state; writing (in place)
        updates the ensemble.  The views stay valid for the plan's
        lifetime.
        """
        if not 0 <= m < self.members:
            raise IndexError(f"member {m} out of range [0, {self.members})")
        return dict(self._member_views[m])

    # -- execution ---------------------------------------------------------

    def run(self) -> None:
        """Advance every member by one kernel application.

        Chunks run on the work-stealing workers when ``workers > 1``
        (and there is more than one chunk), otherwise inline on the
        calling thread.  Results are bitwise identical either way.
        """
        chunks = self._chunks
        if self.workers > 1 and len(chunks) > 1:
            self._ensure_scheduler().run([chunk.run for chunk in chunks])
        else:
            for chunk in chunks:
                chunk.run()

    def _ensure_scheduler(self) -> WorkStealingScheduler:
        if self._shared_scheduler is not None:
            return self._shared_scheduler
        if self._scheduler is None:
            self._scheduler = WorkStealingScheduler(self.workers)
            # Ensembles held by memoised plans can outlive their users;
            # release the worker threads with the ensemble object.
            self._scheduler_finalizer = weakref.finalize(
                self, self._scheduler.close
            )
        return self._scheduler

    def close(self) -> None:
        """Shut down owned worker threads (recreated lazily on next run).

        A shared scheduler passed at construction stays running — its
        owner closes it.
        """
        if self._scheduler is not None:
            if self._scheduler_finalizer is not None:
                self._scheduler_finalizer.detach()
                self._scheduler_finalizer = None
            self._scheduler.close()
            self._scheduler = None

    def __enter__(self) -> "EnsemblePlan":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
