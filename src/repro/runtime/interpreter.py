"""Reference pointwise interpreter.

Executes loop nests with explicit Python loops, point by point, in exactly
the order the generated C code would (row-major over the iteration box,
statements in body order).  It is orders of magnitude slower than the
compiled slice kernels but serves as the semantic oracle for the test
suite — in particular for the determinism/ordering discussion of
Section 3.5, where the *order* of floating-point accumulation matters.
"""

from __future__ import annotations

import itertools
from typing import Callable, Mapping, Sequence

import numpy as np
import sympy as sp

from ..codegen.base import match_derivative_call
from ..core.accesses import classify_applied, extract_access
from ..core.loopnest import LoopNest
from .bindings import Bindings
from .compiler import _rewrite_derivative_calls

__all__ = ["interpret_nests"]

_SCALAR_FALLBACKS = {
    "Heaviside": lambda x, h=None: 1.0 if x >= 0 else 0.0,
    "DiracDelta": lambda x: 0.0,
    "Max": max,
    "Min": min,
}


def _compile_pointwise(
    stmt_rhs: sp.Expr,
    counters: Sequence[sp.Symbol],
    bindings: Bindings,
) -> tuple[Callable, list, list[sp.Symbol]]:
    """Lambdify a statement RHS for scalar (pointwise) evaluation.

    Returns ``(fn, access_patterns, bare_counters)``; the caller evaluates
    ``fn(*[array[index] for each access], *[counter values])``.
    """
    rhs = bindings.substitute(_rewrite_derivative_calls(stmt_rhs))
    accesses, _calls = classify_applied(rhs, counters)
    placeholders = []
    patterns = []
    repl = {}
    for idx, acc in enumerate(accesses):
        ph = sp.Symbol(f"__acc{idx}")
        patterns.append(extract_access(acc, counters))
        placeholders.append(ph)
        repl[acc] = ph
    rhs_sub = rhs.xreplace(repl)
    bare = sorted(
        (s for s in rhs_sub.free_symbols if s in counters),
        key=lambda s: list(counters).index(s),
    )
    modules = [dict(_SCALAR_FALLBACKS), dict(bindings.functions), "math"]
    fn = sp.lambdify(placeholders + bare, rhs_sub, modules=modules)
    return fn, patterns, bare


def interpret_nests(
    nests: Sequence[LoopNest],
    arrays: Mapping[str, np.ndarray],
    bindings: Bindings,
) -> None:
    """Execute loop nests pointwise on the given arrays, in order."""
    for nest in nests:
        counters = nest.counters
        axis_of = {c: d for d, c in enumerate(counters)}
        ranges = []
        empty = False
        for c in counters:
            lo = bindings.int_bound(nest.bounds[c][0])
            hi = bindings.int_bound(nest.bounds[c][1])
            if lo > hi:
                empty = True
                break
            ranges.append(range(lo, hi + 1))
        if empty:
            continue
        compiled = []
        for stmt in nest.statements:
            fn, patterns, bare = _compile_pointwise(stmt.rhs, counters, bindings)
            lhs_pat = extract_access(stmt.lhs, counters)
            guard_fn = None
            if stmt.guard is not None:
                guard_expr = bindings.substitute(stmt.guard)
                guard_fn = sp.lambdify(list(counters), guard_expr, modules=["math"])
            compiled.append((stmt, fn, patterns, bare, lhs_pat, guard_fn))
        for point in itertools.product(*ranges):
            env = dict(zip(counters, point))
            for stmt, fn, patterns, bare, lhs_pat, guard_fn in compiled:
                if guard_fn is not None and not guard_fn(*point):
                    continue
                args = []
                for pat in patterns:
                    idx = tuple(
                        env[c] + o for c, o in zip(pat.counters, pat.offsets)
                    )
                    args.append(arrays[pat.name][idx])
                args.extend(env[c] for c in bare)
                val = fn(*args)
                tidx = tuple(
                    env[c] + o for c, o in zip(lhs_pat.counters, lhs_pat.offsets)
                )
                if stmt.op == "+=":
                    arrays[lhs_pat.name][tidx] += val
                else:
                    arrays[lhs_pat.name][tidx] = val
