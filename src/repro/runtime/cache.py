"""Content-addressed kernel cache: compile once, run many.

The paper's workflow compiles the generated stencil kernel once (``icc
-O3``) and then reuses the binary for every timestep and benchmark
repetition.  The reproduction's analogue of that compile step is
``sp.lambdify`` — SymPy printing plus ``exec`` — which is orders of
magnitude more expensive than executing a small kernel, so re-running it
on every :func:`~repro.runtime.compiler.compile_nests` call puts
compilation in the middle of every hot loop.

:class:`KernelCache` removes that cost the way PyOP2 does for its
generated C kernels: compiled kernels are keyed by a *content hash* of
everything that determines the generated code — the loop-nest structure
(statements, bounds, counters, guards), the concrete bindings (sizes,
params, dtype, bound function implementations) and the kernel name — so
two calls with equal inputs return the identical
:class:`~repro.runtime.compiler.CompiledKernel` object, while any change
to the inputs misses and recompiles.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Sequence

import numpy as np
import sympy as sp

from ..core.loopnest import LoopNest
from .bindings import Bindings

__all__ = [
    "KernelCache",
    "kernel_key",
    "get_kernel_cache",
    "clear_kernel_cache",
    "native_cache_dir",
]


def native_cache_dir() -> Path:
    """Directory holding the native backend's content-addressed objects.

    Each JIT-built shared object (and its generated C source) lives here
    under its content hash — see :mod:`repro.runtime.native`.  Defaults
    to ``.repro_cache/native`` below the working directory (the
    directory is gitignored); ``REPRO_CACHE_DIR`` relocates the root,
    e.g. to share one cache across checkouts or point CI at a persisted
    volume.  Entries never expire: the key covers everything that
    determines the binary, so stale entries are merely unused, and
    ``rm -rf`` of the directory is always safe.

    >>> from repro.runtime import native_cache_dir
    >>> native_cache_dir().name
    'native'
    """
    root = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
    return Path(root) / "native"


# ``sp.srepr`` dominates key computation for large adjoint expressions, so
# nest fingerprints are memoised on the (hashable) symbolic structure:
# repeated lookups for the same nests cost a dict hit, not a re-print.
# SymPy caches expression hashes and interns equal expressions, so both
# hashing and the equality check on hit are cheap.
_NEST_FP_CACHE: dict = {}


def _nest_fingerprint(nest: LoopNest) -> str:
    """Deterministic textual form of a loop nest's compiled identity."""
    memo_key = (
        nest.name,
        nest.requires_padding,
        nest.statements,
        nest.counters,
        tuple((c, nest.bounds[c]) for c in nest.counters),
    )
    fp = _NEST_FP_CACHE.get(memo_key)
    if fp is not None:
        return fp
    parts = [f"name={nest.name!r}", f"pad={nest.requires_padding}"]
    parts.append("counters=" + ",".join(sp.srepr(c) for c in nest.counters))
    for c in nest.counters:
        lo, hi = nest.bounds[c]
        parts.append(f"bound[{sp.srepr(c)}]=({sp.srepr(lo)},{sp.srepr(hi)})")
    for st in nest.statements:
        guard = sp.srepr(st.guard) if st.guard is not None else "None"
        parts.append(
            f"stmt({sp.srepr(st.lhs)} {st.op} {sp.srepr(st.rhs)} if {guard})"
        )
    fp = ";".join(parts)
    if len(_NEST_FP_CACHE) < 4096:
        _NEST_FP_CACHE[memo_key] = fp
    return fp


def _bindings_fingerprint(bindings: Bindings) -> str:
    """Deterministic textual form of everything bindings contribute.

    Function implementations are identified by ``(name, id(fn))``: two
    bindings sharing the same callable objects hit, while rebinding a
    name to a different implementation misses (process-local identity is
    the strongest equality available for arbitrary callables).
    """
    sizes = sorted((str(k), repr(v)) for k, v in bindings.sizes.items())
    params = sorted((str(k), repr(v)) for k, v in bindings.params.items())
    funcs = sorted((name, id(fn)) for name, fn in bindings.functions.items())
    return ";".join(
        [
            "sizes=" + repr(sizes),
            "params=" + repr(params),
            "functions=" + repr(funcs),
            "dtype=" + np.dtype(bindings.dtype).str,
        ]
    )


def kernel_key(
    nests: Sequence[LoopNest],
    bindings: Bindings,
    name: str = "kernel",
    extra: tuple = (),
) -> str:
    """Stable content hash identifying a compiled kernel.

    ``extra`` lets callers fold additional backend options into the key
    without subclassing the cache.

    >>> from repro import heat_problem
    >>> from repro.runtime import kernel_key
    >>> prob = heat_problem(1)
    >>> key = kernel_key([prob.primal], prob.bindings(16))
    >>> key == kernel_key([prob.primal], prob.bindings(16))   # deterministic
    True
    >>> key == kernel_key([prob.primal], prob.bindings(17))   # sizes differ
    False
    """
    payload = "\n".join(
        [f"kernel={name!r}"]
        + [_nest_fingerprint(nest) for nest in nests]
        + [_bindings_fingerprint(bindings), f"extra={extra!r}"]
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class KernelCache:
    """LRU cache of compiled kernels keyed by content hash.

    >>> from repro.runtime import KernelCache
    >>> cache = KernelCache(maxsize=2)
    >>> cache.get_or_compile("key-a", lambda: "kernel-a")
    'kernel-a'
    >>> cache.get_or_compile("key-a", lambda: "never called")   # hit
    'kernel-a'
    >>> cache.stats() == {"hits": 1, "misses": 1, "entries": 1}
    True
    """

    def __init__(self, maxsize: int = 256):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._entries: OrderedDict[str, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get_or_compile(self, key: str, factory: Callable[[], object]):
        """Return the cached kernel for *key*, compiling via *factory* on miss."""
        try:
            kernel = self._entries[key]
        except KeyError:
            self.misses += 1
            kernel = factory()
            self._entries[key] = kernel
            if len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
            return kernel
        self.hits += 1
        self._entries.move_to_end(key)
        return kernel

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
        }


_GLOBAL_CACHE = KernelCache()


def get_kernel_cache() -> KernelCache:
    """The process-wide cache consulted by ``compile_nests`` by default.

    >>> from repro.runtime import KernelCache, get_kernel_cache
    >>> isinstance(get_kernel_cache(), KernelCache)
    True
    >>> get_kernel_cache() is get_kernel_cache()
    True
    """
    return _GLOBAL_CACHE


def clear_kernel_cache() -> None:
    """Drop all cached kernels and reset hit/miss counters.

    >>> from repro.runtime import clear_kernel_cache, get_kernel_cache
    >>> clear_kernel_cache()
    >>> len(get_kernel_cache())
    0
    """
    _GLOBAL_CACHE.clear()
