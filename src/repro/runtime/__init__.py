"""Execution substrate: kernel compiler, plan/cache runtime, executors."""

from . import faults
from ..errors import (
    CheckpointError,
    EnsembleBindError,
    NativeBuildError,
    NumericalDivergenceError,
    ReproError,
    SchedulerError,
    ServeError,
    ShardError,
    ValidationError,
)
from .bindings import Bindings
from .bound import BoundPlan
from .checkpoint import (
    CheckpointedAdjointPlan,
    ShardedCheckpointedAdjoint,
    SnapshotPool,
)
from .cache import (
    KernelCache,
    clear_kernel_cache,
    get_kernel_cache,
    kernel_key,
    native_cache_dir,
)
from .distributed import (
    DistributedExecutor,
    RankSlab,
    ShardedPlan,
    decompose,
)
from .ensemble import EnsemblePlan, batch_safe_statement, stack_arrays
from .native import (
    NativeLibrary,
    native_available,
    native_thread_count,
    native_toolchain,
)
from .compiler import (
    CompiledKernel,
    KernelError,
    RegionKernel,
    assert_disjoint_writes,
    compile_nests,
)
from .interpreter import interpret_nests
from .parallel import ParallelExecutor
from .plan import (
    ExecutionConfig,
    ExecutionPlan,
    ShardSpec,
    validate_scatter_kernel,
)
from .profiler import KernelProfile, RegionProfile, profile_kernel
from .server import KernelServer, seeded_state, state_shapes
from .client import KernelClient, ServeResult
from .scheduler import (
    WorkStealingScheduler,
    choose_split_axis,
    safe_split_axis,
    split_box,
)
from .tiling import run_tiled, safe_to_tile, tile_box

__all__ = [
    "Bindings",
    "BoundPlan",
    "CheckpointError",
    "CheckpointedAdjointPlan",
    "EnsembleBindError",
    "NativeBuildError",
    "NumericalDivergenceError",
    "ReproError",
    "SchedulerError",
    "ServeError",
    "ShardError",
    "ShardSpec",
    "ShardedCheckpointedAdjoint",
    "ShardedPlan",
    "ValidationError",
    "faults",
    "CompiledKernel",
    "DistributedExecutor",
    "EnsemblePlan",
    "ExecutionConfig",
    "ExecutionPlan",
    "KernelCache",
    "KernelClient",
    "KernelServer",
    "ServeResult",
    "WorkStealingScheduler",
    "batch_safe_statement",
    "stack_arrays",
    "RankSlab",
    "decompose",
    "KernelError",
    "KernelProfile",
    "NativeLibrary",
    "ParallelExecutor",
    "RegionProfile",
    "SnapshotPool",
    "profile_kernel",
    "RegionKernel",
    "assert_disjoint_writes",
    "choose_split_axis",
    "clear_kernel_cache",
    "compile_nests",
    "get_kernel_cache",
    "interpret_nests",
    "kernel_key",
    "native_available",
    "native_cache_dir",
    "native_thread_count",
    "native_toolchain",
    "run_tiled",
    "safe_split_axis",
    "safe_to_tile",
    "seeded_state",
    "state_shapes",
    "split_box",
    "tile_box",
    "validate_scatter_kernel",
]
