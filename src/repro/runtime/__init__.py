"""Execution substrate: kernel compiler, interpreter, parallel executors."""

from .bindings import Bindings
from .distributed import DistributedExecutor, RankSlab, decompose
from .compiler import (
    CompiledKernel,
    KernelError,
    RegionKernel,
    assert_disjoint_writes,
    compile_nests,
)
from .interpreter import interpret_nests
from .parallel import ParallelExecutor
from .profiler import KernelProfile, RegionProfile, profile_kernel
from .scheduler import choose_split_axis, split_box
from .tiling import run_tiled, tile_box

__all__ = [
    "Bindings",
    "CompiledKernel",
    "DistributedExecutor",
    "RankSlab",
    "decompose",
    "KernelError",
    "KernelProfile",
    "ParallelExecutor",
    "RegionProfile",
    "profile_kernel",
    "RegionKernel",
    "assert_disjoint_writes",
    "choose_split_axis",
    "compile_nests",
    "interpret_nests",
    "run_tiled",
    "split_box",
    "tile_box",
]
