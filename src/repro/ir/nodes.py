"""Backend-neutral loop IR.

The symbolic :class:`~repro.core.loopnest.LoopNest` describes *what* to
compute; this small tree IR describes *how* it is laid out as loops,
blocks, guards and statements, so that every code generator (C, Fortran,
Python) lowers from the same structure.  Nodes are immutable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import sympy as sp
from sympy.core.function import AppliedUndef

__all__ = ["Node", "Assign", "Guard", "Loop", "Block", "Function", "Comment"]


class Node:
    """Base class for IR nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Assign(Node):
    """``target[indices] op rhs`` with op in {"=", "+="}."""

    target: str
    indices: tuple[sp.Expr, ...]
    rhs: sp.Expr
    op: str = "="


@dataclass(frozen=True)
class Guard(Node):
    """Conditional execution of *body* under a SymPy boolean condition."""

    condition: sp.Basic
    body: tuple[Node, ...]


@dataclass(frozen=True)
class Loop(Node):
    """A counted loop, inclusive bounds, optionally parallel (outermost)."""

    counter: sp.Symbol
    lower: sp.Expr
    upper: sp.Expr
    body: tuple[Node, ...]
    parallel: bool = False
    private: tuple[sp.Symbol, ...] = ()
    shared: tuple[str, ...] = ()

    @property
    def is_single_iteration(self) -> bool:
        """True if the bounds are symbolically equal (one iteration)."""
        return sp.simplify(self.upper - self.lower) == 0


@dataclass(frozen=True)
class Block(Node):
    """Straight-line sequence of nodes."""

    body: tuple[Node, ...]


@dataclass(frozen=True)
class Comment(Node):
    """A comment line carried through to the generated code."""

    text: str


@dataclass(frozen=True)
class Function(Node):
    """A generated function: arrays, scalar parameters, and a body.

    ``array_ranks`` maps each array argument name to its rank; code
    generators use it to emit declarations.  ``sizes`` are the integer
    size symbols appearing in loop bounds (e.g. ``n``); ``scalars`` the
    remaining real-valued parameters (e.g. ``C``, ``D``).
    """

    name: str
    array_ranks: dict[str, int]
    sizes: tuple[sp.Symbol, ...]
    scalars: tuple[sp.Symbol, ...]
    body: tuple[Node, ...]
