"""Lowering :class:`~repro.core.loopnest.LoopNest` objects to the loop IR.

This is the "Loop Generation" stage of Figure 2: each region loop nest
becomes a ``Loop`` tree; single-iteration loops (the unrolled remainder
statements of Section 3.2) are flattened into straight-line statements.
A list of nests (e.g. the adjoint boundary nests plus core nest) becomes
one ``Function``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import sympy as sp
from sympy.core.function import AppliedUndef

from ..core.accesses import classify_applied
from ..core.loopnest import LoopNest, Statement
from ..core.symbols import array_name
from .nodes import Assign, Block, Comment, Function, Guard, Loop, Node

__all__ = ["statement_to_ir", "loopnest_to_ir", "function_from_nests"]


def statement_to_ir(stmt: Statement) -> Node:
    node: Node = Assign(
        target=stmt.target_name,
        indices=tuple(stmt.lhs.args),
        rhs=stmt.rhs,
        op=stmt.op,
    )
    if stmt.guard is not None:
        node = Guard(condition=stmt.guard, body=(node,))
    return node


def loopnest_to_ir(
    nest: LoopNest,
    parallel: bool = True,
    unroll_single: bool = True,
) -> Node:
    """Lower one nest to a ``Loop`` tree.

    ``parallel`` marks the outermost surviving loop as parallel (the OpenMP
    ``parallel for`` of the paper's generated code).  With ``unroll_single``
    (default), loops whose bounds coincide symbolically are eliminated by
    substituting the counter — this reproduces PerforAD's unrolled remainder
    statements.
    """
    body: tuple[Node, ...] = tuple(statement_to_ir(s) for s in nest.statements)
    # Build loops innermost-first.
    loops_needed: list[sp.Symbol] = []
    subs: dict[sp.Symbol, sp.Expr] = {}
    for c in nest.counters:
        lo, hi = nest.bounds[c]
        if unroll_single and sp.simplify(hi - lo) == 0:
            subs[c] = lo
        else:
            loops_needed.append(c)
    if subs:
        body = tuple(_subs_node(n, subs) for n in body)
    for idx, c in enumerate(reversed(loops_needed)):
        lo, hi = nest.bounds[c]
        lo, hi = lo.subs(subs), hi.subs(subs)
        outermost = idx == len(loops_needed) - 1
        body = (
            Loop(
                counter=c,
                lower=lo,
                upper=hi,
                body=body,
                parallel=parallel and outermost,
                private=tuple(loops_needed) if (parallel and outermost) else (),
            ),
        )
    if len(body) == 1:
        return body[0]
    return Block(body=body)


def _subs_node(node: Node, subs: dict[sp.Symbol, sp.Expr]) -> Node:
    if isinstance(node, Assign):
        return Assign(
            target=node.target,
            indices=tuple(i.subs(subs) for i in node.indices),
            rhs=node.rhs.subs(subs),
            op=node.op,
        )
    if isinstance(node, Guard):
        return Guard(
            condition=node.condition.subs(subs),
            body=tuple(_subs_node(n, subs) for n in node.body),
        )
    if isinstance(node, Loop):
        return Loop(
            counter=node.counter,
            lower=node.lower.subs(subs),
            upper=node.upper.subs(subs),
            body=tuple(_subs_node(n, subs) for n in node.body),
            parallel=node.parallel,
            private=node.private,
            shared=node.shared,
        )
    if isinstance(node, Block):
        return Block(body=tuple(_subs_node(n, subs) for n in node.body))
    return node


def _collect_arrays(nests: Sequence[LoopNest]) -> dict[str, int]:
    ranks: dict[str, int] = {}
    for nest in nests:
        for stmt in nest.statements:
            ranks[stmt.target_name] = len(stmt.lhs.args)
            accesses, _calls = classify_applied(stmt.rhs, nest.counters)
            for a in accesses:
                ranks.setdefault(array_name(a), len(a.args))
    return ranks


def function_from_nests(
    name: str,
    nests: Sequence[LoopNest],
    parallel: bool = True,
    unroll_single: bool = True,
) -> Function:
    """Bundle several loop nests (e.g. boundary + core) into one function."""
    nests = list(nests)
    body: list[Node] = []
    for nest in nests:
        if nest.name:
            body.append(Comment(nest.name))
        body.append(loopnest_to_ir(nest, parallel=parallel, unroll_single=unroll_single))
    sizes: set[sp.Symbol] = set()
    scalars: set[sp.Symbol] = set()
    for nest in nests:
        sizes |= set(nest.size_symbols())
        scalars |= set(nest.scalar_parameters())
    scalars -= sizes
    ranks = _collect_arrays(nests)
    return Function(
        name=name,
        array_ranks=ranks,
        sizes=tuple(sorted(sizes, key=lambda s: s.name)),
        scalars=tuple(sorted(scalars, key=lambda s: s.name)),
        body=tuple(body),
    )
