"""Backend-neutral loop IR and lowering from symbolic loop nests."""

from .build import function_from_nests, loopnest_to_ir, statement_to_ir
from .nodes import Assign, Block, Comment, Function, Guard, Loop, Node

__all__ = [
    "Assign",
    "Block",
    "Comment",
    "Function",
    "Guard",
    "Loop",
    "Node",
    "function_from_nests",
    "loopnest_to_ir",
    "statement_to_ir",
]
