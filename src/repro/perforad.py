"""PerforAD-compatible facade.

Mirrors the user interface of the original tool so the paper's input
scripts (Figures 4 and 6) run with an ``import`` swap::

    import sympy as sp
    from repro.perforad import *

    c = sp.Function("c"); u = sp.Function("u"); u_b = sp.Function("u_b")
    ...
    lp = makeLoopNest(lhs=u(i,j,k), rhs=expr, counters=[i,j,k],
                      bounds={i:[1,n-2], j:[1,n-2], k:[1,n-2]})
    printfunction(name="wave3d", loopnestlist=[lp])
    printfunction(name="wave3d_perf_b",
                  loopnestlist=lp.diff({u:u_b, u_1:u_1_b, u_2:u_2_b}))

The camelCase aliases are intentional: they are the original PerforAD
names.  New code should prefer :func:`repro.core.make_loop_nest` and the
backend-specific ``print_function_*`` functions.
"""

from __future__ import annotations

import sys
from typing import Mapping, Sequence, TextIO

import sympy as sp

from .codegen import (
    print_function_c,
    print_function_cuda,
    print_function_fortran,
    print_function_python,
)
from .core.loopnest import LoopNest, make_loop_nest

__all__ = ["makeLoopNest", "printfunction", "LoopNest"]

_BACKENDS = {
    "c": print_function_c,
    "fortran": print_function_fortran,
    "cuda": print_function_cuda,
    "python": print_function_python,
}


def makeLoopNest(
    lhs: sp.Basic,
    rhs: sp.Expr,
    counters: Sequence[sp.Symbol],
    bounds: Mapping[sp.Symbol, Sequence[sp.Expr]],
) -> LoopNest:
    """Original PerforAD entry point (Figure 4); see ``make_loop_nest``."""
    return make_loop_nest(lhs=lhs, rhs=rhs, counters=counters, bounds=bounds)


def printfunction(
    name: str,
    loopnestlist: Sequence[LoopNest],
    backend: str = "c",
    file: TextIO | None = None,
    filename: str | None = None,
) -> str:
    """Print a generated function for a list of loop nests.

    Writes C (default), Fortran or Python source to *file* (default
    stdout) or *filename*, and returns the source string.
    """
    try:
        printer = _BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {sorted(_BACKENDS)}"
        ) from None
    code = printer(name, list(loopnestlist))
    if filename is not None:
        with open(filename, "w") as fh:
            fh.write(code)
    else:
        (file or sys.stdout).write(code)
    return code
