"""Render the figure regenerations as text tables / Markdown.

``render_all()`` produces the complete paper-vs-model comparison that
EXPERIMENTS.md records; the per-figure benchmark files print the same
tables so a benchmark run shows each figure's data next to its timing.
"""

from __future__ import annotations

import io

from . import figures as F

__all__ = ["render_speedup", "render_bars", "render_factors", "render_all"]


def render_speedup(fig: F.FigureSeries) -> str:
    out = io.StringIO()
    out.write(f"{fig.figure}: {fig.title} (model)\n")
    hdr = fig.header()
    out.write("  " + "".join(f"{h:>10s}" for h in hdr) + "\n")
    for row in fig.rows():
        cells = [f"{row[0]:>10d}"] + [f"{v:>10.2f}" for v in row[1:]]
        out.write("  " + "".join(cells) + "\n")
    return out.getvalue()


def render_bars(fig: F.RuntimeBars) -> str:
    out = io.StringIO()
    out.write(f"{fig.figure}: {fig.title}\n")
    out.write(f"  {'variant':>20s}{'model (s)':>12s}{'paper (s)':>12s}{'ratio':>8s}\n")
    for label, (model, paper) in fig.bars.items():
        out.write(
            f"  {label:>20s}{model:>12.2f}{paper:>12.2f}{model / paper:>8.2f}\n"
        )
    return out.getvalue()


def render_factors() -> str:
    """Headline speed-up factors of PerforAD over the conventional adjoint."""
    wave = F.wave_descriptors()
    burg = F.burgers_descriptors()
    rows = []

    bdw_wave = F.BROADWELL.time(wave.scatter, 1, "serial") / F.BROADWELL.best_time(
        wave.perforad, "gather"
    )[1]
    rows.append(("wave, Broadwell, best PerforAD vs conventional", bdw_wave, 3.4))
    knl_wave = F.KNL.time(wave.scatter, 1, "serial") / F.KNL.best_time(
        wave.perforad, "gather"
    )[1]
    rows.append(("wave, KNL, best PerforAD vs conventional", knl_wave, 19.0))
    bdw_burg = F.BROADWELL.time(burg.scatter, 1, "serial") / F.BROADWELL.best_time(
        burg.perforad, "gather"
    )[1]
    rows.append(("Burgers, Broadwell, best PerforAD vs conventional", bdw_burg, 5.7))
    knl_burg = F.KNL.time(burg.stack, 1, "stack") / F.KNL.best_time(
        burg.perforad, "gather"
    )[1]
    rows.append(("Burgers, KNL, best PerforAD vs conventional (stack)", knl_burg, 125.0))

    out = io.StringIO()
    out.write("Headline factors (PerforAD best parallel vs conventional adjoint)\n")
    out.write(f"  {'case':>52s}{'model':>9s}{'paper':>9s}\n")
    for label, model, paper in rows:
        out.write(f"  {label:>52s}{model:>9.1f}{paper:>9.1f}\n")
    return out.getvalue()


def render_all() -> str:
    parts = [
        render_speedup(F.fig08_wave_broadwell()),
        render_speedup(F.fig09_burgers_broadwell()),
        render_bars(F.fig10_wave_runtimes_broadwell()),
        render_bars(F.fig11_burgers_runtimes_broadwell()),
        render_speedup(F.fig12_wave_knl()),
        render_speedup(F.fig13_burgers_knl()),
        render_bars(F.fig14_wave_runtimes_knl()),
        render_bars(F.fig15_burgers_runtimes_knl()),
        render_factors(),
    ]
    return "\n".join(parts)
