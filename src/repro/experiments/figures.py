"""Regeneration of every figure in the paper's evaluation (Figures 8–15).

Each ``figNN_*`` function rebuilds the corresponding figure's data series
from this reproduction's own artefacts: the loop nests produced by the
transformation are characterised (:mod:`repro.machine.descriptor`) and
pushed through the calibrated machine model at the paper's problem sizes
and thread counts.  The paper's published values are recorded alongside in
:data:`PAPER` for the EXPERIMENTS.md comparison.

Series naming follows the figure legends:

* ``Primal``   — the primal stencil loop;
* ``Adjoint``  — conventional (Tapenade-style) adjoint, serial;
* ``Atomics``  — conventional adjoint, OpenMP-parallel with atomics;
* ``PerforAD`` — the adjoint stencil loops of this paper;
* ``Ideal``    — linear speedup reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..apps import burgers_problem, wave_problem
from ..baselines.scatter import tapenade_style_adjoint
from ..baselines.stack import nonlinear_intermediates
from ..core.transform import adjoint_loops
from ..machine import BROADWELL, KNL, KernelDescriptor, MachineModel
from ..machine.descriptor import analyze_nests, analyze_scatter

__all__ = [
    "FigureSeries",
    "RuntimeBars",
    "wave_descriptors",
    "burgers_descriptors",
    "fig08_wave_broadwell",
    "fig09_burgers_broadwell",
    "fig10_wave_runtimes_broadwell",
    "fig11_burgers_runtimes_broadwell",
    "fig12_wave_knl",
    "fig13_burgers_knl",
    "fig14_wave_runtimes_knl",
    "fig15_burgers_runtimes_knl",
    "PAPER",
]

# Paper problem sizes: one time step on a 1000^3 grid / 10^9 cells.
WAVE_N = 1000
BURGERS_N = 10**9

# Thread axes as plotted in the figures.
BROADWELL_THREADS = (1, 2, 4, 6, 8, 12)
KNL_THREADS_WAVE = (1, 2, 4, 8, 16, 32, 64)
KNL_THREADS_BURGERS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@dataclass(frozen=True)
class FigureSeries:
    """A speedup figure: thread counts and one speedup series per legend."""

    figure: str
    title: str
    threads: tuple[int, ...]
    series: dict[str, tuple[float, ...]]

    def rows(self) -> list[tuple]:
        out = []
        for idx, p in enumerate(self.threads):
            out.append((p,) + tuple(self.series[k][idx] for k in self.series))
        return out

    def header(self) -> tuple[str, ...]:
        return ("threads",) + tuple(self.series)


@dataclass(frozen=True)
class RuntimeBars:
    """A runtime-bar figure: label -> (model seconds, paper seconds)."""

    figure: str
    title: str
    bars: dict[str, tuple[float, float]]


@dataclass(frozen=True)
class _Descriptors:
    primal: KernelDescriptor
    perforad: KernelDescriptor
    scatter: KernelDescriptor
    stack: KernelDescriptor


def wave_descriptors(n: int = WAVE_N) -> _Descriptors:
    """Kernel descriptors for the 3-D wave test case at grid size *n*."""
    prob = wave_problem(3, active_c=False)
    sizes = {"n": n}
    primal = analyze_nests([prob.primal], sizes, cse=True)
    adj = analyze_nests(adjoint_loops(prob.primal, prob.adjoint_map), sizes)
    scat_nest = tapenade_style_adjoint(prob.primal, prob.adjoint_map)
    scat = analyze_scatter(scat_nest, sizes)
    return _Descriptors(primal=primal, perforad=adj, scatter=scat,
                        stack=scat.with_stack(0))


def burgers_descriptors(n: int = BURGERS_N) -> _Descriptors:
    """Kernel descriptors for the 1-D Burgers test case at *n* cells."""
    prob = burgers_problem(1)
    sizes = {"n": n}
    primal = analyze_nests([prob.primal], sizes, cse=True)
    adj = analyze_nests(adjoint_loops(prob.primal, prob.adjoint_map), sizes)
    scat_nest = tapenade_style_adjoint(prob.primal, prob.adjoint_map)
    scat = analyze_scatter(scat_nest, sizes)
    stack = scat.with_stack(len(nonlinear_intermediates(prob.primal)))
    return _Descriptors(primal=primal, perforad=adj, scatter=scat, stack=stack)


def _speedup_figure(
    figure: str,
    title: str,
    machine: MachineModel,
    desc: _Descriptors,
    threads: Sequence[int],
) -> FigureSeries:
    series: dict[str, tuple[float, ...]] = {}
    series["Primal"] = tuple(
        s for _, s in machine.speedup_curve(desc.primal, threads, "gather")
    )
    # "Adjoint": Tapenade output is serial -> speedup stays at 1.
    t_serial = machine.time(desc.scatter, 1, "serial")
    series["Adjoint"] = tuple(t_serial / t_serial for _ in threads)
    # "Atomics": speedup relative to the *serial conventional adjoint*,
    # as plotted in the paper (values below 1 mean slower than serial).
    series["Atomics"] = tuple(
        t_serial / machine.time(desc.scatter, p, "atomic") for p in threads
    )
    series["PerforAD"] = tuple(
        s for _, s in machine.speedup_curve(desc.perforad, threads, "gather")
    )
    series["Ideal"] = tuple(float(p) for p in threads)
    return FigureSeries(figure=figure, title=title, threads=tuple(threads), series=series)


def fig08_wave_broadwell() -> FigureSeries:
    """Figure 8: wave-equation speedups on Broadwell (up to 12 threads)."""
    return _speedup_figure(
        "fig08", "Scalability of the Wave Equation on Broadwell",
        BROADWELL, wave_descriptors(), BROADWELL_THREADS,
    )


def fig09_burgers_broadwell() -> FigureSeries:
    """Figure 9: Burgers-equation speedups on Broadwell."""
    return _speedup_figure(
        "fig09", "Scalability of the Burgers Equation on Broadwell",
        BROADWELL, burgers_descriptors(), BROADWELL_THREADS,
    )


def fig12_wave_knl() -> FigureSeries:
    """Figure 12: wave-equation speedups on KNL (up to 64 threads)."""
    return _speedup_figure(
        "fig12", "Scalability of the Wave Equation on KNL",
        KNL, wave_descriptors(), KNL_THREADS_WAVE,
    )


def fig13_burgers_knl() -> FigureSeries:
    """Figure 13: Burgers-equation speedups on KNL (up to 256 threads)."""
    return _speedup_figure(
        "fig13", "Scalability of the Burgers Equation on KNL",
        KNL, burgers_descriptors(), KNL_THREADS_BURGERS,
    )


def _runtime_bars(
    figure: str,
    title: str,
    machine: MachineModel,
    desc: _Descriptors,
    paper_bars: Mapping[str, float],
    conventional_serial_mode: str = "serial",
) -> RuntimeBars:
    model = {
        "Primal Serial": machine.time(desc.primal, 1, "gather"),
        "PerforAD Serial": machine.time(desc.perforad, 1, "gather"),
        "Adjoint Serial": machine.time(
            desc.stack if conventional_serial_mode == "stack" else desc.scatter,
            1,
            conventional_serial_mode,
        ),
        "Primal Parallel": machine.best_time(desc.primal, "gather")[1],
        "PerforAD Parallel": machine.best_time(desc.perforad, "gather")[1],
    }
    return RuntimeBars(
        figure=figure,
        title=title,
        bars={k: (model[k], paper_bars[k]) for k in model},
    )


def fig10_wave_runtimes_broadwell() -> RuntimeBars:
    """Figure 10: wave-equation absolute runtimes on Broadwell."""
    return _runtime_bars(
        "fig10", "Runtimes of the Wave Equation on Broadwell",
        BROADWELL, wave_descriptors(), PAPER["fig10"],
    )


def fig11_burgers_runtimes_broadwell() -> RuntimeBars:
    """Figure 11: Burgers-equation absolute runtimes on Broadwell."""
    return _runtime_bars(
        "fig11", "Runtimes of the Burgers Equation on Broadwell",
        BROADWELL, burgers_descriptors(), PAPER["fig11"],
    )


def fig14_wave_runtimes_knl() -> RuntimeBars:
    """Figure 14: wave-equation absolute runtimes on KNL."""
    return _runtime_bars(
        "fig14", "Runtimes of the Wave Equation on KNL",
        KNL, wave_descriptors(), PAPER["fig14"],
    )


def fig15_burgers_runtimes_knl() -> RuntimeBars:
    """Figure 15: Burgers runtimes on KNL (stack-based conventional serial).

    On KNL the paper used the original Tapenade output, which precomputes
    the min/max switches on a value stack — hence ``Adjoint Serial`` uses
    the stack execution mode here (Section 5.2).
    """
    return _runtime_bars(
        "fig15", "Runtimes of the Burgers Equation on KNL",
        KNL, burgers_descriptors(), PAPER["fig15"],
        conventional_serial_mode="stack",
    )


#: Published values read off the paper's figures and text.
PAPER: dict[str, dict[str, float]] = {
    "fig10": {
        "Primal Serial": 4.14,
        "PerforAD Serial": 8.52,
        "Adjoint Serial": 5.43,
        "Primal Parallel": 0.90,
        "PerforAD Parallel": 1.61,
    },
    "fig11": {
        "Primal Serial": 2.13,
        "PerforAD Serial": 15.73,
        "Adjoint Serial": 8.76,
        "Primal Parallel": 0.56,
        "PerforAD Parallel": 1.54,
    },
    "fig14": {
        "Primal Serial": 12.82,
        "PerforAD Serial": 41.27,
        "Adjoint Serial": 25.45,
        "Primal Parallel": 0.84,
        "PerforAD Parallel": 1.29,
    },
    "fig15": {
        "Primal Serial": 25.02,
        "PerforAD Serial": 51.85,
        "Adjoint Serial": 95.74,
        "Primal Parallel": 0.50,
        "PerforAD Parallel": 0.76,
    },
    # Section 5.1 text: atomics at one thread, wave equation, Broadwell.
    "atomics_1t_wave_broadwell": {"Atomics 1 thread": 91.0},
    # Headline factors quoted in the abstract/sections.
    "factors": {
        "wave_broadwell_best_vs_conventional": 3.4,
        "wave_knl_best_vs_conventional": 19.0,
        "burgers_knl_best_vs_conventional": 125.0,
        "burgers_broadwell_best_vs_conventional": 5.7,
    },
}
