"""Per-figure experiment regeneration (Figures 8-15) and reporting."""

from .figures import (
    PAPER,
    FigureSeries,
    RuntimeBars,
    burgers_descriptors,
    fig08_wave_broadwell,
    fig09_burgers_broadwell,
    fig10_wave_runtimes_broadwell,
    fig11_burgers_runtimes_broadwell,
    fig12_wave_knl,
    fig13_burgers_knl,
    fig14_wave_runtimes_knl,
    fig15_burgers_runtimes_knl,
    wave_descriptors,
)
from .report import render_all, render_bars, render_factors, render_speedup
from .steady import bitwise_equal, measure_steady_state

__all__ = [
    "bitwise_equal",
    "measure_steady_state",
    "PAPER",
    "FigureSeries",
    "RuntimeBars",
    "burgers_descriptors",
    "fig08_wave_broadwell",
    "fig09_burgers_broadwell",
    "fig10_wave_runtimes_broadwell",
    "fig11_burgers_runtimes_broadwell",
    "fig12_wave_knl",
    "fig13_burgers_knl",
    "fig14_wave_runtimes_knl",
    "fig15_burgers_runtimes_knl",
    "render_all",
    "render_bars",
    "render_factors",
    "render_speedup",
    "wave_descriptors",
]
