"""Shared steady-state measurement harness for bound execution plans.

One protocol — warm-up, best-of timing loops, ``tracemalloc``
allocation accounting, bitwise verification — used by both the CLI
(``python -m repro bench``, which writes ``BENCH_runtime.json``) and
``benchmarks/bench_bound_plan.py`` (the pytest-benchmark acceptance
gate), so the CI smoke record and the benchmark numbers cannot drift
apart protocol-wise.
"""

from __future__ import annotations

import time
import tracemalloc
from typing import Mapping, Sequence

import numpy as np

__all__ = ["bitwise_equal", "measure_steady_state", "measure_ensemble"]

_WARMUP_CALLS = 3
_TIMING_ROUNDS = 3
_ALLOC_CALLS = 5


def bitwise_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """True when two arrays hold identical bits.

    Stricter than ``np.array_equal``: NaNs with equal payloads compare
    equal (they are the same bits) and ``-0.0`` differs from ``+0.0``.
    """
    return a.shape == b.shape and a.dtype == b.dtype and a.tobytes() == b.tobytes()


def _best_of(fn, reps: int, rounds: int = _TIMING_ROUNDS) -> float:
    """Best per-call seconds over *rounds* loops of *reps* calls."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best / reps


def measure_steady_state(
    plan,
    arrays: dict[str, np.ndarray],
    base: Mapping[str, np.ndarray],
    reps: int,
) -> dict:
    """Steady-state unbound-vs-bound measurement of one plan.

    *arrays* is the mutable working set (same shapes/dtypes as *base*);
    *base* supplies the pristine values for the bitwise check.  Returns
    a JSON-ready record: per-call timings, speedup, steady-state
    allocation counters and the bitwise verdict.
    """
    bound = plan.bind(arrays)
    for _ in range(_WARMUP_CALLS):  # sizes replay buffers, warms caches
        plan.run_unbound(arrays)
        bound.run()

    t_unbound = _best_of(lambda: plan.run_unbound(arrays), reps)
    t_bound = _best_of(bound.run, reps)

    tracemalloc.start()
    tracemalloc.reset_peak()
    before = tracemalloc.get_traced_memory()[0]
    for _ in range(_ALLOC_CALLS):
        bound.run()
    current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    # Bitwise check on fresh values: bound equals unbound.
    ref = {name: arr.copy() for name, arr in base.items()}
    plan.run_unbound(ref)
    for name, arr in base.items():
        arrays[name][...] = arr
    bound.run()
    bitwise = all(bitwise_equal(ref[name], arrays[name]) for name in ref)

    return {
        "unbound_us_per_call": round(t_unbound * 1e6, 3),
        "bound_us_per_call": round(t_bound * 1e6, 3),
        "speedup": round(t_unbound / t_bound, 3),
        "steady_alloc_calls": _ALLOC_CALLS,
        "steady_net_alloc_bytes": current - before,
        "steady_peak_alloc_bytes": peak - before,
        "bitwise_identical": bitwise,
        "inplace_statements": bound.inplace_statement_count,
        "native_statements": bound.native_statement_count,
        "total_statements": bound.statement_count,
        "fused_groups": getattr(bound, "fused_group_count", 0),
        "fused_statements": getattr(bound, "fused_statement_count", 0),
        "sweeps_per_timestep": getattr(bound, "sweep_count", bound.statement_count),
    }


def measure_ensemble(
    plan,
    member_base: Sequence[Mapping[str, np.ndarray]],
    reps: int,
    workers: int = 1,
):
    """Ensemble-vs-loop steady-state measurement of one plan.

    *member_base* holds each member's pristine working set.  The
    baseline is the naive per-member loop of single-scenario
    :class:`~repro.runtime.bound.BoundPlan` runs; against it runs one
    :class:`~repro.runtime.ensemble.EnsemblePlan` over the stacked
    members.  Returns ``(record, ensemble)``: a JSON-ready record —
    per-member-timestep timings, throughput speedup, bitwise verdict,
    statement-shape counters — plus the live ensemble, whose batched
    state is left exactly one kernel application past the base values
    (callers extract per-member results from it).
    """
    from repro.runtime.ensemble import EnsemblePlan, stack_arrays

    members = len(member_base)
    loop_arrays = [
        {name: arr.copy() for name, arr in mem.items()} for mem in member_base
    ]
    loop_bounds = [plan.bind(arrays) for arrays in loop_arrays]
    batched = stack_arrays(member_base)  # stacks copies
    ensemble = EnsemblePlan(plan, batched, workers=workers)

    def run_loop() -> None:
        for bound in loop_bounds:
            bound.run()

    for _ in range(_WARMUP_CALLS):  # sizes replay buffers, warms caches
        run_loop()
        ensemble.run()

    t_loop = _best_of(run_loop, reps)
    t_ensemble = _best_of(ensemble.run, reps)

    tracemalloc.start()
    tracemalloc.reset_peak()
    before = tracemalloc.get_traced_memory()[0]
    for _ in range(_ALLOC_CALLS):
        ensemble.run()
    current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    # Bitwise check on fresh values: every ensemble member equals its
    # looped single-scenario run.
    for m, mem in enumerate(member_base):
        for name, arr in mem.items():
            loop_arrays[m][name][...] = arr
            batched[name][m][...] = arr
    run_loop()
    ensemble.run()
    bitwise = all(
        bitwise_equal(loop_arrays[m][name], batched[name][m])
        for m in range(members)
        for name in member_base[m]
    )

    record = {
        "members": members,
        "workers": workers,
        "chunks": ensemble.chunk_count,
        "loop_us_per_member_step": round(t_loop / members * 1e6, 3),
        "ensemble_us_per_member_step": round(t_ensemble / members * 1e6, 3),
        "speedup": round(t_loop / t_ensemble, 3),
        "steady_alloc_calls": _ALLOC_CALLS,
        "steady_net_alloc_bytes": current - before,
        "steady_peak_alloc_bytes": peak - before,
        "bitwise_identical": bitwise,
        "batched_statements": ensemble.batched_statement_count,
        "native_statements": ensemble.native_statement_count,
        "member_statements": ensemble.member_statement_count,
        "fused_groups": getattr(ensemble, "fused_group_count", 0),
        "fused_statements": getattr(ensemble, "fused_statement_count", 0),
    }
    return record, ensemble
