"""Convolution test case (the CNN motif from the paper's introduction).

"Stencil loops ... appear, for example, in convolutional neural networks"
(Section 1).  This problem is a 2-D cross-correlation with a dense
``k x k`` kernel of scalar weights; its reverse-mode derivative with
respect to the input image is the correlation with the flipped kernel —
which the adjoint-stencil transformation recovers automatically (the
"constant factors swapped their position" effect of Section 3.2
generalised to 2-D).
"""

from __future__ import annotations

import sympy as sp

from ..core.loopnest import make_loop_nest
from .base import StencilProblem

__all__ = ["conv_problem", "conv_weight_names"]


def conv_weight_names(ksize: int = 3) -> list[str]:
    """Names of the scalar weight parameters ``w_<a>_<b>``."""
    r = ksize // 2
    return [f"w_{a + r}_{b + r}" for a in range(-r, r + 1) for b in range(-r, r + 1)]


def conv_problem(ksize: int = 3) -> StencilProblem:
    """Dense ``ksize x ksize`` cross-correlation stencil problem.

    ``out(i, j) = sum_{a,b} w_{a,b} * img(i+a, j+b)`` over the interior.
    Weights are scalar parameters (bound at kernel-compile time); default
    values form a Gaussian-like blur so the primal is well conditioned.
    """
    if ksize % 2 != 1 or ksize < 1:
        raise ValueError("ksize must be odd and >= 1")
    r = ksize // 2
    i, j = sp.symbols("i j", integer=True)
    n = sp.Symbol("n", integer=True)
    img = sp.Function("img")
    out = sp.Function("out")

    expr = sp.Integer(0)
    weights = {}
    for a in range(-r, r + 1):
        for b in range(-r, r + 1):
            w = sp.Symbol(f"w_{a + r}_{b + r}", real=True)
            weights[(a, b)] = w
            expr = expr + w * img(i + a, j + b)

    nest = make_loop_nest(
        lhs=out(i, j),
        rhs=expr,
        counters=[i, j],
        bounds={i: [r, n - r], j: [r, n - r]},
        op="+=",
        name=f"conv{ksize}x{ksize}",
    )
    # Gaussian-ish separable default weights, normalised.
    base = {0: 2.0, 1: 1.0, 2: 0.5}
    raw = {
        f"w_{a + r}_{b + r}": base.get(abs(a), 0.25) * base.get(abs(b), 0.25)
    for a in range(-r, r + 1) for b in range(-r, r + 1)}
    total = sum(raw.values())
    defaults = {k: v / total for k, v in raw.items()}
    return StencilProblem(
        name=f"conv{ksize}x{ksize}",
        primal=nest,
        adjoint_map={out: sp.Function("out_b"), img: sp.Function("img_b")},
        size_symbol=n,
        param_defaults=defaults,
        halo=r,
    )
