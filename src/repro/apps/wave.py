"""Wave-equation test case (paper Section 4.1).

Second-order acoustic wave equation with spatially varying speed,
discretised with central finite differences in space and time::

    u^{t+1} = 2 u^t - u^{t-1} + c * D * laplacian(u^t)

with ``c = a^2`` and ``D = (dt/dx)^2``.  The 3-D version is the paper's
performance workload (one time step on a 1000^3 grid); 1-D and 2-D
variants are provided for tests and examples.  The coefficient array ``c``
is active by default, which is what seismic imaging needs (the gradient of
a misfit with respect to the velocity model).
"""

from __future__ import annotations

import sympy as sp

from ..core.loopnest import make_loop_nest
from .base import StencilProblem

__all__ = ["wave_problem"]


def wave_problem(dim: int = 3, active_c: bool = True) -> StencilProblem:
    """Build the wave-equation stencil problem in 1, 2 or 3 dimensions.

    Mirrors the PerforAD input script of Figure 4: output ``u``, previous
    time levels ``u_1`` and ``u_2``, coefficient ``c``, scalar ``D``, and
    iteration space ``[1, n-2]`` per dimension.  With ``active_c`` the
    coefficient is differentiated as well (``c_b`` accumulates the
    velocity-model gradient).
    """
    if dim not in (1, 2, 3):
        raise ValueError("wave_problem supports dim in {1, 2, 3}")
    counters = sp.symbols("i j k", integer=True)[:dim]
    n = sp.Symbol("n", integer=True)
    D = sp.Symbol("D", real=True)
    u = sp.Function("u")
    u_1 = sp.Function("u_1")
    u_2 = sp.Function("u_2")
    c = sp.Function("c")

    centre = u_1(*counters)
    lap = -2 * dim * centre
    for d in range(dim):
        for off in (-1, 1):
            idx = list(counters)
            idx[d] = idx[d] + off
            lap = lap + u_1(*idx)
    expr = 2.0 * centre - u_2(*counters) + c(*counters) * D * lap

    nest = make_loop_nest(
        lhs=u(*counters),
        rhs=expr,
        counters=list(counters),
        bounds={ctr: [1, n - 2] for ctr in counters},
        op="+=",
        name=f"wave{dim}d",
    )
    adjoint_map = {
        u: sp.Function("u_b"),
        u_1: sp.Function("u_1_b"),
        u_2: sp.Function("u_2_b"),
    }
    if active_c:
        adjoint_map[c] = sp.Function("c_b")
    return StencilProblem(
        name=f"wave{dim}d",
        primal=nest,
        adjoint_map=adjoint_map,
        size_symbol=n,
        param_defaults={"D": 0.125},
    )
