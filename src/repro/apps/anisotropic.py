"""Anisotropic diffusion: a 2-D nine-point stencil with cross terms.

Discretising ``u_t = div(K grad u)`` with a full (non-diagonal) diffusion
tensor introduces mixed ``u_{xy}`` derivatives, read at the four *corner*
offsets — so the stencil is the dense 3x3 pattern whose adjoint
decomposes into the full ``(2*3-1)^2 = 25`` regions (Section 3.3.4).  The
off-diagonal coefficient ``K_xy`` is a spatially varying active array,
exercising coefficient gradients through corner accesses.
"""

from __future__ import annotations

import sympy as sp

from ..core.loopnest import make_loop_nest
from .base import StencilProblem

__all__ = ["anisotropic_problem"]


def anisotropic_problem(active_k: bool = False) -> StencilProblem:
    """Nine-point anisotropic diffusion step.

    ``u^{t+1} = u + a*(u_xx + u_yy) + b*K_xy*u_xy`` with central second
    differences and the standard four-corner discretisation of the mixed
    derivative.  With ``active_k`` the off-diagonal coefficient field is
    differentiated as well.
    """
    i, j = sp.symbols("i j", integer=True)
    n = sp.Symbol("n", integer=True)
    a = sp.Symbol("a", real=True)
    b = sp.Symbol("b", real=True)
    u = sp.Function("u")
    u_1 = sp.Function("u_1")
    kxy = sp.Function("kxy")

    u_xx = u_1(i - 1, j) - 2 * u_1(i, j) + u_1(i + 1, j)
    u_yy = u_1(i, j - 1) - 2 * u_1(i, j) + u_1(i, j + 1)
    u_xy = (
        u_1(i + 1, j + 1) - u_1(i + 1, j - 1)
        - u_1(i - 1, j + 1) + u_1(i - 1, j - 1)
    ) / 4
    expr = u_1(i, j) + a * (u_xx + u_yy) + b * kxy(i, j) * u_xy

    nest = make_loop_nest(
        lhs=u(i, j),
        rhs=expr,
        counters=[i, j],
        bounds={i: [1, n - 2], j: [1, n - 2]},
        op="+=",
        name="anisotropic",
    )
    adjoint_map = {u: sp.Function("u_b"), u_1: sp.Function("u_1_b")}
    if active_k:
        adjoint_map[kxy] = sp.Function("kxy_b")
    return StencilProblem(
        name="anisotropic",
        primal=nest,
        adjoint_map=adjoint_map,
        size_symbol=n,
        param_defaults={"a": 0.15, "b": 0.1},
    )
