"""Application test cases: wave (Section 4.1), Burgers (Section 4.2), and
the heat/convolution motifs from the paper's introduction and Figure 3."""

from .advection import advection_problem
from .anisotropic import anisotropic_problem
from .base import StencilProblem
from .burgers import burgers_problem
from .conv import conv_problem, conv_weight_names
from .heat import heat_problem
from .wave import wave_problem

__all__ = [
    "StencilProblem",
    "advection_problem",
    "anisotropic_problem",
    "burgers_problem",
    "conv_problem",
    "conv_weight_names",
    "heat_problem",
    "wave_problem",
]
