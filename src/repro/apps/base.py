"""Common problem container for the application test cases."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np
import sympy as sp

from ..core.loopnest import LoopNest
from ..runtime.bindings import Bindings

__all__ = ["StencilProblem"]


@dataclass(frozen=True)
class StencilProblem:
    """A primal stencil loop plus everything needed to run and adjoin it.

    Attributes
    ----------
    name:
        Problem label.
    primal:
        The primal stencil loop nest.
    adjoint_map:
        Primal array function -> adjoint array function, for every active
        array (outputs and the inputs whose gradient is of interest).
    size_symbol:
        The grid-size symbol appearing in the loop bounds (``n``).
    param_defaults:
        Physical constants, e.g. ``{"C": 0.25, "D": 0.125}``.
    array_shape:
        Given the grid size value, the shape of every array (all arrays of
        one problem share a shape, as in the paper's test cases).
    halo:
        Number of boundary cells outside the primal iteration space on each
        side (1 for all stencils in the paper).
    """

    name: str
    primal: LoopNest
    adjoint_map: dict[sp.Basic, sp.Basic]
    size_symbol: sp.Symbol
    param_defaults: dict[str, float]
    halo: int = 1

    @property
    def dim(self) -> int:
        return self.primal.dim

    def with_interior(self, margin: int) -> "StencilProblem":
        """Shrink the iteration space by *margin* cells on every side.

        Used by the padded boundary strategy (Section 3.3.4), which needs
        the adjoint's enlarged union iteration space — and its out-of-space
        reads — to stay inside the allocated arrays.
        """
        from dataclasses import replace as _replace

        bounds = {
            c: (lo + margin, hi - margin)
            for c, (lo, hi) in self.primal.bounds.items()
        }
        return _replace(
            self,
            primal=_replace(self.primal, bounds=bounds),
            halo=self.halo + margin,
        )

    @property
    def output_name(self) -> str:
        return self.primal.statements[0].target_name

    def input_names(self) -> list[str]:
        return self.primal.read_arrays()

    def active_input_names(self) -> list[str]:
        active = {k.__name__ for k in self.adjoint_map}
        return [a for a in self.input_names() if a in active]

    def adjoint_name_map(self) -> dict[str, str]:
        """Plain-string form of the adjoint map: ``{"u": "u_b", ...}``."""
        return {k.__name__: v.__name__ for k, v in self.adjoint_map.items()}

    def array_shape(self, n: int) -> tuple[int, ...]:
        return (n + 1,) * self.dim

    def sizes(self, n: int) -> dict[sp.Symbol, int]:
        return {self.size_symbol: n}

    def bindings(self, n: int, dtype: type = np.float64, **param_overrides) -> Bindings:
        params = dict(self.param_defaults)
        params.update(param_overrides)
        return Bindings(sizes=self.sizes(n), params=params, dtype=dtype)

    def allocate(
        self,
        n: int,
        rng: np.random.Generator | None = None,
        dtype: type = np.float64,
    ) -> dict[str, np.ndarray]:
        """Allocate and initialise primal arrays (inputs random, output 0).

        The random fields are smooth-ish (standard normal scaled down) so
        nonlinear test cases stay in a numerically friendly regime.
        """
        rng = rng or np.random.default_rng(0)
        shape = self.array_shape(n)
        arrays: dict[str, np.ndarray] = {}
        for name in self.input_names():
            arrays[name] = rng.standard_normal(shape).astype(dtype) * 0.1
        arrays[self.output_name] = np.zeros(shape, dtype=dtype)
        return arrays

    def allocate_state(
        self,
        n: int,
        rng: np.random.Generator | None = None,
        dtype: type = np.float64,
        seed: int | None = None,
    ) -> dict[str, np.ndarray]:
        """The full kernel working set: primal arrays plus adjoints.

        Combines :meth:`allocate` and :meth:`allocate_adjoints` with one
        generator, which is what runtime callers (benchmarks, the
        ensemble sweep, examples) want for a scenario.  ``seed`` is a
        convenience for per-member generators: ``allocate_state(n,
        seed=m)`` gives member ``m`` a distinct, reproducible scenario.

        >>> from repro.apps import heat_problem
        >>> state = heat_problem(1).allocate_state(8, seed=3)
        >>> sorted(state)
        ['u', 'u_1', 'u_1_b', 'u_b']
        """
        if rng is None:
            rng = np.random.default_rng(0 if seed is None else seed)
        elif seed is not None:
            raise ValueError("pass either rng or seed, not both")
        arrays = self.allocate(n, rng=rng, dtype=dtype)
        arrays.update(self.allocate_adjoints(n, rng=rng, dtype=dtype))
        return arrays

    def history_fields(self) -> tuple[str, ...]:
        """The time-level input fields, newest first (``u_1``, ``u_2``...).

        By the repository's naming convention a time stepper reads its
        output field's earlier levels as ``{output}_1``, ``{output}_2``,
        ...; every other input (e.g. the wave velocity model ``c``) is
        constant in time.

        >>> from repro.apps import heat_problem, wave_problem
        >>> heat_problem(1).history_fields()
        ('u_1',)
        >>> wave_problem(2).history_fields()
        ('u_1', 'u_2')
        """
        import re

        levels = []
        for name in self.input_names():
            m = re.fullmatch(re.escape(self.output_name) + r"_(\d+)", name)
            if m:
                levels.append((int(m.group(1)), name))
        return tuple(name for _, name in sorted(levels))

    def constant_fields(self) -> tuple[str, ...]:
        """Input fields that are constant across time steps."""
        history = set(self.history_fields())
        return tuple(n for n in self.input_names() if n not in history)

    def checkpointed_adjoint(
        self,
        n: int,
        *,
        steps: int,
        snaps: int,
        dtype: type = np.float64,
        backend: str = "python",
        fusion: str = "auto",
        members: int | None = None,
        workers: int = 1,
        constants: Mapping[str, np.ndarray] | None = None,
        num_threads: int = 1,
        native_threads: int | None = None,
        **param_overrides,
    ):
        """A revolve-checkpointed adjoint time loop for this problem.

        Compiles the primal and adjoint kernels (through the content-
        addressed cache), plans them on *backend*, and wires them into a
        :class:`~repro.runtime.checkpoint.CheckpointedAdjointPlan` with
        the problem's history/constant field layout.  Constant fields
        (e.g. the wave velocity model) are taken from *constants* when
        given; otherwise a deterministic random field (seed 0, scaled
        like :meth:`allocate`) is allocated for each.  In ensemble mode
        a constant of per-scenario shape — supplied or generated — is
        broadcast-copied across the member axis; pass a
        ``(members, *shape)`` array for per-member constants.

        >>> from repro.apps import heat_problem
        >>> chk = heat_problem(1).checkpointed_adjoint(16, steps=6, snaps=3)
        >>> chk.steps, chk.snaps, chk.history
        (6, 3, ('u_1',))
        """
        from ..core.transform import adjoint_loops
        from ..runtime.compiler import compile_nests

        history = self.history_fields()
        bindings = self.bindings(n, dtype=dtype, **param_overrides)
        fwd = compile_nests([self.primal], bindings, name=self.name)
        rev = compile_nests(
            adjoint_loops(self.primal, self.adjoint_map),
            bindings,
            name=f"{self.name}_b",
        )
        shape = self.array_shape(n)
        full_shape = shape if members is None else (members, *shape)
        const_arrays = dict(constants or {})
        rng = np.random.default_rng(0)
        for name in self.constant_fields():
            field = const_arrays.get(name)
            if field is None:
                field = rng.standard_normal(shape).astype(dtype) * 0.1
            if members is not None and tuple(field.shape) == shape:
                field = np.ascontiguousarray(np.broadcast_to(field, full_shape))
            const_arrays[name] = field
        return fwd.plan(
            backend=backend,
            num_threads=num_threads,
            fusion=fusion,
            native_threads=native_threads,
        ).checkpointed_adjoint(
            rev.plan(
                backend=backend,
                num_threads=num_threads,
                fusion=fusion,
                native_threads=native_threads,
            ),
            shape,
            steps=steps,
            snaps=snaps,
            output=self.output_name,
            history=history,
            constants=const_arrays,
            adjoint_map=self.adjoint_name_map(),
            dtype=dtype,
            members=members,
            workers=workers,
        )

    def allocate_adjoints(
        self,
        n: int,
        seed: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
        dtype: type = np.float64,
    ) -> dict[str, np.ndarray]:
        """Allocate adjoint arrays: output adjoint seeded, inputs zeroed.

        The seed is zeroed outside the primal output box: adjoint values
        at never-written indices are meaningless, and the padded boundary
        strategy (Section 3.3.4) relies on them being zero.
        """
        shape = self.array_shape(n)
        name_map = self.adjoint_name_map()
        out: dict[str, np.ndarray] = {}
        out_adj = name_map[self.output_name]
        if seed is None:
            rng = rng or np.random.default_rng(1)
            seed = rng.standard_normal(shape).astype(dtype)
        seed = np.array(seed, dtype=dtype)
        bindings = self.bindings(n)
        mask = np.zeros(shape, dtype=bool)
        box = tuple(
            slice(
                bindings.int_bound(self.primal.bounds[c][0]),
                bindings.int_bound(self.primal.bounds[c][1]) + 1,
            )
            for c in self.primal.counters
        )
        mask[box] = True
        seed[~mask] = 0.0
        out[out_adj] = seed
        for prim, adj in name_map.items():
            if prim != self.output_name:
                out[adj] = np.zeros(shape, dtype=dtype)
        return out
