"""Heat-equation test case (the five-point stencil of the paper's Figure 3).

Explicit Euler step of the heat equation::

    u^{t+1} = u^t + alpha * laplacian(u^t)

The 2-D version is exactly the five-point star whose adjoint iteration-
space decomposition the paper illustrates in Figure 3 (13 loop nests).
Used by examples (inverse heat problem) and by the boundary-strategy
ablation benchmark.
"""

from __future__ import annotations

import sympy as sp

from ..core.loopnest import make_loop_nest
from .base import StencilProblem

__all__ = ["heat_problem"]


def heat_problem(dim: int = 2) -> StencilProblem:
    """Build the explicit heat-equation stencil problem."""
    if dim not in (1, 2, 3):
        raise ValueError("heat_problem supports dim in {1, 2, 3}")
    counters = sp.symbols("i j k", integer=True)[:dim]
    n = sp.Symbol("n", integer=True)
    alpha = sp.Symbol("alpha", real=True)
    u = sp.Function("u")
    u_1 = sp.Function("u_1")

    centre = u_1(*counters)
    lap = -2 * dim * centre
    for d in range(dim):
        for off in (-1, 1):
            idx = list(counters)
            idx[d] = idx[d] + off
            lap = lap + u_1(*idx)
    expr = centre + alpha * lap

    nest = make_loop_nest(
        lhs=u(*counters),
        rhs=expr,
        counters=list(counters),
        bounds={ctr: [1, n - 2] for ctr in counters},
        op="+=",
        name=f"heat{dim}d",
    )
    return StencilProblem(
        name=f"heat{dim}d",
        primal=nest,
        adjoint_map={u: sp.Function("u_b"), u_1: sp.Function("u_1_b")},
        size_symbol=n,
        param_defaults={"alpha": 0.2},
    )
