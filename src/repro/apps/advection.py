"""Linear advection with one-sided (asymmetric) differencing.

An explicitly *asymmetric* data-flow test case: the output at ``i``
depends on inputs at ``i``, ``i-1``, ``i-2`` (second-order upwind), but
not vice versa.  This is exactly the stencil class the authors' earlier
TF-MAD approach could not handle ("it was restricted to stencils with a
symmetric data flow", Section 2) and therefore a key regression case for
this paper's transformation, whose shift/split machinery is direction-
agnostic.  The adjoint's core loop is shifted *downwind* relative to the
primal.
"""

from __future__ import annotations

import sympy as sp

from ..core.loopnest import make_loop_nest
from .base import StencilProblem

__all__ = ["advection_problem"]


def advection_problem(order: int = 2) -> StencilProblem:
    """Second- (default) or first-order upwind advection of a scalar.

    ``u^{t+1}_i = u_i - C*(3u_i - 4u_{i-1} + u_{i-2})/2`` for order 2,
    ``u^{t+1}_i = u_i - C*(u_i - u_{i-1})`` for order 1 (positive wind).
    """
    if order not in (1, 2):
        raise ValueError("advection_problem supports order in {1, 2}")
    i = sp.Symbol("i", integer=True)
    n = sp.Symbol("n", integer=True)
    C = sp.Symbol("C", real=True)
    u = sp.Function("u")
    u_1 = sp.Function("u_1")

    if order == 1:
        expr = u_1(i) - C * (u_1(i) - u_1(i - 1))
        lo = 1
    else:
        expr = u_1(i) - C * (3 * u_1(i) - 4 * u_1(i - 1) + u_1(i - 2)) / 2
        lo = 2

    nest = make_loop_nest(
        lhs=u(i),
        rhs=expr,
        counters=[i],
        bounds={i: [lo, n]},
        op="+=",
        name=f"advection{order}",
    )
    return StencilProblem(
        name=f"advection{order}",
        primal=nest,
        adjoint_map={u: sp.Function("u_b"), u_1: sp.Function("u_1_b")},
        size_symbol=n,
        param_defaults={"C": 0.3},
        halo=order,
    )
