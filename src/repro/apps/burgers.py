"""Burgers-equation test case (paper Section 4.2).

One-dimensional viscous Burgers equation with first-order upwinding for
the nonlinear convective term::

    u^{t+1}_i = u^t_i - C * (max(u_i,0)(u_i - u_{i-1}) + min(u_i,0)(u_{i+1} - u_i))
                      + D * (u_{i+1} - 2 u_i + u_{i-1})

with ``C = dt/dx`` and ``D = nu*dt/dx^2``.  The body is nonlinear and only
piecewise differentiable; its adjoint needs the primal values and contains
Heaviside (ternary) factors — the paper's stress test for complicated loop
bodies.  A 2-D variant (dimension-by-dimension upwinding of the scalar
advected quantity) is included as an extension.
"""

from __future__ import annotations

import sympy as sp

from ..core.loopnest import make_loop_nest
from .base import StencilProblem

__all__ = ["burgers_problem"]


def burgers_problem(dim: int = 1) -> StencilProblem:
    """Build the upwinded Burgers stencil problem (Figure 6 script)."""
    if dim not in (1, 2):
        raise ValueError("burgers_problem supports dim in {1, 2}")
    counters = sp.symbols("i j", integer=True)[:dim]
    n = sp.Symbol("n", integer=True)
    C = sp.Symbol("C", real=True)
    D = sp.Symbol("D", real=True)
    u = sp.Function("u")
    u_1 = sp.Function("u_1")

    centre = u_1(*counters)
    ap = sp.Max(centre, 0)
    am = sp.Min(centre, 0)
    conv = sp.Integer(0)
    diff = sp.Integer(0)
    for d in range(dim):
        idx_m = list(counters)
        idx_m[d] = idx_m[d] - 1
        idx_p = list(counters)
        idx_p[d] = idx_p[d] + 1
        uxm = centre - u_1(*idx_m)
        uxp = u_1(*idx_p) - centre
        conv = conv + ap * uxm + am * uxp
        diff = diff + u_1(*idx_p) + u_1(*idx_m) - 2.0 * centre
    expr = centre - C * conv + D * diff

    nest = make_loop_nest(
        lhs=u(*counters),
        rhs=expr,
        counters=list(counters),
        bounds={ctr: [1, n - 2] for ctr in counters},
        op="+=",
        name=f"burgers{dim}d",
    )
    adjoint_map = {u: sp.Function("u_b"), u_1: sp.Function("u_1_b")}
    return StencilProblem(
        name=f"burgers{dim}d",
        primal=nest,
        adjoint_map=adjoint_map,
        size_symbol=n,
        param_defaults={"C": 0.2, "D": 0.1},
    )
