"""Finite-difference gradient verification.

Central differences on the scalar functional ``J(x) = < w, stencil(x) >``
give a truncation-limited reference for the adjoint gradient:

    dJ/dv  ~=  (J(x + h v) - J(x - h v)) / (2 h)  ==  < v, J^T w >

Complementary to the machine-precision dot-product test: finite
differences validate against an *independent execution* of the primal
(no AD machinery involved at all), which is how AD tools are traditionally
cross-checked — at the price of an O(h^2) truncation error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..apps.base import StencilProblem
from ..core.transform import adjoint_loops
from ..runtime.compiler import compile_nests

__all__ = ["FinDiffResult", "finite_difference_test"]


@dataclass(frozen=True)
class FinDiffResult:
    directional_fd: float
    directional_ad: float
    rel_error: float

    def passed(self, tol: float = 1e-6) -> bool:
        return self.rel_error < tol


def finite_difference_test(
    problem: StencilProblem,
    n: int,
    h: float = 1e-6,
    seed: int = 0,
    strategy: str = "disjoint",
) -> FinDiffResult:
    """Central-difference check of the adjoint gradient at grid size *n*.

    Note: for only piecewise-differentiable bodies (Burgers upwinding) the
    random perturbation direction may straddle a kink for some points; the
    smooth-field initialisation of :meth:`StencilProblem.allocate` keeps
    the probability negligible at test sizes, and failures shrink with h.
    """
    rng = np.random.default_rng(seed)
    bindings = problem.bindings(n)
    base = problem.allocate(n, rng=rng)
    shape = problem.array_shape(n)
    out_name = problem.output_name
    active = problem.active_input_names()
    name_map = problem.adjoint_name_map()

    w = rng.standard_normal(shape)
    v = {name: rng.standard_normal(shape) for name in active}

    primal_kernel = compile_nests([problem.primal], bindings, name="primal")

    def J(offset_sign: float) -> float:
        arrays = {k: a.copy() for k, a in base.items()}
        for name in active:
            arrays[name] += offset_sign * h * v[name]
        arrays[out_name][...] = 0.0
        primal_kernel(arrays)
        return float(np.vdot(w, arrays[out_name]))

    fd = (J(+1.0) - J(-1.0)) / (2.0 * h)

    adj_nests = adjoint_loops(problem.primal, problem.adjoint_map, strategy=strategy)
    arrays = {k: a.copy() for k, a in base.items()}
    arrays.update(problem.allocate_adjoints(n, seed=w))
    compile_nests(adj_nests, bindings, name="adjoint")(arrays)
    ad = 0.0
    for name in active:
        ad += float(np.vdot(v[name], arrays[name_map[name]]))

    denom = max(abs(fd), abs(ad), 1e-300)
    return FinDiffResult(
        directional_fd=fd, directional_ad=ad, rel_error=abs(fd - ad) / denom
    )
