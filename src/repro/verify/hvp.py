"""Hessian-vector-product evaluation and verification helpers."""

from __future__ import annotations

import numpy as np

from ..apps.base import StencilProblem
from ..core.second_order import second_order_nests
from ..core.transform import adjoint_loops
from ..runtime.compiler import compile_nests

__all__ = ["hessian_vector_product", "gradient"]


def gradient(
    problem: StencilProblem,
    n: int,
    inputs: dict[str, np.ndarray],
    w: np.ndarray,
    strategy: str = "disjoint",
) -> dict[str, np.ndarray]:
    """Gradient of ``J = <w, stencil(inputs)>`` w.r.t. the active inputs."""
    bindings = problem.bindings(n)
    nests = adjoint_loops(problem.primal, problem.adjoint_map, strategy=strategy)
    name_map = problem.adjoint_name_map()
    arrays: dict[str, np.ndarray] = {k: v.copy() for k, v in inputs.items()}
    shape = problem.array_shape(n)
    arrays[name_map[problem.output_name]] = w.copy()
    for prim in problem.active_input_names():
        arrays[name_map[prim]] = np.zeros(shape)
    compile_nests(nests, bindings, name="grad")(arrays)
    return {prim: arrays[name_map[prim]] for prim in problem.active_input_names()}


def hessian_vector_product(
    problem: StencilProblem,
    n: int,
    inputs: dict[str, np.ndarray],
    w: np.ndarray,
    directions: dict[str, np.ndarray],
    strategy: str = "disjoint",
) -> dict[str, np.ndarray]:
    """``H v`` for ``J = <w, stencil(inputs)>`` via tangent-over-adjoint.

    ``directions`` maps each active input name to its component of ``v``
    (missing inputs get a zero direction).  Returns the ``H v`` component
    for each active input.
    """
    bindings = problem.bindings(n)
    nests = second_order_nests(problem.primal, problem.adjoint_map, strategy=strategy)
    name_map = problem.adjoint_name_map()
    shape = problem.array_shape(n)
    out_name = problem.output_name
    arrays: dict[str, np.ndarray] = {k: v.copy() for k, v in inputs.items()}
    # Direction seeds for the primal tangents.
    for prim in problem.active_input_names():
        arrays[prim + "_d"] = directions.get(prim, np.zeros(shape)).copy()
    arrays[out_name + "_d"] = np.zeros(shape)  # output tangent (unused reads)
    # Adjoint seed w is held fixed: its tangent is zero.
    arrays[name_map[out_name]] = w.copy()
    arrays[name_map[out_name] + "_d"] = np.zeros(shape)
    for prim in problem.active_input_names():
        arrays[name_map[prim]] = np.zeros(shape)
        arrays[name_map[prim] + "_d"] = np.zeros(shape)
    compile_nests(nests, bindings, name="hvp")(arrays)
    return {
        prim: arrays[name_map[prim] + "_d"]
        for prim in problem.active_input_names()
    }
