"""Chaos verification: exercise every registered fault point's contract.

The runtime's graceful-degradation contract (``docs/reliability.md``)
says every failure either **falls back** bitwise-identically or raises
one **typed** :class:`~repro.errors.ReproError` subclass with user
arrays intact.  This module is the executable form of that sentence:
one scenario per fault point registered in
:mod:`repro.runtime.faults`, each arming the injector, driving the
*production* code path (real plans, real binds, real compiler
invocations when a toolchain exists) and asserting the contract clause
the registry declares for that point.

:func:`run_chaos` runs all scenarios and is surfaced as
``repro verify --chaos`` and as ``tests/test_faults.py``; a fault
point with no covering scenario is itself a failure, so adding a point
to the registry without a scenario breaks the suite — the coverage is
closed by construction.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
import warnings
from dataclasses import dataclass

import numpy as np

from ..errors import (
    CheckpointError,
    EnsembleBindError,
    KernelError,
    SchedulerError,
)
from ..runtime import faults

__all__ = ["ChaosResult", "run_chaos", "chaos_scenarios"]


@dataclass(frozen=True)
class ChaosResult:
    """Outcome of one fault-point scenario."""

    point: str
    contract: str
    ok: bool
    detail: str


@contextlib.contextmanager
def _env(name: str, value: str):
    old = os.environ.get(name)
    os.environ[name] = value
    try:
        yield
    finally:
        if old is None:
            del os.environ[name]
        else:
            os.environ[name] = old


def _fresh_case(seed: int = 0):
    """A freshly compiled (uncached) heat1d adjoint kernel and arrays.

    ``cache=False`` matters: the native library verdict is memoised on
    the kernel object, so scenarios that poison the toolchain or the
    build must start from a kernel nothing has bound yet.
    """
    from ..apps import heat_problem
    from ..core import adjoint_loops
    from ..runtime import compile_nests

    prob = heat_problem(1)
    n = 12
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    kernel = compile_nests(nests, prob.bindings(n), name="chaos", cache=False)
    rng = np.random.default_rng(seed)
    arrays = prob.allocate(n, rng=rng)
    arrays.update(prob.allocate_adjoints(n, rng=rng))
    return kernel, arrays


def _mismatches(ref, got) -> list[str]:
    return sorted(k for k in ref if not np.array_equal(ref[k], got[k]))


def _native_scenario(point: str, *, times: int = 1, expect_native: bool) -> str:
    """Shared shape of the five native fault points.

    Runs the serial python reference, then the native-backend bound run
    with *point* armed, in a fresh cache directory (so the build really
    happens) — and asserts the results are bitwise identical whether
    the fault forced the python fallback (``expect_native=False``) or
    the retry/self-heal machinery recovered the native path
    (``expect_native=True``).
    """
    from ..runtime import native as _native

    kernel, base = _fresh_case()
    ref = {k: v.copy() for k, v in base.items()}
    kernel(ref)
    got = {k: v.copy() for k, v in base.items()}
    _native._reset_warnings()
    with _native._toolchain_lock:
        _native._toolchain_memo.clear()
    with tempfile.TemporaryDirectory() as tmp, _env("REPRO_CACHE_DIR", tmp):
        with warnings.catch_warnings():
            # Fallback warnings are part of the contract, not noise to
            # the chaos run; tests assert them separately.
            warnings.simplefilter("ignore", RuntimeWarning)
            with faults.inject(point, times=times) as inj:
                plan = kernel.plan(backend="native")
                try:
                    plan.bind(got).run()
                finally:
                    plan.close()
                fired = inj.fired(point)
    if fired == 0:
        raise AssertionError(f"{point} was armed but never fired")
    bad = _mismatches(ref, got)
    if bad:
        raise AssertionError(f"degraded run diverged from reference on {bad}")
    native_used = kernel._native[1] is not None
    if expect_native and not native_used:
        raise AssertionError("recovery expected the native path to survive")
    mode = "native path recovered" if native_used else "python fallback"
    return f"fired {fired}x; {mode}; bitwise-identical"


def _scenario_toolchain() -> str:
    return _native_scenario("native.toolchain", expect_native=False)


def _scenario_cc_spawn() -> str:
    from ..runtime import native_available

    # One transient spawn failure: the backoff ladder retries and the
    # build (and therefore the native path) succeeds.  Without a
    # compiler the spawn is never reached, so the point degrades to the
    # no-toolchain fallback, which the toolchain scenario already
    # covers deterministically.
    if not native_available():
        return _native_scenario("native.toolchain", expect_native=False)
    return _native_scenario("native.cc.spawn", expect_native=True)


def _scenario_cc_timeout() -> str:
    from ..runtime import native_available

    if not native_available():
        return _native_scenario("native.toolchain", expect_native=False)
    # A hung compiler is not retried: the build fails, the run degrades.
    return _native_scenario("native.cc.timeout", times=64, expect_native=False)


def _scenario_cache_write() -> str:
    from ..runtime import native_available

    if not native_available():
        return _native_scenario("native.toolchain", expect_native=False)
    return _native_scenario("native.cache.write", times=64, expect_native=False)


def _scenario_cache_load() -> str:
    from ..runtime import native_available

    if not native_available():
        return _native_scenario("native.toolchain", expect_native=False)
    # One corrupt .so: the content-addressed entry is unlinked and
    # rebuilt once (self-heal), so the native path survives.
    return _native_scenario("native.cache.load", expect_native=True)


def _scenario_omp_probe() -> str:
    from ..runtime import native as _native
    from ..runtime import native_available

    if not native_available():
        return _native_scenario("native.toolchain", expect_native=False)
    # A compiler without OpenMP: the threaded request degrades one rung,
    # to the *serial native* library, and stays bitwise-identical.
    kernel, base = _fresh_case()
    ref = {k: v.copy() for k, v in base.items()}
    kernel(ref)
    got = {k: v.copy() for k, v in base.items()}
    _native._reset_warnings()
    _native._omp_flags_memo.clear()
    try:
        with tempfile.TemporaryDirectory() as tmp, _env("REPRO_CACHE_DIR", tmp):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                with faults.inject("native.omp.probe") as inj:
                    plan = kernel.plan(backend="native", native_threads=2)
                    try:
                        plan.bind(got).run()
                    finally:
                        plan.close()
                    fired = inj.fired("native.omp.probe")
    finally:
        # The poisoned probe verdict is memoised per compiler; clear it
        # so later (non-chaos) threaded builds re-probe honestly.
        _native._omp_flags_memo.clear()
    if fired == 0:
        raise AssertionError("native.omp.probe was armed but never fired")
    bad = _mismatches(ref, got)
    if bad:
        raise AssertionError(f"degraded run diverged from reference on {bad}")
    lib = _native.library_for_kernel(kernel, 2)
    if lib is None or lib.nthreads != 1:
        raise AssertionError(
            "expected the serial native library as the degraded verdict"
        )
    return "fired 1x; serial native fallback; bitwise-identical"


def _scenario_scatter_merge() -> str:
    from ..apps import heat_problem
    from ..baselines.scatter import tapenade_style_adjoint
    from ..errors import KernelError as _KernelError
    from ..runtime import compile_nests

    prob = heat_problem(1)
    n = 24
    nest = tapenade_style_adjoint(prob.primal, prob.adjoint_map)
    kernel = compile_nests(
        [nest], prob.bindings(n), name="chaos_scatter", cache=False
    )
    rng = np.random.default_rng(0)
    base = prob.allocate(n, rng=rng)
    base.update(prob.allocate_adjoints(n, rng=rng))
    ref = {k: v.copy() for k, v in base.items()}
    plan_ref = kernel.plan(scatter=True, num_threads=2, transactional=True)
    try:
        plan_ref.bind(ref).run()
        got = {k: v.copy() for k, v in base.items()}
        snap = {k: v.copy() for k, v in got.items()}
        bound = plan_ref.bind(got)
        with faults.inject("scatter.merge") as inj:
            try:
                bound.run()
                raise AssertionError("injected merge fault did not propagate")
            except _KernelError:
                pass
            if inj.fired("scatter.merge") != 1:
                raise AssertionError("merge fault never fired")
        bad = _mismatches(snap, got)
        if bad:
            raise AssertionError(
                f"transactional restore missed {bad} after the merge fault"
            )
        bound.run()
        bad = _mismatches(ref, got)
        if bad:
            raise AssertionError(f"post-restore rerun diverged on {bad}")
    finally:
        plan_ref.close()
    return (
        "typed KernelError mid-merge; arrays restored; "
        "clean rerun bitwise-identical"
    )


def _scenario_scheduler_task() -> str:
    from ..runtime.scheduler import WorkStealingScheduler

    done: list[int] = []
    with WorkStealingScheduler(2) as sched:
        with faults.inject("scheduler.task") as inj:
            try:
                sched.run([lambda i=i: done.append(i) for i in range(6)])
                raise AssertionError("injected task fault did not propagate")
            except SchedulerError:
                pass
            fired = inj.fired("scheduler.task")
        if fired != 1:
            raise AssertionError(f"expected one firing, got {fired}")
        cancelled = sched.last_cancelled
        if len(done) + cancelled != 5:
            raise AssertionError(
                f"batch accounting broken: {len(done)} ran, "
                f"{cancelled} cancelled, 5 expected"
            )
        sched.run([lambda: done.append(99)])
        if 99 not in done:
            raise AssertionError("scheduler did not survive the failure")
    return (
        f"typed SchedulerError; {cancelled} queued task(s) cancelled; "
        f"scheduler reusable"
    )


def _scenario_checkpoint_snapshot() -> str:
    from ..apps import heat_problem

    prob = heat_problem(1)
    n = 12
    u0 = prob.allocate_state(n, seed=0)["u_1"]
    seed = prob.allocate_adjoints(n)["u_b"]
    with prob.checkpointed_adjoint(n, steps=6, snaps=2) as plan:
        ref = {k: v.copy() for k, v in plan.adjoint([u0], seed).items()}
        with faults.inject("checkpoint.snapshot") as inj:
            try:
                plan.adjoint([u0], seed)
                raise AssertionError("injected snapshot fault did not propagate")
            except CheckpointError:
                pass
            if inj.fired("checkpoint.snapshot") != 1:
                raise AssertionError("snapshot fault never fired")
        out = plan.adjoint([u0], seed)
        bad = _mismatches(ref, out)
        if bad:
            raise AssertionError(f"post-failure sweep diverged on {bad}")
    return "typed CheckpointError; next sweep recovered bitwise-identically"


def _scenario_ensemble_bind() -> str:
    from ..runtime import stack_arrays

    kernel, _ = _fresh_case()
    from ..apps import heat_problem

    prob = heat_problem(1)
    n = 12
    batched = stack_arrays(
        [prob.allocate_state(n, seed=m) for m in range(3)]
    )
    snap = {k: v.copy() for k, v in batched.items()}
    with faults.inject("ensemble.bind", skip=1) as inj:
        try:
            kernel.plan().ensemble(batched)
            raise AssertionError("injected bind fault did not propagate")
        except EnsembleBindError as exc:
            member = exc.member
        if inj.fired("ensemble.bind") != 1:
            raise AssertionError("bind fault never fired")
    if member is None:
        raise AssertionError("EnsembleBindError did not name the member")
    bad = _mismatches(snap, batched)
    if bad:
        raise AssertionError(f"failed bind mutated batched arrays {bad}")
    return (
        f"typed EnsembleBindError naming member(s) {member}; "
        f"batched arrays intact"
    )


def _scenario_bound_run() -> str:
    kernel, base = _fresh_case()
    ref = {k: v.copy() for k, v in base.items()}
    kernel(ref)
    got = {k: v.copy() for k, v in base.items()}
    snap = {k: v.copy() for k, v in got.items()}
    plan = kernel.plan(transactional=True)
    try:
        bound = plan.bind(got)
        with faults.inject("bound.run", skip=1) as inj:
            try:
                bound.run()
                raise AssertionError("injected run fault did not propagate")
            except KernelError:
                pass
            if inj.fired("bound.run") != 1:
                raise AssertionError("run fault never fired")
        bad = _mismatches(snap, got)
        if bad:
            raise AssertionError(f"transactional restore missed {bad}")
        bound.run()
        bad = _mismatches(ref, got)
        if bad:
            raise AssertionError(f"post-restore rerun diverged on {bad}")
    finally:
        plan.close()
    return "typed KernelError; arrays restored; clean rerun bitwise-identical"


# -- the serving daemon's fault points ----------------------------------------

_SERVE_SPEC = (
    "stencil chaos_serve {\n"
    "  iterate i = 1 .. n-2\n"
    "  u[i] += c*(v[i-1] - 2.0*v[i] + v[i+1])\n"
    "}\n"
)
_SERVE_N = 16
_SERVE_SIZES = {"n": _SERVE_N}
_SERVE_PARAMS = {"c": 0.25}


def _serve_state(seed: int) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        "u": rng.standard_normal(_SERVE_N),
        "v": rng.standard_normal(_SERVE_N),
    }


def _serve_reference(seed: int, steps: int = 1) -> dict[str, np.ndarray]:
    """A fresh single-process bound run: the bitwise oracle."""
    from ..frontend import parse_stencil
    from ..runtime import Bindings, compile_nests

    nest = parse_stencil(_SERVE_SPEC)
    kernel = compile_nests(
        [nest],
        Bindings(sizes=_SERVE_SIZES, params=_SERVE_PARAMS),
        name=nest.name,
    )
    arrays = {k: v.copy() for k, v in _serve_state(seed).items()}
    bound = kernel.plan().bind(arrays)
    for _ in range(steps):
        bound.run()
    return arrays


@contextlib.contextmanager
def _serve_daemon(**kwargs):
    from ..runtime.server import KernelServer

    with tempfile.TemporaryDirectory() as tmp:
        server = KernelServer(os.path.join(tmp, "chaos.sock"), **kwargs)
        server.start()
        try:
            yield server
        finally:
            server.close()


def _scenario_server_accept() -> str:
    from ..runtime.client import KernelClient

    ref = _serve_reference(0)
    with _serve_daemon(workers=1, batch_window_ms=0.0) as server:
        client = KernelClient(server.socket_path, retries=1)
        try:
            with faults.inject("server.accept") as inj:
                result = client.run(
                    _SERVE_SPEC,
                    sizes=_SERVE_SIZES,
                    params=_SERVE_PARAMS,
                    state=_serve_state(0),
                )
                fired = inj.fired("server.accept")
        finally:
            client.close()
        drops = server.stats()["accept_drops"]
    if fired != 1:
        raise AssertionError(f"expected one accept firing, got {fired}")
    if drops != 1:
        raise AssertionError(f"expected one dropped connection, got {drops}")
    bad = _mismatches(ref, result.state)
    if bad:
        raise AssertionError(f"retried request diverged on {bad}")
    return "fired 1x; dropped connection retried; bitwise-identical"


def _scenario_server_batch_bind() -> str:
    import threading

    from ..runtime.client import KernelClient

    refs = {seed: _serve_reference(seed) for seed in (0, 1)}
    results: dict[int, object] = {}
    errors: list[BaseException] = []
    with _serve_daemon(workers=2, max_batch=2, batch_window_ms=500.0) as server:

        def worker(seed: int) -> None:
            try:
                with KernelClient(server.socket_path) as client:
                    results[seed] = client.run(
                        _SERVE_SPEC,
                        sizes=_SERVE_SIZES,
                        params=_SERVE_PARAMS,
                        state=_serve_state(seed),
                    )
            except BaseException as exc:  # noqa: BLE001 - asserted below
                errors.append(exc)

        with faults.inject("server.batch.bind") as inj:
            threads = [
                threading.Thread(target=worker, args=(seed,))
                for seed in (0, 1)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            fired = inj.fired("server.batch.bind")
        fallbacks = server.stats()["batch_fallbacks"]
    if errors:
        raise AssertionError(f"batch-bind fallback leaked errors: {errors}")
    if fired != 1:
        raise AssertionError(f"expected one batch-bind firing, got {fired}")
    if fallbacks != 1:
        raise AssertionError(f"expected one batch fallback, got {fallbacks}")
    for seed, ref in refs.items():
        result = results[seed]
        if result.batched:
            raise AssertionError("fallback must serve per-request singles")
        bad = _mismatches(ref, result.state)
        if bad:
            raise AssertionError(f"member {seed} diverged on {bad}")
    return (
        "fired 1x; batch degraded to per-request single runs; "
        "no batchmate poisoned; bitwise-identical"
    )


def _scenario_server_shm_attach() -> str:
    from ..errors import ServeError
    from ..runtime.client import KernelClient

    ref = _serve_reference(3)
    state = _serve_state(3)
    snap = {k: v.copy() for k, v in state.items()}
    with _serve_daemon(workers=1, batch_window_ms=0.0) as server:
        with KernelClient(server.socket_path, shm_threshold=1) as client:
            with faults.inject("server.shm.attach") as inj:
                try:
                    client.run(
                        _SERVE_SPEC,
                        sizes=_SERVE_SIZES,
                        params=_SERVE_PARAMS,
                        state=state,
                    )
                    raise AssertionError(
                        "injected attach fault did not propagate"
                    )
                except ServeError:
                    pass
                if inj.fired("server.shm.attach") != 1:
                    raise AssertionError("attach fault never fired")
            bad = _mismatches(snap, state)
            if bad:
                raise AssertionError(f"failed attach mutated user arrays {bad}")
            result = client.run(
                _SERVE_SPEC,
                sizes=_SERVE_SIZES,
                params=_SERVE_PARAMS,
                state=state,
            )
    bad = _mismatches(ref, result.state)
    if bad:
        raise AssertionError(f"follow-up request diverged on {bad}")
    return (
        "typed ServeError; user arrays intact; "
        "next request on the same connection served bitwise-identically"
    )


def _shard_scenario(point: str, skip: int) -> str:
    """Shared shape of the two shard fault points.

    Runs a 3-step single-shard reference, then the same steps on a
    3-rank :class:`ShardedPlan` with *point* armed to fire mid-run
    (after *skip* occurrences — past the first step, so real sharded
    state exists when the fault lands).  Asserts the fallback contract:
    the plan degrades to single-shard execution with one warning, and
    both the gathered result and the caller's global arrays are bitwise
    identical to the never-sharded reference.
    """
    from ..runtime.distributed import ShardedPlan

    kernel, base = _fresh_case(seed=5)
    steps = 3
    exchange = ["u", "u_1", "u_b"]
    accumulate = ["u_1_b"]
    ref = {k: v.copy() for k, v in base.items()}
    bound = kernel.plan().bind(ref)
    for _ in range(steps):
        bound.run()
    arrays = {k: v.copy() for k, v in base.items()}
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        with faults.inject(point, skip=skip) as inj:
            with ShardedPlan(kernel, arrays, nranks=3, halo=1) as sharded:
                for _ in range(steps):
                    sharded.step(
                        "main", exchange=exchange, accumulate=accumulate
                    )
                fired = inj.fired(point)
                degraded = sharded.degraded
                got = sharded.gather()
    if fired != 1:
        raise AssertionError(f"expected one {point} firing, got {fired}")
    if not degraded:
        raise AssertionError("injected fault did not degrade the plan")
    if sum("degraded" in str(w.message) for w in caught) != 1:
        raise AssertionError("degradation must warn exactly once")
    bad = _mismatches(ref, got)
    if bad:
        raise AssertionError(f"degraded run diverged from reference on {bad}")
    bad = _mismatches(ref, arrays)
    if bad:
        raise AssertionError(f"caller's global arrays diverged on {bad}")
    return (
        "fired 1x; degraded to a single shard mid-run; warned once; "
        "bitwise-identical"
    )


def _scenario_shard_exchange() -> str:
    # Two slab pairs per step: skip=3 lands the fault on the second
    # step's second pair — mid-exchange, mid-run.
    return _shard_scenario("shard.exchange", skip=3)


def _scenario_shard_worker() -> str:
    # Three liveness probes per step: skip=4 lands the fault on the
    # second step's middle rank, before any dispatch of that step.
    return _shard_scenario("shard.worker", skip=4)


_SCENARIOS = {
    "native.toolchain": _scenario_toolchain,
    "native.cc.spawn": _scenario_cc_spawn,
    "native.cc.timeout": _scenario_cc_timeout,
    "native.cache.write": _scenario_cache_write,
    "native.cache.load": _scenario_cache_load,
    "native.omp.probe": _scenario_omp_probe,
    "scatter.merge": _scenario_scatter_merge,
    "scheduler.task": _scenario_scheduler_task,
    "checkpoint.snapshot": _scenario_checkpoint_snapshot,
    "ensemble.bind": _scenario_ensemble_bind,
    "bound.run": _scenario_bound_run,
    "server.accept": _scenario_server_accept,
    "server.batch.bind": _scenario_server_batch_bind,
    "server.shm.attach": _scenario_server_shm_attach,
    "shard.exchange": _scenario_shard_exchange,
    "shard.worker": _scenario_shard_worker,
}


def chaos_scenarios() -> dict:
    """Scenario callables keyed by fault-point name (a copy)."""
    return dict(_SCENARIOS)


def run_chaos() -> list[ChaosResult]:
    """Run every fault-point scenario; never raises.

    Returns one :class:`ChaosResult` per *registered* fault point, in
    registration order.  A registered point without a scenario is
    reported as a failure — the suite's coverage is closed over the
    registry, not over whatever scenarios happen to exist.
    """
    results: list[ChaosResult] = []
    for point in faults.registered_fault_points():
        fn = _SCENARIOS.get(point.name)
        if fn is None:
            results.append(
                ChaosResult(
                    point.name,
                    point.contract,
                    False,
                    "no scenario covers this registered fault point",
                )
            )
            continue
        try:
            detail = fn()
            results.append(ChaosResult(point.name, point.contract, True, detail))
        except Exception as exc:  # noqa: BLE001 - reported, not raised
            results.append(
                ChaosResult(
                    point.name,
                    point.contract,
                    False,
                    f"{type(exc).__name__}: {exc}",
                )
            )
        finally:
            faults.deactivate()
    return results
