"""Cross-implementation adjoint comparison (paper Section 3.6).

The paper verifies PerforAD by comparing its adjoints with those produced
by two independent conventional AD tools (ADIC and Tapenade) and reports
full agreement.  This module performs the same three-way comparison with
the reproduction's independent implementations:

1. the PerforAD-style *gather* adjoint (core + boundary loop nests),
2. the conventional *scatter* adjoint executed with slice updates,
3. the conventional scatter adjoint executed with ``np.add.at``
   (the atomic-analogue execution discipline),

plus, optionally, the pointwise reference interpreter running the gather
nests — four executions through genuinely different code paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..apps.base import StencilProblem
from ..baselines.atomic import AtomicScatterKernel
from ..baselines.scatter import tapenade_style_adjoint
from ..core.transform import adjoint_loops
from ..runtime.compiler import assert_disjoint_writes, compile_nests
from ..runtime.interpreter import interpret_nests

__all__ = ["AdjointComparison", "compare_adjoints"]


@dataclass(frozen=True)
class AdjointComparison:
    """Maximum absolute disagreement of each pair of implementations."""

    gather_vs_scatter: float
    gather_vs_atomic: float
    gather_vs_interpreter: float | None

    def passed(self, tol: float = 1e-12) -> bool:
        vals = [self.gather_vs_scatter, self.gather_vs_atomic]
        if self.gather_vs_interpreter is not None:
            vals.append(self.gather_vs_interpreter)
        return all(v <= tol for v in vals)


def compare_adjoints(
    problem: StencilProblem,
    n: int,
    seed: int = 0,
    strategy: str = "disjoint",
    with_interpreter: bool = True,
) -> AdjointComparison:
    """Run the Section 3.6 agreement check at grid size *n*."""
    rng = np.random.default_rng(seed)
    bindings = problem.bindings(n)
    base = problem.allocate(n, rng=rng)
    adjoints = problem.allocate_adjoints(n, rng=rng)
    name_map = problem.adjoint_name_map()
    active = [name_map[a] for a in problem.active_input_names()]

    def fresh() -> dict[str, np.ndarray]:
        arrays = {k: a.copy() for k, a in base.items()}
        arrays.update({k: a.copy() for k, a in adjoints.items()})
        return arrays

    gather_nests = adjoint_loops(problem.primal, problem.adjoint_map, strategy=strategy)
    gather_kernel = compile_nests(gather_nests, bindings, name="gather")
    if strategy in ("disjoint", "guarded"):
        assert_disjoint_writes(gather_kernel)
    a_gather = fresh()
    gather_kernel(a_gather)

    scatter_nest = tapenade_style_adjoint(problem.primal, problem.adjoint_map)
    scatter_kernel = compile_nests([scatter_nest], bindings, name="scatter")
    a_scatter = fresh()
    scatter_kernel(a_scatter)

    atomic_kernel = AtomicScatterKernel(scatter_kernel)
    a_atomic = fresh()
    atomic_kernel(a_atomic)

    def max_diff(a, b) -> float:
        return max(
            float(np.max(np.abs(a[name] - b[name]))) for name in active
        )

    interp_diff = None
    if with_interpreter:
        a_interp = fresh()
        interpret_nests(gather_nests, a_interp, bindings)
        interp_diff = max_diff(a_gather, a_interp)

    return AdjointComparison(
        gather_vs_scatter=max_diff(a_gather, a_scatter),
        gather_vs_atomic=max_diff(a_gather, a_atomic),
        gather_vs_interpreter=interp_diff,
    )
