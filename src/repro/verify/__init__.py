"""Verification suite: dot-product, finite differences, cross-compare."""

from .compare import AdjointComparison, compare_adjoints
from .dotproduct import DotProductResult, dot_product_test
from .findiff import FinDiffResult, finite_difference_test
from .hvp import gradient, hessian_vector_product
from .jacobian import (
    assemble_jacobian_adjoint,
    assemble_jacobian_tangent,
    transpose_check,
)

__all__ = [
    "AdjointComparison",
    "DotProductResult",
    "FinDiffResult",
    "assemble_jacobian_adjoint",
    "assemble_jacobian_tangent",
    "compare_adjoints",
    "gradient",
    "hessian_vector_product",
    "transpose_check",
    "dot_product_test",
    "finite_difference_test",
]
