"""Dense Jacobian assembly and the exact transpose check.

For small grids the full Jacobian of a stencil can be assembled column by
column with the tangent loop (unit directions) and row by row with the
adjoint loops (unit seeds).  The adjoint stencil transformation is
correct iff the two matrices are exact transposes — the strongest
first-order check available, with no tolerance beyond floating-point
evaluation noise (each entry is computed by one kernel evaluation on a
one-hot input, so agreement is typically bitwise for linear stencils).
"""

from __future__ import annotations

import numpy as np
import sympy as sp

from ..apps.base import StencilProblem
from ..core.transform import adjoint_loops
from ..runtime.compiler import compile_nests

__all__ = ["assemble_jacobian_tangent", "assemble_jacobian_adjoint", "transpose_check"]


def _interior_box(problem: StencilProblem, n: int):
    bindings = problem.bindings(n)
    return tuple(
        slice(
            bindings.int_bound(problem.primal.bounds[c][0]),
            bindings.int_bound(problem.primal.bounds[c][1]) + 1,
        )
        for c in problem.primal.counters
    )


def assemble_jacobian_tangent(
    problem: StencilProblem,
    n: int,
    inputs: dict[str, np.ndarray],
    wrt: str,
) -> np.ndarray:
    """Jacobian ``d out[interior] / d wrt[all]`` via tangent columns."""
    bindings = problem.bindings(n)
    shape = problem.array_shape(n)
    box = _interior_box(problem, n)
    out_name = problem.output_name
    tangent_map = {
        prim: sp.Function(prim.__name__ + "_d") for prim in problem.adjoint_map
    }
    tan = compile_nests([problem.primal.tangent(tangent_map)], bindings)
    size = int(np.prod(shape))
    rows = int(np.prod(np.zeros(shape)[box].shape))
    J = np.zeros((rows, size))
    for col in range(size):
        arrays = {k: v.copy() for k, v in inputs.items()}
        for prim in problem.adjoint_map:
            pname = prim.__name__
            arrays[pname + "_d"] = np.zeros(shape)
        e = np.zeros(size)
        e[col] = 1.0
        arrays[wrt + "_d"] = e.reshape(shape)
        arrays[out_name + "_d"] = np.zeros(shape)
        tan(arrays)
        J[:, col] = arrays[out_name + "_d"][box].ravel()
    return J


def assemble_jacobian_adjoint(
    problem: StencilProblem,
    n: int,
    inputs: dict[str, np.ndarray],
    wrt: str,
    strategy: str = "disjoint",
) -> np.ndarray:
    """The same Jacobian via adjoint rows (unit output seeds)."""
    bindings = problem.bindings(n)
    shape = problem.array_shape(n)
    box = _interior_box(problem, n)
    name_map = problem.adjoint_name_map()
    adj = compile_nests(
        adjoint_loops(problem.primal, problem.adjoint_map, strategy=strategy),
        bindings,
    )
    interior_shape = np.zeros(shape)[box].shape
    rows = int(np.prod(interior_shape))
    size = int(np.prod(shape))
    J = np.zeros((rows, size))
    for row in range(rows):
        arrays = {k: v.copy() for k, v in inputs.items()}
        seed = np.zeros(shape)
        seed[box] = np.eye(rows)[row].reshape(interior_shape)
        arrays[name_map[problem.output_name]] = seed
        for prim in problem.active_input_names():
            arrays[name_map[prim]] = np.zeros(shape)
        adj(arrays)
        J[row, :] = arrays[name_map[wrt]].ravel()
    return J


def transpose_check(
    problem: StencilProblem,
    n: int,
    wrt: str | None = None,
    seed: int = 0,
    strategy: str = "disjoint",
) -> float:
    """Max abs difference between tangent- and adjoint-assembled Jacobians."""
    rng = np.random.default_rng(seed)
    inputs = problem.allocate(n, rng=rng)
    wrt = wrt or problem.active_input_names()[0]
    Jt = assemble_jacobian_tangent(problem, n, inputs, wrt)
    Ja = assemble_jacobian_adjoint(problem, n, inputs, wrt, strategy=strategy)
    return float(np.max(np.abs(Jt - Ja)))
