"""Adjoint dot-product (inner-product) consistency test.

For the stencil Jacobian ``J = d out / d inputs``, forward mode computes
``J v`` (tangent loop, Section :meth:`LoopNest.tangent`) and reverse mode
computes ``J^T w`` (the adjoint stencil loops).  Consistency requires

    < J v, w >  ==  < v, J^T w >

exactly (up to roundoff), for arbitrary directions ``v`` and seeds ``w``.
This is the standard machine-precision adjoint test used instead of the
truncation-limited finite-difference check wherever possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np
import sympy as sp

from ..apps.base import StencilProblem
from ..core.transform import adjoint_loops
from ..runtime.compiler import compile_nests

__all__ = ["DotProductResult", "dot_product_test"]


@dataclass(frozen=True)
class DotProductResult:
    lhs: float  # < J v, w >
    rhs: float  # < v, J^T w >
    rel_error: float

    @property
    def passed(self) -> bool:
        return self.rel_error < 1e-12


def dot_product_test(
    problem: StencilProblem,
    n: int,
    seed: int = 0,
    strategy: str = "disjoint",
) -> DotProductResult:
    """Run the dot-product test on a stencil problem at grid size *n*."""
    rng = np.random.default_rng(seed)
    bindings = problem.bindings(n)
    arrays = problem.allocate(n, rng=rng)
    shape = problem.array_shape(n)
    name_map = problem.adjoint_name_map()
    out_name = problem.output_name
    active_inputs = problem.active_input_names()

    # Tangent sweep: r_d = J v.
    tangent_map = {
        prim: sp.Function(prim.__name__ + "_d") for prim in problem.adjoint_map
    }
    tan_nest = problem.primal.tangent(tangent_map)
    tan_arrays = dict(arrays)
    directions: dict[str, np.ndarray] = {}
    for prim, tang in tangent_map.items():
        pname, tname = prim.__name__, tang.__name__
        if pname == out_name:
            tan_arrays[tname] = np.zeros(shape)
        else:
            directions[pname] = rng.standard_normal(shape)
            tan_arrays[tname] = directions[pname]
    compile_nests([tan_nest], bindings, name="tangent")(tan_arrays)
    jv = tan_arrays[out_name + "_d"]

    # Adjoint sweep: u_b = J^T w.
    w = rng.standard_normal(shape)
    adj_nests = adjoint_loops(problem.primal, problem.adjoint_map, strategy=strategy)
    adj_arrays = dict(arrays)
    adj_arrays.update(problem.allocate_adjoints(n, seed=w))
    compile_nests(adj_nests, bindings, name="adjoint")(adj_arrays)

    lhs = float(np.vdot(jv, w))
    rhs = 0.0
    for pname in active_inputs:
        rhs += float(np.vdot(directions[pname], adj_arrays[name_map[pname]]))
    denom = max(abs(lhs), abs(rhs), 1e-300)
    return DotProductResult(lhs=lhs, rhs=rhs, rel_error=abs(lhs - rhs) / denom)
