"""Analytical shared-memory machine model.

The paper's scalability results (Figures 8–15) were measured on a 12-core
Broadwell Xeon and a 64-core Knights Landing Xeon Phi.  This environment
has neither, so the reproduction substitutes a calibrated analytical model
whose *structure* encodes the effects the paper attributes its results to:

* **roofline compute/bandwidth behaviour** — per-thread compute scales
  linearly while memory bandwidth saturates at the socket level, which is
  what makes the KNL wave primal plateau at 16 threads (Section 5.2)
  while the flop-heavier PerforAD adjoint keeps scaling to 32;
* **atomic serialisation** — every scattered atomic update pays a fixed
  cost that *grows* with thread count through cache-line contention, which
  is why the atomics baseline is an order of magnitude slower serially and
  degrades with every added thread (Section 5.1, "91 s even if only one
  thread is used");
* **sequential stack access** — the value-stack variant adds unscalable
  stack traffic and forbids parallelisation (Section 4.2 / Figure 15);
* **fork/join overhead** — each parallel loop nest pays a per-thread
  synchronisation cost (negligible for the paper's sizes, included for
  completeness and for the boundary-strategy ablation).

Model equation, for ``p`` threads and a kernel descriptor ``k``::

    t_compute(p) = k.points * k.flops_per_point / (F * eff(p))
    t_memory(p)  = k.points * k.bytes_per_point / min(B1 * eff(p), Bmax)
    t_stencil(p) = max(t_compute, t_memory)           # roofline
    t_atomic(p)  = k.points * k.scatter_updates_per_point
                   * atomic_cost * (1 + contention * (p - 1))
    t_stack      = k.points * k.stack_bytes_per_point / stack_bw  (serial)
    t(p)         = t_stencil(p) + t_atomic(p) + t_stack
                   + n_parallel_loops * fork_join * p

``eff(p)`` is ``min(p, cores)`` plus diminishing returns for hardware
threads beyond the core count (SMT), matching KNL's behaviour where the
fastest wave adjoint used 256 threads on 64 cores (Figure 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .descriptor import KernelDescriptor

__all__ = ["MachineModel", "ExecutionMode"]


ExecutionMode = str  # "gather" | "serial" | "atomic" | "stack"


@dataclass(frozen=True)
class MachineModel:
    """Calibrated machine parameters (see :mod:`repro.machine.presets`).

    Attributes
    ----------
    name:
        Label used in benchmark output.
    cores:
        Physical cores available to the experiment.
    max_threads:
        Maximum hardware threads (``cores`` times SMT ways).
    flops_per_sec:
        Effective per-core scalar+SIMD throughput for stencil bodies
        (includes all compiler/issue inefficiency — calibrated, not peak).
    bw_core:
        Per-core achievable main-memory bandwidth (bytes/s).
    bw_max:
        Socket-level bandwidth ceiling (bytes/s).
    smt_efficiency:
        Marginal throughput of a hardware thread beyond the physical core
        count, relative to a core (0..1).
    atomic_cost:
        Seconds per atomic scatter update at one thread.
    atomic_contention:
        Fractional cost growth of an atomic update per additional thread.
    stack_bw:
        Effective bandwidth of sequential value-stack traffic (bytes/s).
    fork_join:
        Seconds of per-thread overhead per parallel loop nest.
    """

    name: str
    cores: int
    max_threads: int
    flops_per_sec: float
    flops_novec: float
    flops_branchy: float
    flops_minmax: float = 0.0  # only consulted when scalar_if_minmax
    bw_core: float = 1.0e10
    bw_max: float = 4.0e10
    smt_efficiency: float = 0.3
    atomic_cost: float = 1.0e-8
    atomic_contention: float = 0.05
    scatter_serial_cost: float = 0.0  # per scattered update, serial execution
    stack_bw: float = 1.5e9
    fork_join: float = 5.0e-6
    scalar_if_minmax: bool = False

    def effective_flops(self, desc: KernelDescriptor) -> float:
        """Throughput class of a kernel body on this machine.

        Three vectorisation hazards, each with a calibrated throughput:

        * ``flops_branchy`` — ternary/Heaviside factors from piecewise
          derivatives (the Burgers adjoints of Figure 7);
        * ``flops_novec`` — multi-statement bodies emitted without CSE
          (PerforAD's per-input differentiation, Section 4), which the
          paper measures at a 64% serial penalty for the wave adjoint;
        * ``flops_minmax`` — fmax/fmin switches, penalised only on
          machines whose in-order cores stall on them
          (``scalar_if_minmax``, i.e. KNL: Burgers primal runs 25.02 s
          serial there vs 2.13 s on Broadwell).

        Clean single-statement streaming stencils get ``flops_per_sec``.
        """
        # Priority: the branchy class already reflects min/max switches
        # plus ternaries, so the hazards do not stack.
        if desc.has_heaviside:
            return self.flops_branchy
        if desc.has_minmax and self.scalar_if_minmax:
            return self.flops_minmax or self.flops_branchy
        if desc.multi_statement and not desc.optimized:
            return self.flops_novec
        return self.flops_per_sec

    # -- effective parallelism --------------------------------------------

    def effective_units(self, threads: int) -> float:
        """Core-equivalents delivered by *threads* hardware threads."""
        if threads <= self.cores:
            return float(threads)
        extra = min(threads, self.max_threads) - self.cores
        return self.cores + self.smt_efficiency * extra

    # -- time prediction ----------------------------------------------------

    def time(
        self,
        desc: KernelDescriptor,
        threads: int = 1,
        mode: ExecutionMode = "gather",
    ) -> float:
        """Predicted wall-clock seconds for one kernel execution.

        ``mode``:

        * ``"gather"`` — stencil loops (primal or PerforAD adjoint):
          roofline scaling, no atomics, no stack.
        * ``"serial"`` — the conventional scatter adjoint run serially
          (slice updates, no atomics); *threads* is ignored (forced to 1).
        * ``"atomic"`` — the conventional adjoint with atomic updates.
        * ``"stack"`` — serial conventional adjoint with value-stack
          traffic (never parallel: pop order is sequential).
        """
        if threads < 1:
            raise ValueError("threads must be >= 1")
        if mode not in ("gather", "serial", "atomic", "stack"):
            raise ValueError(f"unknown execution mode {mode!r}")
        if mode in ("serial", "stack"):
            threads = 1
        eff = self.effective_units(threads)

        t_compute = desc.points * desc.flops_per_point / (self.effective_flops(desc) * eff)
        bw = min(self.bw_core * eff, self.bw_max)
        t_memory = desc.points * desc.bytes_per_point / bw
        t = max(t_compute, t_memory)

        if mode in ("serial", "atomic", "stack"):
            # Scattered writes lose spatial locality even without atomics.
            t += (
                desc.points
                * desc.scatter_updates_per_point
                * self.scatter_serial_cost
                / (eff if mode == "atomic" else 1.0)
            )
        if mode == "atomic":
            t_atomic = (
                desc.points
                * desc.scatter_updates_per_point
                * self.atomic_cost
                * (1.0 + self.atomic_contention * (threads - 1))
            )
            t += t_atomic
        if mode == "stack":
            t += desc.points * desc.stack_bytes_per_point / self.stack_bw
        if threads > 1:
            t += desc.n_parallel_loops * self.fork_join * threads
        return t

    def speedup_curve(
        self,
        desc: KernelDescriptor,
        thread_counts: Iterable[int],
        mode: ExecutionMode = "gather",
    ) -> list[tuple[int, float]]:
        """``(threads, speedup-vs-1-thread)`` points for a figure series."""
        t1 = self.time(desc, threads=1, mode=mode)
        return [
            (p, t1 / self.time(desc, threads=p, mode=mode)) for p in thread_counts
        ]

    def best_time(
        self,
        desc: KernelDescriptor,
        mode: ExecutionMode = "gather",
        thread_counts: Sequence[int] | None = None,
    ) -> tuple[int, float]:
        """Best (threads, time) over the admissible thread counts."""
        if thread_counts is None:
            thread_counts = _default_threads(self.max_threads)
        best = min(
            ((p, self.time(desc, threads=p, mode=mode)) for p in thread_counts),
            key=lambda pt: pt[1],
        )
        return best


def _default_threads(max_threads: int) -> list[int]:
    out = []
    p = 1
    while p <= max_threads:
        out.append(p)
        p *= 2
    if out[-1] != max_threads:
        out.append(max_threads)
    return out
