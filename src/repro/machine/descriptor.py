"""Kernel characterisation for the machine performance model.

A :class:`KernelDescriptor` summarises a computation the way a roofline
analysis would: iteration points, floating-point operations per point,
bytes of main-memory traffic per point — plus the AD-specific cost
channels (scattered atomic updates, value-stack traffic) and three
qualitative flags the model uses to pick an effective throughput:

* ``redundancy`` — ratio of raw operation count to the count after
  common-subexpression elimination.  PerforAD "makes no attempt to
  identify common sub-expressions" (Section 4), and the paper measures a
  64% serial overhead over the CSE'd Tapenade adjoint for the wave
  equation; the model charges redundant bodies the scalar (unvectorised)
  throughput.
* ``has_heaviside`` — ternary/branch factors from piecewise derivatives
  (the Burgers adjoint of Figure 7), which compilers do not vectorise
  well on either test machine.
* ``has_minmax`` — ``fmax``/``fmin`` upwinding switches, which vectorise
  on Broadwell but hurt the in-order KNL cores (Burgers primal runs
  25.02 s serial on KNL vs 2.13 s on Broadwell — far more than the core
  frequency ratio).

Descriptors are *derived from the actual loop nests* produced by the
transformation (operation counts via SymPy, traffic via access analysis),
so the performance model is fed by the same code the correctness tests
execute.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

import sympy as sp

from ..core.accesses import classify_applied
from ..core.loopnest import LoopNest
from ..core.symbols import array_name

__all__ = ["KernelDescriptor", "analyze_nests", "analyze_scatter", "FLOAT_BYTES"]

FLOAT_BYTES = 8


@dataclass(frozen=True)
class KernelDescriptor:
    """Roofline-style characterisation of a kernel (see module docstring)."""

    points: int
    flops_per_point: float
    bytes_per_point: float
    redundancy: float = 1.0
    has_heaviside: bool = False
    has_minmax: bool = False
    multi_statement: bool = False
    optimized: bool = True  # CSE'd by the emitting tool (False for PerforAD)
    scatter_updates_per_point: float = 0.0
    stack_bytes_per_point: float = 0.0
    n_parallel_loops: int = 1

    def with_stack(self, values_per_point: float) -> "KernelDescriptor":
        """Add value-stack traffic: each value pushed and popped once."""
        return replace(
            self, stack_bytes_per_point=2 * FLOAT_BYTES * values_per_point
        )


def _nest_cost(nest: LoopNest, cse: bool) -> tuple[float, float, float, bool, bool]:
    """(flops, bytes, redundancy, has_heaviside, has_minmax) per point."""
    exprs = [st.rhs for st in nest.statements]
    raw = float(sum(sp.count_ops(e, visual=False) for e in exprs))
    repl, reduced = sp.cse(exprs)
    after = float(
        sum(sp.count_ops(e, visual=False) for _, e in repl)
        + sum(sp.count_ops(e, visual=False) for e in reduced)
    )
    increments = sum(1 for st in nest.statements if st.op == "+=")
    flops = (after if cse else raw) + increments
    redundancy = raw / after if after > 0 else 1.0

    # Memory traffic: one stream per distinct array read anywhere in the
    # nest (offset neighbours hit cache), one write stream per distinct
    # target (+ a read stream for '+=' read-modify-write).
    reads: set[str] = set()
    writes: set[str] = set()
    rmw: set[str] = set()
    for st in nest.statements:
        accesses, _calls = classify_applied(st.rhs, nest.counters)
        reads |= {array_name(a) for a in accesses}
        writes.add(st.target_name)
        if st.op == "+=":
            rmw.add(st.target_name)
    reads -= writes  # write streams already counted (rmw below)
    bytes_ = FLOAT_BYTES * (len(reads) + len(writes) + len(rmw))

    has_h = any(e.atoms(sp.Heaviside) for e in exprs)
    has_mm = any(e.atoms(sp.Max) or e.atoms(sp.Min) for e in exprs)
    return flops, bytes_, redundancy, has_h, has_mm


def analyze_nests(
    nests: Sequence[LoopNest],
    sizes: Mapping[sp.Symbol | str, int],
    cse: bool = False,
) -> KernelDescriptor:
    """Characterise a list of loop nests under concrete sizes.

    With ``cse=True`` the operation count is taken after common-
    subexpression elimination (modelling an optimising AD tool such as
    Tapenade, whose ``tempb`` temporaries the paper shows); with
    ``cse=False`` the raw SymPy-emitted operation count is used
    (PerforAD's behaviour).
    """
    by_name = {str(k): v for k, v in sizes.items()}
    total_points = 0
    weighted_flops = 0.0
    weighted_bytes = 0.0
    weighted_red = 0.0
    n_loops = 0
    has_h = False
    has_mm = False
    for nest in nests:
        pts = 1
        for c in nest.counters:
            lo, hi = nest.bounds[c]
            extent = sp.expand(hi - lo + 1)
            subs = {
                s: by_name[s.name] for s in extent.free_symbols if s.name in by_name
            }
            extent = extent.subs(subs)
            if not extent.is_Integer:
                raise ValueError(f"extent {hi - lo + 1} not concrete under {sizes}")
            pts *= max(0, int(extent))
        if pts <= 0:
            continue
        n_loops += 1
        flops, bytes_, red, h, mm = _nest_cost(nest, cse)
        total_points += pts
        weighted_flops += pts * flops
        weighted_bytes += pts * bytes_
        weighted_red += pts * red
        has_h |= h
        has_mm |= mm
    if total_points == 0:
        raise ValueError("all loop nests are empty under the given sizes")
    return KernelDescriptor(
        points=total_points,
        flops_per_point=weighted_flops / total_points,
        bytes_per_point=weighted_bytes / total_points,
        redundancy=weighted_red / total_points,
        has_heaviside=has_h,
        has_minmax=has_mm,
        multi_statement=any(len(nest.statements) > 1 for nest in nests),
        optimized=cse,
        n_parallel_loops=n_loops,
    )


def analyze_scatter(
    scatter_nest: LoopNest,
    sizes: Mapping[sp.Symbol | str, int],
    cse: bool = True,
) -> KernelDescriptor:
    """Characterise a conventional scatter adjoint.

    Every statement of the scatter nest is a potentially-conflicting
    update, so ``scatter_updates_per_point`` equals the statement count.
    Defaults to ``cse=True`` (Tapenade optimises its emitted adjoint).
    """
    base = analyze_nests([scatter_nest], sizes, cse=cse)
    return replace(
        base,
        scatter_updates_per_point=float(len(scatter_nest.statements)),
        redundancy=1.0 if cse else base.redundancy,
    )
