"""Machine presets calibrated to the paper's two test systems (Section 5).

* **Broadwell** — one socket of a dual-socket Intel Xeon E5-2650 v4
  system: 12 physical cores (the paper pins to a single socket and limits
  itself to 12 threads to avoid NUMA effects), icc 18 ``-O3 -fopenmp
  -xHost``.
* **KNL** — Intel Xeon Phi Knights Landing 7210: 64 in-order cores, up to
  256 hardware threads, ``KMP_AFFINITY=scatter``.

Calibration sources (all from the paper's published numbers, Figures
10/11/14/15 and Section 5.1):

* ``bw_core`` from the memory-bound serial wave primal (4.14 s / 12.82 s
  for ~40 B/point over 10^9 points);
* ``bw_max`` from the best parallel primal runtimes (0.90 s / 0.84 s);
* ``flops_novec`` from the PerforAD wave adjoint serial runtimes (8.52 s /
  41.27 s — the 64%/220% penalty the paper attributes to SymPy's
  uncollected common subexpressions);
* ``flops_branchy`` from the Burgers adjoint serial runtimes (15.73 s /
  51.85 s — ternary Heaviside factors);
* ``flops_minmax`` (KNL only) from the Burgers primal serial anomaly
  (25.02 s on KNL vs 2.13 s on Broadwell, far beyond the frequency ratio);
* ``atomic_cost`` from the 91 s single-thread atomics run (Section 5.1):
  (91 - 5.4) s over 8x10^9 scattered updates = 1.07x10^-8 s each;
* ``scatter_serial_cost`` from the gap between the Tapenade wave adjoint
  serial runtime and its roofline time (KNL: 25.45 s vs ~15.4 s);
* ``stack_bw`` from the stack-based Burgers adjoint on KNL (95.74 s,
  Figure 15).

EXPERIMENTS.md tabulates the resulting model predictions against all
twenty-one published values.
"""

from __future__ import annotations

from .model import MachineModel

__all__ = ["BROADWELL", "KNL", "PRESETS"]


BROADWELL = MachineModel(
    name="Broadwell (Xeon E5-2650 v4, 1 socket, 12 cores)",
    cores=12,
    max_threads=12,  # paper limits to one socket's physical cores
    flops_per_sec=12.0e9,  # effective SIMD stencil throughput per core
    flops_novec=6.1e9,  # multi-statement sympy-emitted bodies
    flops_branchy=3.5e9,  # ternary/Heaviside bodies
    flops_minmax=0.0,  # unused: vminpd/vmaxpd vectorise on Broadwell
    bw_core=9.66e9,  # single-thread stream bandwidth
    bw_max=44.0e9,  # socket saturation
    smt_efficiency=0.0,  # no SMT used in the paper's runs
    atomic_cost=1.07e-8,
    atomic_contention=0.08,
    scatter_serial_cost=0.06e-9,  # OoO cores hide scattered-store latency
    stack_bw=1.2e9,
    fork_join=5.0e-6,
    scalar_if_minmax=False,
)


KNL = MachineModel(
    name="KNL (Xeon Phi 7210, 64 cores, 256 threads)",
    cores=64,
    max_threads=256,
    flops_per_sec=3.0e9,  # per-core SIMD throughput (1.3 GHz in-order)
    flops_novec=1.25e9,
    flops_branchy=0.945e9,
    flops_minmax=0.80e9,
    bw_core=3.12e9,
    bw_max=50.0e9,  # wave primal plateaus at ~16 threads (Section 5.2)
    smt_efficiency=0.20,  # 4-way SMT: fastest wave adjoint used 256 threads
    atomic_cost=2.5e-8,
    atomic_contention=0.10,
    scatter_serial_cost=1.26e-9,  # in-order cores expose scattered stores
    stack_bw=0.57e9,  # backwards-strided stack pops defeat the prefetcher
    fork_join=2.0e-5,
    scalar_if_minmax=True,
)


V100 = MachineModel(
    name="V100 (extension preset: 80 SMs, HBM2)",
    cores=80,  # streaming multiprocessors as the parallel unit
    max_threads=160,  # 2 resident blocks per SM as an effective unit
    flops_per_sec=90.0e9,  # per-SM stencil throughput (double precision)
    flops_novec=45.0e9,  # divergent multi-statement bodies
    flops_branchy=30.0e9,  # warp divergence on ternaries
    flops_minmax=0.0,  # predicated min/max are free on GPUs
    bw_core=12.0e9,  # per-SM share of HBM bandwidth
    bw_max=800.0e9,
    smt_efficiency=0.15,
    atomic_cost=4.0e-9,  # HW atomics are cheaper but still serialise
    atomic_contention=0.25,  # ... and contend hard across 5000+ threads
    scatter_serial_cost=0.5e-9,
    stack_bw=20.0e9,
    fork_join=8.0e-6,  # kernel-launch latency
    scalar_if_minmax=False,
)
"""Extension preset (not from the paper): the GPU target of the paper's
future-work section, for the ``bench_gpu_extension`` experiment.  Numbers
are representative V100 characteristics, not calibrated measurements."""


PRESETS = {"broadwell": BROADWELL, "knl": KNL, "v100": V100}
