"""Analytical machine model (substitute for the paper's test hardware)."""

from .descriptor import FLOAT_BYTES, KernelDescriptor, analyze_nests, analyze_scatter
from .model import MachineModel
from .presets import BROADWELL, KNL, PRESETS, V100

__all__ = [
    "BROADWELL",
    "V100",
    "FLOAT_BYTES",
    "KNL",
    "KernelDescriptor",
    "MachineModel",
    "PRESETS",
    "analyze_nests",
    "analyze_scatter",
]
