"""Conventional reverse-mode adjoint: the Tapenade-style scatter baseline.

The paper's comparison point (Sections 3.6, 4, 5) is the adjoint produced
by a general-purpose source-transformation AD tool: the loop structure of
the primal is kept, iterated backwards, and each active input access gets
a scattered ``+=`` update.  Common subexpressions shared by the updates of
one iteration are factored into temporaries (Tapenade's ``tempb``), which
is why the conventional adjoint is *faster in serial* than the PerforAD
adjoint (Section 5.1: 5.43 s vs 8.52 s for the wave equation) — PerforAD
re-derives each product independently per gathered statement.

This module generates that baseline independently of the PerforAD pipeline
(it never shifts indices or splits iteration spaces), so the Section 3.6
three-way verification — PerforAD vs conventional AD vs finite differences
— compares genuinely distinct implementations.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import sympy as sp

from ..core.diff import adjoint_scatter_loop
from ..core.loopnest import LoopNest
from ..ir import function_from_nests
from ..codegen.c import CPrinter, generate_c

__all__ = ["tapenade_style_adjoint", "print_function_c_atomic", "cse_statements"]


def tapenade_style_adjoint(
    nest: LoopNest, adjoint_map: Mapping[sp.Basic, sp.Basic]
) -> LoopNest:
    """Conventional scatter adjoint of a stencil loop nest.

    Returns one loop nest over the *primal* iteration space whose body
    scatters adjoint contributions to offset indices — correct serially,
    but racy under loop-level parallelisation (hence the atomics of
    :mod:`repro.baselines.atomic`).
    """
    return adjoint_scatter_loop(nest, adjoint_map, reverse_iteration=True)


def cse_statements(nest: LoopNest) -> tuple[int, int]:
    """Operation counts (before, after) common-subexpression elimination.

    Models Tapenade's factoring of shared products into temporaries; used
    by the machine model to credit the conventional adjoint with its lower
    serial operation count.
    """
    exprs = [st.rhs for st in nest.statements]
    before = sum(sp.count_ops(e) for e in exprs)
    repl, reduced = sp.cse(exprs)
    after = sum(sp.count_ops(e) for _, e in repl) + sum(
        sp.count_ops(e) for e in reduced
    )
    return int(before), int(after)


def print_function_c_atomic(name: str, nest: LoopNest) -> str:
    """C code for the manually parallelised scatter adjoint (Figure 5, bottom).

    Emits the conventional adjoint loop with ``#pragma omp parallel for``
    on the outer loop and ``#pragma omp atomic`` in front of every
    scattered update, exactly as the paper constructs its "Atomics"
    baseline from Tapenade output.
    """
    printer = CPrinter()
    lines: list[str] = []
    arrays: dict[str, int] = {}
    for st in nest.statements:
        arrays[st.target_name] = len(st.lhs.args)
        for acc in st.read_accesses():
            arrays.setdefault(acc.func.__name__, len(acc.args))
    sizes = nest.size_symbols()
    scalars = nest.scalar_parameters()
    params = [f"double {'*' * rank}{n}" for n, rank in arrays.items()]
    params += [f"double {s}" for s in scalars]
    params += [f"int {s}" for s in sizes]
    lines.append(f"void {name}({', '.join(params)}) {{")
    counters = ", ".join(str(c) for c in nest.counters)
    lines.append(f"  int {counters};")
    private = ",".join(str(c) for c in nest.counters)
    lines.append(f"  #pragma omp parallel for private({private})")
    indent = "  "
    for c in nest.counters:
        lo, hi = nest.bounds[c]
        # Tapenade iterates the adjoint loop backwards.
        lines.append(
            f"{indent}for ({c} = {printer.doprint(hi)}; {c} >= "
            f"{printer.doprint(lo)}; --{c})"
        )
        indent += "  "
    for st in nest.statements:
        idx = "".join(f"[{printer.doprint(a)}]" for a in st.lhs.args)
        rhs = printer.doprint(st.rhs)
        lines.append(f"{indent}#pragma omp atomic")
        lines.append(f"{indent}{st.target_name}{idx} += {rhs};")
    lines.append("}")
    return "\n".join(lines) + "\n"
