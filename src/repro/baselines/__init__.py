"""Conventional-AD baselines (Tapenade-style scatter, atomics, stack)."""

from .atomic import AtomicScatterKernel
from .scatter import cse_statements, print_function_c_atomic, tapenade_style_adjoint
from .stack import StackAdjoint, ValueStack, nonlinear_intermediates

__all__ = [
    "AtomicScatterKernel",
    "StackAdjoint",
    "ValueStack",
    "cse_statements",
    "nonlinear_intermediates",
    "print_function_c_atomic",
    "tapenade_style_adjoint",
]
