"""Atomic-update scatter execution: the paper's "Atomics" baseline.

The conventional adjoint scatters ``+=`` updates into overlapping
locations, so a parallel version must make every update atomic.  The paper
shows this is catastrophic: the wave-equation adjoint takes 91 s with one
thread (vs 5.43 s without atomics) and *slows down further* with every
added thread (Section 5.1).

The honest NumPy analogue of an atomic scatter-add is ``np.add.at``: an
unbuffered, element-by-element indexed accumulation that bypasses the
vectorised fast path exactly as an ``omp atomic`` bypasses plain stores.
:class:`AtomicScatterKernel` executes a compiled scatter kernel that way,
giving a *measured* baseline whose slowdown factor plays the role of the
paper's atomic overhead; the machine model (:mod:`repro.machine`)
extrapolates the thread-contention behaviour to the paper's hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..runtime.compiler import (
    CompiledKernel,
    CompiledStatement,
    KernelError,
    RegionKernel,
    _frame_view,
)

__all__ = ["AtomicScatterKernel"]


@dataclass
class AtomicScatterKernel:
    """Executes every scattered update with ``np.add.at`` (atomic analogue)."""

    kernel: CompiledKernel

    def __post_init__(self) -> None:
        for region in self.kernel.regions:
            for st in region.statements:
                if st.op != "+=":
                    raise KernelError(
                        "atomic scatter execution only supports '+=' updates"
                    )

    def __call__(self, arrays: Mapping[str, np.ndarray]) -> None:
        for region in self.kernel.regions:
            if region.is_empty:
                continue
            self._execute_region(region, arrays, region.bounds)

    def execute_block(
        self,
        region: RegionKernel,
        arrays: Mapping[str, np.ndarray],
        bounds: Sequence[tuple[int, int]],
    ) -> None:
        self._execute_region(region, arrays, tuple(bounds))

    def _execute_region(
        self,
        region: RegionKernel,
        arrays: Mapping[str, np.ndarray],
        bounds: tuple[tuple[int, int], ...],
    ) -> None:
        for st in region.statements:
            eff = bounds
            if st.guard_box is not None:
                eff = tuple(
                    (max(lo, glo), min(hi, ghi))
                    for (lo, hi), (glo, ghi) in zip(bounds, st.guard_box)
                )
                if any(lo > hi for lo, hi in eff):
                    continue
            args = [
                _frame_view(arrays[acc.name], acc, eff, st.dim) for acc in st.reads
            ]
            for axis in st.bare_axes:
                lo, hi = eff[axis]
                shape = [1] * st.dim
                shape[axis] = -1
                args.append(np.arange(lo, hi + 1).reshape(shape))
            values = st.eval_fn(*args)
            full_shape = tuple(hi - lo + 1 for lo, hi in eff)
            values = np.broadcast_to(np.asarray(values), full_shape)
            indices = _scatter_indices(st, eff)
            np.add.at(arrays[st.target.name], indices, values)


def _scatter_indices(
    st: CompiledStatement, bounds: tuple[tuple[int, int], ...]
) -> tuple[np.ndarray, ...]:
    """Open-grid index arrays addressing the scattered target locations."""
    idx = []
    for slot, (axis, off) in enumerate(st.target.slots):
        lo, hi = bounds[axis]
        vec = np.arange(lo + off, hi + 1 + off)
        shape = [1] * st.dim
        shape[axis] = -1
        idx.append(vec.reshape(shape))
    return tuple(idx)
