"""Stack-based save/restore of nonlinear intermediates (Tapenade model).

For nonlinear primal bodies, Tapenade evaluates the nonlinear intermediate
values (the Burgers ``fmin``/``fmax`` results, Section 4.2) in a *forward
sweep*, pushes them onto a LIFO value stack, and pops them in the *reverse
sweep*.  The pops must occur in exactly the reverse push order, which is
what makes the stack variant impossible to parallelise and — because the
stack traffic is strided backwards through memory in small blocks — slower
even in serial than recomputing the values (Figure 15: 95.74 s vs 51.85 s
on KNL).

``StackAdjoint`` reproduces that execution discipline: the forward sweep
pushes each nonlinear subexpression's values chunk-by-chunk onto a
:class:`ValueStack`; the reverse sweep pops chunks in reverse order and
feeds them to the scatter adjoint as materialised "stack arrays".  The
chunked push/pop loop models the per-element stack bookkeeping cost of the
Tapenade runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np
import sympy as sp

from ..core.diff import adjoint_scatter_loop
from ..core.loopnest import LoopNest, Statement
from ..runtime.bindings import Bindings
from ..runtime.compiler import CompiledKernel, KernelError, compile_nests

__all__ = ["ValueStack", "StackAdjoint", "nonlinear_intermediates"]


class ValueStack:
    """A LIFO value stack with chunked push/pop, as in AD tool runtimes."""

    def __init__(self, chunk: int = 2048):
        self.chunk = int(chunk)
        self._blocks: list[np.ndarray] = []
        self.bytes_pushed = 0

    def push(self, values: np.ndarray) -> None:
        flat = np.ravel(values)
        for start in range(0, flat.size, self.chunk):
            block = flat[start : start + self.chunk].copy()
            self._blocks.append(block)
            self.bytes_pushed += block.nbytes

    def pop(self, size: int) -> np.ndarray:
        out = np.empty(size)
        filled = size
        while filled > 0:
            if not self._blocks:
                raise KernelError("value stack underflow")
            block = self._blocks.pop()
            out[filled - block.size : filled] = block
            filled -= block.size
        return out

    @property
    def depth(self) -> int:
        return sum(b.size for b in self._blocks)


def nonlinear_intermediates(nest: LoopNest) -> list[sp.Expr]:
    """Nonlinear subexpressions Tapenade would precompute and stack.

    For the stencil class of this paper these are the ``Max``/``Min``
    applications of the primal body (the upwinding switches).  Sorted
    deterministically.
    """
    found: set[sp.Expr] = set()
    for stmt in nest.statements:
        found |= stmt.rhs.atoms(sp.Max) | stmt.rhs.atoms(sp.Min)
    return sorted(found, key=sp.default_sort_key)


@dataclass
class StackAdjoint:
    """Forward-sweep/reverse-sweep adjoint with a value stack.

    Parameters
    ----------
    primal:
        The primal stencil loop nest.
    adjoint_map:
        Primal array -> adjoint array mapping (as for ``LoopNest.diff``).
    bindings:
        Concrete sizes/params.
    chunk:
        Stack block size in elements; smaller chunks mean more bookkeeping,
        as in a real AD runtime.
    """

    primal: LoopNest
    adjoint_map: Mapping[sp.Basic, sp.Basic]
    bindings: Bindings
    chunk: int = 2048

    def __post_init__(self) -> None:
        self._intermediates = nonlinear_intermediates(self.primal)
        counters = self.primal.counters
        self._stack_arrays = [sp.Function(f"_stk{k}") for k in range(len(self._intermediates))]

        # Forward sweep: one nest evaluating each intermediate over the
        # primal iteration space.
        fwd_stmts = [
            Statement(lhs=fn(*counters), rhs=expr, op="=")
            for fn, expr in zip(self._stack_arrays, self._intermediates)
        ]
        self._forward = (
            LoopNest(
                statements=tuple(fwd_stmts),
                counters=counters,
                bounds=dict(self.primal.bounds),
                name=(self.primal.name or "primal") + "_fwd_push",
            )
            if fwd_stmts
            else None
        )

        # Reverse sweep: the conventional scatter adjoint, with every
        # nonlinear intermediate replaced by its stacked value.
        scatter = adjoint_scatter_loop(self.primal, self.adjoint_map)
        repl = {
            expr: fn(*counters)
            for fn, expr in zip(self._stack_arrays, self._intermediates)
        }
        rev_stmts = tuple(
            Statement(lhs=st.lhs, rhs=st.rhs.xreplace(repl), op=st.op)
            for st in scatter.statements
        )
        self._reverse = LoopNest(
            statements=rev_stmts,
            counters=counters,
            bounds=dict(scatter.bounds),
            name=scatter.name + "_stack",
        )

        self._fwd_kernel: CompiledKernel | None = (
            compile_nests([self._forward], self.bindings, name="fwd_push")
            if self._forward
            else None
        )
        self._rev_kernel = compile_nests([self._reverse], self.bindings, name="rev_pop")

    @property
    def num_intermediates(self) -> int:
        return len(self._intermediates)

    def _iteration_shape(self) -> tuple[int, ...]:
        shape = []
        for c in self.primal.counters:
            lo = self.bindings.int_bound(self.primal.bounds[c][0])
            hi = self.bindings.int_bound(self.primal.bounds[c][1])
            shape.append(hi - lo + 1)
        return tuple(shape)

    def run(self, arrays: Mapping[str, np.ndarray]) -> ValueStack:
        """Execute forward (push) then reverse (pop) sweep on *arrays*.

        Returns the (drained) stack, whose ``bytes_pushed`` records the
        extra memory traffic the stack imposed — used by the machine model.
        """
        arrays = dict(arrays)
        stack = ValueStack(chunk=self.chunk)
        shape = self._iteration_shape()
        full_shapes = {}
        for k, fn in enumerate(self._stack_arrays):
            # Stack arrays are indexed at the counters' absolute positions,
            # so allocate like the primal output array for simplicity.
            name = fn.__name__
            out_name = self.primal.statements[0].target_name
            full_shapes[name] = arrays[out_name].shape
            arrays[name] = np.zeros(full_shapes[name])
        if self._fwd_kernel is not None:
            self._fwd_kernel(arrays)
            for fn in self._stack_arrays:
                stack.push(arrays[fn.__name__])
                arrays[fn.__name__][...] = 0.0  # values now live on the stack
        # Reverse sweep: pop values (reverse order) back into arrays.
        for fn in reversed(self._stack_arrays):
            name = fn.__name__
            flat = stack.pop(int(np.prod(full_shapes[name])))
            arrays[name][...] = flat.reshape(full_shapes[name])
        self._rev_kernel(arrays)
        return stack
