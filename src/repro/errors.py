"""Typed exception hierarchy: the graceful-degradation contract's surface.

Every failure the runtime can raise to user code derives from
:class:`ReproError`, so callers embedding the library (or the CLI
mapping errors to exit codes) can classify failures without string
matching.  The contract the chaos suite (``tests/test_faults.py``)
enforces for every registered fault point in
:mod:`repro.runtime.faults`:

* either the runtime **recovers bitwise-identically** through a
  documented fallback (native build failure -> python path, corrupt
  ``.so`` cache entry -> rebuild), or
* it raises exactly one :class:`ReproError` subclass **with user
  arrays intact** — untouched, or restored when
  ``ExecutionConfig(transactional=True)`` is set.

Each concrete subclass also inherits the builtin exception type that
earlier releases raised from the same site (``ValueError``,
``RuntimeError``, ``FloatingPointError``), so existing ``except``
clauses keep working unchanged.

>>> from repro.errors import ReproError, ValidationError, KernelError
>>> issubclass(ValidationError, ReproError)
True
>>> issubclass(ValidationError, ValueError)     # backwards compatible
True
>>> issubclass(KernelError, RuntimeError)       # backwards compatible
True
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "KernelError",
    "NativeBuildError",
    "NumericalDivergenceError",
    "CheckpointError",
    "EnsembleBindError",
    "SchedulerError",
    "ServeError",
    "ShardError",
]


class ReproError(Exception):
    """Base of every typed error the repro runtime raises.

    Catching this is always sufficient to handle any runtime failure;
    the subclasses exist so callers can *distinguish* failure classes
    (the CLI maps them to distinct exit codes).
    """


class ValidationError(ReproError, ValueError):
    """An input — kernel spec, source text, configuration — is invalid.

    Raised before any execution state exists, so user arrays are
    trivially untouched.  Covers parser/lexer rejections, stencil
    restriction violations, and the resource caps of
    :func:`repro.core.validate.validate_untrusted`.
    """


class KernelError(ReproError, RuntimeError):
    """Executing (or binding) a kernel failed.

    The generic execution-time failure: shape/dtype mismatches caught
    at run time, a statement raising mid-run, a bound task failing.
    """


class NativeBuildError(KernelError):
    """Generating, compiling, or loading a native library failed.

    Sites that can fall back to the python path treat this as a signal
    to do so (warning once); sites that cannot propagate it.
    """


class NumericalDivergenceError(ReproError, FloatingPointError):
    """The opt-in divergence watchdog saw a non-finite value.

    Raised by ``ExecutionConfig(check="nan")`` runs; carries the step
    index and statement that first produced a NaN/Inf.
    """

    def __init__(
        self,
        message: str,
        *,
        step: int | None = None,
        statement: str | None = None,
    ) -> None:
        super().__init__(message)
        self.step = step
        self.statement = statement


class CheckpointError(KernelError):
    """A checkpointed-adjoint sweep failed mid-schedule.

    The plan's user-facing arrays are never written in place (state is
    copied through the internal snapshot pool), and every sweep starts
    by reloading the initial state — so after this error the *next*
    ``adjoint()`` call on the same plan recovers bitwise-identically.
    """


class EnsembleBindError(KernelError):
    """Binding one ensemble member failed.

    Raised at construction time, before any run: member state arrays
    are read (for validation and view construction) but never written,
    so user data is intact.  Names the failing member index.
    """

    def __init__(self, message: str, *, member: int | None = None) -> None:
        super().__init__(message)
        self.member = member


class SchedulerError(KernelError):
    """A scheduled task batch failed.

    Wraps nothing by itself — the scheduler re-raises the *first*
    task's exception directly (typed errors pass through unchanged) —
    but gives cancellation bookkeeping a typed home when the failure
    itself is untyped.
    """


class ShardError(KernelError):
    """A sharded multi-process run failed in a non-recoverable way.

    Raised when a shard worker reports a kernel failure mid-step or its
    pipe closes mid-dispatch — states where some ranks may already have
    advanced, so the documented single-shard degradation (which requires
    a consistent pre-step state) cannot apply.  Names the failing rank.
    A worker found dead *before* dispatch degrades instead: the
    ``shard.worker`` fault point's fallback re-executes on a single
    shard, bitwise-identically.
    """

    def __init__(self, message: str, *, rank: int | None = None) -> None:
        super().__init__(message)
        self.rank = rank


class ServeError(ReproError, RuntimeError):
    """The kernel service could not serve a request.

    Raised by :mod:`repro.runtime.server` / ``.client`` for transport
    and service failures that are not spec-validation problems: framing
    violations, shared-memory segments that cannot be attached, dropped
    connections, request timeouts.  Scoped to the single request that
    failed — batchmates sharing a coalesced ensemble run are never
    poisoned, and the client's arrays are never written on failure.
    """
