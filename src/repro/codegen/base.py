"""Shared infrastructure for code-generation back-ends.

PerforAD is "designed in a modular fashion to simplify the creation of new
front-ends and back-ends" (Section 3.1); this module holds the pieces every
back-end needs: detection of uninterpreted-derivative calls and a common
emitter with indentation management.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import sympy as sp
from sympy.core.function import AppliedUndef

__all__ = ["DerivativeCall", "match_derivative_call", "Emitter", "CodegenError"]


class CodegenError(ValueError):
    """An expression cannot be lowered by this back-end."""


@dataclass(frozen=True)
class DerivativeCall:
    """A partial derivative of an uninterpreted function (Section 3.3.1).

    Printed by back-ends as a call ``<func>_d<argindex>(<args...>)``, to be
    provided externally (hand-written or produced by a general AD tool).
    """

    func_name: str
    argindex: int  # 1-based position of the differentiated argument
    args: tuple[sp.Expr, ...]


def match_derivative_call(expr: sp.Basic) -> DerivativeCall | None:
    """Recognise ``Derivative``/``Subs`` objects over uninterpreted functions.

    SymPy represents ``d f(a, b) / d a`` evaluated at concrete arguments as
    ``Subs(Derivative(f(xi, b), xi), xi, a)`` (or as a plain ``Derivative``
    when the argument is itself a symbol-like access).  Both forms map to
    :class:`DerivativeCall`.
    """
    if isinstance(expr, sp.Subs):
        inner = expr.expr
        if isinstance(inner, sp.Derivative):
            call = inner.expr
            if isinstance(call, AppliedUndef):
                wrt = inner.variables
                if len(wrt) == 1 and wrt[0] in call.args:
                    idx = call.args.index(wrt[0])
                    args = tuple(
                        a.subs(dict(zip(expr.variables, expr.point)))
                        for a in call.args
                    )
                    return DerivativeCall(
                        func_name=call.func.__name__, argindex=idx + 1, args=args
                    )
        return None
    if isinstance(expr, sp.Derivative):
        call = expr.expr
        if isinstance(call, AppliedUndef) and len(expr.variables) == 1:
            wrt = expr.variables[0]
            if wrt in call.args:
                idx = call.args.index(wrt)
                return DerivativeCall(
                    func_name=call.func.__name__,
                    argindex=idx + 1,
                    args=tuple(call.args),
                )
    return None


class Emitter:
    """Indentation-aware line collector used by all back-ends."""

    def __init__(self, indent: str = "  ") -> None:
        self._lines: list[str] = []
        self._indent = indent
        self._level = 0

    def line(self, text: str = "") -> None:
        if text:
            self._lines.append(self._indent * self._level + text)
        else:
            self._lines.append("")

    def push(self) -> None:
        self._level += 1

    def pop(self) -> None:
        if self._level == 0:
            raise RuntimeError("unbalanced indentation pop")
        self._level -= 1

    def code(self) -> str:
        return "\n".join(self._lines) + "\n"
