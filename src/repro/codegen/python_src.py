"""Python/NumPy source back-end.

Generates readable, runnable Python where every loop nest is a set of
vectorised NumPy slice statements — the idiomatic Python rendering of a
stencil loop.  A gather nest like the PerforAD core loop becomes::

    u_1_b[2:n-2, ...] += D*c[3:n-1, ...]*u_b[3:n-1, ...] + ...

Guarded statements are lowered by intersecting the statement's valid box
with the region box (semantically identical to the if-guard, but
vectorisable).  The generated function has the signature
``def <name>(arrays, *, <sizes and scalars>)`` and mutates the arrays in
``arrays`` (a name -> ndarray mapping) in place.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import sympy as sp
from sympy.core.function import AppliedUndef
from sympy.printing.pycode import PythonCodePrinter

from ..core.accesses import extract_access
from ..core.loopnest import LoopNest, Statement
from ..core.strategies import statement_valid_box
from .base import CodegenError, Emitter, match_derivative_call

__all__ = ["generate_python", "print_function_python"]


class _ScalarPrinter(PythonCodePrinter):
    """Prints index/bound expressions (Max/Min -> builtin max/min)."""

    def _print_Max(self, expr):
        return "max(" + ", ".join(self._print(a) for a in expr.args) + ")"

    def _print_Min(self, expr):
        return "min(" + ", ".join(self._print(a) for a in expr.args) + ")"


class _SlicePrinter(PythonCodePrinter):
    """Prints a statement RHS with array accesses rendered as slices.

    ``bounds`` maps each counter to its (lo, hi) *effective* bounds for the
    statement being printed (region bounds, possibly guard-intersected).
    """

    def __init__(self, counters: Sequence[sp.Symbol], bounds: Mapping[sp.Symbol, tuple[sp.Expr, sp.Expr]]):
        super().__init__()
        self._counters = list(counters)
        self._bounds = dict(bounds)
        self._scalar = _ScalarPrinter()

    def _slice_for(self, counter: sp.Symbol, offset: sp.Expr) -> str:
        lo, hi = self._bounds[counter]
        start = self._scalar.doprint(sp.expand(lo + offset))
        stop = self._scalar.doprint(sp.expand(hi + offset + 1))
        return f"{start}:{stop}"

    def _print_AppliedUndef(self, expr: AppliedUndef) -> str:
        pat = extract_access(expr, self._counters)
        parts = [
            self._slice_for(c, o) for c, o in zip(pat.counters, pat.offsets)
        ]
        return f"{pat.name}[{', '.join(parts)}]"

    def _print_Symbol(self, expr: sp.Symbol) -> str:
        if expr in self._counters:
            # Bare counter in the body: broadcastable index vector.
            lo, hi = self._bounds[expr]
            start = self._scalar.doprint(lo)
            stop = self._scalar.doprint(hi + 1)
            d = self._counters.index(expr)
            shape = ["1"] * len(self._counters)
            shape[d] = "-1"
            return f"np.arange({start}, {stop}).reshape({', '.join(shape)})"
        return super()._print_Symbol(expr)

    def _print_Heaviside(self, expr) -> str:
        arg = self._print(expr.args[0])
        return f"np.where({arg} >= 0, 1.0, 0.0)"

    def _print_Max(self, expr) -> str:
        args = [self._print(a) for a in expr.args]
        out = args[0]
        for a in args[1:]:
            out = f"np.maximum({out}, {a})"
        return out

    def _print_Min(self, expr) -> str:
        args = [self._print(a) for a in expr.args]
        out = args[0]
        for a in args[1:]:
            out = f"np.minimum({out}, {a})"
        return out

    def _print_Subs(self, expr) -> str:
        call = match_derivative_call(expr)
        if call is None:
            raise CodegenError(f"cannot lower Subs expression {expr}")
        args = ", ".join(self._print(a) for a in call.args)
        return f"{call.func_name}_d{call.argindex}({args})"

    def _print_Derivative(self, expr) -> str:
        call = match_derivative_call(expr)
        if call is None:
            raise CodegenError(f"cannot lower Derivative {expr}")
        args = ", ".join(self._print(a) for a in call.args)
        return f"{call.func_name}_d{call.argindex}({args})"


def _effective_bounds(
    nest: LoopNest, stmt: Statement
) -> Mapping[sp.Symbol, tuple[sp.Expr, sp.Expr]]:
    """Region bounds, intersected with the guard's valid box if present."""
    if stmt.guard is None:
        return nest.bounds
    box = _guard_box(stmt.guard, nest.counters)
    out = {}
    for c in nest.counters:
        rlo, rhi = nest.bounds[c]
        if c in box:
            glo, ghi = box[c]
            out[c] = (sp.Max(rlo, glo), sp.Min(rhi, ghi))
        else:
            out[c] = (rlo, rhi)
    return out


def _guard_box(
    guard: sp.Basic, counters: Sequence[sp.Symbol]
) -> dict[sp.Symbol, tuple[sp.Expr | None, sp.Expr | None]]:
    """Extract per-counter interval constraints from a guard condition."""
    conds = list(guard.args) if isinstance(guard, sp.And) else [guard]
    lo: dict[sp.Symbol, sp.Expr] = {}
    hi: dict[sp.Symbol, sp.Expr] = {}
    for cond in conds:
        if isinstance(cond, sp.Ge) and cond.lhs in counters:
            c = cond.lhs
            lo[c] = sp.Max(lo[c], cond.rhs) if c in lo else cond.rhs
        elif isinstance(cond, sp.Le) and cond.lhs in counters:
            c = cond.lhs
            hi[c] = sp.Min(hi[c], cond.rhs) if c in hi else cond.rhs
        else:
            raise CodegenError(f"unsupported guard condition {cond}")
    out: dict[sp.Symbol, tuple[sp.Expr, sp.Expr]] = {}
    for c in set(lo) | set(hi):
        if c not in lo or c not in hi:
            raise CodegenError(f"guard must bound counter {c} on both sides")
        out[c] = (lo[c], hi[c])
    return out


def generate_python(
    name: str,
    nests: Sequence[LoopNest],
    docstring: str | None = None,
) -> str:
    """Generate the Python/NumPy source for a list of loop nests."""
    em = Emitter(indent="    ")
    nests = list(nests)
    scalar_names: list[str] = []
    array_names: list[str] = []
    for nest in nests:
        for s in list(nest.size_symbols()) + list(nest.scalar_parameters()):
            if str(s) not in scalar_names:
                scalar_names.append(str(s))
        for a in nest.written_arrays() + nest.read_arrays():
            if a not in array_names:
                array_names.append(a)
    scalar_names.sort()
    em.line("import numpy as np")
    em.line()
    em.line()
    kw = (", *, " + ", ".join(scalar_names)) if scalar_names else ""
    em.line(f"def {name}(arrays{kw}):")
    em.push()
    if docstring:
        em.line(f'"""{docstring}"""')
    for a in array_names:
        em.line(f"{a} = arrays['{a}']")
    scalar = _ScalarPrinter()
    for nest in nests:
        em.line()
        if nest.name:
            em.line(f"# {nest.name}")
        # Skip empty regions at runtime (small grids).
        conds = []
        for c in nest.counters:
            lo, hi = nest.bounds[c]
            conds.append(f"({scalar.doprint(lo)}) <= ({scalar.doprint(hi)})")
        em.line(f"if {' and '.join(conds)}:")
        em.push()
        for stmt in nest.statements:
            eff = _effective_bounds(nest, stmt)
            printer = _SlicePrinter(nest.counters, eff)
            pat = extract_access(stmt.lhs, nest.counters)
            tsl = ", ".join(
                printer._slice_for(c, o) for c, o in zip(pat.counters, pat.offsets)
            )
            rhs = printer.doprint(stmt.rhs)
            op = "+=" if stmt.op == "+=" else "="
            em.line(f"{pat.name}[{tsl}] {op} {rhs}")
        em.pop()
    em.pop()
    return em.code()


def print_function_python(
    name: str, nests: Sequence[LoopNest], docstring: str | None = None
) -> str:
    """PerforAD's ``printfunction`` for the Python/NumPy back-end."""
    return generate_python(name, nests, docstring=docstring)
