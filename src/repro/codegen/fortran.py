"""Fortran back-end with OpenMP directives.

The paper presents PerforAD's back-ends as pluggable ("for example, to
print Fortran or C code", Section 3.1); this module provides the Fortran
printer.  Arrays are declared assumed-shape; loops carry
``!$omp parallel do`` on the outermost level.
"""

from __future__ import annotations

from typing import Sequence

import sympy as sp
from sympy.core.function import AppliedUndef
from sympy.printing.fortran import FCodePrinter

from ..core.loopnest import LoopNest
from ..ir import Assign, Block, Comment, Function, Guard, Loop, Node, function_from_nests
from .base import CodegenError, Emitter, match_derivative_call

__all__ = ["FortranPrinter", "generate_fortran", "print_function_fortran"]


class FortranPrinter(FCodePrinter):
    """SymPy Fortran printer extended for stencil arrays and AD forms."""

    def __init__(self) -> None:
        super().__init__({"source_format": "free", "standard": 2008})

    def _print_AppliedUndef(self, expr: AppliedUndef) -> str:
        name = expr.func.__name__
        idx = ", ".join(self._print(a) for a in expr.args)
        return f"{name}({idx})"

    def _print_Heaviside(self, expr: sp.Heaviside) -> str:
        arg = self._print(expr.args[0])
        return f"merge(1.0d0, 0.0d0, {arg} >= 0)"

    def _print_Subs(self, expr: sp.Subs) -> str:
        call = match_derivative_call(expr)
        if call is None:
            raise CodegenError(f"cannot lower Subs expression {expr} to Fortran")
        args = ", ".join(self._print(a) for a in call.args)
        return f"{call.func_name}_d{call.argindex}({args})"

    def _print_Derivative(self, expr: sp.Derivative) -> str:
        call = match_derivative_call(expr)
        if call is None:
            raise CodegenError(f"cannot lower Derivative {expr} to Fortran")
        args = ", ".join(self._print(a) for a in call.args)
        return f"{call.func_name}_d{call.argindex}({args})"


def _cond_str(printer: FortranPrinter, cond: sp.Basic) -> str:
    if isinstance(cond, sp.And):
        return " .and. ".join(f"({printer.doprint(a)})" for a in cond.args)
    return printer.doprint(cond)


class _FEmitter:
    def __init__(self) -> None:
        self.printer = FortranPrinter()
        self.em = Emitter(indent="  ")

    def emit(self, node: Node) -> None:
        if isinstance(node, Comment):
            self.em.line(f"! {node.text}")
        elif isinstance(node, Block):
            for child in node.body:
                self.emit(child)
        elif isinstance(node, Guard):
            self.em.line(f"if ({_cond_str(self.printer, node.condition)}) then")
            self.em.push()
            for child in node.body:
                self.emit(child)
            self.em.pop()
            self.em.line("end if")
        elif isinstance(node, Loop):
            if node.parallel:
                private = ",".join(str(c) for c in node.private) or str(node.counter)
                self.em.line(f"!$omp parallel do private({private})")
            c = node.counter
            lo = self.printer.doprint(node.lower)
            hi = self.printer.doprint(node.upper)
            self.em.line(f"do {c} = {lo}, {hi}")
            self.em.push()
            for child in node.body:
                self.emit(child)
            self.em.pop()
            self.em.line("end do")
            if node.parallel:
                self.em.line("!$omp end parallel do")
        elif isinstance(node, Assign):
            idx = ", ".join(self.printer.doprint(a) for a in node.indices)
            rhs = self.printer.doprint(node.rhs)
            target = f"{node.target}({idx})"
            if node.op == "+=":
                self.em.line(f"{target} = {target} + ({rhs})")
            else:
                self.em.line(f"{target} = {rhs}")
        else:
            raise CodegenError(f"unknown IR node {node!r}")


def generate_fortran(func: Function) -> str:
    """Generate a complete Fortran subroutine from an IR function."""
    gen = _FEmitter()
    all_args = (
        list(func.array_ranks)
        + [str(s) for s in func.scalars]
        + [str(s) for s in func.sizes]
    )
    gen.em.line(f"subroutine {func.name}({', '.join(all_args)})")
    gen.em.push()
    gen.em.line("implicit none")
    for name, rank in func.array_ranks.items():
        dims = ", ".join(":" for _ in range(rank))
        gen.em.line(f"real(kind=8), dimension({dims}) :: {name}")
    for s in func.scalars:
        gen.em.line(f"real(kind=8) :: {s}")
    for s in func.sizes:
        gen.em.line(f"integer :: {s}")
    counters = sorted(
        {str(n.counter) for n in _walk(func.body) if isinstance(n, Loop)}
    )
    if counters:
        gen.em.line(f"integer :: {', '.join(counters)}")
    for node in func.body:
        gen.emit(node)
    gen.em.pop()
    gen.em.line(f"end subroutine {func.name}")
    return gen.em.code()


def _walk(nodes: Sequence[Node]):
    for node in nodes:
        yield node
        if isinstance(node, (Block, Guard, Loop)):
            yield from _walk(node.body)


def print_function_fortran(
    name: str,
    nests: Sequence[LoopNest],
    parallel: bool = True,
    unroll_single: bool = True,
) -> str:
    """PerforAD's ``printfunction`` for the Fortran back-end."""
    func = function_from_nests(name, nests, parallel=parallel, unroll_single=unroll_single)
    return generate_fortran(func)
