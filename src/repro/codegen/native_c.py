"""Native-backend C lowering: compiled statements -> bitwise-exact C.

The other back-ends in this package print *symbolic* loop nests for a
human (or an external compiler) to take away.  This module instead
lowers the runtime's *compiled* statements — concrete per-statement
iteration boxes, guard-intersected by the execution plan, with the
placeholder-substituted RHS the NumPy path evaluates — into a C
translation unit that the native execution backend
(:mod:`repro.runtime.native`) JIT-builds with ``cc`` and calls through
``ctypes``.

Bitwise identity with the NumPy path is the design constraint, not an
aspiration: the generated C must produce, element for element, the very
bits the ``lambdify``-generated NumPy code produces.  That rules out
naive translation and dictates every printing rule here:

* Only constructs whose NumPy evaluation is reproducible by scalar
  IEEE-754 C code are lowered (:func:`native_eligibility`).  ``x**2``
  is ``x*x`` in NumPy's pow loop and in C; ``x**3`` is *neither*
  ``x*x*x`` nor libm ``pow`` bitwise, so it stays on the Python path.
* Rationals are printed as the correctly-rounded double the generated
  Python computes at run time (``(1/3)`` -> ``0.3333333333333333``),
  never as a C division ``x/3`` of a different shape.
* ``Max``/``Min`` replicate ``np.maximum``/``np.minimum`` exactly,
  including NaN propagation and the tie-breaking to the *second*
  operand that decides the sign of zero results.
* For ``float32`` kernels every constant is cast to ``real`` before
  use, matching NumPy's weak-scalar promotion (the whole C expression
  must evaluate in ``float``, not be promoted to ``double``).
* The build layer compiles with ``-ffp-contract=off`` so the compiler
  cannot fuse multiply-adds the NumPy path performs as two roundings.

The emitted calling convention is uniform for every statement::

    void <name>(char **ptrs, const int64_t *geom);

``ptrs`` holds the target array's data pointer followed by one pointer
per read access; ``geom`` packs the inclusive per-axis bounds followed
by per-slot element strides for the target and each read.  A statement
function runs its full loop nest over the box.  Each translation unit
also contains one chain runner that executes a sequence of statement
calls in a single C entry, so a steady-state timestep costs one FFI
crossing instead of one per statement.
"""

from __future__ import annotations

from typing import Sequence

import sympy as sp
from sympy.printing.numpy import NumPyPrinter
from sympy.simplify.cse_main import cse as _cse

from ..core.fusion import parallel_safe_group
from .base import CodegenError, Emitter
from .c import CPrinter

# The printer class lambdify uses; consulted for its Float literal text
# so native constants match the generated Python's parsed values bit for
# bit (see NativeCPrinter._print_Float).
_LAMBDIFY_PRINTER = NumPyPrinter()

__all__ = [
    "NativeCPrinter",
    "native_eligibility",
    "parallel_eligibility",
    "generate_native_source",
    "generate_fused_source",
    "CHAIN_RUNNER_NAME",
    "FUSED_FN_NAME",
    "NATIVE_ABI_VERSION",
]

# Bumped whenever the generated code's ABI or semantics change; folded
# into the shared-object disk-cache key by the runtime build layer.
NATIVE_ABI_VERSION = 1

CHAIN_RUNNER_NAME = "repro_run_chain"

FUSED_FN_NAME = "repro_fused"

_REAL_OF_DTYPE = {"float64": "double", "float32": "float"}

# Pow exponents with a known bitwise-exact C form (see module docstring;
# each is empirically verified against NumPy in tests/test_native_backend.py).
_POW_SQUARE = sp.Integer(2)
_POW_RECIP = sp.Integer(-1)
_POW_SQRT = sp.Rational(1, 2)
_POW_RSQRT = sp.Rational(-1, 2)
_ALLOWED_POW_EXPONENTS = (_POW_SQUARE, _POW_RECIP, _POW_SQRT, _POW_RSQRT)


class NativeCPrinter(CPrinter):
    """C printer mirroring the lambdify/NumPy evaluation bit for bit.

    ``symbol_map`` resolves the two symbol kinds a compiled RHS contains:
    ``__accN`` placeholders map to indexed array-access strings and bare
    loop counters map to ``((real)iD)`` casts of the loop variables.
    Anything outside :func:`native_eligibility`'s whitelist raises
    :class:`~repro.codegen.base.CodegenError` — the runtime never prints
    an ineligible statement, so a raise here marks a gating bug.
    """

    def __init__(self, symbol_map: dict[sp.Symbol, str], real: str = "double"):
        super().__init__()
        self._symbol_map = symbol_map
        self._real = real

    # -- leaves -----------------------------------------------------------

    def _print_Symbol(self, expr: sp.Symbol) -> str:
        mapped = self._symbol_map.get(expr)
        if mapped is None:
            raise CodegenError(f"unmapped symbol {expr} in native lowering")
        return mapped

    def _const(self, value: float) -> str:
        # repr() round-trips the double exactly; the cast keeps float32
        # expressions in float32 throughout (NumPy's weak-scalar rule).
        return f"(({self._real}){value!r})"

    def _print_Float(self, expr: sp.Float) -> str:
        # The value the NumPy path computes with is NOT the symbolic
        # Float: lambdify prints floats at 15 significant digits and the
        # generated code re-parses that decimal (0.19999999999999996
        # round-trips through "0.2" to 0.2).  Reproduce exactly that
        # print-and-reparse, then emit the resulting double verbatim.
        return self._const(float(_LAMBDIFY_PRINTER.doprint(expr)))

    def _print_Rational(self, expr: sp.Rational) -> str:
        # The generated Python evaluates `p/q` at run time: one correctly
        # rounded division of exact integers.  Bake in that very double.
        return self._const(expr.p / expr.q)

    def _print_Integer(self, expr: sp.Integer) -> str:
        # Integers are exact in both paths; plain literals keep the C
        # readable.  They participate in real arithmetic by promotion,
        # which is value-exact for the int64-range magnitudes ruled
        # eligible.
        return str(int(expr))

    def _print_NumberSymbol(self, expr) -> str:
        return self._const(float(expr))

    _print_Exp1 = _print_NumberSymbol
    _print_Pi = _print_NumberSymbol

    # -- operators --------------------------------------------------------

    def _print_Pow(self, expr: sp.Pow) -> str:
        base = self._print(expr.base)
        exp = expr.exp
        if exp == _POW_SQUARE:
            # np.power's pow loop special-cases exponent 2 as x*x.
            return f"({base}*{base})"
        if exp == _POW_RECIP:
            # np.power(x, -1) is 1/x; sympy's Mul printer routes plain
            # divisions elsewhere, so this only fires for bare x**-1.
            return f"((({self._real})1.0)/{base})"
        if exp == _POW_SQRT:
            return f"{self._sqrt_fn()}({base})"
        if exp == _POW_RSQRT:
            return f"((({self._real})1.0)/{self._sqrt_fn()}({base}))"
        raise CodegenError(
            f"pow exponent {exp} has no bitwise-exact native lowering"
        )

    def _sqrt_fn(self) -> str:
        # sqrtf for float32: double sqrt + truncation would double-round.
        return "sqrt" if self._real == "double" else "sqrtf"

    def _print_Max(self, expr: sp.Max) -> str:
        return self._fold_minmax(expr.args, ">")

    def _print_Min(self, expr: sp.Min) -> str:
        return self._fold_minmax(expr.args, "<")

    def _fold_minmax(self, args: Sequence[sp.Expr], cmp: str) -> str:
        # lambdify prints Max(a, b, c) as reduce(np.maximum, [a, b, c]):
        # a left fold of the binary ufunc.  np.maximum is
        # (a > b || isnan(a)) ? a : b — strict comparison, ties take the
        # *second* operand (so maximum(0.0, -0.0) is -0.0), NaNs
        # propagate with their payload.  np.minimum mirrors with '<'.
        acc = self._print(args[0])
        for arg in args[1:]:
            b = self._print(arg)
            acc = f"((({acc} {cmp} {b}) || ({acc} != {acc})) ? {acc} : {b})"
        return acc

    def _print_Heaviside(self, expr: sp.Heaviside) -> str:
        # Matches the runtime's NumPy fallback np.where(x >= 0, 1.0, 0.0)
        # (paper semantics H(0) = 1); the optional second sympy argument
        # is ignored by both paths.
        arg = self._print(expr.args[0])
        one, zero = self._const(1.0), self._const(0.0)
        return f"(({arg} >= (({self._real})0.0)) ? {one} : {zero})"


# -- eligibility ---------------------------------------------------------------


def _expr_eligible(expr: sp.Expr, dtype_name: str) -> str | None:
    """None when *expr* lowers bitwise-exactly, else a human reason."""
    for node in sp.preorder_traversal(expr):
        if isinstance(node, (sp.Add, sp.Mul, sp.Symbol)):
            continue
        if isinstance(node, sp.Integer):
            # Bare C literals must stay exactly representable through
            # the promotion to real (and must compile at all).
            if abs(int(node)) > 2**53:
                return f"integer constant {node} exceeds exact double range"
            continue
        if isinstance(node, (sp.Rational, sp.Float, sp.NumberSymbol)):
            continue
        if isinstance(node, sp.Pow):
            if node.exp not in _ALLOWED_POW_EXPONENTS:
                return f"pow exponent {node.exp} not bitwise-reproducible"
            continue
        if isinstance(node, (sp.Max, sp.Min)):
            # The ternary lowering prints each folded operand three
            # times, so the emitted text grows ~3^(k-1): keep the
            # binary form (all the upwinding stencils) and leave wider
            # folds to the Python path.
            if len(node.args) != 2:
                return f"{type(node).__name__} with {len(node.args)} args"
            continue
        if isinstance(node, sp.Heaviside):
            if dtype_name != "float64":
                # The NumPy fallback np.where(x >= 0, 1.0, 0.0) yields a
                # float64 array even for float32 operands, so the rest of
                # the statement silently computes in double — semantics a
                # pure-float32 C loop cannot reproduce.
                return "Heaviside promotes float32 statements to float64"
            continue
        return f"{type(node).__name__} has no bitwise-exact native lowering"
    return None


def native_eligibility(stmt, dim: int, dtype) -> str | None:
    """Why *stmt* cannot run natively, or None when it can.

    *stmt* is a :class:`~repro.runtime.compiler.CompiledStatement`
    (duck-typed to keep this module import-light).  The checks encode
    exactly the NumPy-semantics guarantees of the generated C:

    * the target must cover every frame axis once — reduced (``sum``)
      and broadcast-select targets use NumPy pairwise/broadcast
      semantics a sequential C loop does not reproduce;
    * reads may not use one frame axis in two slots (NumPy builds an
      outer-product view there, not a diagonal);
    * reads of the *target array itself* must use the target's exact
      slots, otherwise the fused C loop would observe freshly written
      elements the NumPy gather/assign never sees;
    * the RHS expression must pass the bitwise whitelist;
    * the kernel dtype must be float64 or float32.
    """
    dtype_name = getattr(dtype, "__name__", None) or str(dtype)
    if dtype_name not in _REAL_OF_DTYPE:
        return f"dtype {dtype_name} unsupported by the native backend"
    target_axes = [axis for axis, _ in stmt.target.slots]
    if sorted(target_axes) != list(range(dim)):
        return "target does not cover each frame axis exactly once"
    for acc in stmt.reads:
        axes = [axis for axis, _ in acc.slots]
        if len(set(axes)) != len(axes):
            return f"read {acc.name} repeats a frame axis (outer-product view)"
        if acc.name == stmt.target.name and acc.slots != stmt.target.slots:
            return f"read of target array {acc.name} at shifted offsets"
    if stmt.op not in ("=", "+="):
        return f"unsupported statement op {stmt.op!r}"
    if stmt.rhs_expr is None:
        return "statement carries no symbolic RHS"
    return _expr_eligible(stmt.rhs_expr, dtype_name)


def parallel_eligibility(stmt, dim: int) -> str | None:
    """Why *stmt*'s loop nest cannot partition axis 0 across threads.

    The source paper's central property — gather-form (transformed)
    adjoints write each output element from exactly one iteration — is
    what makes native statements thread-safe *without* atomics or
    private scratch: the target covers every frame axis exactly once
    (enforced by :func:`native_eligibility`), so the iteration-to-
    element map is injective and contiguous blocks of the outermost
    axis write disjoint elements, for ``=`` and ``+=`` alike.  Reads of
    the target itself are pinned to the exact target slots (same
    gate), so no iteration observes another iteration's write.  The
    partition therefore reproduces the serial per-element arithmetic
    bit for bit — determinism by construction, not by merge order.

    The checks restate those invariants defensively: a statement that
    ever slipped past the native gate with a non-injective target (or a
    frameless nest) must run serial, statement-wise, like every other
    native fallback.
    """
    if dim < 1:
        return "zero-dimensional nest has no axis to partition"
    target_axes = sorted(axis for axis, _ in stmt.target.slots)
    if target_axes != list(range(dim)):
        return "target writes are not injective over the frame"
    for acc in stmt.reads:
        if acc.name == stmt.target.name and acc.slots != stmt.target.slots:
            return "shifted self-read could observe another thread's write"
    return None


# -- source generation ---------------------------------------------------------


def _omp_for(nthreads: int) -> str:
    """The pragma placed on a partitionable outermost loop.

    ``schedule(static)`` assigns contiguous iteration blocks; the exact
    split does not affect results (each element's arithmetic is a fixed
    scalar sequence computed by exactly one thread), it only keeps the
    memory traffic streaming.  The thread count is baked so the build
    cache key captures the threading mode through the source text.
    """
    return f"#pragma omp parallel for schedule(static) num_threads({nthreads})"


def _access_index(slots, strides_base: int) -> str:
    """C index expression for an access: sum of (counter+offset)*stride."""
    if not slots:
        return "0"
    terms = []
    for k, (axis, off) in enumerate(slots):
        counter = f"i{axis}"
        pos = counter if off == 0 else f"({counter} + ({off}))"
        terms.append(f"{pos}*geom[{strides_base + k}]")
    return " + ".join(terms)


def generate_native_source(
    kernel, nthreads: int = 1
) -> tuple[str, dict[tuple[int, int], str]]:
    """Lower *kernel*'s eligible statements to one C translation unit.

    *kernel* is a :class:`~repro.runtime.compiler.CompiledKernel`
    (duck-typed).  Returns ``(source, manifest)`` where ``manifest``
    maps ``(region_index, statement_index)`` to the emitted function
    name.  Ineligible statements are simply absent — the runtime keeps
    them on the Python path.  The unit always contains the chain runner,
    even when no statement is eligible.

    With ``nthreads > 1`` each statement passing
    :func:`parallel_eligibility` gets an OpenMP ``parallel for`` on its
    outermost loop (the build layer adds ``-fopenmp`` after probing the
    compiler); ineligible statements keep their serial nest in the same
    unit.  The chain runner stays a serial loop over statement calls —
    each call is internally parallel and the implicit barrier at the
    end of its parallel region preserves statement order, so the
    results are bitwise identical to the serial build at any thread
    count.
    """
    em = Emitter(indent="  ")
    em.line("/* Generated by repro.codegen.native_c — do not edit. */")
    em.line(f"/* ABI v{NATIVE_ABI_VERSION}, kernel {kernel.name!r} */")
    if nthreads > 1:
        em.line(f"/* threaded variant: {nthreads} OpenMP threads */")
    em.line("#include <stdint.h>")
    em.line("#include <math.h>")
    em.line()
    # geom layout per statement: [lo0, hi0, ..., lo{d-1}, hi{d-1},
    #   target slot strides..., read0 slot strides..., read1 ...]
    # with all strides in elements, not bytes.
    manifest: dict[tuple[int, int], str] = {}
    counters = kernel.counters
    for ri, region in enumerate(kernel.regions):
        dim = len(counters)
        real = _REAL_OF_DTYPE.get(
            getattr(region.dtype, "__name__", None) or str(region.dtype)
        )
        for si, stmt in enumerate(region.statements):
            if native_eligibility(stmt, dim, region.dtype) is not None:
                continue
            name = f"repro_s{ri}_{si}"
            symbol_map: dict[sp.Symbol, str] = {}
            strides_base = 2 * dim + len(stmt.target.slots)
            for idx, acc in enumerate(stmt.reads):
                expr = f"r{idx}[{_access_index(acc.slots, strides_base)}]"
                symbol_map[sp.Symbol(f"__acc{idx}")] = expr
                strides_base += len(acc.slots)
            for axis in stmt.bare_axes:
                symbol_map[counters[axis]] = f"(({real})i{axis})"
            printer = NativeCPrinter(symbol_map, real=real)
            # The Python path's eval_fn is lambdified with cse=True, and
            # CSE substitution can *regroup* a product (x0 = 0.2*Min(...)
            # pulls the third factor ahead of the second), changing the
            # rounding sequence.  Run the identical CSE pass and emit its
            # temporaries as locals so the C performs the same ops in
            # the same order as the generated Python, not as the
            # pre-CSE expression tree.
            cses, reduced = _cse(stmt.rhs_expr, list=False)
            try:
                temp_lines = []
                for sym, sub in cses:
                    temp_lines.append(
                        f"const {real} {sym} = {printer.doprint(sub)};"
                    )
                    symbol_map[sym] = str(sym)
                rhs = printer.doprint(reduced)
            except CodegenError:
                continue  # defensive: printer found something the gate missed
            self_alias = any(acc.name == stmt.target.name for acc in stmt.reads)
            restrict = "" if self_alias else "restrict "
            em.line(f"void {name}(char **ptrs, const int64_t *geom) {{")
            em.push()
            em.line(f"{real} *{restrict}t = ({real} *)ptrs[0];")
            for idx in range(len(stmt.reads)):
                em.line(
                    f"const {real} *r{idx} = (const {real} *)ptrs[{idx + 1}];"
                )
            threaded = (
                nthreads > 1 and parallel_eligibility(stmt, dim) is None
            )
            for axis in range(dim):
                if axis == 0 and threaded:
                    em.line(_omp_for(nthreads))
                em.line(
                    f"for (int64_t i{axis} = geom[{2 * axis}]; "
                    f"i{axis} <= geom[{2 * axis + 1}]; ++i{axis}) {{"
                )
                em.push()
            for line in temp_lines:
                em.line(line)
            op = "+=" if stmt.op == "+=" else "="
            em.line(
                f"t[{_access_index(stmt.target.slots, 2 * dim)}] {op} {rhs};"
            )
            for _ in range(dim):
                em.pop()
                em.line("}")
            em.pop()
            em.line("}")
            em.line()
            manifest[(ri, si)] = name
    em.line("typedef void (*repro_stmt_fn)(char **, const int64_t *);")
    em.line()
    em.line(
        f"void {CHAIN_RUNNER_NAME}(int64_t n, void **fns, char ***ptrss, "
        "const int64_t **geoms) {"
    )
    em.push()
    em.line("for (int64_t k = 0; k < n; ++k) {")
    em.push()
    em.line("((repro_stmt_fn)fns[k])(ptrss[k], geoms[k]);")
    em.pop()
    em.line("}")
    em.pop()
    em.line("}")
    return em.code(), manifest


# -- fused-group generation ----------------------------------------------------


def _baked_index(slots, strides: Sequence[int]) -> str:
    """C index expression with the element strides baked as literals."""
    terms = []
    for (axis, off), stride in zip(slots, strides):
        pos = f"i{axis}" if off == 0 else f"(i{axis} + ({off}))"
        terms.append(pos if stride == 1 else f"{pos}*{stride}")
    return " + ".join(terms) if terms else "0"


def generate_fused_source(
    entries: Sequence,
    arrays,
    counters: Sequence[sp.Symbol],
    nthreads: int = 1,
) -> tuple[str, str, tuple[str, ...]]:
    """Lower one fused statement group to a single C loop nest.

    *entries* are :class:`repro.core.fusion.FusionEntry` objects whose
    legality :func:`repro.core.fusion.plan_groups` has already
    established; *arrays* maps array names to the concrete ndarrays the
    group is being bound against.  Returns ``(source, function_name,
    ptr_order)`` where ``ptr_order`` names the distinct arrays in the
    order the function expects their data pointers.

    Unlike the per-statement functions — which read bounds and strides
    from ``geom`` at run time so one build serves every binding — the
    fused nest **bakes boxes and element strides as compile-time
    constants**.  The function is built per binding geometry (the
    runtime's content key covers it), and the constants are what let
    the compiler vectorise and unroll the merged loop: the fusion win
    on a memory-bound timestep comes from this codegen quality as much
    as from touching each row once.

    Execution shape: the nest iterates the union box on the outer axes;
    at each outer point, maximal runs of entries with *equal* boxes
    execute point-interleaved in one inner loop (with values a member
    writes and a later member re-reads at the very same point forwarded
    through a local instead of a reload), and runs with differing boxes
    execute as consecutive inner loops guarded to their own outer
    ranges.  Both shapes respect the pairwise lexicographic dependence
    conditions checked by the fusion planner.

    The bitwise contract is unchanged: the same CSE replay, constant
    printing, Min/Max ternaries and float32 casts as the per-statement
    emitter, and the build layer keeps ``-ffp-contract=off``.  A
    statement the printer cannot lower raises
    :class:`~repro.codegen.base.CodegenError`; the runtime treats that
    as a per-group fallback.

    With ``nthreads > 1`` the nest's outermost loop gets an OpenMP
    ``parallel for`` — but only when the group's cross-statement
    dependences all stay within an outer row
    (:func:`~repro.core.fusion.parallel_safe_group`) and an outer loop
    exists (``dim >= 2``; a 1-D fused nest interleaves along its only
    axis, so partitioning it would hand one statement's producer row to
    another thread).  An unsafe or 1-D group keeps its serial nest:
    still fused, still bitwise-identical, just not thread-partitioned.
    """
    first = entries[0]
    dim = first.dim
    real = _REAL_OF_DTYPE.get(first.dtype)
    if real is None:
        raise CodegenError(f"dtype {first.dtype} unsupported by fusion")
    itemsize = {"double": 8, "float": 4}[real]

    order: list[str] = []
    written: set[str] = set()
    for entry in entries:
        st = entry.stmt
        for name in (st.target.name, *(acc.name for acc in st.reads)):
            if name not in order:
                order.append(name)
        written.add(st.target.name)
    slot_of = {name: k for k, name in enumerate(order)}
    elem_strides = {
        name: tuple(s // itemsize for s in arrays[name].strides)
        for name in order
    }
    union = tuple(
        (
            min(entry.box[a][0] for entry in entries),
            max(entry.box[a][1] for entry in entries),
        )
        for a in range(dim)
    )

    # Maximal runs of equal boxes become point-interleaved chunks.
    chunks: list[list[int]] = []
    for k, entry in enumerate(entries):
        if chunks and entries[chunks[-1][-1]].box == entry.box:
            chunks[-1].append(k)
        else:
            chunks.append([k])

    threaded = (
        nthreads > 1 and dim >= 2 and parallel_safe_group(entries) is None
    )
    em = Emitter(indent="  ")
    em.line("/* Generated by repro.codegen.native_c (fused) — do not edit. */")
    em.line(f"/* ABI v{NATIVE_ABI_VERSION}, {len(entries)}-statement group */")
    if threaded:
        em.line(f"/* threaded variant: {nthreads} OpenMP threads */")
    em.line("#include <stdint.h>")
    em.line("#include <math.h>")
    em.line()
    em.line(f"void {FUSED_FN_NAME}(char **ptrs, const int64_t *geom) {{")
    em.push()
    em.line("(void)geom;  /* bounds and strides are baked below */")
    for k, name in enumerate(order):
        qual = "" if name in written else "const "
        em.line(f"{qual}{real} *restrict a{k} = ({qual}{real} *)ptrs[{k}];")
    for axis in range(dim - 1):
        lo, hi = union[axis]
        if axis == 0 and threaded:
            em.line(_omp_for(nthreads))
        em.line(
            f"for (int64_t i{axis} = {lo}; i{axis} <= {hi}; ++i{axis}) {{"
        )
        em.push()

    inner = dim - 1
    for chunk in chunks:
        box = entries[chunk[0]].box
        conds = []
        for axis in range(dim - 1):
            lo, hi = box[axis]
            ulo, uhi = union[axis]
            if lo > ulo:
                conds.append(f"i{axis} >= {lo}")
            if hi < uhi:
                conds.append(f"i{axis} <= {hi}")
        if conds:
            em.line(f"if ({' && '.join(conds)}) {{")
            em.push()
        lo, hi = box[inner]
        em.line('_Pragma("GCC unroll 8")')
        em.line(f"for (int64_t i{inner} = {lo}; i{inner} <= {hi}; ++i{inner}) {{")
        em.push()
        # Same-point value forwarding: (name, slots) -> local C variable
        # holding the value most recently stored there at this point.
        forwarded: dict[tuple[str, tuple], str] = {}
        for k in chunk:
            st = entries[k].stmt
            symbol_map: dict[sp.Symbol, str] = {}
            for idx, acc in enumerate(st.reads):
                load = forwarded.get((acc.name, acc.slots))
                if load is None:
                    load = (
                        f"a{slot_of[acc.name]}"
                        f"[{_baked_index(acc.slots, elem_strides[acc.name])}]"
                    )
                symbol_map[sp.Symbol(f"__acc{idx}")] = load
            for axis in st.bare_axes:
                symbol_map[counters[axis]] = f"(({real})i{axis})"
            printer = NativeCPrinter(symbol_map, real=real)
            cses, reduced = _cse(st.rhs_expr, list=False)
            for sym, sub in cses:
                em.line(f"const {real} f{k}_{sym} = {printer.doprint(sub)};")
                symbol_map[sym] = f"f{k}_{sym}"
            rhs = printer.doprint(reduced)
            tname = st.target.name
            tref = (
                f"a{slot_of[tname]}"
                f"[{_baked_index(st.target.slots, elem_strides[tname])}]"
            )
            if len(chunk) == 1:
                op = "+=" if st.op == "+=" else "="
                em.line(f"{tref} {op} {rhs};")
            else:
                if st.op == "+=":
                    tload = forwarded.get((tname, st.target.slots), tref)
                    value = f"{tload} + ({rhs})"
                else:
                    value = rhs
                em.line(f"const {real} v{k} = {value};")
                em.line(f"{tref} = v{k};")
                w_axes = tuple(axis for axis, _ in st.target.slots)
                for key in list(forwarded):
                    if key[0] != tname:
                        continue
                    if tuple(axis for axis, _ in key[1]) != w_axes:
                        # A write through a different slot-axis map could
                        # hit any cached location; drop conservatively.
                        del forwarded[key]
                forwarded[(tname, st.target.slots)] = f"v{k}"
        em.pop()
        em.line("}")
        if conds:
            em.pop()
            em.line("}")
    for _ in range(dim - 1):
        em.pop()
        em.line("}")
    em.pop()
    em.line("}")
    return em.code(), FUSED_FN_NAME, tuple(order)
