"""CUDA back-end (the paper's "future work" GPU target).

Generates one ``__global__`` kernel per loop nest plus a host launcher.
The mapping follows standard stencil-on-GPU practice: the innermost (most
contiguous) counter maps to ``threadIdx.x`` for coalesced access, outer
counters to the remaining thread/block dimensions; every thread guards
against running past the inclusive upper bound.  Because the adjoint
stencil nests have disjoint iteration spaces (Section 3.3.4), the
launcher can issue all region kernels without intermediate
synchronisation — the GPU translation of "no additional synchronisation
barriers"; the generated launcher notes where a single final
``cudaDeviceSynchronize`` suffices.

Arrays are flat ``double*`` with row-major indexing macros; as in the
paper's test cases all arrays of a nest share the cubic extent ``n + 1``
per dimension.  Single-iteration remainder nests are emitted inside the
launcher as 1-thread kernels would be wasteful; they are folded into a
single "remainders" kernel over their own small index space, or, for the
unrolled scalar statements, executed in a trivial ``<<<1, 1>>>`` launch.
"""

from __future__ import annotations

from typing import Sequence

import sympy as sp
from sympy.core.function import AppliedUndef

from ..core.accesses import classify_applied
from ..core.loopnest import LoopNest
from ..core.symbols import array_name
from .base import CodegenError, Emitter, match_derivative_call
from .c import CPrinter

__all__ = ["CudaPrinter", "print_function_cuda"]

_AXES = ("x", "y", "z")


class CudaPrinter(CPrinter):
    """C printer with flat row-major array indexing for device code."""

    def __init__(self, ranks: dict[str, int], extent: str = "(n + 1)"):
        super().__init__()
        self._ranks = ranks
        self._extent = extent

    def _print_AppliedUndef(self, expr: AppliedUndef) -> str:
        name = expr.func.__name__
        args = [self._print(a) for a in expr.args]
        if len(args) == 1:
            idx = args[0]
        else:
            # Row-major: ((i)*E + j)*E + k ...
            idx = args[0]
            for a in args[1:]:
                idx = f"({idx})*{self._extent} + {a}"
        return f"{name}[{idx}]"


def _collect_interface(nests: Sequence[LoopNest]):
    ranks: dict[str, int] = {}
    sizes: set[sp.Symbol] = set()
    scalars: set[sp.Symbol] = set()
    for nest in nests:
        sizes |= set(nest.size_symbols())
        scalars |= set(nest.scalar_parameters())
        for stmt in nest.statements:
            ranks[stmt.target_name] = len(stmt.lhs.args)
            accesses, _ = classify_applied(stmt.rhs, nest.counters)
            for a in accesses:
                ranks.setdefault(array_name(a), len(a.args))
    scalars -= sizes
    return ranks, sorted(sizes, key=str), sorted(scalars, key=str)


def _kernel_params(ranks, sizes, scalars) -> str:
    parts = [f"double *{name}" for name in ranks]
    parts += [f"double {s}" for s in scalars]
    parts += [f"int {s}" for s in sizes]
    return ", ".join(parts)


def print_function_cuda(name: str, nests: Sequence[LoopNest]) -> str:
    """Generate CUDA source: one ``__global__`` kernel per nest + launcher."""
    nests = list(nests)
    if not nests:
        raise CodegenError("no loop nests to generate")
    if any(nest.dim > 3 for nest in nests):
        raise CodegenError("CUDA back-end supports at most 3 loop dimensions")
    ranks, sizes, scalars = _collect_interface(nests)
    printer = CudaPrinter(ranks)
    em = Emitter(indent="  ")
    args = _kernel_params(ranks, sizes, scalars)

    kernel_names = []
    for idx, nest in enumerate(nests):
        kname = f"{name}_nest{idx}"
        kernel_names.append(kname)
        em.line(f"// {nest.name or kname}")
        em.line(f"__global__ void {kname}({args}) {{")
        em.push()
        # Innermost counter -> threadIdx.x (coalesced); outers -> y, z.
        rev = list(reversed(nest.counters))
        for d, c in enumerate(rev):
            lo, hi = nest.bounds[c]
            axis = _AXES[d]
            em.line(
                f"int {c} = blockIdx.{axis} * blockDim.{axis} + "
                f"threadIdx.{axis} + ({printer.doprint(lo)});"
            )
            em.line(f"if ({c} > ({printer.doprint(hi)})) return;")
        for stmt in nest.statements:
            body = None
            lhs = printer.doprint(stmt.lhs)
            rhs = printer.doprint(stmt.rhs)
            op = "+=" if stmt.op == "+=" else "="
            if stmt.guard is not None:
                cond = " && ".join(
                    f"({printer.doprint(a)})"
                    for a in (stmt.guard.args if isinstance(stmt.guard, sp.And)
                              else [stmt.guard])
                )
                em.line(f"if ({cond}) {{ {lhs} {op} {rhs}; }}")
            else:
                em.line(f"{lhs} {op} {rhs};")
        em.pop()
        em.line("}")
        em.line()

    # Host launcher.
    em.line(f"void {name}({args}) {{")
    em.push()
    em.line("// Disjoint iteration spaces: no synchronisation between")
    em.line("// region kernels is required; one sync at the end suffices.")
    for idx, nest in enumerate(nests):
        rev = list(reversed(nest.counters))
        extents = []
        for c in rev:
            lo, hi = nest.bounds[c]
            extents.append(f"(({printer.doprint(hi)}) - ({printer.doprint(lo)}) + 1)")
        block = {1: "dim3 block(256);", 2: "dim3 block(32, 8);", 3: "dim3 block(32, 4, 2);"}[nest.dim]
        bdims = {1: ("256",), 2: ("32", "8"), 3: ("32", "4", "2")}[nest.dim]
        grid = ", ".join(
            f"({ext} + {b} - 1) / {b}" for ext, b in zip(extents, bdims)
        )
        em.line("{")
        em.push()
        em.line(block)
        em.line(f"dim3 grid({grid});")
        call_args = ", ".join(list(ranks) + [str(s) for s in scalars] + [str(s) for s in sizes])
        em.line(f"{kernel_names[idx]}<<<grid, block>>>({call_args});")
        em.pop()
        em.line("}")
    em.line("cudaDeviceSynchronize();")
    em.pop()
    em.line("}")
    return em.code()
