"""C back-end with OpenMP pragmas.

Reproduces the code style of the paper's Figures 5 and 7: bracketed array
accesses (``u_1[i][j][k]``), ``fmax``/``fmin`` for ``Max``/``Min``,
ternary expressions for the ``Heaviside`` factors arising from upwinding,
and ``#pragma omp parallel for`` on the outermost loop of each nest.
"""

from __future__ import annotations

from typing import Sequence

import sympy as sp
from sympy.core.function import AppliedUndef
from sympy.printing.c import C99CodePrinter

from ..core.loopnest import LoopNest
from ..ir import Assign, Block, Comment, Function, Guard, Loop, Node, function_from_nests
from .base import CodegenError, Emitter, match_derivative_call

__all__ = ["CPrinter", "generate_c", "print_function_c"]


class CPrinter(C99CodePrinter):
    """SymPy C printer extended with stencil-array and AD-specific forms."""

    def _print_AppliedUndef(self, expr: AppliedUndef) -> str:
        name = expr.func.__name__
        idx = "".join(f"[{self._print(a)}]" for a in expr.args)
        return f"{name}{idx}"

    def _print_Heaviside(self, expr: sp.Heaviside) -> str:
        arg = self._print(expr.args[0])
        return f"(({arg} >= 0) ? 1.0 : 0.0)"

    def _print_Subs(self, expr: sp.Subs) -> str:
        call = match_derivative_call(expr)
        if call is None:
            raise CodegenError(f"cannot lower Subs expression {expr} to C")
        args = ", ".join(self._print(a) for a in call.args)
        return f"{call.func_name}_d{call.argindex}({args})"

    def _print_Derivative(self, expr: sp.Derivative) -> str:
        call = match_derivative_call(expr)
        if call is None:
            raise CodegenError(f"cannot lower Derivative expression {expr} to C")
        args = ", ".join(self._print(a) for a in call.args)
        return f"{call.func_name}_d{call.argindex}({args})"


def _format_condition(printer: CPrinter, cond: sp.Basic) -> str:
    if isinstance(cond, sp.And):
        return " && ".join(f"({printer.doprint(a)})" for a in cond.args)
    return printer.doprint(cond)


class _CEmitter:
    def __init__(self) -> None:
        self.printer = CPrinter()
        self.em = Emitter(indent="  ")

    def emit(self, node: Node) -> None:
        if isinstance(node, Comment):
            self.em.line(f"// {node.text}")
        elif isinstance(node, Block):
            for child in node.body:
                self.emit(child)
        elif isinstance(node, Guard):
            cond = _format_condition(self.printer, node.condition)
            self.em.line(f"if ({cond}) {{")
            self.em.push()
            for child in node.body:
                self.emit(child)
            self.em.pop()
            self.em.line("}")
        elif isinstance(node, Loop):
            if node.parallel:
                private = ",".join(str(c) for c in node.private) or str(node.counter)
                self.em.line(f"#pragma omp parallel for private({private})")
            c = node.counter
            lo = self.printer.doprint(node.lower)
            hi = self.printer.doprint(node.upper)
            self.em.line(f"for ( {c}={lo}; {c}<={hi}; {c}++ ) {{")
            self.em.push()
            for child in node.body:
                self.emit(child)
            self.em.pop()
            self.em.line("}")
        elif isinstance(node, Assign):
            idx = "".join(f"[{self.printer.doprint(a)}]" for a in node.indices)
            rhs = self.printer.doprint(node.rhs)
            op = "+=" if node.op == "+=" else "="
            self.em.line(f"{node.target}{idx} {op} {rhs};")
        else:
            raise CodegenError(f"unknown IR node {node!r}")


def generate_c(func: Function) -> str:
    """Generate a complete C function from an IR function."""
    gen = _CEmitter()
    arrays = ", ".join(
        f"double {'*' * rank}{name}" for name, rank in func.array_ranks.items()
    )
    params = [arrays] if arrays else []
    params += [f"double {s}" for s in func.scalars]
    params += [f"int {s}" for s in func.sizes]
    gen.em.line(f"void {func.name}({', '.join(params)}) {{")
    gen.em.push()
    counters = sorted(
        {str(n.counter) for n in _walk(func.body) if isinstance(n, Loop)}
    )
    if counters:
        gen.em.line(f"int {', '.join(counters)};")
    for node in func.body:
        gen.emit(node)
    gen.em.pop()
    gen.em.line("}")
    return gen.em.code()


def _walk(nodes: Sequence[Node]):
    for node in nodes:
        yield node
        if isinstance(node, (Block, Guard, Loop)):
            yield from _walk(node.body)


def print_function_c(
    name: str,
    nests: Sequence[LoopNest],
    parallel: bool = True,
    unroll_single: bool = True,
) -> str:
    """PerforAD's ``printfunction`` for the C back-end.

    Lowers the loop nests (e.g. output of :meth:`LoopNest.diff`) to one C
    function with OpenMP pragmas on each nest's outermost loop.
    """
    func = function_from_nests(name, nests, parallel=parallel, unroll_single=unroll_single)
    return generate_c(func)
