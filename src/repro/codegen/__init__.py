"""Code-generation back-ends (C/OpenMP, Fortran, Python/NumPy, native C)."""

from .base import CodegenError, DerivativeCall, match_derivative_call
from .c import CPrinter, generate_c, print_function_c
from .cuda import CudaPrinter, print_function_cuda
from .fortran import FortranPrinter, generate_fortran, print_function_fortran
from .native_c import NativeCPrinter, generate_native_source, native_eligibility
from .python_src import generate_python, print_function_python

__all__ = [
    "CPrinter",
    "CodegenError",
    "CudaPrinter",
    "DerivativeCall",
    "FortranPrinter",
    "NativeCPrinter",
    "generate_c",
    "generate_fortran",
    "generate_native_source",
    "generate_python",
    "match_derivative_call",
    "native_eligibility",
    "print_function_c",
    "print_function_cuda",
    "print_function_fortran",
    "print_function_python",
]
