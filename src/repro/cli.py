"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``generate``
    Generate primal or adjoint code for a built-in problem or a stencil
    described in the textual front-end language, in any back-end.
``verify``
    Run the Section 3.6 verification (gather vs scatter vs atomics vs
    interpreter) plus dot-product and finite-difference checks.
``figures``
    Regenerate the paper's performance figures (Figures 8–15).
``loop-counts``
    Print the Section 3.3.4 loop-nest counts for the built-in problems.
``bench``
    Measure steady-state per-timestep runtime of the bound execution
    path against the unbound plan path and write ``BENCH_runtime.json``
    (the perf-trajectory record).  ``--backend native`` measures the
    JIT-compiled C backend; ``--baseline benchmarks/baseline_runtime.json``
    turns the run into the CI perf-regression gate, failing on a
    >--max-slowdown per-timestep slowdown or lost bitwise identity.
``fuse``
    Show the dependence-aware fusion plan (``docs/fusion.md``) for a
    problem's adjoint: which statement chains merge into single native
    loop nests, why the others stay separate, and the resulting memory
    sweeps per timestep.  ``--explain`` prints the per-group detail.
``sweep``
    Run a batched ensemble (many scenarios — distinct initial
    conditions, optional parameter grids — through one kernel; see
    ``docs/ensembles.md``), measure its steady-state throughput against
    the naive per-member loop of bound plans, extract per-member
    gradients, and write ``BENCH_ensemble.json``.  Exits non-zero when
    any member diverges bitwise from its single-scenario run.
    ``--baseline benchmarks/baseline_ensemble.json`` is the ensemble CI
    perf gate.
``adjoint``
    Run a revolve-checkpointed adjoint time loop (memory O(snaps)
    instead of O(steps); see ``docs/checkpointing.md``) against its
    store-all reference, verify bitwise identity, the snapshot-memory
    ratio and the recompute count, and write ``BENCH_checkpoint.json``.
    ``--baseline benchmarks/baseline_checkpoint.json`` is the
    checkpoint CI perf gate (machine-corrected like ``bench``/``sweep``).
``serve``
    Run the kernel-as-a-service daemon (``docs/serving.md``): a
    persistent process listening on a Unix-domain socket that parses
    stencil specs once, keeps bound plans warm, and coalesces
    concurrent same-kernel requests into single batched ensemble runs.
``request``
    Send one run request to a ``serve`` daemon: parse a stencil file,
    allocate a seeded state, execute it remotely and print the result
    norms plus the batching evidence from the response.
``shard``
    Run a problem block-decomposed across shard worker processes
    (``docs/sharding.md``) at one or more rank counts, hard-assert that
    forward state and adjoint gradients are bitwise identical to the
    single-shard run, report per-timestep times and write
    ``BENCH_shard.json``.  ``--baseline benchmarks/baseline_shard.json``
    is the shard CI perf gate (machine-corrected via the single-shard
    time of the same run).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .apps import burgers_problem, conv_problem, heat_problem, wave_problem
from .codegen import (
    print_function_c,
    print_function_cuda,
    print_function_fortran,
    print_function_python,
)
from .core import adjoint_loops
from .errors import (
    NativeBuildError,
    NumericalDivergenceError,
    ReproError,
    ValidationError,
)

__all__ = ["main", "build_parser", "exit_code_for"]

# Exit-code contract (documented in docs/reliability.md): scripts
# driving the CLI can distinguish *what* failed without parsing stderr.
# 0 success, 1 any other failure, 2 usage (argparse's own convention,
# kept), then one code per typed failure family.
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2
EXIT_VALIDATION = 3
EXIT_BUILD = 4
EXIT_DIVERGENCE = 5


def exit_code_for(exc: ReproError) -> int:
    """Map a typed runtime error onto the CLI exit-code contract.

    Order matters: :class:`NativeBuildError` is a ``KernelError`` and
    :class:`NumericalDivergenceError` a ``ReproError``, so the most
    specific families are tested first.

    >>> from repro.errors import (NativeBuildError,
    ...     NumericalDivergenceError, ValidationError, KernelError)
    >>> exit_code_for(ValidationError("bad spec"))
    3
    >>> exit_code_for(NativeBuildError("cc failed"))
    4
    >>> exit_code_for(NumericalDivergenceError("nan"))
    5
    >>> exit_code_for(KernelError("other"))
    1
    """
    if isinstance(exc, NativeBuildError):
        return EXIT_BUILD
    if isinstance(exc, NumericalDivergenceError):
        return EXIT_DIVERGENCE
    if isinstance(exc, ValidationError):
        return EXIT_VALIDATION
    return EXIT_ERROR

_PROBLEMS = {
    "wave1d": lambda: wave_problem(1),
    "wave2d": lambda: wave_problem(2),
    "wave3d": lambda: wave_problem(3),
    "burgers1d": lambda: burgers_problem(1),
    "burgers2d": lambda: burgers_problem(2),
    "heat1d": lambda: heat_problem(1),
    "heat2d": lambda: heat_problem(2),
    "heat3d": lambda: heat_problem(3),
    "conv3x3": lambda: conv_problem(3),
    "conv5x5": lambda: conv_problem(5),
}

_BACKENDS = {
    "c": print_function_c,
    "fortran": print_function_fortran,
    "python": print_function_python,
    "cuda": print_function_cuda,
}

_DEFAULT_N = {
    "wave3d": 12, "wave2d": 18, "wave1d": 40,
    "burgers1d": 48, "burgers2d": 16,
    "heat1d": 40, "heat2d": 18, "heat3d": 10,
    "conv3x3": 18, "conv5x5": 20,
}


def _thread_count(value: str) -> int:
    try:
        threads = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid thread count {value!r}")
    if threads < 1:
        raise argparse.ArgumentTypeError("thread count must be >= 1")
    return threads


def _tile_shape(value: str) -> tuple[int, ...]:
    try:
        tile = tuple(int(t) for t in value.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid tile shape {value!r}; expected comma-separated ints"
        )
    if not tile or any(t < 1 for t in tile):
        raise argparse.ArgumentTypeError("tile extents must be >= 1")
    return tile


def _param_values(value: str) -> tuple[str, tuple[float, ...]]:
    name, sep, rest = value.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(
            f"invalid parameter spec {value!r}; expected NAME=V1[,V2,...]"
        )
    try:
        values = tuple(float(v) for v in rest.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid parameter values in {value!r}; expected floats"
        ) from None
    if not values:
        raise argparse.ArgumentTypeError(f"no values in parameter spec {value!r}")
    return name, values


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adjoint stencil loops (Hückelheim et al., ICPP 2019) "
        "— generation, verification and experiment regeneration.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate primal/adjoint code")
    src = gen.add_mutually_exclusive_group(required=True)
    src.add_argument("--problem", choices=sorted(_PROBLEMS), help="built-in problem")
    src.add_argument("--file", help="stencil source file (front-end language)")
    gen.add_argument("--backend", choices=sorted(_BACKENDS), default="c")
    gen.add_argument(
        "--kind", choices=["primal", "adjoint", "both"], default="both"
    )
    gen.add_argument(
        "--strategy", choices=["disjoint", "guarded", "padded"], default="disjoint"
    )
    gen.add_argument("--no-merge", action="store_true",
                     help="do not merge same-target statements (Figure 5 style)")
    gen.add_argument("--output", help="write to file instead of stdout")

    ver = sub.add_parser("verify", help="run the Section 3.6 verification")
    ver.add_argument("--problem", choices=sorted(_PROBLEMS), default=None)
    ver.add_argument(
        "--chaos", action="store_true",
        help="run the chaos suite instead: fire every registered fault "
        "point (repro.runtime.faults) and assert the graceful-"
        "degradation contract — bitwise-identical fallback or one typed "
        "ReproError with user arrays intact (see docs/reliability.md)",
    )
    ver.add_argument("--n", type=int, default=None, help="grid size")
    ver.add_argument(
        "--strategy", choices=["disjoint", "guarded"], default="disjoint"
    )
    ver.add_argument(
        "--threads", type=_thread_count, default=1,
        help="also verify the planned thread-parallel execution at this "
        "thread count (must match the serial adjoint bitwise)",
    )
    ver.add_argument(
        "--tile", type=_tile_shape, default=None, metavar="T0,T1,...",
        help="also verify planned tiled execution with this tile shape",
    )
    ver.add_argument(
        "--backend", choices=["python", "native"], default="python",
        help="execution backend for the planned-vs-serial check "
        "(native must reproduce the serial python adjoint bitwise)",
    )

    fig = sub.add_parser("figures", help="regenerate Figures 8-15")
    fig.add_argument(
        "--figure",
        choices=["fig08", "fig09", "fig10", "fig11", "fig12", "fig13",
                 "fig14", "fig15", "all"],
        default="all",
    )

    sub.add_parser("loop-counts", help="Section 3.3.4 loop-nest counts")

    ben = sub.add_parser(
        "bench", help="steady-state runtime benchmark (writes BENCH_runtime.json)"
    )
    ben.add_argument("--problem", choices=sorted(_PROBLEMS), default="heat2d")
    ben.add_argument("--n", type=int, default=24, help="grid size")
    ben.add_argument(
        "--quick", action="store_true",
        help="fewer repetitions and serial discipline only (CI smoke)",
    )
    ben.add_argument(
        "--backend", choices=["python", "native"], default="python",
        help="bound-execution backend to measure (native falls back to "
        "python, with a warning, when no C compiler is available)",
    )
    ben.add_argument(
        "--fusion", choices=["auto", "off"], default="auto",
        help="dependence-aware statement fusion for the serial native "
        "path (default: auto; 'off' forces the per-statement reference "
        "path; inert for --backend python)",
    )
    ben.add_argument(
        "--output", default="BENCH_runtime.json",
        help="where to write the JSON record (default: ./BENCH_runtime.json)",
    )
    ben.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="perf-regression gate: compare per-timestep bound runtimes "
        "against this recorded JSON and fail the run on a slowdown "
        "beyond --max-slowdown or on lost bitwise identity",
    )
    ben.add_argument(
        "--max-slowdown", type=float, default=1.5, metavar="FACTOR",
        help="largest tolerated bound_us_per_call ratio vs the baseline "
        "(default: 1.5)",
    )

    fus = sub.add_parser(
        "fuse",
        help="show the dependence-aware fusion plan for a problem's adjoint",
    )
    fus.add_argument("--problem", choices=sorted(_PROBLEMS), default="heat2d")
    fus.add_argument("--n", type=int, default=None, help="grid size")
    fus.add_argument(
        "--dtype", choices=["f64", "f32"], default="f64",
        help="kernel dtype (default: f64); eligibility is dtype-dependent",
    )
    fus.add_argument(
        "--fusion", choices=["auto", "off"], default="auto",
        help="fusion mode to plan with (default: auto)",
    )
    fus.add_argument(
        "--explain", action="store_true",
        help="print per-group detail: members, written arrays, and the "
        "dependence or eligibility reason each group boundary exists",
    )

    swp = sub.add_parser(
        "sweep",
        help="batched ensemble run / parameter sweep "
        "(writes BENCH_ensemble.json)",
    )
    swp.add_argument("--problem", choices=sorted(_PROBLEMS), default="heat2d")
    swp.add_argument("--n", type=int, default=None, help="grid size")
    swp.add_argument(
        "--members", type=int, default=64,
        help="ensemble size (default: 64); member m gets the seed-m "
        "initial state and the m-th point of the parameter grid, "
        "round-robin",
    )
    swp.add_argument(
        "--param", type=_param_values, action="append", default=[],
        metavar="NAME=V1[,V2,...]",
        help="sweep a kernel parameter over these values (repeatable; "
        "multiple --param options form a cartesian grid; each distinct "
        "point compiles one kernel via the content-addressed cache)",
    )
    swp.add_argument(
        "--workers", type=_thread_count, default=1,
        help="ensemble worker threads (work-stealing member scheduler; "
        "default: 1 = one fully fused chunk)",
    )
    swp.add_argument(
        "--backend", choices=["python", "native"], default="python",
        help="member execution backend (native chains whole "
        "member-timesteps into single C calls)",
    )
    swp.add_argument(
        "--dtype", choices=["f64", "f32"], default="f64",
        help="kernel dtype (default: f64)",
    )
    swp.add_argument(
        "--reps", type=int, default=60,
        help="timing repetitions per round (default: 60)",
    )
    swp.add_argument(
        "--quick", action="store_true",
        help="fewer repetitions (CI smoke / perf gate)",
    )
    swp.add_argument(
        "--output", default="BENCH_ensemble.json",
        help="where to write the JSON record (default: ./BENCH_ensemble.json)",
    )
    swp.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="ensemble perf-regression gate: compare per-member-timestep "
        "throughput against this recorded JSON and fail beyond "
        "--max-slowdown or on lost bitwise identity",
    )
    swp.add_argument(
        "--max-slowdown", type=float, default=1.5, metavar="FACTOR",
        help="largest tolerated machine-corrected ensemble_us_per_member_step "
        "ratio vs the baseline (default: 1.5)",
    )

    adj = sub.add_parser(
        "adjoint",
        help="revolve-checkpointed adjoint time loop "
        "(writes BENCH_checkpoint.json)",
    )
    adj.add_argument("--problem", choices=sorted(_PROBLEMS), default="burgers1d")
    adj.add_argument("--n", type=int, default=None, help="grid size")
    adj.add_argument(
        "--steps", type=int, default=24,
        help="time steps to reverse (default: 24)",
    )
    adj.add_argument(
        "--snaps", type=int, default=4,
        help="resident snapshot slots (default: 4); memory is O(snaps) "
        "instead of the store-all sweep's O(steps)",
    )
    adj.add_argument(
        "--members", type=int, default=1,
        help="ensemble members; > 1 runs one revolve schedule across a "
        "leading member axis (default: 1)",
    )
    adj.add_argument(
        "--workers", type=_thread_count, default=1,
        help="ensemble worker threads (only with --members > 1)",
    )
    adj.add_argument(
        "--backend", choices=["python", "native"], default="python",
        help="bound-execution backend for both the forward and reverse "
        "plans",
    )
    adj.add_argument(
        "--dtype", choices=["f64", "f32"], default="f64",
        help="state dtype (default: f64)",
    )
    adj.add_argument(
        "--reps", type=int, default=5,
        help="timing repetitions per sweep variant (default: 5)",
    )
    adj.add_argument(
        "--quick", action="store_true",
        help="fewer repetitions (CI smoke / perf gate)",
    )
    adj.add_argument(
        "--output", default="BENCH_checkpoint.json",
        help="where to write the JSON record (default: ./BENCH_checkpoint.json)",
    )
    adj.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="checkpoint perf-regression gate: compare the checkpointed "
        "per-sweep time against this recorded JSON (machine-corrected "
        "via the store-all sweep of the same run) and fail beyond "
        "--max-slowdown, on lost bitwise identity, on a snapshot-memory "
        "ratio above snaps/steps, or on recompute above the revolve "
        "optimum",
    )
    adj.add_argument(
        "--max-slowdown", type=float, default=1.5, metavar="FACTOR",
        help="largest tolerated machine-corrected checkpointed_us_per_sweep "
        "ratio vs the baseline (default: 1.5)",
    )

    srv = sub.add_parser(
        "serve",
        help="run the compile-and-serve daemon (see docs/serving.md)",
    )
    srv.add_argument(
        "--socket", required=True, metavar="PATH",
        help="Unix-domain socket path to listen on (created fresh; "
        "removed again on shutdown)",
    )
    srv.add_argument(
        "--workers", type=_thread_count, default=2,
        help="executor threads running batched/single kernel dispatches "
        "(default: 2)",
    )
    srv.add_argument(
        "--max-batch", type=_thread_count, default=8,
        help="most same-kernel requests coalesced into one batched "
        "ensemble run (default: 8; 1 disables batching)",
    )
    srv.add_argument(
        "--batch-window-ms", type=float, default=2.0,
        help="how long the first request of a batch waits for company "
        "before dispatch (default: 2.0; <= 0 dispatches immediately)",
    )

    req = sub.add_parser(
        "request",
        help="send one run request to a serve daemon and print the result",
    )
    req.add_argument(
        "--socket", required=True, metavar="PATH",
        help="the daemon's Unix-domain socket",
    )
    req.add_argument(
        "--file", required=True,
        help="stencil source file (front-end language) to run remotely",
    )
    req.add_argument(
        "--size", action="append", default=[], metavar="NAME=INT",
        help="bind a size symbol (repeatable)",
    )
    req.add_argument(
        "--param", action="append", default=[], metavar="NAME=FLOAT",
        help="bind a scalar parameter (repeatable)",
    )
    req.add_argument("--steps", type=int, default=1,
                     help="kernel applications per request (default: 1)")
    req.add_argument("--seed", type=int, default=0,
                     help="seed for the generated initial state (default: 0)")
    req.add_argument(
        "--dtype", choices=["f64", "f32"], default="f64",
        help="state dtype (default: f64)",
    )
    req.add_argument(
        "--backend", choices=["python", "native"], default="python",
        help="server-side execution backend (default: python)",
    )

    shd = sub.add_parser(
        "shard",
        help="sharded multi-process execution: bitwise contract + "
        "per-step timings (writes BENCH_shard.json)",
    )
    shd.add_argument("--problem", choices=sorted(_PROBLEMS), default="heat2d")
    shd.add_argument(
        "--ranks", action="append", type=int, default=None, metavar="N",
        help="shard count to test (repeatable; default: 1 2 4)",
    )
    shd.add_argument("--n", type=int, default=None, help="grid size")
    shd.add_argument(
        "--steps", type=int, default=None,
        help="timesteps per measured run (default: 8 with --quick, 16 "
        "otherwise)",
    )
    shd.add_argument(
        "--backend", choices=["python", "native"], default="python",
        help="bound-execution backend on every shard (default: python)",
    )
    shd.add_argument(
        "--dtype", choices=["f64", "f32"], default="f64",
        help="state dtype (default: f64)",
    )
    shd.add_argument(
        "--reps", type=int, default=5,
        help="timing repetitions, best-of (default: 5; per-step worker "
        "dispatch is scheduling-noisy, so the gate needs best-of "
        "sampling even with --quick)",
    )
    shd.add_argument(
        "--quick", action="store_true",
        help="small grid, fewer steps and repetitions (CI smoke / gate)",
    )
    shd.add_argument(
        "--output", default="BENCH_shard.json",
        help="where to write the JSON record (default: ./BENCH_shard.json)",
    )
    shd.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="shard perf-regression gate: compare the sharded per-step "
        "time against this recorded JSON (machine-corrected via the "
        "single-shard time of the same run) and fail beyond "
        "--max-slowdown or on lost bitwise identity",
    )
    shd.add_argument(
        "--max-slowdown", type=float, default=2.0, metavar="FACTOR",
        help="largest tolerated machine-corrected sharded_us_per_step "
        "ratio vs the baseline (default: 2.0; per-step worker dispatch "
        "is noisier than the in-process paths the other gates time)",
    )
    return parser


def _cmd_generate(args) -> int:
    if args.problem:
        prob = _PROBLEMS[args.problem]()
        nest = prob.primal
        adjoint_map = prob.adjoint_map
        name = prob.name
    else:
        from .frontend import parse_stencil
        from .core.symbols import make_adjoint_function

        try:
            with open(args.file) as fh:
                nest = parse_stencil(fh.read())
        except OSError as exc:
            print(f"cannot read spec file: {exc}", file=sys.stderr)
            return EXIT_USAGE
        name = nest.name or "stencil"
        funcs = {}
        import sympy as sp

        for arr in nest.written_arrays() + nest.read_arrays():
            funcs[arr] = sp.Function(arr)
        adjoint_map = {
            funcs[a]: make_adjoint_function(funcs[a])
            for a in nest.written_arrays() + nest.read_arrays()
        }
    backend = _BACKENDS[args.backend]
    chunks = []
    if args.kind in ("primal", "both"):
        chunks.append(backend(name, [nest]))
    if args.kind in ("adjoint", "both"):
        nests = adjoint_loops(
            nest, adjoint_map, strategy=args.strategy, merge=not args.no_merge
        )
        chunks.append(backend(f"{name}_b", nests))
    code = "\n".join(chunks)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(code)
    else:
        sys.stdout.write(code)
    return 0


def _plan_vs_serial_diff(
    prob, n: int, strategy: str, threads: int, tile, backend: str = "python"
) -> float:
    """Max |planned - serial| over active adjoints for one plan config."""
    import numpy as np

    from .core import adjoint_loops
    from .runtime import ExecutionConfig, ExecutionPlan, compile_nests

    bindings = prob.bindings(n)
    nests = adjoint_loops(prob.primal, prob.adjoint_map, strategy=strategy)
    kernel = compile_nests(nests, bindings, name="gather")
    rng = np.random.default_rng(0)
    base = prob.allocate(n, rng=rng)
    base.update(prob.allocate_adjoints(n, rng=rng))
    serial = {k: v.copy() for k, v in base.items()}
    kernel(serial)
    planned = {k: v.copy() for k, v in base.items()}
    # A private (non-memoised) plan: closing its pool afterwards cannot
    # affect other holders of the kernel's shared plans.
    config = ExecutionConfig(
        num_threads=threads, tile_shape=tile, min_block_iterations=1,
        backend=backend,
    )
    with ExecutionPlan.build(kernel, config) as plan:
        # Bind explicitly: the bound path is the steady-state path and
        # the only one the native backend accelerates.
        plan.bind(planned).run()
    name_map = prob.adjoint_name_map()
    return max(
        float(np.max(np.abs(serial[name_map[a]] - planned[name_map[a]])))
        for a in prob.active_input_names()
    )


def _cmd_chaos() -> int:
    from .runtime import faults
    from .verify.chaos import run_chaos

    results = run_chaos()
    print(f"chaos suite: {len(results)} registered fault point(s)")
    for res in results:
        verdict = "PASS" if res.ok else "FAIL"
        print(f"  {verdict} {res.point:20s} [{res.contract:11s}] {res.detail}")
    covered = sum(res.ok for res in results)
    total = len(faults.registered_fault_points())
    ok = covered == total
    print(
        "  VERDICT: "
        + (
            f"graceful-degradation contract holds at all {total} points"
            if ok
            else f"CONTRACT VIOLATED ({total - covered} of {total} points)"
        )
    )
    return 0 if ok else 1


def _cmd_verify(args) -> int:
    from .verify import compare_adjoints, dot_product_test, finite_difference_test

    if args.chaos:
        return _cmd_chaos()
    if args.problem is None:
        print("verify needs --problem (or --chaos)", file=sys.stderr)
        return EXIT_USAGE
    prob = _PROBLEMS[args.problem]()
    n = args.n or _DEFAULT_N[args.problem]
    cmp_ = compare_adjoints(prob, n=n, strategy=args.strategy)
    dp = dot_product_test(prob, n=n, strategy=args.strategy)
    fd = finite_difference_test(prob, n=n, strategy=args.strategy)
    print(f"problem {prob.name}, n={n}, strategy={args.strategy}")
    print(f"  gather vs scatter      : {cmp_.gather_vs_scatter:.3e}")
    print(f"  gather vs atomics      : {cmp_.gather_vs_atomic:.3e}")
    print(f"  gather vs interpreter  : {cmp_.gather_vs_interpreter:.3e}")
    print(f"  dot-product rel. error : {dp.rel_error:.3e}")
    print(f"  finite-diff rel. error : {fd.rel_error:.3e}")
    ok = cmp_.passed() and dp.passed and fd.passed(5e-5)
    if args.threads > 1 or args.tile or args.backend != "python":
        tile = args.tile
        diff = _plan_vs_serial_diff(
            prob, n, args.strategy, args.threads, tile, backend=args.backend
        )
        desc = f"{args.threads} thread(s)" + (f", tile {tile}" if tile else "")
        if args.backend != "python":
            desc += f", backend {args.backend}"
        print(f"  plan [{desc}] vs serial: {diff:.3e}")
        ok = ok and diff == 0.0
    print("  VERDICT: " + ("all adjoints agree" if ok else "MISMATCH"))
    return 0 if ok else 1


def _cmd_figures(args) -> int:
    from . import experiments as E

    if args.figure == "all":
        print(E.render_all())
        return 0
    table = {
        "fig08": (E.fig08_wave_broadwell, E.render_speedup),
        "fig09": (E.fig09_burgers_broadwell, E.render_speedup),
        "fig10": (E.fig10_wave_runtimes_broadwell, E.render_bars),
        "fig11": (E.fig11_burgers_runtimes_broadwell, E.render_bars),
        "fig12": (E.fig12_wave_knl, E.render_speedup),
        "fig13": (E.fig13_burgers_knl, E.render_speedup),
        "fig14": (E.fig14_wave_runtimes_knl, E.render_bars),
        "fig15": (E.fig15_burgers_runtimes_knl, E.render_bars),
    }
    build, render = table[args.figure]
    print(render(build()))
    return 0


def _cmd_bench(args) -> int:
    import json
    import os
    import time

    import numpy as np

    from .core import adjoint_loops
    from .experiments.steady import measure_steady_state
    from .runtime import ExecutionConfig, compile_nests, native_thread_count
    from .runtime import native as _native

    prob = _PROBLEMS[args.problem]()
    n = args.n
    reps = 30 if args.quick else 200
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    kernel = compile_nests(nests, prob.bindings(n), name="bench")
    rng = np.random.default_rng(0)
    base = prob.allocate(n, rng=rng)
    base.update(prob.allocate_adjoints(n, rng=rng))

    configs = {"serial": {}}
    if not args.quick:
        configs["threads2"] = dict(num_threads=2, min_block_iterations=1)
        tile = tuple([8] * prob.dim)
        configs["tiled"] = dict(tile_shape=tile)

    cases = {}
    for label, cfg in configs.items():
        plan = kernel.plan(backend=args.backend, fusion=args.fusion, **cfg)
        arrays = {k: v.copy() for k, v in base.items()}
        cases[label] = measure_steady_state(plan, arrays, base, reps)
        plan.close()

    # Host facts a reader needs to judge the timings: core count, the
    # effective in-kernel thread width (REPRO_NATIVE_THREADS at bind
    # time) and which compiler built the native statements.
    cc = _native.native_toolchain() if args.backend == "native" else None
    record = {
        "benchmark": "steady_state_bound_plan",
        "problem": prob.name,
        "n": n,
        "reps": reps,
        "backend": args.backend,
        "fusion": args.fusion,
        "cpu_count": os.cpu_count(),
        "native_threads": native_thread_count(ExecutionConfig()),
        "compiler": _native._compiler_id(cc) if cc else None,
        "iterations_per_call": kernel.total_iterations(),
        "unix_time": round(time.time(), 1),
        "cases": cases,
    }
    with open(args.output, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output} (backend={args.backend})")
    for label, case in cases.items():
        print(
            f"  {label:10s} unbound {case['unbound_us_per_call']:8.1f} us  "
            f"bound {case['bound_us_per_call']:8.1f} us  "
            f"speedup {case['speedup']:5.2f}x  "
            f"steady alloc {case['steady_net_alloc_bytes']} B  "
            f"native {case['native_statements']}/{case['total_statements']}  "
            f"sweeps {case['sweeps_per_timestep']}  "
            f"bitwise={'ok' if case['bitwise_identical'] else 'MISMATCH'}"
        )
    ok = all(c["bitwise_identical"] for c in cases.values())
    if args.baseline is not None:
        ok = _check_baseline(record, args.baseline, args.max_slowdown) and ok
    return 0 if ok else 1


def _load_baseline(record, baseline_path: str, context_keys, gate_name: str):
    """Load a baseline record and check its context matches this run.

    Shared by every perf gate: a baseline recorded with different
    options (and therefore non-comparable timings) is rejected outright
    rather than compared apples to oranges.  Returns the parsed
    baseline, or None (after printing the FAIL verdict) on mismatch.
    """
    import json

    with open(baseline_path) as fh:
        baseline = json.load(fh)
    for key in context_keys:
        ours, theirs = record.get(key), baseline.get(key)
        if ours != theirs:
            print(
                f"  FAIL: baseline {key}={theirs!r} does not match this "
                f"run's {key}={ours!r}; regenerate the baseline with the "
                f"same options"
            )
            print(f"  {gate_name}: FAIL")
            return None
    return baseline


def _corrected_slowdown(ours, base, ours_ref, base_ref):
    """(raw, machine, corrected) slowdown of a metric vs its baseline.

    The machine factor comes from a reference workload measured in the
    same run on the same machine as each metric, so the corrected ratio
    tracks regressions in the gated path itself — a baseline recorded
    on a fast dev box does not fail a slower CI runner on hardware
    class alone.
    """
    raw = ours / base
    machine = ours_ref / base_ref
    return raw, machine, raw / machine


def _check_baseline(record, baseline_path: str, max_slowdown: float) -> bool:
    """The CI perf-regression gate: current record vs a checked-in one.

    Fails (returns False, printing per-case verdicts) when any case
    shared with the baseline got more than *max_slowdown* times slower
    per bound timestep — machine-corrected via the unbound per-call
    time of the same run (see :func:`_corrected_slowdown`) — or lost
    bitwise identity.  Context mismatches are rejected outright
    (:func:`_load_baseline`).  Cases absent from the baseline pass with
    a note, so adding a discipline does not require regenerating the
    baseline in the same commit.
    """
    print(f"baseline gate vs {baseline_path} (max slowdown {max_slowdown}x):")
    baseline = _load_baseline(
        record, baseline_path,
        ("benchmark", "problem", "n", "reps", "backend"),
        "baseline gate",
    )
    if baseline is None:
        return False
    base_cases = baseline.get("cases", {})
    ok = True
    for label, case in record["cases"].items():
        if not case["bitwise_identical"]:
            print(f"  {label:10s} FAIL: lost bitwise identity")
            ok = False
            continue
        base = base_cases.get(label)
        if base is None:
            print(f"  {label:10s} pass (no baseline case)")
            continue
        raw, machine, slowdown = _corrected_slowdown(
            case["bound_us_per_call"], base["bound_us_per_call"],
            case["unbound_us_per_call"], base["unbound_us_per_call"],
        )
        verdict = "pass" if slowdown <= max_slowdown else "FAIL"
        print(
            f"  {label:10s} {verdict}: bound {case['bound_us_per_call']:.1f} us "
            f"vs baseline {base['bound_us_per_call']:.1f} us "
            f"({raw:.2f}x raw, {machine:.2f}x machine factor, "
            f"{slowdown:.2f}x corrected)"
        )
        if slowdown > max_slowdown:
            ok = False
    print("  baseline gate: " + ("PASS" if ok else "FAIL"))
    return ok


def _cmd_fuse(args) -> int:
    """Print the fusion plan the native backend would use for a problem."""
    import numpy as np

    from .core import adjoint_loops
    from .runtime import compile_nests

    prob = _PROBLEMS[args.problem]()
    n = args.n or _DEFAULT_N[args.problem]
    dtype = np.float64 if args.dtype == "f64" else np.float32
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    kernel = compile_nests(nests, prob.bindings(n, dtype=dtype), name="fuse")
    rng = np.random.default_rng(0)
    arrays = prob.allocate(n, rng=rng, dtype=dtype)
    arrays.update(prob.allocate_adjoints(n, rng=rng, dtype=dtype))
    plan = kernel.plan(backend="native", fusion=args.fusion)
    try:
        bound = plan.bind(arrays)
        print(
            f"problem {prob.name}, n={n}, dtype={args.dtype}, "
            f"fusion={args.fusion}"
        )
        if args.explain:
            for line in bound.fusion_explain():
                print(f"  {line}")
        else:
            print(
                f"  {bound.statement_count} statements -> "
                f"{bound.sweep_count} memory sweeps per timestep "
                f"({bound.fused_group_count} fused groups covering "
                f"{bound.fused_statement_count} statements; "
                f"use --explain for the per-group reasons)"
            )
    finally:
        plan.close()
    return 0


def _cmd_sweep(args) -> int:
    """Batched ensemble run: parameter grid, throughput, gradients, JSON."""
    import itertools
    import json
    import time

    import numpy as np

    from .core import adjoint_loops
    from .experiments.steady import measure_ensemble
    from .runtime import compile_nests

    prob = _PROBLEMS[args.problem]()
    n = args.n or _DEFAULT_N[args.problem]
    members = args.members
    if members < 1:
        print("sweep needs at least one member")
        return 2
    reps = max(1, args.reps // 4) if args.quick else args.reps
    dtype = np.float64 if args.dtype == "f64" else np.float32

    # Cartesian parameter grid; member m takes grid point m % len(grid).
    grid_names = [name for name, _ in args.param]
    unknown = sorted(set(grid_names) - set(prob.param_defaults))
    if unknown:
        print(
            f"unknown parameter(s) {unknown} for {prob.name}; "
            f"available: {sorted(prob.param_defaults)}"
        )
        return 2
    combos = [
        dict(zip(grid_names, values))
        for values in itertools.product(*(vals for _, vals in args.param))
    ] or [{}]
    groups: dict[int, list[int]] = {}
    for m in range(members):
        groups.setdefault(m % len(combos), []).append(m)

    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    name_map = prob.adjoint_name_map()
    grad_names = [name_map[a] for a in prob.active_input_names()]
    member_records: list[dict] = [None] * members  # type: ignore[list-item]
    group_records = []
    total_loop_us = total_ensemble_us = 0.0
    bitwise = True
    for ci, member_ids in sorted(groups.items()):
        params = combos[ci]
        kernel = compile_nests(
            nests, prob.bindings(n, dtype=dtype, **params), name="sweep"
        )
        plan = kernel.plan(backend=args.backend)
        states = [
            prob.allocate_state(n, seed=m, dtype=dtype) for m in member_ids
        ]
        record, ensemble = measure_ensemble(
            plan, states, reps, workers=args.workers
        )
        with ensemble:
            for local, m in enumerate(member_ids):
                views = ensemble.member_arrays(local)
                member_records[m] = {
                    "member": m,
                    "params": params,
                    "gradients": {
                        name: round(float(np.linalg.norm(views[name])), 12)
                        for name in grad_names
                    },
                }
        group_records.append({"params": params, "members": member_ids, **record})
        total_loop_us += record["loop_us_per_member_step"] * len(member_ids)
        total_ensemble_us += record["ensemble_us_per_member_step"] * len(member_ids)
        bitwise = bitwise and record["bitwise_identical"]
        plan.close()

    speedup = total_loop_us / total_ensemble_us if total_ensemble_us else 0.0
    record = {
        "benchmark": "ensemble_sweep",
        "problem": prob.name,
        "n": n,
        "members": members,
        "reps": reps,
        "backend": args.backend,
        "workers": args.workers,
        "dtype": args.dtype,
        "param_grid": {name: list(vals) for name, vals in args.param},
        "loop_us_per_member_step": round(total_loop_us / members, 3),
        "ensemble_us_per_member_step": round(total_ensemble_us / members, 3),
        "speedup": round(speedup, 3),
        "bitwise_identical": bitwise,
        "unix_time": round(time.time(), 1),
        "groups": group_records,
        "member_results": member_records,
    }
    with open(args.output, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(
        f"wrote {args.output} ({prob.name} n={n}, {members} members, "
        f"{len(combos)} grid point(s), backend={args.backend}, "
        f"workers={args.workers})"
    )
    print(
        f"  per-member loop  {record['loop_us_per_member_step']:8.1f} us/member-step\n"
        f"  batched ensemble {record['ensemble_us_per_member_step']:8.1f} us/member-step\n"
        f"  throughput       {record['speedup']:8.2f}x  "
        f"bitwise={'ok' if bitwise else 'MISMATCH'}"
    )
    ok = bitwise
    if args.baseline is not None:
        ok = _check_ensemble_baseline(record, args.baseline, args.max_slowdown) and ok
    return 0 if ok else 1


def _check_ensemble_baseline(record, baseline_path: str, max_slowdown: float) -> bool:
    """The ensemble CI perf gate: current sweep record vs a checked-in one.

    Mirrors :func:`_check_baseline` through the same helpers: the gated
    quantity is the batched ensemble per-member-timestep time
    machine-corrected via the naive per-member loop measured in the
    same run (:func:`_corrected_slowdown`); a baseline whose context —
    including the parameter grid, which changes how members group into
    plans and therefore the fusion width — differs from the current run
    fails outright (:func:`_load_baseline`).
    """
    print(f"ensemble baseline gate vs {baseline_path} (max slowdown {max_slowdown}x):")
    baseline = _load_baseline(
        record, baseline_path,
        ("benchmark", "problem", "n", "members", "reps", "backend",
         "workers", "dtype", "param_grid"),
        "ensemble baseline gate",
    )
    if baseline is None:
        return False
    if not record["bitwise_identical"]:
        print("  FAIL: lost bitwise identity")
        print("  ensemble baseline gate: FAIL")
        return False
    raw, machine, slowdown = _corrected_slowdown(
        record["ensemble_us_per_member_step"],
        baseline["ensemble_us_per_member_step"],
        record["loop_us_per_member_step"],
        baseline["loop_us_per_member_step"],
    )
    ok = slowdown <= max_slowdown
    print(
        f"  ensemble {record['ensemble_us_per_member_step']:.1f} us/member-step "
        f"vs baseline {baseline['ensemble_us_per_member_step']:.1f} "
        f"({raw:.2f}x raw, {machine:.2f}x machine factor, "
        f"{slowdown:.2f}x corrected)"
    )
    print("  ensemble baseline gate: " + ("PASS" if ok else "FAIL"))
    return ok


def _cmd_adjoint(args) -> int:
    """Checkpointed adjoint time loop: verify, measure, gate, JSON."""
    import json
    import time

    import numpy as np

    from .experiments.steady import _best_of, bitwise_equal

    if args.steps < 1:
        print("adjoint needs at least one time step")
        return 2
    if args.snaps < 1:
        print("adjoint needs at least one snapshot slot")
        return 2
    if args.members < 1:
        print("adjoint needs at least one member")
        return 2
    prob = _PROBLEMS[args.problem]()
    n = args.n or _DEFAULT_N[args.problem]
    steps, snaps = args.steps, args.snaps
    reps = max(1, min(args.reps, 2)) if args.quick else args.reps
    dtype = np.float64 if args.dtype == "f64" else np.float32
    members = None if args.members == 1 else args.members

    plan = prob.checkpointed_adjoint(
        n, steps=steps, snaps=snaps, dtype=dtype, backend=args.backend,
        members=members, workers=args.workers,
    )
    shape = prob.array_shape(n)
    name_map = prob.adjoint_name_map()

    def member_case(m: int):
        rng = np.random.default_rng(m)
        state = [
            (rng.standard_normal(shape) * 0.1).astype(dtype)
            for _ in plan.history
        ]
        seed = prob.allocate_adjoints(
            n, rng=np.random.default_rng(1000 + m), dtype=dtype
        )[name_map[prob.output_name]]
        return state, seed

    if members is None:
        state0, seed = member_case(0)
    else:
        cases = [member_case(m) for m in range(args.members)]
        state0 = [
            np.stack([case[0][k] for case in cases])
            for k in range(len(plan.history))
        ]
        seed = np.stack([case[1] for case in cases])

    with plan:
        ref = {
            k: v.copy() for k, v in plan.run_store_all(state0, seed).items()
        }
        out = plan.adjoint(state0, seed)
        bitwise = all(bitwise_equal(ref[k], out[k]) for k in ref)
        forward_steps = plan.forward_steps
        t_store = _best_of(lambda: plan.run_store_all(state0, seed), reps)
        t_chk = _best_of(lambda: plan.adjoint(state0, seed), reps)

    predicted = plan.evaluation_cost - steps
    memory_ratio = plan.snapshot_bytes / plan.store_all_bytes
    record = {
        "benchmark": "checkpointed_adjoint",
        "problem": prob.name,
        "n": n,
        "steps": steps,
        "snaps": snaps,
        "members": args.members,
        "workers": args.workers,
        "backend": args.backend,
        "dtype": args.dtype,
        "reps": reps,
        "store_all_us_per_sweep": round(t_store * 1e6, 3),
        "checkpointed_us_per_sweep": round(t_chk * 1e6, 3),
        "overhead": round(t_chk / t_store, 3) if t_store else 0.0,
        "snapshot_bytes": plan.snapshot_bytes,
        "store_all_state_bytes": plan.store_all_bytes,
        "memory_ratio": round(memory_ratio, 6),
        "forward_steps_per_sweep": forward_steps,
        "predicted_forward_steps": predicted,
        "optimal_evaluations": plan.evaluation_cost,
        "recompute_factor": round(forward_steps / steps, 3),
        "bitwise_identical": bitwise,
        "unix_time": round(time.time(), 1),
    }
    with open(args.output, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(
        f"wrote {args.output} ({prob.name} n={n}, steps={steps}, "
        f"snaps={snaps}, members={args.members}, backend={args.backend})"
    )
    print(
        f"  store-all    {record['store_all_us_per_sweep']:10.1f} us/sweep  "
        f"memory {record['store_all_state_bytes']} B\n"
        f"  checkpointed {record['checkpointed_us_per_sweep']:10.1f} us/sweep  "
        f"memory {record['snapshot_bytes']} B "
        f"({memory_ratio:.3f}x, bound {snaps}/{steps})\n"
        f"  recompute    {forward_steps} forward steps "
        f"(revolve optimum {predicted}, {record['recompute_factor']:.2f}x)  "
        f"bitwise={'ok' if bitwise else 'MISMATCH'}"
    )
    ok = bitwise
    if forward_steps != predicted:
        print(
            f"  FAIL: {forward_steps} forward steps, revolve optimum is "
            f"{predicted}"
        )
        ok = False
    if memory_ratio > snaps / steps + 1e-9:
        print(
            f"  FAIL: snapshot memory ratio {memory_ratio:.6f} exceeds "
            f"snaps/steps = {snaps / steps:.6f}"
        )
        ok = False
    if args.baseline is not None:
        ok = _check_checkpoint_baseline(
            record, args.baseline, args.max_slowdown
        ) and ok
    return 0 if ok else 1


def _check_checkpoint_baseline(record, baseline_path: str, max_slowdown: float) -> bool:
    """The checkpoint CI perf gate: current adjoint record vs a checked-in one.

    Mirrors :func:`_check_baseline` through the same helpers: the gated
    quantity is the checkpointed per-sweep time, machine-corrected via
    the store-all sweep measured in the same run (it runs the same
    kernels through the same bound plans, so it is the ideal in-run
    hardware reference); context mismatches fail outright.
    """
    print(
        f"checkpoint baseline gate vs {baseline_path} "
        f"(max slowdown {max_slowdown}x):"
    )
    baseline = _load_baseline(
        record, baseline_path,
        ("benchmark", "problem", "n", "steps", "snaps", "members",
         "workers", "backend", "dtype", "reps"),
        "checkpoint baseline gate",
    )
    if baseline is None:
        return False
    raw, machine, slowdown = _corrected_slowdown(
        record["checkpointed_us_per_sweep"],
        baseline["checkpointed_us_per_sweep"],
        record["store_all_us_per_sweep"],
        baseline["store_all_us_per_sweep"],
    )
    ok = slowdown <= max_slowdown
    print(
        f"  checkpointed {record['checkpointed_us_per_sweep']:.1f} us/sweep "
        f"vs baseline {baseline['checkpointed_us_per_sweep']:.1f} "
        f"({raw:.2f}x raw, {machine:.2f}x machine factor, "
        f"{slowdown:.2f}x corrected)"
    )
    print("  checkpoint baseline gate: " + ("PASS" if ok else "FAIL"))
    return ok


def _pairs(items, label: str, cast):
    """Parse repeated NAME=VALUE options into a dict (ValidationError on junk)."""
    out = {}
    for item in items:
        name, sep, rest = item.partition("=")
        if not sep or not name:
            raise ValidationError(
                f"invalid {label} {item!r}; expected NAME=VALUE"
            )
        try:
            out[name] = cast(rest)
        except ValueError:
            raise ValidationError(
                f"invalid {label} value in {item!r}"
            ) from None
    return out


def _cmd_serve(args) -> int:
    """Run the kernel daemon until interrupted or remotely shut down."""
    from .runtime import KernelServer

    server = KernelServer(
        args.socket,
        workers=args.workers,
        max_batch=args.max_batch,
        batch_window_ms=args.batch_window_ms,
    )
    server.start()
    print(
        f"kernel server listening on {args.socket} "
        f"(workers={args.workers}, max_batch={args.max_batch}, "
        f"batch_window={args.batch_window_ms}ms); Ctrl-C or a shutdown "
        f"request stops it"
    )
    try:
        server.wait()
    except KeyboardInterrupt:
        print("interrupted; shutting down")
    finally:
        server.close()
    stats = server.stats()
    print(
        f"served {stats['requests']} request(s): {stats['ok']} ok, "
        f"{stats['errors']} error(s), {stats['batched_runs']} batched "
        f"run(s) covering {stats['batched_requests']} request(s), "
        f"{stats['single_runs']} single run(s)"
    )
    return 0


def _cmd_request(args) -> int:
    """One remote run: parse locally, seed a state, print the evidence."""
    import numpy as np

    from .frontend import parse_stencil
    from .runtime import Bindings, KernelClient, seeded_state

    if args.steps < 1:
        print("request needs at least one step", file=sys.stderr)
        return EXIT_USAGE
    try:
        with open(args.file) as fh:
            spec = fh.read()
    except OSError as exc:
        print(f"cannot read spec file: {exc}", file=sys.stderr)
        return EXIT_USAGE
    sizes = _pairs(args.size, "size", int)
    params = _pairs(args.param, "parameter", float)
    nest = parse_stencil(spec)
    dtype = np.float64 if args.dtype == "f64" else np.float32
    bindings = Bindings(sizes=sizes, params=params, dtype=dtype)
    state = seeded_state(nest, bindings, seed=args.seed)
    with KernelClient(args.socket) as client:
        result = client.run(
            spec,
            state=state,
            sizes=sizes,
            params=params,
            dtype=args.dtype,
            steps=args.steps,
            backend=args.backend,
        )
    print(
        f"kernel {result.kernel_id[:12]} steps={result.steps} "
        f"batched={'yes' if result.batched else 'no'} "
        f"batch_size={result.batch_size}"
    )
    for name in sorted(result.state):
        arr = result.state[name]
        print(
            f"  {name:8s} shape={tuple(arr.shape)} "
            f"norm={float(np.linalg.norm(arr)):.12g}"
        )
    return 0


def _stencil_radius(*kernels) -> int:
    """Widest axis-0 access offset across the kernels' statements — the
    halo width a sharded run of them needs."""
    radius = 0
    for kernel in kernels:
        for region in kernel.regions:
            for st in region.statements:
                for acc in (st.target, *st.reads):
                    for axis, off in acc.slots:
                        if axis == 0:
                            radius = max(radius, abs(off))
    return radius


def _cmd_shard(args) -> int:
    import json
    import os
    import time

    import numpy as np

    from .core import adjoint_loops
    from .runtime import ExecutionConfig, ShardedPlan, compile_nests

    prob = _PROBLEMS[args.problem]()
    dtype = np.float64 if args.dtype == "f64" else np.float32
    if args.n is not None:
        n = args.n
    elif prob.dim >= 3:
        n = 10 if args.quick else 16
    else:
        n = 96 if args.quick else 160
    steps = args.steps if args.steps is not None else (8 if args.quick else 16)
    reps = args.reps
    ranks_list = args.ranks or [1, 2, 4]

    bindings = prob.bindings(n, dtype=dtype)
    fwd = compile_nests([prob.primal], bindings, name=prob.name)
    rev = compile_nests(
        adjoint_loops(prob.primal, prob.adjoint_map), bindings,
        name=prob.name + "_b",
    )
    halo = _stencil_radius(fwd, rev)
    config = ExecutionConfig(backend=args.backend)

    # The timestep rotation: newest history level <- output, older
    # levels shift down.  Problems without history (the convolutions)
    # just apply the kernel repeatedly.
    hist = list(prob.history_fields())
    chain = [prob.output_name, *hist]

    def rotate_np(state):
        for i in range(len(chain) - 1, 0, -1):
            np.copyto(state[chain[i]], state[chain[i - 1]])

    def rotate_sharded(plan):
        for i in range(len(chain) - 1, 0, -1):
            plan.copy(chain[i], chain[i - 1])

    # What the adjoint step exchanges and accumulates, derived from the
    # compiled reverse kernel: reads get fresh halos, written adjoints
    # (all targets except the seed) fold halo contributions back.
    seed_name = prob.output_name + "_b"
    rev_targets = sorted(
        {st.target.name for rg in rev.regions for st in rg.statements}
    )
    rev_reads = sorted(
        {acc.name for rg in rev.regions for st in rg.statements
         for acc in st.reads}
    )
    accumulate = [t for t in rev_targets if t != seed_name]

    # Single-shard references: the bitwise oracle and, re-measured in
    # this run, the machine-speed reference for the baseline gate.
    ref = prob.allocate(n, rng=np.random.default_rng(11), dtype=dtype)
    fwd_plan = fwd.plan(backend=args.backend)
    bound = fwd_plan.bind(ref)
    for _ in range(steps):
        bound.run()
        rotate_np(ref)
    ref_after = {name: ref[name].copy() for name in chain}
    single_times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        for _ in range(steps):
            bound.run()
            rotate_np(ref)
        single_times.append((time.perf_counter() - t0) / steps * 1e6)
    single_us = min(single_times)
    fwd_plan.close()

    adj_ref = prob.allocate_state(n, seed=12, dtype=dtype)
    rev_plan = rev.plan(backend=args.backend)
    rev_plan.bind(adj_ref).run()
    rev_plan.close()

    print(
        f"shard: {prob.name} n={n} steps={steps} backend={args.backend} "
        f"dtype={args.dtype}"
    )
    cases = {}
    all_ok = True
    for nranks in ranks_list:
        state = prob.allocate(n, rng=np.random.default_rng(11), dtype=dtype)
        with ShardedPlan(
            fwd, state, nranks=nranks, halo=halo, config=config
        ) as plan:
            for _ in range(steps):
                plan.step(exchange=hist)
                rotate_sharded(plan)
            got = plan.gather(chain)
            fwd_ok = all(
                np.array_equal(got[name], ref_after[name]) for name in chain
            )
            times = []
            for _ in range(reps):
                t0 = time.perf_counter()
                for _ in range(steps):
                    plan.step(exchange=hist)
                    rotate_sharded(plan)
                times.append((time.perf_counter() - t0) / steps * 1e6)
            sharded_us = min(times)
            effective = plan.effective_nranks
            multiprocess = plan.multiprocess

        astate = prob.allocate_state(n, seed=12, dtype=dtype)
        with ShardedPlan(
            rev, astate, nranks=nranks, halo=halo, config=config
        ) as aplan:
            aplan.step(exchange=rev_reads, accumulate=accumulate)
            agot = aplan.gather(rev_targets)
        adj_ok = all(
            np.array_equal(agot[name], adj_ref[name]) for name in rev_targets
        )

        print(
            f"  ranks={nranks}  "
            f"forward bitwise {'OK' if fwd_ok else 'MISMATCH'}  "
            f"adjoint bitwise {'OK' if adj_ok else 'MISMATCH'}  "
            f"{sharded_us / 1000:.2f} ms/step"
        )
        cases[f"ranks{nranks}"] = {
            "ranks": nranks,
            "effective_nranks": effective,
            "multiprocess": multiprocess,
            "sharded_us_per_step": sharded_us,
            "forward_bitwise": fwd_ok,
            "adjoint_bitwise": adj_ok,
        }
        all_ok = all_ok and fwd_ok and adj_ok

    record = {
        "benchmark": "sharded_plan",
        "problem": prob.name,
        "n": n,
        "steps": steps,
        "backend": args.backend,
        "dtype": args.dtype,
        "reps": reps,
        "halo": halo,
        "cpu_count": os.cpu_count(),
        "single_us_per_step": single_us,
        "unix_time": round(time.time(), 1),
        "cases": cases,
    }
    with open(args.output, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output} (backend={args.backend})")
    if all_ok:
        print("VERDICT: sharded == single-shard, bitwise, at every rank count")
    else:
        print("VERDICT: bitwise contract VIOLATED")
    if args.baseline is not None:
        all_ok = _check_shard_baseline(
            record, args.baseline, args.max_slowdown
        ) and all_ok
    return 0 if all_ok else 1


def _check_shard_baseline(record, baseline_path: str, max_slowdown: float) -> bool:
    """The shard CI perf gate: current record vs a checked-in one.

    Bitwise identity is absolute; the per-step time is compared
    machine-corrected, with the single-shard per-step time of the same
    run as the hardware reference (:func:`_corrected_slowdown`), so a
    slower CI runner fails only on a real sharding regression.
    """
    print(f"shard baseline gate vs {baseline_path} (max slowdown {max_slowdown}x):")
    baseline = _load_baseline(
        record, baseline_path,
        ("benchmark", "problem", "n", "steps", "backend", "dtype"),
        "shard baseline gate",
    )
    if baseline is None:
        return False
    base_cases = baseline.get("cases", {})
    ok = True
    for label, case in record["cases"].items():
        if not (case["forward_bitwise"] and case["adjoint_bitwise"]):
            print(f"  {label:8s} FAIL: lost bitwise identity")
            ok = False
            continue
        base = base_cases.get(label)
        if base is None:
            print(f"  {label:8s} pass (no baseline case)")
            continue
        raw, machine, slowdown = _corrected_slowdown(
            case["sharded_us_per_step"], base["sharded_us_per_step"],
            record["single_us_per_step"], baseline["single_us_per_step"],
        )
        verdict = "pass" if slowdown <= max_slowdown else "FAIL"
        print(
            f"  {label:8s} {verdict}: {case['sharded_us_per_step']:.1f} "
            f"us/step vs baseline {base['sharded_us_per_step']:.1f} us/step "
            f"({raw:.2f}x raw, {machine:.2f}x machine factor, "
            f"{slowdown:.2f}x corrected)"
        )
        if slowdown > max_slowdown:
            ok = False
    print("  shard baseline gate: " + ("PASS" if ok else "FAIL"))
    return ok


def _cmd_loop_counts(args) -> int:
    print(f"{'problem':12s}{'adjoint loop nests':>20s}")
    for name, factory in sorted(_PROBLEMS.items()):
        prob = factory()
        count = len(adjoint_loops(prob.primal, prob.adjoint_map))
        print(f"{name:12s}{count:>20d}")
    return 0


def _dispatch(args) -> int:
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "loop-counts":
        return _cmd_loop_counts(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "fuse":
        return _cmd_fuse(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "adjoint":
        return _cmd_adjoint(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "request":
        return _cmd_request(args)
    if args.command == "shard":
        return _cmd_shard(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exit_code_for(exc)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
