"""Per-statement symbolic differentiation (paper Section 3.3.1).

Given a primal stencil statement ``r(i,...) (+)= f(u(i+o1,...), ...)``,
reverse-mode AD produces one *adjoint scatter statement* per distinct
active input access::

    u_b(i + o_l, ...) += (d f / d u(i + o_l, ...)) * r_b(i, ...)

The partial derivatives are computed with SymPy's symbolic differentiation
(exact, including piecewise-differentiable ``Max``/``Min``, which yield
``Heaviside`` factors).  For large loop bodies the user may instead supply
an *uninterpreted function*; its partials appear as SymPy ``Derivative`` /
``Subs`` objects that back-ends print as calls to externally provided
derivative routines.

The statements produced here still form the scatter operation of
conventional AD; :mod:`repro.core.shift` and :mod:`repro.core.regions`
turn them into gather stencils.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import sympy as sp
from sympy.core.function import AppliedUndef

from .accesses import classify_applied, extract_access
from .loopnest import LoopNest, Statement
from .symbols import array_name

__all__ = [
    "AdjointContribution",
    "adjoint_scatter_statements",
    "adjoint_scatter_loop",
    "tangent_loop",
    "ActivityError",
]


class ActivityError(ValueError):
    """Raised when the activity (adjoint) mapping is inconsistent."""


@dataclass(frozen=True)
class AdjointContribution:
    """One adjoint scatter statement together with its offset vector.

    ``offset`` is the constant offset of the written adjoint access relative
    to the loop counters, i.e. the vector :math:`o` of Section 3.3.2.
    """

    statement: Statement
    offset: tuple[int, ...]


def _adjoint_func_map(
    adjoint_map: Mapping[sp.Basic, sp.Basic],
) -> dict[str, sp.Basic]:
    """Normalise the user-facing map to array-name -> adjoint function."""
    out: dict[str, sp.Basic] = {}
    for prim, adj in adjoint_map.items():
        out[array_name(prim)] = adj
    return out


def adjoint_scatter_statements(
    nest: LoopNest,
    adjoint_map: Mapping[sp.Basic, sp.Basic],
) -> list[AdjointContribution]:
    """Differentiate each statement of *nest*, yielding scatter updates.

    Returns one :class:`AdjointContribution` per (statement, distinct active
    input access) pair, in deterministic order.  This is exactly the
    conventional reverse-mode adjoint of the loop body (the "Adjoint
    Scatter" stage in Figure 2), before any loop transformation.
    """
    by_name = _adjoint_func_map(adjoint_map)
    counters = nest.counters
    contributions: list[AdjointContribution] = []
    # Reverse statement order: reverse-mode AD traverses the body backwards.
    for stmt in reversed(nest.statements):
        out_name = stmt.target_name
        if out_name not in by_name:
            raise ActivityError(
                f"output array {out_name!r} has no adjoint in the adjoint map; "
                "every written array must be active"
            )
        out_adj = by_name[out_name](*stmt.lhs.args)
        accesses, _calls = classify_applied(stmt.rhs, counters)
        for acc in accesses:
            name = array_name(acc)
            if name not in by_name:
                continue  # passive input (e.g. the coefficient array c)
            partial = sp.diff(stmt.rhs, acc)
            if partial == 0:
                continue
            adj_target = by_name[name](*acc.args)
            pat = extract_access(acc, counters)
            contributions.append(
                AdjointContribution(
                    statement=Statement(lhs=adj_target, rhs=partial * out_adj, op="+="),
                    offset=pat.offset_for(counters),
                )
            )
    return contributions


def adjoint_scatter_loop(
    nest: LoopNest,
    adjoint_map: Mapping[sp.Basic, sp.Basic],
    reverse_iteration: bool = False,
) -> LoopNest:
    """The conventional (Tapenade-style) adjoint: a scatter loop nest.

    This is the baseline the paper compares against: all adjoint updates are
    kept at their scattered indices inside a single loop over the *primal*
    iteration space.  ``reverse_iteration`` only matters for code generators
    that print explicit loops (Tapenade iterates backwards); the set of
    updates is order-independent under the associativity assumption of
    Section 3.5.
    """
    contribs = adjoint_scatter_statements(nest, adjoint_map)
    stmts = tuple(c.statement for c in contribs)
    name = (nest.name + "_b" if nest.name else "adjoint_scatter")
    out = LoopNest(
        statements=stmts,
        counters=nest.counters,
        bounds=dict(nest.bounds),
        name=name,
    )
    if reverse_iteration:
        # Represented by metadata-free convention: backends that care emit
        # a downward loop; iteration direction does not change the result.
        pass
    return out


def tangent_loop(
    nest: LoopNest,
    seed_map: Mapping[sp.Basic, sp.Basic],
) -> LoopNest:
    """Forward-mode (tangent) differentiation of the nest.

    ``seed_map`` maps primal arrays to tangent arrays, for both inputs and
    outputs: ``{u: u_d, u_1: u_1_d}``.  The tangent statement for
    ``r(i) (+)= f(...)`` is ``r_d(i) (+)= sum_l df/du(i+o_l) * u_d(i+o_l)``,
    which is again a gather stencil over the same iteration space — this is
    why forward mode needs no loop transformation, and it provides exact
    Jacobian-vector products for the verification suite.
    """
    by_name = _adjoint_func_map(seed_map)
    counters = nest.counters
    out_statements: list[Statement] = []
    for stmt in nest.statements:
        out_name = stmt.target_name
        if out_name not in by_name:
            raise ActivityError(
                f"output array {out_name!r} has no tangent in the seed map"
            )
        accesses, _calls = classify_applied(stmt.rhs, counters)
        total: sp.Expr = sp.Integer(0)
        for acc in accesses:
            name = array_name(acc)
            if name not in by_name:
                continue
            partial = sp.diff(stmt.rhs, acc)
            if partial == 0:
                continue
            total = total + partial * by_name[name](*acc.args)
        out_statements.append(
            Statement(lhs=by_name[out_name](*stmt.lhs.args), rhs=total, op=stmt.op)
        )
    name = (nest.name + "_d" if nest.name else "tangent")
    return LoopNest(
        statements=tuple(out_statements),
        counters=nest.counters,
        bounds=dict(nest.bounds),
        name=name,
    )
