"""Iteration-space splitting (paper Sections 3.3.3 and 3.3.4).

After shifting, adjoint statement ``S_l`` (scatter offset ``o_l``) is valid
on the translated iteration space ``[s_d + o_ld, e_d + o_ld]`` per dimension
``d``.  The *core loop nest* is the intersection of all those boxes,

    [ s_d + max_l o_ld ,  e_d + min_l o_ld ],

where every statement is valid.  The boundary treatment partitions the rest
of the union of the boxes into disjoint rectangular regions, each carrying
exactly the subset of statements valid throughout that region.

The default ("disjoint") strategy reproduces PerforAD's hierarchical,
dimension-by-dimension split: dimension ``d`` is cut at every breakpoint
``s_d + o`` / ``e_d + o`` induced by the offsets *of the statements still
alive in the current slab*, and the remaining dimensions are split
recursively per slab.  For a dense ``n``-point-per-dimension stencil in
``d`` dimensions this yields exactly ``(2n-1)^d`` loop nests; for the 3-D
seven-point star of Section 4.1 it yields the paper's 53 nests.

All bounds are SymPy expressions (affine in size symbols), so the split is
purely symbolic, as in the paper.  Disjointness of the generated regions
requires each dimension's extent to satisfy ``e_d - s_d >= spread_d - 1``
(with ``spread_d = max_l o_ld - min_l o_ld``); the runtime validates this
when concrete sizes are bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import sympy as sp

from .shift import ShiftedStatement

__all__ = ["Region", "split_disjoint", "core_bounds", "union_bounds", "min_extent_required"]


@dataclass(frozen=True)
class Region:
    """A rectangular iteration-space region and the statements valid in it.

    ``bounds`` maps each loop counter to inclusive symbolic bounds.
    ``is_core`` marks the unique region in which *all* statements are valid
    and whose bounds are the full intersection box.
    """

    bounds: dict[sp.Symbol, tuple[sp.Expr, sp.Expr]]
    statements: tuple[ShiftedStatement, ...]
    is_core: bool = False

    def extent(self, sizes: Mapping[sp.Symbol, int], counters: Sequence[sp.Symbol]) -> tuple[int, ...]:
        """Concrete (inclusive) extent per dimension under given sizes."""
        out = []
        for c in counters:
            lo, hi = self.bounds[c]
            out.append(int(hi.subs(sizes)) - int(lo.subs(sizes)) + 1)
        return tuple(out)


def _dim_offsets(stmts: Sequence[ShiftedStatement], d: int) -> list[int]:
    """Sorted distinct scatter offsets of the statements in dimension d."""
    return sorted({s.offset[d] for s in stmts})


def core_bounds(
    stmts: Sequence[ShiftedStatement],
    counters: Sequence[sp.Symbol],
    bounds: Mapping[sp.Symbol, tuple[sp.Expr, sp.Expr]],
) -> dict[sp.Symbol, tuple[sp.Expr, sp.Expr]]:
    """Bounds of the core loop nest (Section 3.3.3)."""
    out = {}
    for d, c in enumerate(counters):
        offs = _dim_offsets(stmts, d)
        lo, hi = bounds[c]
        out[c] = (lo + max(offs), hi + min(offs))
    return out


def union_bounds(
    stmts: Sequence[ShiftedStatement],
    counters: Sequence[sp.Symbol],
    bounds: Mapping[sp.Symbol, tuple[sp.Expr, sp.Expr]],
) -> dict[sp.Symbol, tuple[sp.Expr, sp.Expr]]:
    """Bounding box of the union of all statements' iteration spaces."""
    out = {}
    for d, c in enumerate(counters):
        offs = _dim_offsets(stmts, d)
        lo, hi = bounds[c]
        out[c] = (lo + min(offs), hi + max(offs))
    return out


def min_extent_required(stmts: Sequence[ShiftedStatement], dim: int) -> int:
    """Minimum primal extent (inclusive count) for a valid disjoint split.

    The split's per-segment validity labels assume the primal iteration
    range in each dimension is at least as wide as the statement offset
    spread; below that, left and right remainder segments would overlap.
    """
    offs = _dim_offsets(stmts, dim)
    return (offs[-1] - offs[0]) + 1


def split_disjoint(
    stmts: Sequence[ShiftedStatement],
    counters: Sequence[sp.Symbol],
    bounds: Mapping[sp.Symbol, tuple[sp.Expr, sp.Expr]],
) -> list[Region]:
    """PerforAD's hierarchical disjoint split (Section 3.3.4, default).

    Returns regions in deterministic order (left remainders, core slab,
    right remainders; recursively per dimension).  Every region carries at
    least one statement; region iteration spaces are pairwise disjoint and
    their union is the union of the statements' translated spaces.
    """
    regions: list[Region] = []

    def rec(
        alive: tuple[ShiftedStatement, ...],
        d: int,
        fixed: dict[sp.Symbol, tuple[sp.Expr, sp.Expr]],
        all_core: bool,
    ) -> None:
        if d == len(counters):
            regions.append(
                Region(
                    bounds=dict(fixed),
                    statements=alive,
                    is_core=all_core and len(alive) == len(stmts),
                )
            )
            return
        c = counters[d]
        lo, hi = bounds[c]
        offs = _dim_offsets(alive, d)
        m = len(offs)
        if m == 1:
            # Single offset: one full-width segment, all alive statements.
            fixed[c] = (lo + offs[0], hi + offs[0])
            rec(alive, d + 1, fixed, all_core)
            del fixed[c]
            return
        # Left remainder segments: [lo+offs[t], lo+offs[t+1]-1], statements
        # whose offset in this dimension is <= offs[t].
        for t in range(m - 1):
            seg = (lo + offs[t], lo + offs[t + 1] - 1)
            sub = tuple(s for s in alive if s.offset[d] <= offs[t])
            fixed[c] = seg
            rec(sub, d + 1, fixed, False)
            del fixed[c]
        # Core slab: [lo+max, hi+min], all alive statements valid.
        fixed[c] = (lo + offs[-1], hi + offs[0])
        rec(alive, d + 1, fixed, all_core)
        del fixed[c]
        # Right remainder segments: [hi+offs[t]+1, hi+offs[t+1]], statements
        # whose offset in this dimension is >= offs[t+1].
        for t in range(m - 1):
            seg = (hi + offs[t] + 1, hi + offs[t + 1])
            sub = tuple(s for s in alive if s.offset[d] >= offs[t + 1])
            fixed[c] = seg
            rec(sub, d + 1, fixed, False)
            del fixed[c]

    rec(tuple(stmts), 0, {}, True)
    return regions
