"""The adjoint-stencil pipeline (paper Section 3.3, Figure 2).

``adjoint_loops`` chains the four stages:

1. differentiate each statement per active input access
   (:mod:`repro.core.diff`) — "Adjoint Scatter";
2. shift indices so every statement writes at bare counters
   (:mod:`repro.core.shift`) — "Shift Counters";
3. split the iteration space into the core nest plus boundary nests
   (:mod:`repro.core.regions` / :mod:`repro.core.strategies`);
4. merge statements with a common target inside each region and emit one
   :class:`~repro.core.loopnest.LoopNest` per region — "Loop Generation".

The emitted nests have pairwise-disjoint iteration spaces (for the
``disjoint`` and ``guarded`` strategies), so they can be executed in any
order, in parallel, with no synchronisation between them beyond loop
boundaries — the property the paper's performance results rest on.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import sympy as sp

from .diff import adjoint_scatter_statements
from .loopnest import LoopNest, Statement
from .regions import Region, split_disjoint
from .shift import ShiftedStatement, shift_all
from .strategies import split_guarded, split_padded
from .validate import validate_loop_nest

__all__ = ["adjoint_loops", "region_to_loopnest", "merge_statements", "STRATEGIES"]

STRATEGIES = ("disjoint", "guarded", "padded")


def merge_statements(statements: Sequence[Statement]) -> list[Statement]:
    """Merge ``+=`` statements with identical targets into one per target.

    Section 3.2: inside a region all updates to the same index "can easily
    be merged into a single statement".  Guarded statements are never
    merged (their guards differ).  Order of first appearance is preserved.
    """
    merged: dict[sp.Basic, Statement] = {}
    order: list[sp.Basic] = []
    out_guarded: list[Statement] = []
    for st in statements:
        if st.guard is not None or st.op != "+=":
            out_guarded.append(st)
            continue
        key = st.lhs
        if key in merged:
            prev = merged[key]
            merged[key] = Statement(lhs=key, rhs=prev.rhs + st.rhs, op="+=")
        else:
            merged[key] = st
            order.append(key)
    return [merged[k] for k in order] + out_guarded


def region_to_loopnest(
    region: Region,
    counters: Sequence[sp.Symbol],
    name: str,
    merge: bool = True,
    requires_padding: bool = False,
) -> LoopNest:
    """Emit a loop nest for one region."""
    stmts = [s.statement for s in region.statements]
    if merge:
        stmts = merge_statements(stmts)
    return LoopNest(
        statements=tuple(stmts),
        counters=tuple(counters),
        bounds=region.bounds,
        name=name,
        requires_padding=requires_padding,
    )


def adjoint_loops(
    nest: LoopNest,
    adjoint_map: Mapping[sp.Basic, sp.Basic],
    strategy: str = "disjoint",
    merge: bool = True,
) -> list[LoopNest]:
    """Generate the adjoint stencil loop nests of a primal stencil nest.

    See :meth:`repro.core.loopnest.LoopNest.diff` for the user-facing
    documentation.  The returned list places the core nest last, matching
    PerforAD's output order (remainders first, bulk loop last).
    """
    validate_loop_nest(nest)
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; choose from {STRATEGIES}")

    contribs = adjoint_scatter_statements(nest, adjoint_map)
    if not contribs:
        return []
    shifted: list[ShiftedStatement] = shift_all(contribs, nest.counters)

    if strategy == "disjoint":
        regions = split_disjoint(shifted, nest.counters, nest.bounds)
    elif strategy == "guarded":
        regions = split_guarded(shifted, nest.counters, nest.bounds)
    else:
        regions = split_padded(shifted, nest.counters, nest.bounds)

    base = (nest.name + "_b") if nest.name else "adjoint"
    # Core last; boundaries keep their deterministic generation order.
    boundary = [r for r in regions if not r.is_core]
    core = [r for r in regions if r.is_core]
    ordered = boundary + core
    out: list[LoopNest] = []
    for idx, region in enumerate(ordered):
        label = f"{base}_core" if region.is_core else f"{base}_rem{idx}"
        out.append(
            region_to_loopnest(
                region,
                nest.counters,
                name=label,
                merge=merge,
                requires_padding=(strategy == "padded"),
            )
        )
    return out
