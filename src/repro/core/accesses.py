"""Offset extraction and classification of array accesses.

The paper (Section 3.4) restricts stencil loops to accesses of the form
``u[i_1 + c_1][i_2 + c_2]...`` where ``i_d`` are loop counters and ``c_d``
are compile-time integer constants.  Output arrays are written at a
(possibly permuted sub-)tuple of bare counters.  This module turns SymPy
accesses into :class:`AccessPattern` records carrying the base array, the
counter used in each index slot and the constant offset in that slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import sympy as sp
from sympy.core.function import AppliedUndef

from .symbols import array_name

__all__ = [
    "AccessPattern",
    "extract_access",
    "offset_vector",
    "is_index_like_access",
    "classify_applied",
    "InvalidAccessError",
]


class InvalidAccessError(ValueError):
    """Raised when an array access does not fit the stencil restrictions."""


@dataclass(frozen=True)
class AccessPattern:
    """Decomposition of an access like ``u(i - 1, k + 2)``.

    Attributes
    ----------
    name:
        Array name (``"u"``).
    counters:
        Counter symbol used in each index slot, in slot order.
    offsets:
        Constant integer offset in each slot.
    access:
        The original SymPy access object.
    """

    name: str
    counters: tuple[sp.Symbol, ...]
    offsets: tuple[int, ...]
    access: AppliedUndef

    @property
    def rank(self) -> int:
        return len(self.counters)

    def offset_for(self, loop_counters: Sequence[sp.Symbol]) -> tuple[int, ...]:
        """Offset vector aligned with the loop-nest counter order.

        Counters of the loop nest that do not index this array get offset 0
        (the access is constant along those dimensions).
        """
        out = []
        for c in loop_counters:
            if c in self.counters:
                out.append(self.offsets[self.counters.index(c)])
            else:
                out.append(0)
        return tuple(out)


def _split_index(idx: sp.Expr, loop_counters: Sequence[sp.Symbol]) -> tuple[sp.Symbol, int]:
    """Split an index expression ``i + c`` into (counter, int offset)."""
    idx = sp.sympify(idx)
    present = [c for c in loop_counters if c in idx.free_symbols]
    if len(present) != 1:
        raise InvalidAccessError(
            f"index expression {idx} must contain exactly one loop counter, "
            f"found {present}"
        )
    counter = present[0]
    offset = sp.expand(idx - counter)
    if not offset.is_Integer:
        raise InvalidAccessError(
            f"index expression {idx} is not 'counter + integer constant' "
            f"(offset {offset} is not a compile-time integer)"
        )
    return counter, int(offset)


def extract_access(
    access: AppliedUndef, loop_counters: Sequence[sp.Symbol]
) -> AccessPattern:
    """Decompose an array access into counters and constant offsets.

    Raises :class:`InvalidAccessError` for accesses that violate the
    restrictions of Section 3.4 (non-affine indices, runtime-dependent
    offsets, repeated counters in one access).
    """
    if not isinstance(access, AppliedUndef):
        raise InvalidAccessError(f"not an array access: {access!r}")
    ctrs: list[sp.Symbol] = []
    offs: list[int] = []
    for idx in access.args:
        c, o = _split_index(idx, loop_counters)
        ctrs.append(c)
        offs.append(o)
    if len(set(ctrs)) != len(ctrs):
        raise InvalidAccessError(
            f"access {access} uses the same loop counter in two index slots"
        )
    return AccessPattern(
        name=array_name(access),
        counters=tuple(ctrs),
        offsets=tuple(offs),
        access=access,
    )


def offset_vector(
    access: AppliedUndef, loop_counters: Sequence[sp.Symbol]
) -> tuple[int, ...]:
    """Constant offset of *access* relative to the loop counters.

    Convenience wrapper: ``offset_vector(u(i-1, j+2), [i, j]) == (-1, 2)``.
    """
    return extract_access(access, loop_counters).offset_for(loop_counters)


def is_index_like_access(
    applied: AppliedUndef, loop_counters: Sequence[sp.Symbol]
) -> bool:
    """True if *applied* is a proper array access (all args counter+const).

    Applications of undefined functions whose arguments are themselves
    expressions over array accesses are *uninterpreted stencil functions*
    (Section 3.3.1), not array accesses.
    """
    try:
        extract_access(applied, loop_counters)
    except InvalidAccessError:
        return False
    return True


def classify_applied(
    expr: sp.Expr, loop_counters: Sequence[sp.Symbol]
) -> tuple[list[AppliedUndef], list[AppliedUndef]]:
    """Split the undefined-function applications of *expr*.

    Returns ``(accesses, calls)``: proper array accesses and uninterpreted
    function calls, each sorted deterministically.  Nested accesses inside
    an uninterpreted call are reported in ``accesses`` as well.
    """
    accesses: list[AppliedUndef] = []
    calls: list[AppliedUndef] = []
    for node in sorted(expr.atoms(AppliedUndef), key=sp.default_sort_key):
        if is_index_like_access(node, loop_counters):
            accesses.append(node)
        elif any(arg.atoms(AppliedUndef) for arg in node.args):
            calls.append(node)  # uninterpreted function over accesses
        elif any(c in node.free_symbols for c in loop_counters):
            # Depends on counters but is not 'counter + const' in every slot:
            # a malformed array access, not an uninterpreted function.
            raise InvalidAccessError(
                f"access {node} does not use 'counter + integer constant' indices"
            )
        else:
            calls.append(node)  # scalar uninterpreted function, passive
    return accesses, calls
