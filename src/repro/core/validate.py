"""Restriction checking (paper Section 3.4).

PerforAD's transformation is only valid for loop nests satisfying:

* the nest is perfect (here structural: a :class:`LoopNest` is perfect by
  construction, so we check the statement forms instead);
* output arrays are written at (a permuted subset of) bare loop counters;
* input arrays are read at ``counter + compile-time integer constant``;
* the sets of read and written arrays do not intersect (an array may be
  incremented with ``+=``, which reads and writes the same array, but may
  not appear on both sides otherwise);
* loop bounds are affine in size parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import sympy as sp
from sympy.core.function import AppliedUndef

from ..errors import ValidationError
from .accesses import InvalidAccessError, classify_applied, extract_access
from .loopnest import LoopNest, Statement
from .symbols import array_name

__all__ = [
    "StencilRestrictionError",
    "validate_loop_nest",
    "validate_statement",
    "SpecLimits",
    "DEFAULT_SPEC_LIMITS",
    "validate_untrusted",
]


class StencilRestrictionError(ValidationError):
    """A loop nest violates the restrictions of Section 3.4.

    Subclasses :class:`~repro.errors.ValidationError` (and therefore
    ``ValueError``, its historical base) so spec rejections are part of
    the typed graceful-degradation surface.
    """


def _check_affine(expr: sp.Expr, counters: tuple[sp.Symbol, ...], what: str) -> None:
    expr = sp.sympify(expr)
    for c in counters:
        if c in expr.free_symbols:
            raise StencilRestrictionError(
                f"{what} {expr} depends on loop counter {c}; bounds must not"
            )
    poly_syms = sorted(expr.free_symbols, key=lambda s: s.name)
    if poly_syms:
        try:
            poly = sp.Poly(expr, *poly_syms)
        except sp.PolynomialError as exc:
            raise StencilRestrictionError(f"{what} {expr} is not affine") from exc
        if poly.total_degree() > 1:
            raise StencilRestrictionError(f"{what} {expr} is not affine (degree > 1)")


def validate_statement(stmt: Statement, counters: tuple[sp.Symbol, ...]) -> None:
    """Validate one statement against the access-form restrictions."""
    # Output: written at bare counters (permuted subset allowed).
    lhs_pat = extract_access(stmt.lhs, counters)
    if any(o != 0 for o in lhs_pat.offsets):
        raise StencilRestrictionError(
            f"output access {stmt.lhs} must use bare loop counters "
            f"(offsets {lhs_pat.offsets})"
        )

    written = stmt.target_name
    try:
        accesses, _calls = classify_applied(stmt.rhs, counters)
    except InvalidAccessError as exc:
        raise StencilRestrictionError(str(exc)) from exc
    for acc in accesses:
        if array_name(acc) == written:
            raise StencilRestrictionError(
                f"array {written} is both read and written in {stmt}; "
                "read/write sets must not intersect (Section 3.4)"
            )


def validate_loop_nest(nest: LoopNest) -> None:
    """Validate a whole nest; raises :class:`StencilRestrictionError`."""
    if len(set(nest.counters)) != len(nest.counters):
        raise StencilRestrictionError("duplicate loop counters in nest")
    for c in nest.counters:
        lo, hi = nest.bounds[c]
        _check_affine(lo, nest.counters, f"lower bound of {c}")
        _check_affine(hi, nest.counters, f"upper bound of {c}")
    written: set[str] = set()
    read: set[str] = set()
    for stmt in nest.statements:
        validate_statement(stmt, nest.counters)
        written.add(stmt.target_name)
        read |= {array_name(a) for a in stmt.read_accesses()}
    overlap = written & read
    if overlap:
        raise StencilRestrictionError(
            f"arrays {sorted(overlap)} are both read and written in the nest"
        )


# -- resource limits for untrusted specs --------------------------------------


@dataclass(frozen=True)
class SpecLimits:
    """Resource caps applied to kernel specs from untrusted sources.

    The frontend (ROADMAP item 2: the compile-and-serve daemon) accepts
    stencil programs over the wire; an adversarial — or merely buggy —
    spec must be rejected with a typed
    :class:`~repro.errors.ValidationError` *before* it can exhaust the
    process: a megabyte of nested parentheses (parser recursion), a
    statement with millions of expression nodes (lambdify/codegen
    blow-up), or loop bounds sized to allocate the address space.  The
    defaults are far above anything the paper's stencils need, so
    trusted in-process callers never notice them.
    """

    max_source_bytes: int = 1 << 20  # 1 MiB of stencil text
    max_statements: int = 512  # per stencil
    max_expr_nodes: int = 20_000  # sympy nodes per statement
    max_counters: int = 8  # loop-nest dimensionality
    # Each grammar level costs ~5 interpreter stack frames
    # (expr/term/unary/power/atom), so the cap must stay well under a
    # fifth of sys.getrecursionlimit() or RecursionError fires first.
    max_expr_depth: int = 100  # parser recursion depth
    max_loop_extent: int = 1 << 32  # concrete iterations per axis


DEFAULT_SPEC_LIMITS = SpecLimits()


def _expr_nodes(expr: sp.Expr) -> int:
    return sum(1 for _ in sp.preorder_traversal(expr))


def validate_untrusted(
    nest: LoopNest, limits: SpecLimits = DEFAULT_SPEC_LIMITS
) -> None:
    """Enforce *limits* on a parsed nest; raises :class:`ValidationError`.

    Complements :func:`validate_loop_nest` (which checks the paper's
    *semantic* restrictions): this checks *resource* bounds — statement
    and dimension counts, per-statement expression size, and concrete
    loop extents.  Symbolic bounds are checked again at bind time when
    sizes become concrete; here only literal extents can be judged.
    """
    if len(nest.counters) > limits.max_counters:
        raise ValidationError(
            f"nest {nest.name!r} has {len(nest.counters)} loop counters; "
            f"the limit is {limits.max_counters}"
        )
    if len(nest.statements) > limits.max_statements:
        raise ValidationError(
            f"nest {nest.name!r} has {len(nest.statements)} statements; "
            f"the limit is {limits.max_statements}"
        )
    for stmt in nest.statements:
        nodes = _expr_nodes(stmt.rhs) + _expr_nodes(stmt.lhs)
        if nodes > limits.max_expr_nodes:
            raise ValidationError(
                f"statement writing {stmt.target_name!r} has {nodes} "
                f"expression nodes; the limit is {limits.max_expr_nodes}"
            )
    for c in nest.counters:
        lo, hi = nest.bounds[c]
        extent = sp.simplify(sp.sympify(hi) - sp.sympify(lo) + 1)
        if extent.is_Integer and int(extent) > limits.max_loop_extent:
            raise ValidationError(
                f"loop {c} spans {int(extent)} iterations; the limit is "
                f"{limits.max_loop_extent}"
            )
