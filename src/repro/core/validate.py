"""Restriction checking (paper Section 3.4).

PerforAD's transformation is only valid for loop nests satisfying:

* the nest is perfect (here structural: a :class:`LoopNest` is perfect by
  construction, so we check the statement forms instead);
* output arrays are written at (a permuted subset of) bare loop counters;
* input arrays are read at ``counter + compile-time integer constant``;
* the sets of read and written arrays do not intersect (an array may be
  incremented with ``+=``, which reads and writes the same array, but may
  not appear on both sides otherwise);
* loop bounds are affine in size parameters.
"""

from __future__ import annotations

import sympy as sp
from sympy.core.function import AppliedUndef

from .accesses import InvalidAccessError, classify_applied, extract_access
from .loopnest import LoopNest, Statement
from .symbols import array_name

__all__ = ["StencilRestrictionError", "validate_loop_nest", "validate_statement"]


class StencilRestrictionError(ValueError):
    """A loop nest violates the restrictions of Section 3.4."""


def _check_affine(expr: sp.Expr, counters: tuple[sp.Symbol, ...], what: str) -> None:
    expr = sp.sympify(expr)
    for c in counters:
        if c in expr.free_symbols:
            raise StencilRestrictionError(
                f"{what} {expr} depends on loop counter {c}; bounds must not"
            )
    poly_syms = sorted(expr.free_symbols, key=lambda s: s.name)
    if poly_syms:
        try:
            poly = sp.Poly(expr, *poly_syms)
        except sp.PolynomialError as exc:
            raise StencilRestrictionError(f"{what} {expr} is not affine") from exc
        if poly.total_degree() > 1:
            raise StencilRestrictionError(f"{what} {expr} is not affine (degree > 1)")


def validate_statement(stmt: Statement, counters: tuple[sp.Symbol, ...]) -> None:
    """Validate one statement against the access-form restrictions."""
    # Output: written at bare counters (permuted subset allowed).
    lhs_pat = extract_access(stmt.lhs, counters)
    if any(o != 0 for o in lhs_pat.offsets):
        raise StencilRestrictionError(
            f"output access {stmt.lhs} must use bare loop counters "
            f"(offsets {lhs_pat.offsets})"
        )

    written = stmt.target_name
    try:
        accesses, _calls = classify_applied(stmt.rhs, counters)
    except InvalidAccessError as exc:
        raise StencilRestrictionError(str(exc)) from exc
    for acc in accesses:
        if array_name(acc) == written:
            raise StencilRestrictionError(
                f"array {written} is both read and written in {stmt}; "
                "read/write sets must not intersect (Section 3.4)"
            )


def validate_loop_nest(nest: LoopNest) -> None:
    """Validate a whole nest; raises :class:`StencilRestrictionError`."""
    if len(set(nest.counters)) != len(nest.counters):
        raise StencilRestrictionError("duplicate loop counters in nest")
    for c in nest.counters:
        lo, hi = nest.bounds[c]
        _check_affine(lo, nest.counters, f"lower bound of {c}")
        _check_affine(hi, nest.counters, f"upper bound of {c}")
    written: set[str] = set()
    read: set[str] = set()
    for stmt in nest.statements:
        validate_statement(stmt, nest.counters)
        written.add(stmt.target_name)
        read |= {array_name(a) for a in stmt.read_accesses()}
    overlap = written & read
    if overlap:
        raise StencilRestrictionError(
            f"arrays {sorted(overlap)} are both read and written in the nest"
        )
