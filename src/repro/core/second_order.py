"""Second-order derivatives: tangent-over-adjoint (forward-over-reverse).

The adjoint stencil loop nests produced by :func:`adjoint_loops` are
themselves valid gather stencil loop nests, so the forward-mode
transformation (:func:`~repro.core.diff.tangent_loop`) applies to *them*
directly — yielding loop nests that compute Hessian-vector products

    H v = d/de [ grad J(x + e v) ] |_{e=0},    J(x) = < w, stencil(x) >

with the same gather structure and the same parallelisability as the
first-order adjoint.  This composition is the natural extension of the
paper's machinery to second order (the original work stops at first
order; the transformations compose because each stage's output satisfies
the Section 3.4 restrictions again).

Piecewise factors (Heaviside from upwinding) differentiate to
``DiracDelta`` terms, which vanish almost everywhere; the runtime
evaluates them as zero, matching the standard AD convention for kinks.
"""

from __future__ import annotations

from typing import Mapping

import sympy as sp

from .diff import tangent_loop
from .loopnest import LoopNest
from .transform import adjoint_loops

__all__ = ["second_order_nests", "tangent_map_for"]


def tangent_map_for(
    adjoint_map: Mapping[sp.Basic, sp.Basic], suffix: str = "_d"
) -> dict[sp.Basic, sp.Basic]:
    """Tangent (directional) arrays for every primal and adjoint array.

    ``{u: u_d, u_b: u_b_d, ...}`` — primal tangents carry the direction
    ``v``; adjoint tangents carry the Hessian-vector product.
    """
    seeds: dict[sp.Basic, sp.Basic] = {}
    for prim, adj in adjoint_map.items():
        seeds[prim] = sp.Function(prim.__name__ + suffix)
        seeds[adj] = sp.Function(adj.__name__ + suffix)
    return seeds


def second_order_nests(
    nest: LoopNest,
    adjoint_map: Mapping[sp.Basic, sp.Basic],
    strategy: str = "disjoint",
    suffix: str = "_d",
) -> list[LoopNest]:
    """Loop nests computing the Hessian-vector product of a stencil.

    Returns the tangent of every adjoint nest.  To evaluate ``H v`` for
    ``J(x) = <w, stencil(x)>``: bind the primal arrays to ``x``, the
    primal tangents (``u_d``) to the direction ``v``, the output adjoint
    (``r_b``) to ``w``, its tangent (``r_b_d``) to zero, zero-initialise
    the input-adjoint tangents (``u_b_d``) and execute; ``u_b_d``
    accumulates ``H v`` restricted to each active input.
    """
    adjoints = adjoint_loops(nest, adjoint_map, strategy=strategy)
    seeds = tangent_map_for(adjoint_map, suffix=suffix)
    return [tangent_loop(adj_nest, seeds) for adj_nest in adjoints]
