"""Core of the reproduction: the adjoint-stencil transformation (paper §3).

Public entry points:

* :func:`repro.core.loopnest.make_loop_nest` — build a stencil loop nest
  from a SymPy expression (PerforAD's ``makeLoopNest``).
* :meth:`repro.core.loopnest.LoopNest.diff` — generate adjoint stencil
  loop nests (core + boundary, all gather-form).
* :meth:`repro.core.loopnest.LoopNest.tangent` — forward-mode loop nest.
"""

from .accesses import AccessPattern, InvalidAccessError, extract_access, offset_vector
from .diff import (
    ActivityError,
    AdjointContribution,
    adjoint_scatter_loop,
    adjoint_scatter_statements,
    tangent_loop,
)
from .loopnest import LoopNest, Statement, make_loop_nest
from .regions import Region, core_bounds, split_disjoint, union_bounds
from .shift import ShiftedStatement, shift_all, shift_contribution
from .strategies import split_guarded, split_padded
from .symbols import (
    adjoint_name,
    array,
    arrays,
    counters,
    make_adjoint_function,
    scalars,
)
from .transform import STRATEGIES, adjoint_loops, merge_statements
from .validate import StencilRestrictionError, validate_loop_nest

__all__ = [
    "AccessPattern",
    "ActivityError",
    "AdjointContribution",
    "InvalidAccessError",
    "LoopNest",
    "Region",
    "ShiftedStatement",
    "STRATEGIES",
    "Statement",
    "StencilRestrictionError",
    "adjoint_loops",
    "adjoint_name",
    "adjoint_scatter_loop",
    "adjoint_scatter_statements",
    "array",
    "arrays",
    "core_bounds",
    "counters",
    "extract_access",
    "make_adjoint_function",
    "make_loop_nest",
    "merge_statements",
    "offset_vector",
    "scalars",
    "shift_all",
    "shift_contribution",
    "split_disjoint",
    "split_guarded",
    "split_padded",
    "tangent_loop",
    "union_bounds",
    "validate_loop_nest",
]
