"""The :class:`LoopNest` intermediate representation.

A ``LoopNest`` is the paper's central object (Figure 4/6 input scripts):
a perfect loop nest whose innermost body is one or more array assignments
or increments with stencil-shaped accesses.  ``make_loop_nest`` mirrors
PerforAD's ``makeLoopNest`` entry point; ``LoopNest.diff`` mirrors
``LoopNest.diff`` and produces the adjoint stencil loop nests described
in Section 3.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

import sympy as sp
from sympy.core.function import AppliedUndef

from .accesses import extract_access
from .symbols import array_name

__all__ = ["Statement", "LoopNest", "make_loop_nest"]


@dataclass(frozen=True)
class Statement:
    """A single assignment (``=``) or increment (``+=``) statement.

    ``lhs`` is an array access whose indices are loop counters plus constant
    offsets; ``rhs`` is an arbitrary SymPy expression over array accesses,
    scalar parameters and the loop counters.  ``guard`` is an optional SymPy
    boolean; when present the statement only executes where the guard holds
    (used by the "guarded" boundary strategy of Section 3.3.4).
    """

    lhs: AppliedUndef
    rhs: sp.Expr
    op: str = "="  # "=" or "+="
    guard: sp.Basic | None = None

    def __post_init__(self) -> None:
        if self.op not in ("=", "+="):
            raise ValueError(f"unsupported statement operator {self.op!r}")
        if not isinstance(self.lhs, AppliedUndef):
            raise TypeError(f"statement target must be an array access, got {self.lhs!r}")

    @property
    def target_name(self) -> str:
        return array_name(self.lhs)

    def read_accesses(self) -> list[AppliedUndef]:
        """Distinct array accesses read by this statement.

        For ``+=`` the target is also read, but that read is represented by
        the operator itself, not listed here.
        """
        return sorted(self.rhs.atoms(AppliedUndef), key=sp.default_sort_key)

    def subs(self, *args, **kwargs) -> "Statement":
        """Apply a SymPy substitution to both sides (guard included)."""
        guard = self.guard.subs(*args, **kwargs) if self.guard is not None else None
        return Statement(
            lhs=self.lhs.subs(*args, **kwargs),
            rhs=self.rhs.subs(*args, **kwargs),
            op=self.op,
            guard=guard,
        )

    def with_guard(self, guard: sp.Basic | None) -> "Statement":
        return Statement(lhs=self.lhs, rhs=self.rhs, op=self.op, guard=guard)

    def __str__(self) -> str:
        op = self.op
        body = f"{self.lhs} {op} {self.rhs}"
        if self.guard is not None:
            return f"if {self.guard}: {body}"
        return body


@dataclass(frozen=True)
class LoopNest:
    """A perfect rectangular loop nest around a list of stencil statements.

    Attributes
    ----------
    statements:
        Innermost-body statements, executed in order for every iteration.
    counters:
        Loop counters, outermost first.
    bounds:
        Inclusive bounds per counter: ``{i: (lo, hi)}``; ``lo``/``hi`` are
        SymPy expressions, affine in size symbols such as ``n``.
    name:
        Optional label used by code generators.
    requires_padding:
        True for nests produced by the "padded" boundary strategy, whose
        correctness relies on zero-padded halo regions (Section 3.3.4).
    """

    statements: tuple[Statement, ...]
    counters: tuple[sp.Symbol, ...]
    bounds: Mapping[sp.Symbol, tuple[sp.Expr, sp.Expr]]
    name: str = ""
    requires_padding: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "statements", tuple(self.statements))
        object.__setattr__(self, "counters", tuple(self.counters))
        norm = {}
        for c in self.counters:
            if c not in self.bounds:
                raise ValueError(f"no bounds given for counter {c}")
            lo, hi = self.bounds[c]
            norm[c] = (sp.sympify(lo), sp.sympify(hi))
        object.__setattr__(self, "bounds", norm)

    # -- basic queries ---------------------------------------------------

    @property
    def dim(self) -> int:
        return len(self.counters)

    def bound(self, counter: sp.Symbol) -> tuple[sp.Expr, sp.Expr]:
        return self.bounds[counter]

    def written_arrays(self) -> list[str]:
        """Names of arrays written by the nest (deterministic order)."""
        seen: dict[str, None] = {}
        for st in self.statements:
            seen.setdefault(st.target_name, None)
        return list(seen)

    def read_arrays(self) -> list[str]:
        """Names of arrays read by the nest (deterministic order)."""
        seen: dict[str, None] = {}
        for st in self.statements:
            for acc in st.read_accesses():
                seen.setdefault(array_name(acc), None)
        return list(seen)

    def size_symbols(self) -> list[sp.Symbol]:
        """Free symbols appearing in the loop bounds (e.g. ``n``)."""
        syms: set[sp.Symbol] = set()
        for lo, hi in self.bounds.values():
            syms |= lo.free_symbols | hi.free_symbols
        return sorted(syms, key=lambda s: s.name)

    def scalar_parameters(self) -> list[sp.Symbol]:
        """Non-counter, non-size scalar symbols read by the statements."""
        syms: set[sp.Symbol] = set()
        for st in self.statements:
            syms |= st.rhs.free_symbols
            if st.guard is not None:
                syms |= st.guard.free_symbols
        syms -= set(self.counters)
        syms -= set(self.size_symbols())
        return sorted(syms, key=lambda s: s.name)

    # -- transformations --------------------------------------------------

    def subs(self, *args, **kwargs) -> "LoopNest":
        """Substitute into statements *and* bounds (counters are preserved)."""
        stmts = tuple(st.subs(*args, **kwargs) for st in self.statements)
        bounds = {
            c: (lo.subs(*args, **kwargs), hi.subs(*args, **kwargs))
            for c, (lo, hi) in self.bounds.items()
        }
        return replace(self, statements=stmts, bounds=bounds)

    def with_name(self, name: str) -> "LoopNest":
        return replace(self, name=name)

    def iteration_count(self, sizes: Mapping[sp.Symbol, int] | None = None) -> sp.Expr:
        """Number of iterations, symbolically or with sizes substituted."""
        total: sp.Expr = sp.Integer(1)
        for c in self.counters:
            lo, hi = self.bounds[c]
            total *= hi - lo + 1
        if sizes:
            total = total.subs(sizes)
        return sp.expand(total)

    # -- differentiation (the paper's contribution) ------------------------

    def diff(
        self,
        adjoint_map: Mapping[sp.Basic, sp.Basic],
        strategy: str = "disjoint",
        merge: bool = True,
    ) -> list["LoopNest"]:
        """Generate adjoint stencil loop nests (Section 3.3).

        ``adjoint_map`` maps primal array functions to their adjoint array
        functions, e.g. ``{u: u_b, u_1: u_1_b}``; arrays not in the map are
        passive.  The map must contain every written (output) array of the
        nest.  ``strategy`` selects the boundary treatment: ``"disjoint"``
        (default, the paper's implementation), ``"guarded"`` or ``"padded"``.
        Returns the list of adjoint loop nests: boundary nests plus the core
        nest, in a deterministic order with disjoint iteration spaces.
        """
        from .transform import adjoint_loops  # local import: avoids cycle

        return adjoint_loops(self, adjoint_map, strategy=strategy, merge=merge)

    def tangent(self, seed_map: Mapping[sp.Basic, sp.Basic]) -> "LoopNest":
        """Generate the forward-mode (tangent) loop nest.

        The tangent of a gather stencil is itself a gather stencil with the
        same iteration space, so no loop transformation is needed.  Used for
        exact Jacobian-vector products in the verification suite.
        """
        from .diff import tangent_loop  # local import: avoids cycle

        return tangent_loop(self, seed_map)

    def __str__(self) -> str:
        hdr = ", ".join(
            f"{c} in [{self.bounds[c][0]}, {self.bounds[c][1]}]" for c in self.counters
        )
        body = "\n  ".join(str(st) for st in self.statements)
        label = f" '{self.name}'" if self.name else ""
        return f"LoopNest{label}({hdr}):\n  {body}"


def make_loop_nest(
    lhs: AppliedUndef,
    rhs: sp.Expr,
    counters: Sequence[sp.Symbol],
    bounds: Mapping[sp.Symbol, Sequence[sp.Expr]],
    op: str = "=",
    name: str = "",
) -> LoopNest:
    """Build a single-statement stencil loop nest (PerforAD ``makeLoopNest``).

    Parameters mirror Figure 4 of the paper: ``lhs`` is the written access
    (e.g. ``u(i, j, k)``), ``rhs`` the stencil expression, ``counters`` the
    loop counters outermost-first, and ``bounds`` a dict mapping each counter
    to ``[lo, hi]`` (inclusive).  The nest is validated against the
    restrictions of Section 3.4.
    """
    from .validate import validate_loop_nest  # local import: avoids cycle

    stmt = Statement(lhs=lhs, rhs=sp.sympify(rhs), op=op)
    nest = LoopNest(
        statements=(stmt,),
        counters=tuple(counters),
        bounds={c: (b[0], b[1]) for c, b in bounds.items()},
        name=name,
    )
    validate_loop_nest(nest)
    return nest
