"""Dependence-aware statement fusion: which statement chains may share a loop.

The native backend (PR 4) lowers each compiled statement to its own C
loop nest, so a timestep of the paper's adjoint kernels makes one memory
sweep per statement.  This module decides — purely from the statements'
access footprints, the same ``(axis, offset)`` slot geometry that
:mod:`repro.core.accesses` extracts — which *contiguous* runs of
statements may instead execute interleaved inside a single loop nest,
PyOP2's "hard fusion" question asked of the gather-form stencil IR.

The model
---------

A fused group iterates the union of its members' boxes in lexicographic
order (axis 0 outermost) and executes, at each point (or row), every
member statement in original order, each guarded to its own box.  That
reorders work: statement ``b`` no longer waits for *all* of statement
``a`` — only for the points of ``a`` already visited.  Fusion is legal
exactly when no statement can observe the difference, which is the
classic dependence-distance condition evaluated on constant offsets:

* **flow** (``a`` writes what ``b`` reads): every value ``b`` reads must
  already be written, so the distance ``read_b - write_a`` must be
  lexicographically non-positive;
* **anti** (``a`` reads what ``b`` writes): ``b`` must not overwrite a
  value ``a`` has yet to read, so ``read_a - write_b`` must be
  lexicographically non-negative;
* **output** (both write): the later statement's write must land last,
  so ``write_b - write_a`` must be lexicographically non-positive.

``+=`` targets are read-modify-writes and contribute their target
offsets to the read set as well.  Distances are only defined when the
two accesses address the array through the *same* slot-to-axis map;
anything else (a transposed read of a written array) is unanalyzable
and rejects the pair.  All conditions are checked pairwise over the
full lexicographic order, which is sound for both granularities the
emitter uses (point-interleaved for equal boxes, row-interleaved for
unequal ones): row execution only ever *delays* the later statement
relative to the point order.

This module is pure analysis — no codegen, no NumPy, no runtime
imports.  Statements are duck-typed
:class:`~repro.runtime.compiler.CompiledStatement` objects; callers
(:mod:`repro.runtime.bound`) supply the per-statement eligibility
verdicts of the native backend as ``blocker`` strings.

>>> from repro.core.fusion import FusionEntry, plan_groups
>>> class Acc:  # stand-in for CompiledAccess
...     def __init__(self, name, slots): self.name, self.slots = name, slots
>>> class St:
...     def __init__(self, target, reads, op="="):
...         self.target, self.reads, self.op = target, reads, op
>>> write_u = St(Acc("u", ((0, 0),)), (Acc("v", ((0, 0),)),))
>>> read_u_left = St(Acc("w", ((0, 0),)), (Acc("u", ((0, -1),)),))
>>> groups = plan_groups([
...     FusionEntry(write_u, ((1, 8),), 1, "float64"),
...     FusionEntry(read_u_left, ((1, 8),), 1, "float64"),
... ])
>>> len(groups), groups[0].fused   # u[i-1] is already written: fusable
(1, True)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "FusionEntry",
    "FusionGroup",
    "MAX_GROUP_STATEMENTS",
    "fusable_pair",
    "parallel_safe_group",
    "plan_groups",
    "describe_groups",
]

Box = tuple[tuple[int, int], ...]

# Generated source (and compile time) grows with group size; the paper's
# kernels top out well below this, so the cap only guards degenerate
# machine-generated statement streams.
MAX_GROUP_STATEMENTS = 32


@dataclass(frozen=True)
class FusionEntry:
    """One statement of the serial execution stream, as fusion sees it.

    ``stmt`` is a compiled statement (duck-typed: ``target``/``reads``
    are accesses with ``name`` and ``slots``, ``op`` is ``"="`` or
    ``"+="``); ``box`` its guard-intersected iteration box; ``blocker``
    a human reason this statement cannot enter any fused group (native
    ineligibility, a bind-time fallback), or None when it is a
    candidate.
    """

    stmt: object
    box: Box
    dim: int
    dtype: str
    blocker: str | None = None


@dataclass(frozen=True)
class FusionGroup:
    """A maximal contiguous run of mutually fusable statements.

    ``reason`` records why this group could not extend the *previous*
    group (None for the first group): the dependence or eligibility
    verdict ``repro fuse --explain`` prints.
    """

    entries: tuple[FusionEntry, ...]
    reason: str | None = None

    @property
    def fused(self) -> bool:
        """True when the group merges more than one statement."""
        return len(self.entries) > 1


# -- dependence distances ------------------------------------------------------


def _lex_sign(delta: Sequence[int]) -> int:
    """Sign of the first nonzero component (axis 0 outermost)."""
    for d in delta:
        if d:
            return 1 if d > 0 else -1
    return 0


def _axis_deltas(writer_slots, other_slots, dim: int) -> tuple[int, ...] | None:
    """Per-axis iteration distance ``other - writer``, or None.

    Defined only when both accesses are full-rank over the frame and
    address the array through the same slot-to-axis map; a mismatch
    means the constant-offset distance model does not apply and the
    caller must reject the pair.
    """
    writer_axes = tuple(axis for axis, _ in writer_slots)
    if writer_axes != tuple(axis for axis, _ in other_slots):
        return None
    if sorted(writer_axes) != list(range(dim)):
        return None
    delta = [0] * dim
    for (axis, w_off), (_, o_off) in zip(writer_slots, other_slots):
        delta[axis] = o_off - w_off
    return tuple(delta)


def _accesses(stmt) -> tuple[list, list]:
    """*stmt*'s (writes, reads) as ``(name, slots)`` pairs.

    ``+=`` targets read the old value at the written offsets, so they
    appear in both sets.
    """
    writes = [(stmt.target.name, stmt.target.slots)]
    reads = [(acc.name, acc.slots) for acc in stmt.reads]
    if stmt.op == "+=":
        reads.append((stmt.target.name, stmt.target.slots))
    return writes, reads


def fusable_pair(a: FusionEntry, b: FusionEntry) -> str | None:
    """Why *a* (earlier) and *b* (later) must not share a loop nest, or None.

    Checks every dependence between the pair's footprints under the
    lexicographic execution order of the fused nest; the returned string
    is the first violated condition, phrased for ``--explain``.
    """
    if a.dim != b.dim or a.dtype != b.dtype:
        return (
            f"incompatible statement kinds "
            f"(dim {a.dim}/{b.dim}, dtype {a.dtype}/{b.dtype})"
        )
    dim = a.dim
    writes_a, reads_a = _accesses(a.stmt)
    writes_b, reads_b = _accesses(b.stmt)
    for name, w_slots in writes_a:
        for r_name, r_slots in reads_b:
            if r_name != name:
                continue
            delta = _axis_deltas(w_slots, r_slots, dim)
            if delta is None:
                return (
                    f"read of {name!r} not aligned with its writer "
                    f"(different slot-axis maps; distance unanalyzable)"
                )
            if _lex_sign(delta) > 0:
                return (
                    f"flow dependence on {name!r}: consumer reads at "
                    f"distance {delta} ahead of the producer"
                )
        for w_name, w2_slots in writes_b:
            if w_name != name:
                continue
            delta = _axis_deltas(w_slots, w2_slots, dim)
            if delta is None:
                return (
                    f"two writes of {name!r} through different slot-axis "
                    f"maps (distance unanalyzable)"
                )
            if _lex_sign(delta) > 0:
                return (
                    f"output dependence on {name!r}: the later write would "
                    f"land at distance {delta} before the earlier one"
                )
    for name, w_slots in writes_b:
        for r_name, r_slots in reads_a:
            if r_name != name:
                continue
            delta = _axis_deltas(w_slots, r_slots, dim)
            if delta is None:
                return (
                    f"read of {name!r} not aligned with its later writer "
                    f"(different slot-axis maps; distance unanalyzable)"
                )
            if _lex_sign(delta) < 0:
                return (
                    f"anti dependence on {name!r}: the fused nest would "
                    f"overwrite at distance {delta} before the earlier "
                    f"statement reads"
                )
    return None


# -- outer-axis thread partitioning --------------------------------------------


def parallel_safe_group(entries: Sequence[FusionEntry]) -> str | None:
    """Why *entries*' fused nest cannot partition axis 0 across threads.

    Returns None when a contiguous block decomposition of the outermost
    axis is race-free and order-preserving.  A single statement is
    always safe: the gather-form IR writes each target element from
    exactly one iteration (the native eligibility gate requires the
    target to cover every frame axis once), so per-iteration writes are
    disjoint and reads of other arrays see only pre-statement values.
    For a multi-statement nest the outer rows interleave *across*
    statements, so every cross-statement dependence — flow, anti and
    output — must have **zero distance on axis 0**: a nonzero outer
    component means one thread's row produces or clobbers a value
    another thread's row consumes, with no ordering between them.

    >>> class Acc:
    ...     def __init__(self, name, slots): self.name, self.slots = name, slots
    >>> class St:
    ...     def __init__(self, target, reads, op="="):
    ...         self.target, self.reads, self.op = target, reads, op
    >>> same_row = St(Acc("w", ((0, 0), (1, 0))), (Acc("u", ((0, 0), (1, -1))),))
    >>> write_u = St(Acc("u", ((0, 0), (1, 0))), (Acc("v", ((0, 0), (1, 0))),))
    >>> entries = [
    ...     FusionEntry(write_u, ((1, 8), (1, 8)), 2, "float64"),
    ...     FusionEntry(same_row, ((1, 8), (1, 8)), 2, "float64"),
    ... ]
    >>> parallel_safe_group(entries)        # row-local dependence: safe
    >>> up_row = St(Acc("w", ((0, 0), (1, 0))), (Acc("u", ((0, -1), (1, 0))),))
    >>> entries[1] = FusionEntry(up_row, ((1, 8), (1, 8)), 2, "float64")
    >>> print(parallel_safe_group(entries))
    dependence on 'u' crosses thread rows (outer distance -1)
    """
    if len(entries) <= 1:
        return None
    dim = entries[0].dim
    for i, a in enumerate(entries):
        writes_a, reads_a = _accesses(a.stmt)
        for b in entries[i + 1:]:
            writes_b, reads_b = _accesses(b.stmt)
            for w_name, w_slots in writes_a:
                for o_name, o_slots in reads_b + writes_b:
                    if o_name != w_name:
                        continue
                    delta = _axis_deltas(w_slots, o_slots, dim)
                    if delta is None:
                        return (
                            f"dependence on {w_name!r} unanalyzable "
                            f"(different slot-axis maps)"
                        )
                    if delta[0] != 0:
                        return (
                            f"dependence on {w_name!r} crosses thread "
                            f"rows (outer distance {delta[0]})"
                        )
            for w_name, w_slots in writes_b:
                for r_name, r_slots in reads_a:
                    if r_name != w_name:
                        continue
                    delta = _axis_deltas(w_slots, r_slots, dim)
                    if delta is None:
                        return (
                            f"dependence on {w_name!r} unanalyzable "
                            f"(different slot-axis maps)"
                        )
                    if delta[0] != 0:
                        return (
                            f"dependence on {w_name!r} crosses thread "
                            f"rows (outer distance {delta[0]})"
                        )
    return None


# -- grouping ------------------------------------------------------------------


def plan_groups(entries: Iterable[FusionEntry]) -> list[FusionGroup]:
    """Partition *entries* into maximal contiguous fusable groups.

    Greedy in execution order — fusion must never reorder statements, so
    the only freedom is where to cut the stream.  A candidate joins the
    current group when it is pairwise fusable with *every* member (the
    fused nest interleaves it with all of them); blocked entries form
    singleton groups carrying their blocker as the reason.
    """
    groups: list[FusionGroup] = []
    current: list[FusionEntry] = []
    current_reason: str | None = None

    def close() -> None:
        nonlocal current, current_reason
        if current:
            groups.append(FusionGroup(tuple(current), current_reason))
            current = []
            current_reason = None

    for entry in entries:
        if entry.blocker is not None:
            close()
            groups.append(FusionGroup((entry,), entry.blocker))
            continue
        if current:
            if len(current) >= MAX_GROUP_STATEMENTS:
                why = f"group size cap ({MAX_GROUP_STATEMENTS} statements)"
            else:
                why = None
                for member in current:
                    why = fusable_pair(member, entry)
                    if why is not None:
                        break
            if why is not None:
                close()
                current_reason = why
        current.append(entry)
    close()
    return groups


def describe_groups(groups: Sequence[FusionGroup]) -> list[str]:
    """Human lines for ``repro fuse --explain`` (one per group)."""
    lines: list[str] = []
    pos = 0
    for gi, group in enumerate(groups):
        names = [entry.stmt.target.name for entry in group.entries]
        span = (
            f"statement {pos}"
            if len(group.entries) == 1
            else f"statements {pos}-{pos + len(group.entries) - 1}"
        )
        if group.fused:
            lines.append(
                f"group {gi}: FUSED {len(group.entries)} statements "
                f"({span}; writes {' '.join(dict.fromkeys(names))})"
            )
            if group.reason is not None:
                lines.append(f"  split from previous group: {group.reason}")
        else:
            why = group.reason or "no fusable neighbour"
            lines.append(
                f"group {gi}: unfused write of {names[0]!r} ({span}) — {why}"
            )
        pos += len(group.entries)
    return lines
