"""Alternative boundary treatments (paper Section 3.3.4).

Besides the default disjoint split (:func:`repro.core.regions.split_disjoint`),
the paper discusses two code-size/performance trade-offs:

* **guarded** — one remainder slab per side per dimension (2d+1 nests in
  total), every slab containing *all* derivative expressions, each guarded
  by an if-condition restricting it to its valid range.  Small code size;
  branches only in the (at most (d-1)-dimensional) remainder slabs.
* **padded** — a single loop nest over the union space, valid only when
  the adjoint seed array is zero-padded so that out-of-range contributions
  vanish; requires the caller to control array allocation.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import sympy as sp

from .regions import Region, core_bounds, union_bounds
from .shift import ShiftedStatement

__all__ = ["split_guarded", "split_padded", "statement_valid_box", "guard_condition"]


def statement_valid_box(
    stmt: ShiftedStatement,
    counters: Sequence[sp.Symbol],
    bounds: Mapping[sp.Symbol, tuple[sp.Expr, sp.Expr]],
) -> dict[sp.Symbol, tuple[sp.Expr, sp.Expr]]:
    """Iteration box on which a shifted statement is valid.

    A statement with scatter offset ``o`` is valid on the primal space
    translated by ``+o``: ``[s_d + o_d, e_d + o_d]`` per dimension.
    """
    out = {}
    for d, c in enumerate(counters):
        lo, hi = bounds[c]
        out[c] = (lo + stmt.offset[d], hi + stmt.offset[d])
    return out


def guard_condition(
    stmt: ShiftedStatement,
    counters: Sequence[sp.Symbol],
    bounds: Mapping[sp.Symbol, tuple[sp.Expr, sp.Expr]],
) -> sp.Basic:
    """SymPy boolean restricting execution to the statement's valid box."""
    box = statement_valid_box(stmt, counters, bounds)
    conds = []
    for c in counters:
        lo, hi = box[c]
        conds.append(sp.Ge(c, lo))
        conds.append(sp.Le(c, hi))
    return sp.And(*conds)


def split_guarded(
    stmts: Sequence[ShiftedStatement],
    counters: Sequence[sp.Symbol],
    bounds: Mapping[sp.Symbol, tuple[sp.Expr, sp.Expr]],
) -> list[Region]:
    """Onion decomposition: core + one guarded slab per side per dimension.

    Slab ``(d, side)`` fixes dimensions before ``d`` to their core range,
    dimension ``d`` to the lower/upper remainder strip, and the dimensions
    after ``d`` to the full union range — a disjoint cover of the union
    space.  All statements are attached to every slab, each carrying its
    guard condition; statements guaranteed valid throughout a slab keep
    ``guard=None``.
    """
    core = core_bounds(stmts, counters, bounds)
    union = union_bounds(stmts, counters, bounds)

    def guarded_statements(
        region_bounds: Mapping[sp.Symbol, tuple[sp.Expr, sp.Expr]],
    ) -> tuple[ShiftedStatement, ...]:
        out = []
        for s in stmts:
            box = statement_valid_box(s, counters, bounds)
            needs_guard = False
            for c in counters:
                rlo, rhi = region_bounds[c]
                blo, bhi = box[c]
                # Guard needed unless the region is provably inside the box.
                if not (
                    sp.simplify(rlo - blo).is_nonnegative
                    and sp.simplify(bhi - rhi).is_nonnegative
                ):
                    needs_guard = True
                    break
            if needs_guard:
                out.append(
                    ShiftedStatement(
                        statement=s.statement.with_guard(
                            guard_condition(s, counters, bounds)
                        ),
                        offset=s.offset,
                    )
                )
            else:
                out.append(s)
        return tuple(out)

    regions: list[Region] = []
    for d, c in enumerate(counters):
        for side in ("lower", "upper"):
            rb: dict[sp.Symbol, tuple[sp.Expr, sp.Expr]] = {}
            for dd, cc in enumerate(counters):
                if dd < d:
                    rb[cc] = core[cc]
                elif dd > d:
                    rb[cc] = union[cc]
            if side == "lower":
                rb[c] = (union[c][0], core[c][0] - 1)
            else:
                rb[c] = (core[c][1] + 1, union[c][1])
            regions.append(Region(bounds=rb, statements=guarded_statements(rb)))
    regions.append(Region(bounds=dict(core), statements=tuple(stmts), is_core=True))
    return regions


def split_padded(
    stmts: Sequence[ShiftedStatement],
    counters: Sequence[sp.Symbol],
    bounds: Mapping[sp.Symbol, tuple[sp.Expr, sp.Expr]],
) -> list[Region]:
    """Single unguarded nest over the union space (requires zero padding).

    Every statement executes everywhere; contributions from outside a
    statement's valid box read a zero-padded adjoint seed and therefore
    vanish.  The caller/runtime must guarantee the padding (the resulting
    :class:`~repro.core.loopnest.LoopNest` is tagged ``requires_padding``).
    """
    union = union_bounds(stmts, counters, bounds)
    return [Region(bounds=dict(union), statements=tuple(stmts), is_core=True)]
