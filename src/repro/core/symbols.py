"""Symbolic building blocks for stencil descriptions.

PerforAD (the tool this repository reproduces) represents arrays as SymPy
``Function`` objects applied to loop counters plus constant integer offsets,
e.g. ``u(i - 1, j, k)``, and all scalars (loop counters, bounds, physical
constants) as SymPy ``Symbol`` objects.  This module provides small helpers
to create those objects and to reason about them.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import sympy as sp
from sympy.core.function import AppliedUndef

__all__ = [
    "array",
    "arrays",
    "counters",
    "scalars",
    "is_array_access",
    "array_name",
    "adjoint_name",
    "make_adjoint_function",
]


def array(name: str) -> sp.Function:
    """Create a symbolic array: an undefined SymPy function.

    An *access* to the array is an application of the function to index
    expressions, e.g. ``u = array("u"); u(i - 1, j)``.
    """
    return sp.Function(name)


def arrays(names: str) -> tuple[sp.Function, ...]:
    """Create several symbolic arrays from a space- or comma-separated string."""
    split = names.replace(",", " ").split()
    return tuple(array(n) for n in split)


def counters(names: str) -> tuple[sp.Symbol, ...]:
    """Create loop-counter symbols (integer-valued)."""
    return sp.symbols(names, integer=True, seq=True)


def scalars(names: str) -> tuple[sp.Symbol, ...]:
    """Create scalar parameter symbols (real-valued)."""
    return sp.symbols(names, real=True, seq=True)


def is_array_access(expr: sp.Basic) -> bool:
    """Return True if *expr* is an application of an undefined function.

    These are exactly the array accesses in a PerforAD stencil expression;
    interpreted functions such as ``Max`` or ``sin`` are not array accesses.
    """
    return isinstance(expr, AppliedUndef)


def array_name(access_or_func: sp.Basic) -> str:
    """Name of the array underlying an access (``u(i-1)`` -> ``"u"``) or function."""
    if isinstance(access_or_func, AppliedUndef):
        return access_or_func.func.__name__
    if isinstance(access_or_func, sp.core.function.UndefinedFunction):
        return access_or_func.__name__
    raise TypeError(f"not an array access or array function: {access_or_func!r}")


def adjoint_name(name: str, suffix: str = "_b") -> str:
    """Conventional adjoint-variable name used by the paper (``u`` -> ``u_b``)."""
    return name + suffix


def make_adjoint_function(func: sp.Basic, suffix: str = "_b") -> sp.Function:
    """Create the adjoint array for a primal array function."""
    return sp.Function(adjoint_name(array_name(func), suffix))


def free_counters(expr: sp.Expr, known: Sequence[sp.Symbol]) -> list[sp.Symbol]:
    """Return the subset of *known* counters that appear in *expr*."""
    fs = expr.free_symbols
    return [c for c in known if c in fs]


def all_array_accesses(expr: sp.Expr) -> list[AppliedUndef]:
    """All distinct array accesses in an expression, in deterministic order."""
    accs = expr.atoms(AppliedUndef)
    return sorted(accs, key=sp.default_sort_key)


def accesses_of(expr: sp.Expr, funcs: Iterable[sp.Basic]) -> list[AppliedUndef]:
    """Distinct accesses in *expr* restricted to the given array functions."""
    names = {array_name(f) for f in funcs}
    return [a for a in all_array_accesses(expr) if array_name(a) in names]
