"""Index shifting (paper Section 3.3.2): scatter -> gather conversion.

Each adjoint scatter statement writes at offset ``o`` from the loop
counters.  Substituting every counter ``c_d -> c_d - o_d`` makes the write
index a bare counter tuple, turning the statement into a gather; the offset
is remembered so the loop bounds can be adjusted (Section 3.3.3).  The
substitution applies to the *whole* statement, so primal reads needed by
nonlinear derivatives are shifted consistently, possibly introducing read
indices that never occurred in the primal (as the paper notes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import sympy as sp

from .diff import AdjointContribution
from .loopnest import Statement

__all__ = ["ShiftedStatement", "shift_contribution", "shift_all"]


@dataclass(frozen=True)
class ShiftedStatement:
    """A gather-form adjoint statement plus its original scatter offset.

    After shifting, ``statement.lhs`` is the adjoint array accessed at bare
    loop counters.  ``offset`` is the scatter offset *before* shifting; a
    statement with offset ``o`` executed at iteration ``j`` reproduces the
    contribution the scatter statement made at iteration ``i = j - o``, so
    its valid iteration space is the primal space translated by ``+o``.
    """

    statement: Statement
    offset: tuple[int, ...]


def shift_contribution(
    contrib: AdjointContribution, counters: Sequence[sp.Symbol]
) -> ShiftedStatement:
    """Shift one scatter contribution into gather form.

    Implements "all indices of that expression are increased by ``-o``":
    substituting ``c -> c - o_c`` adds ``-o`` to every index that uses
    counter ``c``, making the written index ``c + o - o = c``.
    """
    off = contrib.offset
    subs = {c: c - o for c, o in zip(counters, off) if o != 0}
    stmt = contrib.statement.subs(subs, simultaneous=True) if subs else contrib.statement
    return ShiftedStatement(statement=stmt, offset=off)


def shift_all(
    contribs: Sequence[AdjointContribution], counters: Sequence[sp.Symbol]
) -> list[ShiftedStatement]:
    """Shift every contribution; all results write at bare counters."""
    return [shift_contribution(c, counters) for c in contribs]
