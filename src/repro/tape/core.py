"""Tape-based reverse-mode AD over NumPy arrays.

The paper positions PerforAD as a loop-level specialist: "A general-
purpose AD tool is currently necessary to differentiate the entire
program, except for the stencil loops that can be handled by PerforAD"
(Section 3.1), and lists combining the two as planned work (Section 6).
This package is that general-purpose side: a small operator-overloading
reverse-mode AD framework (the conventional technique of ADOL-C et al.,
[9] in the paper) whose tape records elementwise NumPy operations — and
into which PerforAD-generated adjoint stencil kernels plug as custom
primitives (:mod:`repro.tape.stencil_op`).

Design: a :class:`Variable` wraps an ``ndarray`` (or scalar); arithmetic
builds a tape of :class:`Node` records, each holding a list of
``(parent, vjp)`` pairs where ``vjp`` maps the upstream gradient to the
parent's gradient contribution.  :meth:`Variable.backward` replays the
tape in reverse.  Broadcasting is handled by summing gradients over
broadcast axes (``_unbroadcast``), so scalars and arrays mix freely.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = ["Variable", "constant"]


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce *grad* to *shape* by summing over broadcast axes."""
    grad = np.asarray(grad)
    if grad.shape == shape:
        return grad
    # Sum away leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were 1 in the original shape.
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Variable:
    """A node in the reverse-mode computation graph."""

    __slots__ = ("value", "grad", "_parents", "_order")

    _counter = 0

    def __init__(
        self,
        value,
        parents: Sequence[tuple["Variable", Callable[[np.ndarray], np.ndarray]]] = (),
    ):
        self.value = np.asarray(value, dtype=float)
        self.grad: np.ndarray | None = None
        self._parents = tuple(parents)
        Variable._counter += 1
        self._order = Variable._counter

    # -- graph construction helpers -------------------------------------------

    @staticmethod
    def _lift(other) -> "Variable":
        return other if isinstance(other, Variable) else Variable(other)

    def _binary(self, other, fwd, vjp_self, vjp_other) -> "Variable":
        other = Variable._lift(other)
        out_val = fwd(self.value, other.value)
        parents = [
            (self, lambda g: _unbroadcast(vjp_self(g, self.value, other.value),
                                          self.value.shape)),
            (other, lambda g: _unbroadcast(vjp_other(g, self.value, other.value),
                                           other.value.shape)),
        ]
        return Variable(out_val, parents)

    def _unary(self, fwd, vjp) -> "Variable":
        out_val = fwd(self.value)
        return Variable(out_val, [(self, lambda g: vjp(g, self.value))])

    # -- arithmetic -----------------------------------------------------------

    def __add__(self, other):
        return self._binary(other, np.add, lambda g, a, b: g, lambda g, a, b: g)

    __radd__ = __add__

    def __sub__(self, other):
        return self._binary(other, np.subtract, lambda g, a, b: g, lambda g, a, b: -g)

    def __rsub__(self, other):
        return Variable._lift(other).__sub__(self)

    def __mul__(self, other):
        return self._binary(
            other, np.multiply, lambda g, a, b: g * b, lambda g, a, b: g * a
        )

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self._binary(
            other,
            np.divide,
            lambda g, a, b: g / b,
            lambda g, a, b: -g * a / (b * b),
        )

    def __rtruediv__(self, other):
        return Variable._lift(other).__truediv__(self)

    def __neg__(self):
        return self._unary(np.negative, lambda g, a: -g)

    def __pow__(self, exponent):
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        return self._unary(
            lambda a: a**exponent,
            lambda g, a: g * exponent * a ** (exponent - 1),
        )

    # -- elementwise functions --------------------------------------------------

    def sin(self):
        return self._unary(np.sin, lambda g, a: g * np.cos(a))

    def cos(self):
        return self._unary(np.cos, lambda g, a: -g * np.sin(a))

    def exp(self):
        return self._unary(np.exp, lambda g, a: g * np.exp(a))

    def log(self):
        return self._unary(np.log, lambda g, a: g / a)

    def tanh(self):
        return self._unary(np.tanh, lambda g, a: g * (1.0 - np.tanh(a) ** 2))

    def relu(self):
        return self._unary(
            lambda a: np.maximum(a, 0.0),
            lambda g, a: g * np.where(a >= 0, 1.0, 0.0),
        )

    # -- reductions / contractions ---------------------------------------------

    def sum(self):
        return Variable(
            self.value.sum(),
            [(self, lambda g: np.broadcast_to(g, self.value.shape).copy())],
        )

    def mean(self):
        n = self.value.size
        return Variable(
            self.value.mean(),
            [(self, lambda g: np.broadcast_to(g / n, self.value.shape).copy())],
        )

    def dot(self, other):
        other = Variable._lift(other)
        return Variable(
            float(np.vdot(self.value, other.value)),
            [
                (self, lambda g: g * other.value),
                (other, lambda g: g * self.value),
            ],
        )

    # -- reverse sweep ------------------------------------------------------------

    def backward(self, seed=None) -> None:
        """Accumulate ``d self / d x`` into ``x.grad`` for every ancestor x.

        ``seed`` defaults to 1 (scalar outputs).  Gradients of previous
        ``backward`` calls are cleared on the visited subgraph first.
        """
        order = _topo_order(self)
        for node in order:
            node.grad = None
        self.grad = (
            np.ones_like(self.value) if seed is None else np.asarray(seed, dtype=float)
        )
        for node in reversed(order):
            if node.grad is None:
                continue
            for parent, vjp in node._parents:
                contrib = vjp(node.grad)
                if parent.grad is None:
                    parent.grad = np.zeros_like(parent.value)
                parent.grad = parent.grad + contrib


def _topo_order(root: Variable) -> list[Variable]:
    seen: set[int] = set()
    order: list[Variable] = []

    stack = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
            continue
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.append((node, True))
        for parent, _ in node._parents:
            if id(parent) not in seen:
                stack.append((parent, False))
    order.sort(key=lambda v: v._order)
    return order


def constant(value) -> Variable:
    """A leaf variable (gradients accumulate but create no further graph)."""
    return Variable(value)
