"""Stencil loops as custom primitives of the tape framework.

This is the combination the paper's conclusion plans: the surrounding
program is differentiated by conventional operator-overloading AD
(:mod:`repro.tape.core`), while each stencil loop is a single taped
primitive whose vector-Jacobian product is the PerforAD-generated gather
adjoint — executed by the NumPy kernel runtime, parallelisable, race-free.

``StencilOp`` compiles the primal and adjoint kernels once per
(problem, size) pair; calling it inside a taped computation records one
node whose backward pass seeds the output adjoint with the upstream
gradient and runs the adjoint stencil loops.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..apps.base import StencilProblem
from ..core.transform import adjoint_loops
from ..runtime.compiler import compile_nests
from .core import Variable

__all__ = ["StencilOp"]


class StencilOp:
    """A differentiable stencil application for the tape framework.

    Parameters
    ----------
    problem:
        The stencil problem (primal nest + adjoint map).
    n:
        Grid size; kernels are compiled for it once.
    strategy:
        Boundary strategy for the adjoint loops.

    Calling the op with keyword :class:`Variable` arguments (one per
    primal input array; passive inputs may be plain arrays) returns a
    :class:`Variable` holding the stencil output.
    """

    def __init__(self, problem: StencilProblem, n: int, strategy: str = "disjoint"):
        self.problem = problem
        self.n = n
        self.bindings = problem.bindings(n)
        self.primal_kernel = compile_nests(
            [problem.primal], self.bindings, name=problem.name
        )
        self.adjoint_kernel = compile_nests(
            adjoint_loops(problem.primal, problem.adjoint_map, strategy=strategy),
            self.bindings,
            name=problem.name + "_b",
        )
        self.name_map = problem.adjoint_name_map()
        self.active = list(problem.active_input_names())
        self.inputs = list(problem.input_names())
        self.output = problem.output_name
        self.shape = problem.array_shape(n)

    def __call__(self, **inputs) -> Variable:
        """Apply the stencil; records one tape node.

        Every primal input array must be supplied by name; active inputs
        may be :class:`Variable` (tracked) or arrays (treated constant).
        """
        missing = [k for k in self.inputs if k not in inputs]
        if missing:
            raise TypeError(f"missing stencil inputs: {missing}")
        values: dict[str, np.ndarray] = {}
        tracked: dict[str, Variable] = {}
        for name, arg in inputs.items():
            if isinstance(arg, Variable):
                if name not in self.active:
                    raise TypeError(
                        f"input {name!r} is passive for differentiation but "
                        "was passed as a Variable; pass a plain array or "
                        "activate it in the adjoint map"
                    )
                tracked[name] = arg
                values[name] = arg.value
            else:
                values[name] = np.asarray(arg, dtype=float)
            if values[name].shape != self.shape:
                raise ValueError(
                    f"input {name!r} has shape {values[name].shape}, "
                    f"expected {self.shape}"
                )

        arrays = dict(values)
        arrays[self.output] = np.zeros(self.shape)
        self.primal_kernel(arrays)
        out_value = arrays[self.output]

        def make_vjp(input_name: str):
            def vjp(upstream: np.ndarray) -> np.ndarray:
                adj = dict(values)
                adj[self.name_map[self.output]] = np.asarray(upstream, dtype=float)
                for active_name in self.active:
                    adj[self.name_map[active_name]] = np.zeros(self.shape)
                self.adjoint_kernel(adj)
                return adj[self.name_map[input_name]]

            return vjp

        parents = [(var, make_vjp(name)) for name, var in tracked.items()]
        return Variable(out_value, parents)
