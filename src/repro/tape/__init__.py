"""Tape-based reverse AD with stencil loops as custom primitives."""

from .core import Variable, constant
from .stencil_op import StencilOp

__all__ = ["StencilOp", "Variable", "constant"]
