"""repro: reproduction of "Automatic Differentiation for Adjoint Stencil
Loops" (Hückelheim, Kukreja, Narayanan, Luporini, Gorman, Hovland;
ICPP 2019, DOI 10.1145/3337821.3337906).

The package implements the paper's PerforAD tool from scratch — symbolic
stencil differentiation plus the scatter-to-gather loop transformation that
makes reverse-mode AD of stencil loops parallelisable — together with every
substrate its evaluation needs: code generators (C/OpenMP, Fortran,
Python/NumPy), an executable kernel runtime with shared-memory parallel
executors, conventional-AD baselines (scatter, atomics, value stack), a
calibrated machine performance model for the paper's Broadwell and KNL
systems, a verification suite, and the wave/Burgers/heat/convolution
application test cases.

Quick start::

    import sympy as sp
    from repro import make_loop_nest, print_function_c

    i = sp.symbols("i", integer=True)
    n = sp.Symbol("n", integer=True)
    u, r, u_b, r_b = (sp.Function(s) for s in ["u", "r", "u_b", "r_b"])
    lp = make_loop_nest(lhs=r(i), rhs=2*u(i-1) - u(i+1), counters=[i],
                        bounds={i: [1, n - 1]})
    adjoint = lp.diff({r: r_b, u: u_b})   # gather-form adjoint loop nests
    print(print_function_c("example_b", adjoint))
"""

from .apps import (
    StencilProblem,
    burgers_problem,
    conv_problem,
    heat_problem,
    wave_problem,
)
from .baselines import (
    AtomicScatterKernel,
    StackAdjoint,
    tapenade_style_adjoint,
)
from .codegen import (
    print_function_c,
    print_function_cuda,
    print_function_fortran,
    print_function_python,
)
from .core import (
    LoopNest,
    Statement,
    StencilRestrictionError,
    adjoint_loops,
    make_loop_nest,
)
from .driver import AdjointTimeStepper, optimal_cost, schedule
from .errors import (
    CheckpointError,
    EnsembleBindError,
    KernelError,
    NativeBuildError,
    NumericalDivergenceError,
    ReproError,
    ValidationError,
)
from .frontend import parse_stencil, parse_stencils
from .machine import BROADWELL, KNL, V100, MachineModel, analyze_nests, analyze_scatter
from .runtime import (
    Bindings,
    EnsemblePlan,
    ExecutionConfig,
    ExecutionPlan,
    KernelCache,
    ParallelExecutor,
    assert_disjoint_writes,
    clear_kernel_cache,
    compile_nests,
    get_kernel_cache,
    interpret_nests,
    run_tiled,
    stack_arrays,
)
from .tape import StencilOp, Variable
from .verify import compare_adjoints, dot_product_test, finite_difference_test
from .core.second_order import second_order_nests

__version__ = "1.0.0"

__all__ = [
    "AdjointTimeStepper",
    "AtomicScatterKernel",
    "BROADWELL",
    "Bindings",
    "CheckpointError",
    "EnsembleBindError",
    "KernelError",
    "NativeBuildError",
    "NumericalDivergenceError",
    "ReproError",
    "ValidationError",
    "V100",
    "Variable",
    "StencilOp",
    "KNL",
    "LoopNest",
    "MachineModel",
    "ParallelExecutor",
    "StackAdjoint",
    "Statement",
    "StencilProblem",
    "StencilRestrictionError",
    "adjoint_loops",
    "analyze_nests",
    "analyze_scatter",
    "assert_disjoint_writes",
    "burgers_problem",
    "clear_kernel_cache",
    "compare_adjoints",
    "compile_nests",
    "conv_problem",
    "EnsemblePlan",
    "ExecutionConfig",
    "ExecutionPlan",
    "KernelCache",
    "stack_arrays",
    "get_kernel_cache",
    "dot_product_test",
    "finite_difference_test",
    "heat_problem",
    "interpret_nests",
    "make_loop_nest",
    "optimal_cost",
    "parse_stencil",
    "parse_stencils",
    "print_function_c",
    "print_function_cuda",
    "print_function_fortran",
    "print_function_python",
    "run_tiled",
    "schedule",
    "second_order_nests",
    "tapenade_style_adjoint",
    "wave_problem",
    "__version__",
]
