"""Tokenizer for the stencil front-end language.

The paper notes that PerforAD "does not contain its own parser front-end
and instead relies on the caller to supply a high-level description of
the stencil computation ... Automating this process remains future work"
(Section 3.1).  This package implements that front-end: a small textual
stencil language that parses into :class:`~repro.core.loopnest.LoopNest`
objects.  Grammar (see :mod:`repro.frontend.parser`)::

    stencil wave3d {
      iterate i = 1 .. n-2, j = 1 .. n-2, k = 1 .. n-2
      u[i,j,k] += 2.0*u_1[i,j,k] - u_2[i,j,k]
                  + c[i,j,k]*D*(u_1[i-1,j,k] - 2*u_1[i,j,k] + u_1[i+1,j,k])
    }
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import ValidationError

__all__ = ["Token", "LexError", "tokenize"]

_KEYWORDS = {"stencil", "iterate", "max", "min"}
_TWO_CHAR = {"+=", ".."}
_ONE_CHAR = set("+-*/^()[]{},=")


class LexError(ValidationError):
    """Raised for unrecognised input, with line/column information.

    Part of the typed hierarchy (:class:`~repro.errors.ValidationError`,
    and thus still a ``ValueError`` as before).
    """

    def __init__(self, message: str, line: int, col: int):
        super().__init__(f"{message} (line {line}, column {col})")
        self.line = line
        self.col = col


@dataclass(frozen=True)
class Token:
    """A lexical token: kind in {ident, number, keyword, op, end}."""

    kind: str
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # compact for parser error messages
        return f"{self.kind}({self.text!r})"


def tokenize(source: str) -> list[Token]:
    """Tokenise *source*; comments run from '#' to end of line."""
    tokens: list[Token] = []
    line = 1
    col = 1
    idx = 0
    n = len(source)
    while idx < n:
        ch = source[idx]
        if ch == "\n":
            line += 1
            col = 1
            idx += 1
            continue
        if ch in " \t\r":
            idx += 1
            col += 1
            continue
        if ch == "#":
            while idx < n and source[idx] != "\n":
                idx += 1
            continue
        two = source[idx : idx + 2]
        if two in _TWO_CHAR:
            tokens.append(Token("op", two, line, col))
            idx += 2
            col += 2
            continue
        if ch.isdigit() or (ch == "." and idx + 1 < n and source[idx + 1].isdigit()):
            start = idx
            seen_dot = False
            while idx < n and (source[idx].isdigit() or (source[idx] == "." and not seen_dot)):
                if source[idx] == ".":
                    # ".." is a range operator, not part of a number.
                    if source[idx : idx + 2] == "..":
                        break
                    seen_dot = True
                idx += 1
            text = source[start:idx]
            tokens.append(Token("number", text, line, col))
            col += idx - start
            continue
        if ch.isalpha() or ch == "_":
            start = idx
            while idx < n and (source[idx].isalnum() or source[idx] == "_"):
                idx += 1
            text = source[start:idx]
            kind = "keyword" if text in _KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, col))
            col += idx - start
            continue
        if ch in _ONE_CHAR:
            tokens.append(Token("op", ch, line, col))
            idx += 1
            col += 1
            continue
        raise LexError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token("end", "", line, col))
    return tokens
