"""Recursive-descent parser for the stencil front-end language.

Grammar::

    program   := stencil*
    stencil   := "stencil" IDENT "{" iterate statement+ "}"
    iterate   := "iterate" range ("," range)*
    range     := IDENT "=" expr ".." expr
    statement := access ("=" | "+=") expr
    access    := IDENT "[" expr ("," expr)* "]"
    expr      := term (("+"|"-") term)*
    term      := unary (("*"|"/") unary)*
    unary     := ("-"|"+") unary | power
    power     := atom ("^" unary)?
    atom      := NUMBER | IDENT | access | call | "(" expr ")"
    call      := ("max"|"min") "(" expr ("," expr)* ")"

Identifiers followed by ``[`` are arrays; all other identifiers are
scalar symbols (loop counters inside index expressions, sizes and
physical constants elsewhere).  Counters are integer symbols; everything
else is real.  The parsed stencils are validated by ``make_loop_nest``
against the Section 3.4 restrictions, so malformed stencils are rejected
with the same errors as programmatically constructed ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import sympy as sp

from ..core.loopnest import LoopNest, Statement, make_loop_nest
from ..core.validate import (
    DEFAULT_SPEC_LIMITS,
    SpecLimits,
    validate_loop_nest,
    validate_untrusted,
)
from ..errors import ValidationError
from .lexer import LexError, Token, tokenize

__all__ = ["ParseError", "parse_stencils", "parse_stencil"]


class ParseError(ValidationError):
    """Raised on grammar violations, with token location.

    Part of the typed hierarchy (:class:`~repro.errors.ValidationError`,
    and thus still a ``ValueError`` as before).
    """

    def __init__(self, message: str, token: Token):
        super().__init__(f"{message} at line {token.line}, column {token.col}")
        self.token = token


@dataclass
class _State:
    tokens: list[Token]
    pos: int = 0

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "end":
            self.pos += 1
        return tok

    def expect(self, kind: str, text: str | None = None) -> Token:
        tok = self.peek()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = f"{kind} {text!r}" if text else kind
            raise ParseError(f"expected {want}, found {tok!r}", tok)
        return self.next()

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        tok = self.peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self.next()
        return None


class _Parser:
    def __init__(self, source: str, limits: SpecLimits | None = None):
        # The source-size cap comes first: an adversarial spec must be
        # bounced before tokenize() materialises a token per character.
        if limits is not None and len(source) > limits.max_source_bytes:
            raise ValidationError(
                f"stencil source is {len(source)} bytes; the limit is "
                f"{limits.max_source_bytes}"
            )
        self.state = _State(tokenize(source))
        self._limits = limits
        self._depth = 0
        # Scalars are real symbols except counters, which are integer.
        self._counters: dict[str, sp.Symbol] = {}
        self._scalars: dict[str, sp.Symbol] = {}
        self._arrays: dict[str, sp.Function] = {}

    # -- symbol management ---------------------------------------------------

    def _symbol(self, name: str) -> sp.Symbol:
        if name in self._counters:
            return self._counters[name]
        if name not in self._scalars:
            self._scalars[name] = sp.Symbol(name, real=True)
        return self._scalars[name]

    def _counter(self, name: str, token: Token) -> sp.Symbol:
        if name in self._scalars:
            raise ParseError(f"{name!r} already used as a scalar", token)
        if name not in self._counters:
            self._counters[name] = sp.Symbol(name, integer=True)
        return self._counters[name]

    def _array(self, name: str) -> sp.Function:
        if name not in self._arrays:
            self._arrays[name] = sp.Function(name)
        return self._arrays[name]

    # -- grammar ----------------------------------------------------------

    def parse_program(self) -> list[LoopNest]:
        nests = []
        while self.state.peek().kind != "end":
            nests.append(self.parse_stencil())
        if not nests:
            raise ParseError("no stencil definitions found", self.state.peek())
        if self._limits is not None:
            for nest in nests:
                validate_untrusted(nest, self._limits)
        return nests

    def parse_stencil(self) -> LoopNest:
        self.state.expect("keyword", "stencil")
        name = self.state.expect("ident").text
        self.state.expect("op", "{")
        counters, bounds = self.parse_iterate()
        statements = []
        while not self.state.accept("op", "}"):
            statements.append(self.parse_statement(counters))
        if not statements:
            raise ParseError("stencil has no statements", self.state.peek())
        if len(statements) == 1:
            st = statements[0]
            nest = make_loop_nest(
                lhs=st.lhs, rhs=st.rhs, counters=counters,
                bounds=bounds, op=st.op, name=name,
            )
        else:
            nest = LoopNest(
                statements=tuple(statements),
                counters=tuple(counters),
                bounds={c: tuple(b) for c, b in bounds.items()},
                name=name,
            )
            validate_loop_nest(nest)
        return nest

    def parse_iterate(self):
        self.state.expect("keyword", "iterate")
        counters: list[sp.Symbol] = []
        bounds: dict[sp.Symbol, list[sp.Expr]] = {}
        while True:
            tok = self.state.expect("ident")
            c = self._counter(tok.text, tok)
            self.state.expect("op", "=")
            lo = self.parse_expr(index_mode=True)
            self.state.expect("op", "..")
            hi = self.parse_expr(index_mode=True)
            counters.append(c)
            bounds[c] = [lo, hi]
            if not self.state.accept("op", ","):
                break
        return counters, bounds

    def parse_statement(self, counters) -> Statement:
        tok = self.state.expect("ident")
        if not self.state.accept("op", "["):
            raise ParseError("statement must start with an array access", tok)
        lhs = self._finish_access(tok.text)
        if self.state.accept("op", "+="):
            op = "+="
        else:
            self.state.expect("op", "=")
            op = "="
        rhs = self.parse_expr()
        return Statement(lhs=lhs, rhs=rhs, op=op)

    def _finish_access(self, name: str) -> sp.Expr:
        """Parse the index list after '[' has been consumed."""
        indices = [self.parse_expr(index_mode=True)]
        while self.state.accept("op", ","):
            indices.append(self.parse_expr(index_mode=True))
        self.state.expect("op", "]")
        return self._array(name)(*indices)

    # Expression parsing with precedence climbing.

    def parse_expr(self, index_mode: bool = False) -> sp.Expr:
        # Depth cap: parse_expr re-enters itself through parentheses,
        # calls and index lists, so a pathological spec of nested
        # parens would otherwise hit the interpreter's RecursionError
        # (an untyped crash) instead of a ValidationError.
        limit = (
            self._limits.max_expr_depth
            if self._limits is not None
            else DEFAULT_SPEC_LIMITS.max_expr_depth
        )
        self._depth += 1
        try:
            if self._depth > limit:
                raise ValidationError(
                    f"expression nesting exceeds {limit} levels "
                    f"(line {self.state.peek().line})"
                )
            expr = self.parse_term(index_mode)
            while True:
                if self.state.accept("op", "+"):
                    expr = expr + self.parse_term(index_mode)
                elif self.state.accept("op", "-"):
                    expr = expr - self.parse_term(index_mode)
                else:
                    return expr
        finally:
            self._depth -= 1

    def parse_term(self, index_mode: bool) -> sp.Expr:
        expr = self.parse_unary(index_mode)
        while True:
            if self.state.accept("op", "*"):
                expr = expr * self.parse_unary(index_mode)
            elif self.state.accept("op", "/"):
                expr = expr / self.parse_unary(index_mode)
            else:
                return expr

    def parse_unary(self, index_mode: bool) -> sp.Expr:
        if self.state.accept("op", "-"):
            return -self.parse_unary(index_mode)
        if self.state.accept("op", "+"):
            return self.parse_unary(index_mode)
        return self.parse_power(index_mode)

    def parse_power(self, index_mode: bool) -> sp.Expr:
        base = self.parse_atom(index_mode)
        if self.state.accept("op", "^"):
            return base ** self.parse_unary(index_mode)
        return base

    def parse_atom(self, index_mode: bool) -> sp.Expr:
        tok = self.state.peek()
        if tok.kind == "number":
            self.state.next()
            if "." in tok.text:
                return sp.Float(tok.text)
            return sp.Integer(int(tok.text))
        if tok.kind == "keyword" and tok.text in ("max", "min"):
            self.state.next()
            self.state.expect("op", "(")
            args = [self.parse_expr()]
            while self.state.accept("op", ","):
                args.append(self.parse_expr())
            self.state.expect("op", ")")
            fn = sp.Max if tok.text == "max" else sp.Min
            return fn(*args)
        if tok.kind == "ident":
            self.state.next()
            if self.state.accept("op", "["):
                if index_mode:
                    raise ParseError("array access not allowed inside indices", tok)
                return self._finish_access(tok.text)
            return self._symbol(tok.text)
        if self.state.accept("op", "("):
            expr = self.parse_expr(index_mode)
            self.state.expect("op", ")")
            return expr
        raise ParseError(f"unexpected token {tok!r}", tok)


def parse_stencils(
    source: str, limits: SpecLimits | None = DEFAULT_SPEC_LIMITS
) -> list[LoopNest]:
    """Parse every ``stencil`` definition in *source* into loop nests.

    ``limits`` caps the resources an untrusted spec may claim (source
    size, expression nesting/size, statement count, concrete loop
    extents — see :class:`~repro.core.validate.SpecLimits`); violations
    raise a typed :class:`~repro.errors.ValidationError`.  The default
    limits are generous; pass ``limits=None`` for fully trusted input
    (a minimal nesting-depth guard still applies, converting the
    interpreter's ``RecursionError`` into a typed error).
    """
    return _Parser(source, limits).parse_program()


def parse_stencil(
    source: str, limits: SpecLimits | None = DEFAULT_SPEC_LIMITS
) -> LoopNest:
    """Parse exactly one stencil definition (same *limits* contract)."""
    nests = parse_stencils(source, limits)
    if len(nests) != 1:
        raise ParseError(
            f"expected exactly one stencil, found {len(nests)}",
            Token("end", "", 0, 0),
        )
    return nests[0]
