"""Unparser: loop nests back to the textual stencil language.

Completes the front-end round trip (``parse_stencil(to_source(nest))``
reproduces the nest), which both documents the language and gives the
property-based tests a strong oracle: any randomly generated stencil must
survive print -> parse -> print unchanged.
"""

from __future__ import annotations

import sympy as sp
from sympy.core.function import AppliedUndef
from sympy.printing.str import StrPrinter

from ..core.loopnest import LoopNest

__all__ = ["to_source"]


class _DslPrinter(StrPrinter):
    """SymPy printer emitting front-end syntax (brackets, max/min)."""

    def _print_AppliedUndef(self, expr: AppliedUndef) -> str:
        idx = ", ".join(self._print(a) for a in expr.args)
        return f"{expr.func.__name__}[{idx}]"

    def _print_Max(self, expr) -> str:
        return "max(" + ", ".join(self._print(a) for a in expr.args) + ")"

    def _print_Min(self, expr) -> str:
        return "min(" + ", ".join(self._print(a) for a in expr.args) + ")"

    def _print_Pow(self, expr, rational=False) -> str:
        base = self._print(expr.base)
        if expr.base.is_Add or isinstance(expr.base, AppliedUndef):
            pass  # parenthesisation handled below
        if expr.base.is_Add:
            base = f"({base})"
        return f"{base}^{self._print(expr.exp)}"


def to_source(nest: LoopNest, name: str | None = None) -> str:
    """Render a loop nest in the textual stencil language."""
    printer = _DslPrinter()
    name = name or nest.name or "stencil0"
    ranges = ", ".join(
        f"{c} = {printer.doprint(nest.bounds[c][0])} .. "
        f"{printer.doprint(nest.bounds[c][1])}"
        for c in nest.counters
    )
    lines = [f"stencil {name} {{", f"  iterate {ranges}"]
    for st in nest.statements:
        if st.guard is not None:
            raise ValueError("guarded statements cannot be unparsed")
        lhs = printer.doprint(st.lhs)
        rhs = printer.doprint(st.rhs)
        lines.append(f"  {lhs} {st.op} {rhs}")
    lines.append("}")
    return "\n".join(lines) + "\n"
