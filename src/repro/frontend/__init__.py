"""Textual stencil front-end (the paper's "future work" parser)."""

from .lexer import LexError, Token, tokenize
from .parser import ParseError, parse_stencil, parse_stencils
from .printer import to_source

__all__ = [
    "LexError",
    "ParseError",
    "Token",
    "parse_stencil",
    "parse_stencils",
    "to_source",
    "tokenize",
]
