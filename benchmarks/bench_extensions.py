"""Extension benchmarks: the paper's future-work directions, measured.

* **Tiling** (Section 6: polyhedral compilers) — cache-blocked execution
  of the adjoint kernels, verified bitwise-equal and timed.
* **GPU target** (Section 6: "We plan to test our method also on GPU
  systems") — the V100 extension preset's predictions: the PerforAD
  adjoint keeps the primal's scalability profile on a GPU while the
  atomic scatter collapses under massive thread-count contention.
* **Checkpointed time stepping** — revolve-checkpointed adjoint sweeps,
  the composition with surrounding-program reversal.
"""

import time

import numpy as np

from repro.core import adjoint_loops
from repro.driver import AdjointTimeStepper, make_stencil_steps, optimal_cost
from repro.experiments import wave_descriptors
from repro.machine import V100
from repro.runtime import compile_nests


def test_tiling_ablation(benchmark, capsys, wave_case):
    kernel = wave_case.gather_kernel
    shapes = {"untiled": None, "tile 32^3": (32, 32, 32), "tile 16^3": (16, 16, 16)}
    # Plans are built once outside the timed region (compile-once,
    # run-many): the timed loop only executes precomputed tiles.
    plans = {
        label: kernel.plan(tile_shape=tile) for label, tile in shapes.items()
    }
    results = {}
    ref = None
    for label, plan in plans.items():
        best = float("inf")
        for _ in range(3):
            arrays = wave_case.arrays()
            t0 = time.perf_counter()
            plan.run(arrays)
            best = min(best, time.perf_counter() - t0)
        results[label] = best
        if ref is None:
            ref = arrays["u_1_b"]
        else:
            np.testing.assert_array_equal(arrays["u_1_b"], ref)
    benchmark.pedantic(
        lambda: plans["tile 32^3"].run(wave_case.arrays()),
        rounds=3, iterations=1,
    )
    with capsys.disabled():
        print(f"\ntiling ablation, wave3d adjoint n={wave_case.n}:")
        for label, t in results.items():
            print(f"  {label:10s} {t * 1e3:8.2f} ms")
    for label, t in results.items():
        benchmark.extra_info[label + "_ms"] = round(t * 1e3, 2)


def test_gpu_extension_predictions(benchmark, capsys):
    desc = wave_descriptors()

    def predict():
        return {
            "primal_best": V100.best_time(desc.primal, "gather"),
            "perforad_best": V100.best_time(desc.perforad, "gather"),
            "atomic_best": V100.best_time(desc.scatter, "atomic"),
        }

    out = benchmark(predict)
    with capsys.disabled():
        print("\nGPU extension (V100 preset, wave 1000^3, model):")
        for key, (threads, t) in out.items():
            print(f"  {key:14s} {t:8.3f} s  (best at {threads} units)")
    # The adjoint stencil keeps the primal's profile on the GPU...
    ratio = out["perforad_best"][1] / out["primal_best"][1]
    assert ratio < 3.0
    # ... while atomics collapse by more than an order of magnitude.
    assert out["atomic_best"][1] > 10 * out["perforad_best"][1]
    benchmark.extra_info["adjoint_vs_primal"] = round(ratio, 2)


def test_checkpointed_sweep(benchmark, capsys, burgers_case):
    prob = burgers_case.problem
    n = 50_000
    bindings = prob.bindings(n)
    shape = prob.array_shape(n)
    fwd = compile_nests([prob.primal], bindings)
    adj = compile_nests(adjoint_loops(prob.primal, prob.adjoint_map), bindings)
    forward_step, reverse_step = make_stencil_steps(
        fwd.plan().run, adj.plan().run, shape
    )
    stepper = AdjointTimeStepper(forward_step, reverse_step)
    rng = np.random.default_rng(0)
    u0 = rng.standard_normal(shape) * 0.1
    seed = {"u": rng.standard_normal(shape)}
    steps, snaps = 24, 4

    ref = stepper.run_store_all({"u": u0}, steps, seed)
    lam = benchmark.pedantic(
        lambda: stepper.run_checkpointed({"u": u0}, steps, seed, snaps),
        rounds=3, iterations=1,
    )
    np.testing.assert_array_equal(ref["u"], lam["u"])
    with capsys.disabled():
        cost = optimal_cost(steps, snaps)
        print(f"\nrevolve: {steps} steps with {snaps} snapshots -> "
              f"{cost} step evaluations (store-all: {2 * steps - 1}), "
              f"memory {snaps}/{steps} states")
    benchmark.extra_info["evaluations"] = optimal_cost(steps, snaps)
