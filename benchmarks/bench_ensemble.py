"""Ensemble throughput benchmark: batched members vs the per-member loop.

The single-scenario steady state (PRs 1–3) left exactly one cost on the
table for many-scenario workloads: every member of a naive ensemble
loop re-pays the per-call dispatch of each statement on its own small
arrays.  The :class:`~repro.runtime.ensemble.EnsemblePlan` folds the
member axis into the operands instead — one ufunc (or one chained C
call) sweeps all members — so the per-member cost approaches the
marginal grid work.

Acceptance targets (recorded in ``BENCH_ensemble.json``):

* >= 2x steady-state throughput of the batched ensemble over the naive
  per-member loop of bound plans on a 64-member heat2d ensemble,
* every member bitwise identical to its looped single-scenario run,
* steady-state scaling recorded across heat2d/wave2d/burgers1d.
"""

import json

import pytest

from repro.apps import burgers_problem, heat_problem, wave_problem
from repro.core import adjoint_loops
from repro.experiments.steady import measure_ensemble
from repro.runtime import compile_nests

MEMBERS = 64
REPS = 40
OUTPUT = "BENCH_ensemble.json"

CASES = {
    "heat2d": (lambda: heat_problem(2), 18),
    "wave2d": (lambda: wave_problem(2), 14),
    "burgers1d": (lambda: burgers_problem(1), 48),
}


def test_ensemble_throughput(benchmark, capsys):
    cases = {}
    ens_heat = None
    for label, (factory, n) in CASES.items():
        prob = factory()
        nests = adjoint_loops(prob.primal, prob.adjoint_map)
        kernel = compile_nests(nests, prob.bindings(n), name="ens_bench")
        plan = kernel.plan()
        states = [
            prob.allocate_state(n, seed=m) for m in range(MEMBERS)
        ]
        record, ensemble = measure_ensemble(plan, states, REPS)
        if label == "heat2d":
            ens_heat = ensemble
        else:
            ensemble.close()
        cases[label] = {"problem": prob.name, "n": n, **record}
        plan.close()

    def heat_loop():
        for _ in range(REPS):
            ens_heat.run()

    benchmark.pedantic(heat_loop, rounds=3, iterations=1)
    ens_heat.close()

    record = {
        "benchmark": "ensemble_steady_state",
        "members": MEMBERS,
        "reps": REPS,
        "backend": "python",
        "cases": cases,
    }
    with open(OUTPUT, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    benchmark.extra_info.update(record)

    with capsys.disabled():
        print(f"\nbatched ensemble, {MEMBERS} members, best of {REPS}-step loops:")
        for label, case in cases.items():
            print(
                f"  {label:10s} n={case['n']:3d}  "
                f"loop {case['loop_us_per_member_step']:7.1f} us/member-step  "
                f"batched {case['ensemble_us_per_member_step']:7.1f}  "
                f"throughput {case['speedup']:5.2f}x  "
                f"bitwise={'ok' if case['bitwise_identical'] else 'MISMATCH'}"
            )
        print(f"  (recorded in {OUTPUT})")

    assert all(c["bitwise_identical"] for c in cases.values()), (
        "an ensemble member diverged from its looped single-scenario run"
    )
    heat = cases["heat2d"]
    assert heat["speedup"] >= 2.0, (
        f"expected >=2x ensemble throughput on heat2d, got "
        f"{heat['speedup']:.2f}x"
    )
