"""Native-backend steady-state benchmark: C statement kernels vs bound NumPy.

PR 2's bound plans made the steady-state timestep allocation-free; what
remains is NumPy ufunc dispatch — tens of microseconds per timestep on
the paper's small-kernel regime regardless of grid work.  The native
backend removes it: eligible statements run as JIT-built C through one
chained FFI call per timestep.

Acceptance targets (recorded in ``BENCH_native.json``):

* >= 3x per-timestep speedup of the native bound plan over the *bound
  Python* plan (the PR 2 steady-state path) on the heat2d adjoint,
* bitwise-identical results against the unbound serial reference,
* every statement of the kernel actually dispatched natively.
"""

import json

import numpy as np
import pytest

from repro.apps import heat_problem
from repro.core import adjoint_loops
from repro.experiments.steady import _best_of, bitwise_equal
from repro.runtime import compile_nests, native_available

REPS = 300
N = 24
OUTPUT = "BENCH_native.json"


@pytest.mark.skipif(not native_available(), reason="no C toolchain")
def test_native_backend_speedup(benchmark, capsys):
    prob = heat_problem(2)
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    kernel = compile_nests(nests, prob.bindings(N), name="native_bench")
    rng = np.random.default_rng(0)
    base = prob.allocate(N, rng=rng)
    base.update(prob.allocate_adjoints(N, rng=rng))

    py_plan = kernel.plan()
    nat_plan = kernel.plan(backend="native")
    py_arrays = {k: v.copy() for k, v in base.items()}
    nat_arrays = {k: v.copy() for k, v in base.items()}
    py_bound = py_plan.bind(py_arrays)
    nat_bound = nat_plan.bind(nat_arrays)
    assert nat_bound.native_statement_count == nat_bound.statement_count

    for _ in range(3):  # warm-up: slot buffers, caches
        py_bound.run()
        nat_bound.run()

    # -- bitwise identity against the unbound serial reference ---------------
    ref = {k: v.copy() for k, v in base.items()}
    py_plan.run_unbound(ref)
    for arrays in (py_arrays, nat_arrays):
        for name, arr in base.items():
            arrays[name][...] = arr
    py_bound.run()
    nat_bound.run()
    bitwise = all(
        bitwise_equal(ref[name], nat_arrays[name])
        and bitwise_equal(ref[name], py_arrays[name])
        for name in ref
    )

    # -- steady-state per-timestep timing ------------------------------------
    t_python = _best_of(py_bound.run, REPS)
    t_native = _best_of(nat_bound.run, REPS)
    speedup = t_python / t_native

    def native_loop():
        for _ in range(REPS):
            nat_bound.run()

    benchmark.pedantic(native_loop, rounds=3, iterations=1)

    record = {
        "benchmark": "native_backend_steady_state",
        "problem": prob.name,
        "n": N,
        "reps": REPS,
        "iterations_per_call": kernel.total_iterations(),
        "bound_python_us_per_call": round(t_python * 1e6, 3),
        "native_us_per_call": round(t_native * 1e6, 3),
        "speedup_vs_bound_python": round(speedup, 3),
        "native_statements": nat_bound.native_statement_count,
        "total_statements": nat_bound.statement_count,
        "bitwise_identical": bitwise,
    }
    with open(OUTPUT, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    benchmark.extra_info.update(record)

    iters = kernel.total_iterations()
    with capsys.disabled():
        print(f"\nnative backend, {prob.name} n={N}, best of {REPS}-call loops:")
        print(
            f"  bound python run  {t_python * 1e6:8.1f} us/call "
            f"({t_python * 1e9 / iters:6.1f} ns/it)"
        )
        print(
            f"  native run        {t_native * 1e6:8.1f} us/call "
            f"({t_native * 1e9 / iters:6.1f} ns/it)"
        )
        print(f"  speedup           {speedup:8.2f}x  (recorded in {OUTPUT})")

    py_plan.close()
    nat_plan.close()

    assert bitwise, "native backend diverged from the serial reference"
    assert speedup >= 3.0, (
        f"expected >=3x native speedup over the bound python plan, "
        f"got {speedup:.2f}x"
    )
