"""Experiment loops334: loop-nest counts and transformation cost.

Regenerates the counts stated in Section 3.3.4 (5 / 25 / 125 / 53) and
benchmarks the full symbolic pipeline (SymPy differentiation + shifting +
hierarchical splitting) that produces them — the compile-time cost of the
approach.
"""

import itertools

import sympy as sp

from repro import adjoint_loops, make_loop_nest, wave_problem

n = sp.Symbol("n", integer=True)


def _dense(dim):
    counters = sp.symbols("i j k", integer=True)[:dim]
    u, r = sp.Function("u"), sp.Function("r")
    expr = sum(
        u(*[c + o for c, o in zip(counters, offs)])
        for offs in itertools.product((-1, 0, 1), repeat=dim)
    )
    nest = make_loop_nest(
        lhs=r(*counters), rhs=expr, counters=list(counters),
        bounds={c: [1, n - 2] for c in counters},
    )
    return nest, {r: sp.Function("r_b"), u: sp.Function("u_b")}


def test_loop_counts_1d_three_point(benchmark):
    nest, amap = _dense(1)
    nests = benchmark(lambda: adjoint_loops(nest, amap))
    assert len(nests) == 5


def test_loop_counts_2d_dense(benchmark):
    nest, amap = _dense(2)
    nests = benchmark(lambda: adjoint_loops(nest, amap))
    assert len(nests) == 25


def test_loop_counts_3d_dense(benchmark):
    nest, amap = _dense(3)
    nests = benchmark(lambda: adjoint_loops(nest, amap))
    assert len(nests) == 125


def test_loop_counts_3d_star_wave(benchmark):
    prob = wave_problem(3)
    nests = benchmark(lambda: adjoint_loops(prob.primal, prob.adjoint_map))
    assert len(nests) == 53
