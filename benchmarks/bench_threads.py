"""Threaded-native benchmark + CI gate: OpenMP width vs the serial build.

The threaded native path (``docs/threading.md``) partitions each
eligible statement's outermost loop into contiguous thread blocks;
because every native statement writes through an injective
iteration→element map, the partition is race-free and the results are
**bitwise identical** to the serial build — that identity is this
benchmark's hard gate and holds on any machine, including the 1-CPU CI
box.  The speedup gate is machine-gated: threads cannot beat serial
without cores, so the wall-clock floor (and the machine-corrected
baseline comparison) only applies when ``os.cpu_count() >= 2``.

Recorded to ``BENCH_threads.json``: per-call times for the serial
native build and each threaded width, plus the host facts a reader
needs to judge them — ``cpu_count``, the thread widths, and the
compiler identity line.

Refresh the baseline by copying a freshly recorded ``BENCH_threads.json``
(from a multi-core machine) over ``benchmarks/baseline_threads.json``.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.apps import heat_problem
from repro.core import adjoint_loops
from repro.experiments.steady import _best_of, bitwise_equal
from repro.runtime import compile_nests, native_available
from repro.runtime import native as native_mod

REPS = 50
N = 192
WIDTHS = (2, 4)
OUTPUT = "BENCH_threads.json"
BASELINE = Path(__file__).parent / "baseline_threads.json"
MIN_SPEEDUP = 1.5  # best threaded width vs serial native, multi-core only
MAX_SLOWDOWN = 1.5  # machine-corrected threaded per-call time vs baseline


@pytest.mark.skipif(not native_available(), reason="no C toolchain")
def test_threaded_determinism_and_speedup(benchmark, capsys):
    cpus = os.cpu_count() or 1
    prob = heat_problem(2)
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    kernel = compile_nests(nests, prob.bindings(N), name="threads_bench")
    rng = np.random.default_rng(0)
    base = prob.allocate(N, rng=rng)
    base.update(prob.allocate_adjoints(N, rng=rng))

    plans, bounds, arrays = {}, {}, {}
    for width in (1, *WIDTHS):
        arrs = {k: v.copy() for k, v in base.items()}
        plan = kernel.plan(backend="native", fusion="off", native_threads=width)
        bound = plan.bind(arrs)
        plans[width], bounds[width], arrays[width] = plan, bound, arrs

    # The threaded builds must actually be threaded, not a silent
    # serial fallback — otherwise the determinism gate tests nothing.
    for width in WIDTHS:
        assert bounds[width].native_threads == width, (
            f"native_threads={width} fell back to "
            f"{bounds[width].native_threads} (OpenMP unavailable?)"
        )
        assert (
            bounds[width].native_statement_count
            == bounds[width].statement_count
        )

    for bound in bounds.values():  # warm-up: code + data caches
        for _ in range(3):
            bound.run()

    # -- HARD gate: bitwise identity at every width, any machine -------------
    for width, arrs in arrays.items():
        for name, arr in base.items():
            arrs[name][...] = arr
    for bound in bounds.values():
        bound.run()
    bitwise = all(
        bitwise_equal(arrays[1][name], arrays[width][name])
        for width in WIDTHS
        for name in base
    )

    # -- steady-state per-call timing ----------------------------------------
    times = {w: _best_of(bounds[w].run, REPS) for w in (1, *WIDTHS)}
    best_width = min(WIDTHS, key=lambda w: times[w])
    speedup = times[1] / times[best_width]

    def threaded_loop():
        for _ in range(REPS):
            bounds[best_width].run()

    benchmark.pedantic(threaded_loop, rounds=3, iterations=1)

    cc = native_mod.native_toolchain()
    record = {
        "benchmark": "threaded_native_steady_state",
        "problem": prob.name,
        "n": N,
        "reps": REPS,
        "cpu_count": cpus,
        "thread_widths": list(WIDTHS),
        "compiler": native_mod._compiler_id(cc) if cc else None,
        "iterations_per_call": kernel.total_iterations(),
        "serial_us_per_call": round(times[1] * 1e6, 3),
        "threaded_us_per_call": {
            str(w): round(times[w] * 1e6, 3) for w in WIDTHS
        },
        "best_width": best_width,
        "speedup_vs_serial": round(speedup, 3),
        "bitwise_identical": bitwise,
    }
    with open(OUTPUT, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    benchmark.extra_info.update(record)

    with capsys.disabled():
        print(
            f"\nthreaded native, {prob.name} n={N}, {cpus} cpu(s), "
            f"best of {REPS}-call loops:"
        )
        print(f"  serial native  {times[1] * 1e6:8.1f} us/call")
        for w in WIDTHS:
            print(f"  {w} threads      {times[w] * 1e6:8.1f} us/call")
        print(
            f"  speedup        {speedup:8.2f}x at {best_width} threads "
            f"(recorded in {OUTPUT})"
        )

    for plan in plans.values():
        plan.close()

    assert bitwise, "threaded native diverged bitwise from the serial build"

    if cpus < 2:
        with capsys.disabled():
            print("  speedup gate skipped: single-CPU machine")
        return
    assert speedup >= MIN_SPEEDUP, (
        f"expected >={MIN_SPEEDUP}x threaded speedup over serial native "
        f"on a {cpus}-cpu machine, got {speedup:.2f}x"
    )

    # -- machine-corrected gate vs the checked-in baseline -------------------
    if BASELINE.exists():
        with open(BASELINE) as fh:
            baseline = json.load(fh)
        for key in ("benchmark", "problem", "n", "reps"):
            assert record[key] == baseline[key], (
                f"baseline {key}={baseline[key]!r} does not match this "
                f"run's {key}={record[key]!r}; refresh the baseline"
            )
        width = str(best_width)
        base_threaded = baseline["threaded_us_per_call"].get(width)
        if base_threaded is None:
            return  # baseline machine never ran this width
        raw = record["threaded_us_per_call"][width] / base_threaded
        # The serial native build runs identical arithmetic through the
        # same FFI layer, so its ratio isolates threading regressions
        # from runner hardware.
        machine = record["serial_us_per_call"] / baseline["serial_us_per_call"]
        corrected = raw / machine
        with capsys.disabled():
            print(
                f"  baseline gate  {raw:.2f}x raw, {machine:.2f}x machine "
                f"factor, {corrected:.2f}x corrected (max {MAX_SLOWDOWN}x)"
            )
        assert corrected <= MAX_SLOWDOWN, (
            f"threaded path regressed {corrected:.2f}x machine-corrected "
            f"vs baseline (limit {MAX_SLOWDOWN}x)"
        )
