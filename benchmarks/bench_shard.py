"""Sharded-execution benchmark + CI gate: ShardedPlan vs the single shard.

Two contracts are gated here (see ``docs/sharding.md``):

* **Bitwise identity** — forward state and adjoint gradients of a
  ``ShardedPlan`` at every tested rank count equal the single-shard
  ``BoundPlan`` run bit for bit.  This gate is absolute on any machine,
  including the 1-CPU CI box (the decomposition, exchange and
  accumulate-back are deterministic regardless of parallel speedup).
* **The cost curve** — halo communication is a surface term (``O(n)``)
  against volume work (``O(n^2)`` for the 2-D problem gated here), so
  the sharded-vs-single per-timestep ratio must not grow as the grid
  gets larger.  That assertion needs real cores to be meaningful, so it
  engages only when ``os.cpu_count() >= 4``.

A machine-corrected baseline comparison (``baseline_shard.json``)
bounds the sharded per-step time at the large grid, with the
single-shard time of the same run as the hardware reference — the same
correction every other perf gate in this repository uses.  The run
also asserts that no ``/dev/shm/repro_shard_*`` segment outlives its
plan.  Refresh the baseline with::

    python -m pytest benchmarks/bench_shard.py -q
    cp BENCH_shard.json benchmarks/baseline_shard_bench.json

(``benchmarks/baseline_shard.json`` is the separate baseline of the
``repro shard`` CLI gate; refresh it with ``python -m repro shard
--quick --output benchmarks/baseline_shard.json``.)
"""

import glob
import json
import os
from pathlib import Path

import numpy as np

from repro.apps import heat_problem
from repro.core import adjoint_loops
from repro.experiments.steady import _best_of
from repro.runtime import ShardedPlan, compile_nests

RANKS = (1, 2, 4)
SMALL_N = 48
LARGE_N = 192
STEPS = 6
REPS = 3
OUTPUT = "BENCH_shard.json"
BASELINE = Path(__file__).parent / "baseline_shard_bench.json"
MAX_SLOWDOWN = 1.5  # machine-corrected sharded us/step vs the baseline
CURVE_SLACK = 1.25  # sharded/single ratio may not grow more than this


def _leaked_segments():
    if not os.path.isdir("/dev/shm"):  # non-Linux: nothing to check
        return []
    return glob.glob("/dev/shm/repro_shard_*")


def _measure(prob, n):
    """Reference + sharded measurements for one grid size."""
    fwd = compile_nests([prob.primal], prob.bindings(n), name="shard_bench")
    rev = compile_nests(
        adjoint_loops(prob.primal, prob.adjoint_map),
        prob.bindings(n),
        name="shard_bench_b",
    )

    # Single-shard reference: the bitwise oracle and the machine-speed
    # reference the baseline gate corrects with.
    ref = prob.allocate(n, rng=np.random.default_rng(3))
    plan = fwd.plan()
    bound = plan.bind(ref)

    def single_step():
        bound.run()
        np.copyto(ref["u_1"], ref["u"])

    for _ in range(STEPS):
        single_step()
    ref_after = {name: ref[name].copy() for name in ("u", "u_1")}
    single_us = _best_of(single_step, STEPS, rounds=REPS) * 1e6
    plan.close()

    adj_ref = prob.allocate_state(n, seed=4)
    rev_plan = rev.plan()
    rev_plan.bind(adj_ref).run()
    rev_plan.close()

    cases = {}
    for nranks in RANKS:
        state = prob.allocate(n, rng=np.random.default_rng(3))
        with ShardedPlan(fwd, state, nranks=nranks, halo=1) as sp:

            def shard_step():
                sp.step(exchange=["u_1"])
                sp.copy("u_1", "u")

            for _ in range(STEPS):
                shard_step()
            got = sp.gather(["u", "u_1"])
            forward_ok = all(
                np.array_equal(got[name], ref_after[name]) for name in got
            )
            sharded_us = _best_of(shard_step, STEPS, rounds=REPS) * 1e6
            multiprocess = sp.multiprocess

        astate = prob.allocate_state(n, seed=4)
        with ShardedPlan(rev, astate, nranks=nranks, halo=1) as ap:
            ap.step(exchange=["u_1", "u_b"], accumulate=["u_1_b"])
            adjoint_ok = np.array_equal(
                ap.gather(["u_1_b"])["u_1_b"], adj_ref["u_1_b"]
            )

        cases[f"ranks{nranks}"] = {
            "ranks": nranks,
            "multiprocess": multiprocess,
            "sharded_us_per_step": round(sharded_us, 3),
            "overhead_vs_single": round(sharded_us / single_us, 4),
            "forward_bitwise": forward_ok,
            "adjoint_bitwise": adjoint_ok,
        }
    return {"single_us_per_step": round(single_us, 3), "cases": cases}


def test_sharded_bitwise_identity_and_cost_curve(capsys):
    cpus = os.cpu_count() or 1
    prob = heat_problem(2)
    before = set(_leaked_segments())

    small = _measure(prob, SMALL_N)
    large = _measure(prob, LARGE_N)

    bitwise = all(
        case["forward_bitwise"] and case["adjoint_bitwise"]
        for sizing in (small, large)
        for case in sizing["cases"].values()
    )
    record = {
        "benchmark": "sharded_plan_cost_curve",
        "problem": prob.name,
        "small_n": SMALL_N,
        "large_n": LARGE_N,
        "steps": STEPS,
        "reps": REPS,
        "ranks": list(RANKS),
        "cpu_count": cpus,
        "small": small,
        "large": large,
        "bitwise_identical": bitwise,
    }
    with open(OUTPUT, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")

    with capsys.disabled():
        print(f"\nsharded plan, {prob.name}, {cpus} cpu(s):")
        for label, sizing in (("small", small), ("large", large)):
            n = SMALL_N if label == "small" else LARGE_N
            print(
                f"  n={n:4d}  single {sizing['single_us_per_step']:8.1f} "
                f"us/step"
            )
            for case in sizing["cases"].values():
                print(
                    f"          ranks={case['ranks']}  "
                    f"{case['sharded_us_per_step']:8.1f} us/step  "
                    f"({case['overhead_vs_single']:.2f}x single, "
                    f"{'workers' if case['multiprocess'] else 'in-process'})"
                )
        print(f"  recorded in {OUTPUT}")

    # -- HARD gate: no shared-memory segment outlives its plan ---------------
    leaked = set(_leaked_segments()) - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"

    # -- HARD gate: bitwise identity at every rank count, any machine --------
    assert bitwise, "sharded run diverged bitwise from the single shard"

    # -- cost curve: communication must not grow relative to volume work -----
    if cpus >= 4:
        for key in large["cases"]:
            small_ratio = small["cases"][key]["overhead_vs_single"]
            large_ratio = large["cases"][key]["overhead_vs_single"]
            assert large_ratio <= small_ratio * CURVE_SLACK, (
                f"{key}: sharding overhead grew with the grid "
                f"({small_ratio:.2f}x at n={SMALL_N} -> {large_ratio:.2f}x "
                f"at n={LARGE_N}); communication should be a shrinking "
                f"surface term"
            )
    else:
        with capsys.disabled():
            print(f"  cost-curve gate skipped: {cpus} cpu(s)")

    # -- machine-corrected gate vs the checked-in baseline -------------------
    if BASELINE.exists():
        with open(BASELINE) as fh:
            baseline = json.load(fh)
        for key in ("benchmark", "problem", "small_n", "large_n", "steps"):
            assert record[key] == baseline[key], (
                f"baseline {key}={baseline[key]!r} does not match this "
                f"run's {key}={record[key]!r}; refresh the baseline"
            )
        machine = (
            large["single_us_per_step"]
            / baseline["large"]["single_us_per_step"]
        )
        for key, case in large["cases"].items():
            base_case = baseline["large"]["cases"].get(key)
            if base_case is None:
                continue
            raw = (
                case["sharded_us_per_step"]
                / base_case["sharded_us_per_step"]
            )
            corrected = raw / machine
            with capsys.disabled():
                print(
                    f"  baseline gate {key}: {raw:.2f}x raw, "
                    f"{machine:.2f}x machine factor, {corrected:.2f}x "
                    f"corrected (max {MAX_SLOWDOWN}x)"
                )
            assert corrected <= MAX_SLOWDOWN, (
                f"{key} regressed {corrected:.2f}x machine-corrected vs "
                f"baseline (limit {MAX_SLOWDOWN}x)"
            )
