"""Experiment fig11: Burgers absolute runtimes on Broadwell
(Figure 11: 2.13 / 15.73 / 8.76 / 0.56 / 1.54 seconds).

"Despite being slower in serial, the adjoint stencil outperforms
conventional adjoints by a factor of 5.7x."
"""

from repro.experiments import fig11_burgers_runtimes_broadwell, render_bars
from repro.machine import BROADWELL
from repro.experiments import burgers_descriptors


def test_fig11_burgers_runtime_bars(benchmark, capsys, burgers_case):
    def serial_suite():
        burgers_case.primal_kernel(burgers_case.arrays())
        burgers_case.gather_kernel(burgers_case.arrays())
        burgers_case.scatter_kernel(burgers_case.arrays())

    benchmark.pedantic(serial_suite, rounds=3, iterations=1)
    fig = fig11_burgers_runtimes_broadwell()
    with capsys.disabled():
        print()
        print(render_bars(fig))

    for label, (model, paper) in fig.bars.items():
        assert 0.55 < model / paper < 1.45, (label, model, paper)
        benchmark.extra_info[label] = round(model, 2)

    # Serial ordering: primal < conventional adjoint < PerforAD adjoint.
    assert (
        fig.bars["Primal Serial"][0]
        < fig.bars["Adjoint Serial"][0]
        < fig.bars["PerforAD Serial"][0]
    )
    # Crossover at two threads (Section 5.1): PerforAD with 2 threads
    # already beats the serial conventional adjoint.
    desc = burgers_descriptors()
    t2 = BROADWELL.time(desc.perforad, 2, "gather")
    assert t2 < fig.bars["Adjoint Serial"][0]
    factor = fig.bars["Adjoint Serial"][0] / fig.bars["PerforAD Parallel"][0]
    assert 4.0 < factor < 12.0  # paper: 5.7x
    benchmark.extra_info["speedup_vs_conventional"] = round(factor, 1)
