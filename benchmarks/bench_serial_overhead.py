"""Experiment serial51: measured serial comparison of the three adjoint
execution disciplines (Section 5.1's serial observations, at laptop scale).

Real NumPy timings on this machine: the PerforAD gather adjoint, the
conventional scatter adjoint executed as slice updates, and the scatter
adjoint executed with ``np.add.at`` (the atomic-update analogue).  The
measured ``add.at`` slowdown factor is the laptop-scale counterpart of the
paper's 91 s-vs-5.43 s atomics penalty; the slice-scatter vs gather gap is
small in serial, exactly as in the paper (5.43 s vs 8.52 s — same order).
"""

import time

import numpy as np


def _best_of(fn, arrays_factory, reps=5):
    best = float("inf")
    for _ in range(reps):
        arrays = arrays_factory()
        t0 = time.perf_counter()
        fn(arrays)
        best = min(best, time.perf_counter() - t0)
    return best


def test_serial_overhead_wave(benchmark, capsys, wave_case):
    benchmark.pedantic(
        wave_case.gather_kernel, args=(wave_case.arrays(),), rounds=3, iterations=1
    )
    t_primal = _best_of(wave_case.primal_kernel, wave_case.arrays)
    t_gather = _best_of(wave_case.gather_kernel, wave_case.arrays)
    t_scatter = _best_of(wave_case.scatter_kernel, wave_case.arrays)
    t_atomic = _best_of(wave_case.atomic_kernel, wave_case.arrays, reps=2)
    with capsys.disabled():
        print(f"\nwave3d n={wave_case.n}, measured serial (best):")
        print(f"  primal           {t_primal * 1e3:9.2f} ms")
        print(f"  PerforAD gather  {t_gather * 1e3:9.2f} ms "
              f"({t_gather / t_primal:.2f}x primal)")
        print(f"  scatter slices   {t_scatter * 1e3:9.2f} ms")
        print(f"  add.at atomics   {t_atomic * 1e3:9.2f} ms "
              f"({t_atomic / t_scatter:.1f}x scatter)")
    # The atomic-analogue execution is dramatically slower, as on hardware.
    assert t_atomic > 2.0 * t_scatter
    benchmark.extra_info["atomic_vs_scatter"] = round(t_atomic / t_scatter, 1)


def test_serial_overhead_burgers(benchmark, capsys, burgers_case):
    benchmark.pedantic(
        burgers_case.gather_kernel,
        args=(burgers_case.arrays(),),
        rounds=3,
        iterations=1,
    )
    t_primal = _best_of(burgers_case.primal_kernel, burgers_case.arrays)
    t_gather = _best_of(burgers_case.gather_kernel, burgers_case.arrays)
    t_scatter = _best_of(burgers_case.scatter_kernel, burgers_case.arrays)
    t_atomic = _best_of(burgers_case.atomic_kernel, burgers_case.arrays, reps=2)
    with capsys.disabled():
        print(f"\nburgers1d n={burgers_case.n}, measured serial (best):")
        print(f"  primal           {t_primal * 1e3:9.2f} ms")
        print(f"  PerforAD gather  {t_gather * 1e3:9.2f} ms "
              f"({t_gather / t_primal:.2f}x primal)")
        print(f"  scatter slices   {t_scatter * 1e3:9.2f} ms")
        print(f"  add.at atomics   {t_atomic * 1e3:9.2f} ms "
              f"({t_atomic / t_scatter:.1f}x scatter)")
    # Adjoint costs more than the primal (it does strictly more work).
    assert t_gather > t_primal
    assert t_atomic > t_scatter
    benchmark.extra_info["adjoint_vs_primal"] = round(t_gather / t_primal, 2)
