"""Experiment fig15: Burgers absolute runtimes on KNL
(Figure 15: 25.02 / 51.85 / 95.74 / 0.50 / 0.76 seconds).

On KNL the conventional serial baseline is Tapenade's *stack-based*
output (min/max values pushed in the forward sweep, popped in reverse),
which is slower than PerforAD even in serial; combined with the
scalability gap this yields the paper's 125x headline factor.

Measured part: the stack-based adjoint (forward push + reverse pop)
executes at laptop scale and is verified against the gather adjoint.
"""

import numpy as np

from repro.baselines import StackAdjoint
from repro.experiments import fig15_burgers_runtimes_knl, render_bars


def test_fig15_burgers_runtime_bars_knl(benchmark, capsys, burgers_case):
    sa = StackAdjoint(
        burgers_case.problem.primal,
        burgers_case.problem.adjoint_map,
        burgers_case.bindings,
        chunk=4096,
    )
    assert sa.num_intermediates == 2

    def stack_sweep():
        arrays = burgers_case.arrays()
        sa.run(arrays)
        return arrays

    arrays = benchmark.pedantic(stack_sweep, rounds=3, iterations=1)

    # Verify the stack sweep against the gather adjoint.
    ref = burgers_case.arrays()
    burgers_case.gather_kernel(ref)
    np.testing.assert_allclose(
        arrays["u_1_b"], ref["u_1_b"], rtol=1e-12, atol=1e-13
    )

    fig = fig15_burgers_runtimes_knl()
    with capsys.disabled():
        print()
        print(render_bars(fig))

    for label, (model, paper) in fig.bars.items():
        assert 0.55 < model / paper < 1.45, (label, model, paper)
        benchmark.extra_info[label] = round(model, 2)

    # Stack-based conventional serial is slower than PerforAD *serial*
    # (Figure 15's distinctive feature: 95.74 s vs 51.85 s).
    assert fig.bars["Adjoint Serial"][0] > fig.bars["PerforAD Serial"][0]
    # Headline: ~125x between conventional stack serial and PerforAD best.
    factor = fig.bars["Adjoint Serial"][0] / fig.bars["PerforAD Parallel"][0]
    assert factor > 90.0
    benchmark.extra_info["speedup_vs_conventional"] = round(factor, 1)
