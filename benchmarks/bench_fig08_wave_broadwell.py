"""Experiment fig8: wave-equation scalability on Broadwell (Figure 8).

Measured part: one serial execution of the PerforAD wave adjoint at
laptop scale (the kernel whose descriptor feeds the model).  Table part:
the full speedup series at the paper's 1000^3 size on the Broadwell
preset.  Shape assertions encode the figure's claims: the primal and the
PerforAD adjoint scale (the paper's primal reaches ~4.6x at 12 threads,
PerforAD ~7.8x), the Tapenade adjoint is serial, and atomics never exceed
their serial baseline.
"""

from repro.experiments import fig08_wave_broadwell, render_speedup


def test_fig08_wave_broadwell_speedups(benchmark, capsys, wave_case):
    benchmark.pedantic(
        wave_case.gather_kernel, args=(wave_case.arrays(),), rounds=3, iterations=1
    )
    fig = fig08_wave_broadwell()
    with capsys.disabled():
        print()
        print(render_speedup(fig))

    s = fig.series
    # Primal benefits from all 12 cores but saturates on bandwidth (~4.6x).
    assert 4.0 < s["Primal"][-1] < 6.0
    # PerforAD scales further than the primal (more flops per byte).
    assert s["PerforAD"][-1] > s["Primal"][-1]
    assert s["PerforAD"][-1] > 6.0
    # Conventional adjoint: serial (flat at 1).
    assert all(v == 1.0 for v in s["Adjoint"])
    # Atomics never scale and stay below serial speed at every count.
    assert all(v < 0.2 for v in s["Atomics"])
    assert s["Atomics"][-1] <= s["Atomics"][0]
    for label, series in fig.series.items():
        benchmark.extra_info[f"{label}@12t"] = round(series[-1], 2)
