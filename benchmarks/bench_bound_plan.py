"""Steady-state benchmark for bound execution plans.

The paper's measured regime executes one compiled adjoint stencil for
thousands of timesteps on fixed arrays, so per-timestep overhead — not
compilation (amortised by the kernel cache, see ``bench_plan_cache``) —
decides throughput.  This benchmark pits the bound steady-state path
(:meth:`ExecutionPlan.bind` + replay) against the PR 1 plan path
(:meth:`ExecutionPlan.run_unbound`: per-call views, aranges and
full-box temporaries) on a repeated small-grid adjoint timestep loop.

Acceptance targets:

* >= 2x compile-excluded steady-state speedup for bound runs,
* bitwise-identical results for the serial, threaded, tiled and scatter
  disciplines,
* zero NumPy array allocations per steady-state bound call
  (``tracemalloc``-verified).
"""

import numpy as np

from repro.apps import heat_problem
from repro.baselines.scatter import tapenade_style_adjoint
from repro.core import adjoint_loops
from repro.experiments.steady import measure_steady_state
from repro.runtime import compile_nests

REPS = 200
N = 24


def _gather_case():
    prob = heat_problem(2)
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    bindings = prob.bindings(N)
    kernel = compile_nests(nests, bindings, name="bound_bench")
    rng = np.random.default_rng(0)
    base = prob.allocate(N, rng=rng)
    base.update(prob.allocate_adjoints(N, rng=rng))
    return prob, kernel, base


def _assert_bound_matches_unbound(plan, base):
    """First bound run *and* steady-state replay equal the unbound path."""
    unbound = {k: v.copy() for k, v in base.items()}
    plan.run_unbound(unbound)
    got = {k: v.copy() for k, v in base.items()}
    bound = plan.bind(got)
    for _ in range(2):
        bound.run()
        for name in got:
            np.testing.assert_array_equal(unbound[name], got[name])
        for name, arr in base.items():
            got[name][...] = arr


def test_bound_plan_steady_state_speedup(benchmark, capsys):
    prob, kernel, base = _gather_case()

    # -- bitwise identity for every discipline -------------------------------
    configs = {
        "serial": dict(),
        "threads2": dict(num_threads=2, min_block_iterations=1),
        "tiled": dict(tile_shape=(8, 8)),
        "tiled+threads2": dict(
            num_threads=2, tile_shape=(8, 8), min_block_iterations=1
        ),
    }
    for cfg in configs.values():
        with kernel.plan(**cfg) as p:
            _assert_bound_matches_unbound(p, base)

    scat = tapenade_style_adjoint(prob.primal, prob.adjoint_map)
    scat_kernel = compile_nests([scat], prob.bindings(N), name="bound_bench_scat")
    with scat_kernel.plan(
        num_threads=2, scatter=True, min_block_iterations=1
    ) as sp_plan:
        _assert_bound_matches_unbound(sp_plan, base)

    # -- steady-state timing + allocations (shared harness, also used by
    #    `python -m repro bench`) --------------------------------------------
    plan = kernel.plan()
    arrays = {k: v.copy() for k, v in base.items()}
    case = measure_steady_state(plan, arrays, base, REPS)
    bound = plan.bind(arrays)

    def bound_loop():
        for _ in range(REPS):
            bound.run()

    iters = kernel.total_iterations()
    benchmark.pedantic(bound_loop, rounds=3, iterations=1)
    with capsys.disabled():
        print(
            f"\nsteady-state adjoint timestep, {prob.name} n={N}, "
            f"best of {REPS}-call loops:"
        )
        print(f"  plan (unbound) run  {case['unbound_us_per_call']:8.1f} us/call "
              f"({case['unbound_us_per_call'] * 1e3 / iters:6.1f} ns/it)")
        print(f"  bound run           {case['bound_us_per_call']:8.1f} us/call "
              f"({case['bound_us_per_call'] * 1e3 / iters:6.1f} ns/it)")
        print(f"  speedup             {case['speedup']:8.2f}x")
        print(f"  steady allocations  net {case['steady_net_alloc_bytes']} B, "
              f"peak {case['steady_peak_alloc_bytes']} B "
              f"over {case['steady_alloc_calls']} calls")
    benchmark.extra_info.update(case)

    assert case["bitwise_identical"]
    assert case["inplace_statements"] == case["total_statements"]
    assert case["steady_net_alloc_bytes"] == 0, (
        "steady-state bound run retained memory"
    )
    smallest_box = (N - 4) * (N - 4) * 8
    assert case["steady_peak_alloc_bytes"] < smallest_box, (
        f"steady-state bound run transiently allocated "
        f"{case['steady_peak_alloc_bytes']} B"
    )
    assert case["speedup"] >= 2.0, (
        f"expected >=2x steady-state speedup for bound runs, "
        f"got {case['speedup']:.2f}x"
    )
