"""Fusion benchmark + CI gate: fused loop nests vs the per-statement path.

The dependence-aware fusion pass (``core/fusion.py``, ``docs/fusion.md``)
merges the heat2d adjoint's 17 native statements into one loop nest —
one memory sweep per timestep instead of 17.  This benchmark records the
real cost of both paths at a grid past the dispatch-dominated regime
(``BENCH_fusion.json``) and gates the pass in CI:

* **hard** — fused results bitwise identical to the per-statement native
  path *and* to the unbound serial reference,
* **hard** — memory-sweep reduction >= 3x (heat2d measures 17x) and a
  wall-clock speedup floor of 1.3x over the per-statement native path,
* **machine-corrected** — fused per-timestep time vs the checked-in
  ``baseline_fusion.json``, corrected via the per-statement native time
  of the same run (the two paths run identical arithmetic through the
  same FFI layer, so their ratio isolates fused-codegen regressions
  from runner hardware), failing beyond ``MAX_SLOWDOWN``; the baseline
  may also never record *more* sweeps than the current run (fusion
  coverage must not silently shrink).

Refresh the baseline by copying a freshly recorded ``BENCH_fusion.json``
over ``benchmarks/baseline_fusion.json``.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.apps import heat_problem
from repro.core import adjoint_loops
from repro.experiments.steady import _best_of, bitwise_equal
from repro.runtime import compile_nests, native_available

REPS = 100
N = 128
OUTPUT = "BENCH_fusion.json"
BASELINE = Path(__file__).parent / "baseline_fusion.json"
MAX_SLOWDOWN = 1.5
MIN_SWEEP_REDUCTION = 3.0
MIN_SPEEDUP = 1.3


@pytest.mark.skipif(not native_available(), reason="no C toolchain")
def test_fused_sweeps_and_speedup(benchmark, capsys):
    prob = heat_problem(2)
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    kernel = compile_nests(nests, prob.bindings(N), name="fusion_bench")
    rng = np.random.default_rng(0)
    base = prob.allocate(N, rng=rng)
    base.update(prob.allocate_adjoints(N, rng=rng))

    ref_plan = kernel.plan(backend="native", fusion="off")
    fus_plan = kernel.plan(backend="native", fusion="auto")
    ref_arrays = {k: v.copy() for k, v in base.items()}
    fus_arrays = {k: v.copy() for k, v in base.items()}
    ref_bound = ref_plan.bind(ref_arrays)
    fus_bound = fus_plan.bind(fus_arrays)

    # -- fusion shape: the whole adjoint collapses into one nest -------------
    assert ref_bound.native_statement_count == ref_bound.statement_count
    assert fus_bound.fused_group_count >= 1
    sweep_reduction = fus_bound.statement_count / fus_bound.sweep_count
    assert sweep_reduction >= MIN_SWEEP_REDUCTION, (
        f"expected >={MIN_SWEEP_REDUCTION}x sweep reduction, got "
        f"{fus_bound.statement_count} statements in {fus_bound.sweep_count} "
        f"sweeps ({sweep_reduction:.1f}x)"
    )

    for _ in range(3):  # warm-up: replay buffers, code + data caches
        ref_bound.run()
        fus_bound.run()

    # -- bitwise identity: fused == per-statement == serial reference --------
    serial = {k: v.copy() for k, v in base.items()}
    ref_plan.run_unbound(serial)
    for arrays in (ref_arrays, fus_arrays):
        for name, arr in base.items():
            arrays[name][...] = arr
    ref_bound.run()
    fus_bound.run()
    bitwise = all(
        bitwise_equal(serial[name], fus_arrays[name])
        and bitwise_equal(serial[name], ref_arrays[name])
        for name in serial
    )

    # -- steady-state per-timestep timing ------------------------------------
    t_ref = _best_of(ref_bound.run, REPS)
    t_fused = _best_of(fus_bound.run, REPS)
    speedup = t_ref / t_fused

    def fused_loop():
        for _ in range(REPS):
            fus_bound.run()

    benchmark.pedantic(fused_loop, rounds=3, iterations=1)

    record = {
        "benchmark": "fused_native_steady_state",
        "problem": prob.name,
        "n": N,
        "reps": REPS,
        "iterations_per_call": kernel.total_iterations(),
        "per_statement_us_per_call": round(t_ref * 1e6, 3),
        "fused_us_per_call": round(t_fused * 1e6, 3),
        "speedup_vs_per_statement": round(speedup, 3),
        "total_statements": fus_bound.statement_count,
        "fused_groups": fus_bound.fused_group_count,
        "fused_statements": fus_bound.fused_statement_count,
        "sweeps_per_timestep": fus_bound.sweep_count,
        "sweep_reduction": round(sweep_reduction, 3),
        "bitwise_identical": bitwise,
    }
    with open(OUTPUT, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    benchmark.extra_info.update(record)

    with capsys.disabled():
        print(f"\nfused native, {prob.name} n={N}, best of {REPS}-call loops:")
        print(
            f"  per-statement native {t_ref * 1e6:8.1f} us/call "
            f"({fus_bound.statement_count} sweeps)"
        )
        print(
            f"  fused native         {t_fused * 1e6:8.1f} us/call "
            f"({fus_bound.sweep_count} sweep(s))"
        )
        print(
            f"  speedup              {speedup:8.2f}x  "
            f"sweep reduction {sweep_reduction:.0f}x  (recorded in {OUTPUT})"
        )

    ref_plan.close()
    fus_plan.close()

    assert bitwise, "fused path diverged bitwise"
    assert speedup >= MIN_SPEEDUP, (
        f"expected >={MIN_SPEEDUP}x fused speedup over the per-statement "
        f"native path, got {speedup:.2f}x"
    )

    # -- machine-corrected gate vs the checked-in baseline -------------------
    if BASELINE.exists():
        with open(BASELINE) as fh:
            baseline = json.load(fh)
        for key in ("benchmark", "problem", "n", "reps"):
            assert record[key] == baseline[key], (
                f"baseline {key}={baseline[key]!r} does not match this "
                f"run's {key}={record[key]!r}; refresh the baseline"
            )
        assert record["sweeps_per_timestep"] <= baseline["sweeps_per_timestep"], (
            f"fusion coverage regressed: {record['sweeps_per_timestep']} "
            f"sweeps vs baseline {baseline['sweeps_per_timestep']}"
        )
        raw = record["fused_us_per_call"] / baseline["fused_us_per_call"]
        machine = (
            record["per_statement_us_per_call"]
            / baseline["per_statement_us_per_call"]
        )
        corrected = raw / machine
        with capsys.disabled():
            print(
                f"  baseline gate        {raw:.2f}x raw, {machine:.2f}x "
                f"machine factor, {corrected:.2f}x corrected "
                f"(max {MAX_SLOWDOWN}x)"
            )
        assert corrected <= MAX_SLOWDOWN, (
            f"fused path regressed {corrected:.2f}x machine-corrected vs "
            f"baseline (limit {MAX_SLOWDOWN}x)"
        )
