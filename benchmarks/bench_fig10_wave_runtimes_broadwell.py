"""Experiment fig10: wave-equation absolute runtimes on Broadwell
(Figure 10: 4.14 / 8.52 / 5.43 / 0.90 / 1.61 seconds).

Measured part: the three serial adjoint disciplines at laptop scale
(primal, PerforAD gather, conventional scatter).  Table: the five model
bars at 1000^3 vs the paper's values, all required to agree within 45%.
Shape assertions: PerforAD is slower than the conventional adjoint in
*serial* (the paper's 64% overhead) but wins with threads (3.4x at best).
"""

from repro.experiments import PAPER, fig10_wave_runtimes_broadwell, render_bars


def test_fig10_wave_runtime_bars(benchmark, capsys, wave_case):
    def serial_suite():
        wave_case.primal_kernel(wave_case.arrays())
        wave_case.gather_kernel(wave_case.arrays())
        wave_case.scatter_kernel(wave_case.arrays())

    benchmark.pedantic(serial_suite, rounds=3, iterations=1)
    fig = fig10_wave_runtimes_broadwell()
    with capsys.disabled():
        print()
        print(render_bars(fig))

    for label, (model, paper) in fig.bars.items():
        assert 0.55 < model / paper < 1.45, (label, model, paper)
        benchmark.extra_info[label] = round(model, 2)

    # Section 5.1's serial-overhead claim: PerforAD serial is slower than
    # the conventional adjoint serial (paper: 8.52 s vs 5.43 s, +57%).
    assert fig.bars["PerforAD Serial"][0] > fig.bars["Adjoint Serial"][0]
    # ... but the best parallel PerforAD beats the conventional adjoint
    # by a factor ~3.4 (the paper's headline for this case).
    factor = fig.bars["Adjoint Serial"][0] / fig.bars["PerforAD Parallel"][0]
    assert 2.5 < factor < 8.0
    benchmark.extra_info["speedup_vs_conventional"] = round(factor, 1)
