"""Shared builders for the benchmark harness.

Measured kernels run at laptop scale (the paper's 1000^3 / 10^9 sizes do
not fit a test machine); the per-figure tables are produced by the
calibrated machine model at the paper's sizes (see DESIGN.md section 4 for
why this substitution preserves the evaluation's claims).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AtomicScatterKernel,
    adjoint_loops,
    burgers_problem,
    compile_nests,
    tapenade_style_adjoint,
    wave_problem,
)

# Laptop-scale measured problem sizes (paper: 1000^3 and 10^9).
WAVE_N_MEASURED = 96
BURGERS_N_MEASURED = 2_000_000


class MeasuredCase:
    """Compiled primal/adjoint kernels plus fresh-array factories.

    Kernels come out of the content-addressed kernel cache, and every
    call (``CompiledKernel.__call__`` included) executes through the
    kernel's memoised :class:`~repro.runtime.plan.ExecutionPlan`,
    mirroring the paper's compile-once/run-many workflow.
    """

    def __init__(self, problem, n: int):
        self.problem = problem
        self.n = n
        self.bindings = problem.bindings(n)
        self.primal_kernel = compile_nests(
            [problem.primal], self.bindings, name="primal"
        )
        self.gather_nests = adjoint_loops(problem.primal, problem.adjoint_map)
        self.gather_kernel = compile_nests(
            self.gather_nests, self.bindings, name="perforad"
        )
        self.scatter_nest = tapenade_style_adjoint(
            problem.primal, problem.adjoint_map
        )
        self.scatter_kernel = compile_nests(
            [self.scatter_nest], self.bindings, name="scatter"
        )
        self.atomic_kernel = AtomicScatterKernel(self.scatter_kernel)
        rng = np.random.default_rng(0)
        self._base = problem.allocate(n, rng=rng)
        self._base.update(problem.allocate_adjoints(n, rng=rng))

    def arrays(self) -> dict[str, np.ndarray]:
        return {k: v.copy() for k, v in self._base.items()}


@pytest.fixture(scope="session")
def wave_case() -> MeasuredCase:
    return MeasuredCase(wave_problem(3, active_c=False), WAVE_N_MEASURED)


@pytest.fixture(scope="session")
def burgers_case() -> MeasuredCase:
    return MeasuredCase(burgers_problem(1), BURGERS_N_MEASURED)
