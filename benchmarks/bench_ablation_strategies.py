"""Ablation: the three boundary strategies of Section 3.3.4.

The paper discusses the trade-off between code size (number of generated
loop nests) and branch overhead.  This benchmark measures all three
strategies on the same problems and reports nest counts alongside
measured runtimes — the data behind the discussion.
"""

import time

import numpy as np

from repro import adjoint_loops, compile_nests
from repro.apps import heat_problem, wave_problem
from repro.core.transform import STRATEGIES


def _measure(prob, n, strategy, reps=5):
    inner = prob.with_interior(prob.halo)  # padded needs the halo margin
    nests = adjoint_loops(inner.primal, inner.adjoint_map, strategy=strategy)
    kernel = compile_nests(nests, inner.bindings(n), name=strategy)
    rng = np.random.default_rng(0)
    base = inner.allocate(n, rng=rng)
    base.update(inner.allocate_adjoints(n, rng=rng))
    best = float("inf")
    for _ in range(reps):
        arrays = {k: v.copy() for k, v in base.items()}
        t0 = time.perf_counter()
        kernel(arrays)
        best = min(best, time.perf_counter() - t0)
    return len(nests), best, arrays


def test_ablation_strategies_wave3d(benchmark, capsys):
    prob = wave_problem(3, active_c=False)
    n = 64
    results = {}
    reference = None
    for strategy in STRATEGIES:
        count, t, arrays = _measure(prob, n, strategy)
        results[strategy] = (count, t)
        if reference is None:
            reference = arrays["u_1_b"]
        else:
            np.testing.assert_allclose(
                arrays["u_1_b"], reference, rtol=1e-12, atol=1e-13
            )
    benchmark.pedantic(
        lambda: _measure(prob, n, "disjoint", reps=1), rounds=3, iterations=1
    )
    with capsys.disabled():
        print(f"\nboundary-strategy ablation, wave3d n={n}:")
        for strategy, (count, t) in results.items():
            print(f"  {strategy:9s} {count:4d} nests   {t * 1e3:8.2f} ms")
    # Code-size ordering from Section 3.3.4.
    assert results["padded"][0] == 1
    assert results["guarded"][0] == 7
    assert results["disjoint"][0] == 53
    for strategy, (count, t) in results.items():
        benchmark.extra_info[f"{strategy}_nests"] = count
        benchmark.extra_info[f"{strategy}_ms"] = round(t * 1e3, 2)


def test_ablation_strategies_heat2d(benchmark, capsys):
    prob = heat_problem(2)
    n = 512
    results = {}
    reference = None
    for strategy in STRATEGIES:
        count, t, arrays = _measure(prob, n, strategy)
        results[strategy] = (count, t)
        if reference is None:
            reference = arrays["u_1_b"]
        else:
            np.testing.assert_allclose(
                arrays["u_1_b"], reference, rtol=1e-12, atol=1e-13
            )
    benchmark.pedantic(
        lambda: _measure(prob, n, "disjoint", reps=1), rounds=3, iterations=1
    )
    with capsys.disabled():
        print(f"\nboundary-strategy ablation, heat2d n={n}:")
        for strategy, (count, t) in results.items():
            print(f"  {strategy:9s} {count:4d} nests   {t * 1e3:8.2f} ms")
    assert results["padded"][0] == 1
    assert results["guarded"][0] == 5
    assert results["disjoint"][0] == 17
