"""Experiment fig5/fig7: the generated code of Figures 5 and 7.

Benchmarks the full generation pipeline (symbolic differentiation + loop
transformation + C printing) for both test cases and asserts the
structural properties visible in the published listings.
"""

from repro import print_function_c, wave_problem, burgers_problem
from repro.baselines import print_function_c_atomic, tapenade_style_adjoint
from repro.core import adjoint_loops


def generate_wave_fig5():
    prob = wave_problem(3, active_c=False)
    primal_code = print_function_c("wave3d", [prob.primal])
    nests = adjoint_loops(prob.primal, prob.adjoint_map, merge=False)
    adjoint_code = print_function_c("wave3d_perf_b", nests)
    scatter = tapenade_style_adjoint(prob.primal, prob.adjoint_map)
    atomic_code = print_function_c_atomic("wave3d_b_atomics", scatter)
    return primal_code, adjoint_code, atomic_code


def generate_burgers_fig7():
    prob = burgers_problem(1)
    primal_code = print_function_c("burgers1d", [prob.primal])
    adjoint_code = print_function_c(
        "burgers1d_perf_b", adjoint_loops(prob.primal, prob.adjoint_map)
    )
    return primal_code, adjoint_code


def test_fig05_wave_codegen(benchmark):
    primal, adjoint, atomic = benchmark(generate_wave_fig5)
    # Figure 5, top: the parallel primal stencil.
    assert "#pragma omp parallel for private(i,j,k)" in primal
    assert "u[i][j][k] +=" in primal
    # Figure 5, middle: the PerforAD adjoint core loop on [2, n-3].
    assert "for ( i=2; i<=n - 3; i++ )" in adjoint
    assert "u_1_b[i][j][k] +=" in adjoint and "u_2_b[i][j][k] +=" in adjoint
    # Figure 5, bottom: the atomics baseline.
    assert atomic.count("#pragma omp atomic") == 8
    assert "for (i = n - 2; i >= 1; --i)" in atomic
    benchmark.extra_info["adjoint_loop_nests"] = 53


def test_fig07_burgers_codegen(benchmark):
    primal, adjoint = benchmark(generate_burgers_fig7)
    # Figure 7: fmax/fmin in the primal, ternaries in the adjoint.
    assert "fmax(0, u_1[i])" in primal and "fmin(0, u_1[i])" in primal
    assert "? 1.0 : 0.0" in adjoint
    assert "fmax(0, u_1[i + 1])" in adjoint
    assert "fmin(0, u_1[i - 1])" in adjoint
    assert "for ( i=2; i<=n - 3; i++ )" in adjoint
