"""Experiment fig13: Burgers scalability on KNL (Figure 13).

"... near-perfect scalability up to 64 threads for the primal and adjoint
stencil solver on a KNL processor.  The scatter adjoints with atomics do
not scale at all."
"""

from repro.experiments import fig13_burgers_knl, render_speedup


def test_fig13_burgers_knl_speedups(benchmark, capsys, burgers_case):
    benchmark.pedantic(
        burgers_case.gather_kernel,
        args=(burgers_case.arrays(),),
        rounds=3,
        iterations=1,
    )
    fig = fig13_burgers_knl()
    with capsys.disabled():
        print()
        print(render_speedup(fig))

    primal = dict(zip(fig.threads, fig.series["Primal"]))
    perforad = dict(zip(fig.threads, fig.series["PerforAD"]))
    # Near-perfect scaling to 64 threads for both stencil solvers.
    assert primal[64] > 32.0
    assert perforad[64] > 55.0
    # SMT beyond 64 threads still helps the compute-bound adjoint.
    assert perforad[256] > perforad[64]
    # Atomics do not scale at all.
    assert all(v < 0.6 for v in fig.series["Atomics"])
    assert fig.series["Atomics"][-1] < fig.series["Atomics"][0]
    benchmark.extra_info["perforad@64t"] = round(perforad[64], 1)
