"""Compile-amortisation benchmark for the plan-and-cache runtime layer.

The paper's workflow compiles the generated stencil kernel once (``icc
-O3``) and reuses it for every timestep and repetition; the analogue
here is ``compile_nests`` (SymPy lambdify) plus ``CompiledKernel.plan``
(work decomposition).  This benchmark measures what the kernel cache and
plan memoisation buy on the workload they target: repeated small-grid
adjoint runs, where compilation dominates a cold pipeline.

Acceptance target: >= 5x speedup for cached compile+run over cold
``compile_nests`` each iteration, with bitwise-identical results.
"""

import time

import numpy as np

from repro.apps import heat_problem
from repro.core import adjoint_loops
from repro.runtime import compile_nests, get_kernel_cache

REPS = 20
N = 24


def _case():
    prob = heat_problem(2)
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    bindings = prob.bindings(N)
    rng = np.random.default_rng(0)
    base = prob.allocate(N, rng=rng)
    base.update(prob.allocate_adjoints(N, rng=rng))
    return prob, nests, bindings, base


def test_plan_cache_amortisation(benchmark, capsys):
    prob, nests, bindings, base = _case()

    def fresh():
        return {k: v.copy() for k, v in base.items()}

    def cold_pipeline():
        """The pre-cache behaviour: lambdify + decompose every iteration."""
        arrays = None
        for _ in range(REPS):
            arrays = fresh()
            kernel = compile_nests(nests, bindings, cache=False)
            kernel(arrays)
        return arrays

    def cached_pipeline():
        """Compile-once/plan-once: both lookups hit after the first run."""
        arrays = None
        for _ in range(REPS):
            arrays = fresh()
            kernel = compile_nests(nests, bindings)
            kernel.plan().run(arrays)
        return arrays

    # Warm the kernel and plan caches outside the timed region.
    compile_nests(nests, bindings).plan()
    hits_before = get_kernel_cache().hits

    t_cold = min(
        _timed(cold_pipeline)[0] for _ in range(3)
    )
    t_cached, a_cached = min(
        (_timed(cached_pipeline) for _ in range(3)), key=lambda t: t[0]
    )
    a_cold = cold_pipeline()

    # Correctness: the cached plan path is bitwise identical to the cold
    # serial path.
    for name in a_cold:
        np.testing.assert_array_equal(a_cold[name], a_cached[name])
    # Every cached iteration after warm-up hit the kernel cache.
    assert get_kernel_cache().hits - hits_before >= 3 * REPS

    speedup = t_cold / t_cached
    benchmark.pedantic(cached_pipeline, rounds=3, iterations=1)
    with capsys.disabled():
        print(
            f"\nplan+cache amortisation, {prob.name} adjoint n={N}, "
            f"{REPS} repetitions:"
        )
        print(f"  cold compile+run   {t_cold * 1e3:8.2f} ms")
        print(f"  cached plan run    {t_cached * 1e3:8.2f} ms")
        print(f"  speedup            {speedup:8.1f}x")
    benchmark.extra_info["cold_ms"] = round(t_cold * 1e3, 2)
    benchmark.extra_info["cached_ms"] = round(t_cached * 1e3, 2)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    assert speedup >= 5.0, f"expected >=5x compile amortisation, got {speedup:.1f}x"


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out
