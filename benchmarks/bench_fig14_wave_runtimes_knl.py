"""Experiment fig14: wave-equation absolute runtimes on KNL
(Figure 14: 12.82 / 41.27 / 25.45 / 0.84 / 1.29 seconds).

"...adjoint stencils lead to a much-reduced runtime in parallel, over 19x
faster than the best runtime of the conventional adjoint code."
"""

from repro.experiments import fig14_wave_runtimes_knl, render_bars


def test_fig14_wave_runtime_bars_knl(benchmark, capsys, wave_case):
    benchmark.pedantic(
        wave_case.scatter_kernel, args=(wave_case.arrays(),), rounds=3, iterations=1
    )
    fig = fig14_wave_runtimes_knl()
    with capsys.disabled():
        print()
        print(render_bars(fig))

    for label, (model, paper) in fig.bars.items():
        assert 0.55 < model / paper < 1.45, (label, model, paper)
        benchmark.extra_info[label] = round(model, 2)

    # The conventional adjoint does not parallelise (its best is serial),
    # so the headline factor is conventional-serial over PerforAD-best.
    factor = fig.bars["Adjoint Serial"][0] / fig.bars["PerforAD Parallel"][0]
    assert factor > 15.0  # paper: >19x
    benchmark.extra_info["speedup_vs_conventional"] = round(factor, 1)
