"""Checkpointed-adjoint benchmark: revolve over bound plans.

The long-time-horizon adjoint workload stores O(steps) primal states in
a store-all sweep; the revolve-checkpointed
:class:`~repro.runtime.checkpoint.CheckpointedAdjointPlan` keeps only a
preallocated :class:`~repro.runtime.checkpoint.SnapshotPool` of
``snaps`` states and recomputes forward sub-sweeps, with a provably
minimal evaluation count.  This benchmark records the trade-off and
gates the contract (written to ``BENCH_checkpoint.json``):

* **bitwise** — the checkpointed adjoint equals the store-all adjoint
  bit for bit (the reverse sweep consumes the same primal states);
* **memory** — resident snapshot bytes are at most
  ``snaps / steps + eps`` of the store-all state bytes;
* **recompute** — the forward evaluations per sweep equal the revolve
  optimum ``optimal_cost(steps, snaps) - steps`` exactly;
* **steady state** — post-warm-up sweeps allocate no arrays (net
  tracemalloc bytes stay below interpreter noise).
"""

import json
import tracemalloc

import numpy as np
import pytest

from repro.apps import burgers_problem, heat_problem, wave_problem
from repro.driver import optimal_cost
from repro.experiments.steady import bitwise_equal

STEPS = 16
SNAPS = 4
OUTPUT = "BENCH_checkpoint.json"
# Steady-state sweeps still churn small transient Python objects
# (schedule interpretation, bound-method wrappers); arrays are 100x+.
NOISE_BYTES = 2048

CASES = {
    "heat2d": (lambda: heat_problem(2), 18),
    "wave1d": (lambda: wave_problem(1), 40),
    "burgers1d": (lambda: burgers_problem(1), 48),
}


def _case_inputs(prob, n, plan):
    shape = prob.array_shape(n)
    rng = np.random.default_rng(3)
    state0 = [rng.standard_normal(shape) * 0.1 for _ in plan.history]
    seed = prob.allocate_adjoints(n, rng=rng)[
        prob.adjoint_name_map()[prob.output_name]
    ]
    return state0, seed


def test_checkpointed_adjoint_contract(benchmark, capsys):
    cases = {}
    bench_plan = bench_inputs = None
    for label, (factory, n) in CASES.items():
        prob = factory()
        plan = prob.checkpointed_adjoint(n, steps=STEPS, snaps=SNAPS)
        state0, seed = _case_inputs(prob, n, plan)

        ref = {k: v.copy() for k, v in plan.run_store_all(state0, seed).items()}
        out = plan.adjoint(state0, seed)
        bitwise = all(bitwise_equal(ref[k], out[k]) for k in ref)
        forward_steps = plan.forward_steps

        plan.adjoint(state0, seed)  # steady state reached
        tracemalloc.start()
        tracemalloc.reset_peak()
        before = tracemalloc.get_traced_memory()[0]
        for _ in range(3):
            plan.adjoint(state0, seed)
        current, _peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        cases[label] = {
            "problem": prob.name,
            "n": n,
            "steps": STEPS,
            "snaps": SNAPS,
            "snapshot_bytes": plan.snapshot_bytes,
            "store_all_state_bytes": plan.store_all_bytes,
            "memory_ratio": round(plan.snapshot_bytes / plan.store_all_bytes, 6),
            "forward_steps_per_sweep": forward_steps,
            "predicted_forward_steps": plan.evaluation_cost - STEPS,
            "optimal_evaluations": optimal_cost(STEPS, SNAPS),
            "recompute_factor": round(forward_steps / STEPS, 3),
            "steady_net_alloc_bytes": current - before,
            "bitwise_identical": bitwise,
        }
        if label == "heat2d":
            bench_plan, bench_inputs = plan, (state0, seed)

    def checkpointed_sweep():
        bench_plan.adjoint(*bench_inputs)

    benchmark.pedantic(checkpointed_sweep, rounds=3, iterations=2)

    record = {
        "benchmark": "checkpointed_adjoint_contract",
        "steps": STEPS,
        "snaps": SNAPS,
        "backend": "python",
        "cases": cases,
    }
    with open(OUTPUT, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    benchmark.extra_info.update(record)

    with capsys.disabled():
        print(f"\ncheckpointed adjoint, {STEPS} steps / {SNAPS} snapshots:")
        for label, case in cases.items():
            print(
                f"  {label:10s} n={case['n']:3d}  "
                f"memory {case['memory_ratio']:.3f}x of store-all  "
                f"recompute {case['recompute_factor']:.2f}x "
                f"(optimum {case['predicted_forward_steps']})  "
                f"steady alloc {case['steady_net_alloc_bytes']} B  "
                f"bitwise={'ok' if case['bitwise_identical'] else 'MISMATCH'}"
            )
        print(f"  (recorded in {OUTPUT})")

    for label, case in cases.items():
        assert case["bitwise_identical"], (
            f"{label}: checkpointed adjoint diverged from store-all"
        )
        assert case["memory_ratio"] <= SNAPS / STEPS + 1e-9, (
            f"{label}: snapshot memory {case['memory_ratio']:.6f} of "
            f"store-all exceeds the snaps/steps bound {SNAPS / STEPS:.6f}"
        )
        assert (
            case["forward_steps_per_sweep"] == case["predicted_forward_steps"]
        ), (
            f"{label}: {case['forward_steps_per_sweep']} forward steps per "
            f"sweep; revolve optimum is {case['predicted_forward_steps']}"
        )
        assert case["steady_net_alloc_bytes"] <= NOISE_BYTES, (
            f"{label}: steady-state sweep retained "
            f"{case['steady_net_alloc_bytes']} bytes"
        )


@pytest.mark.parametrize("snaps", [2, 3, 8])
def test_recompute_tracks_optimum_across_snaps(snaps):
    """More snapshots monotonically buy less recomputation, exactly."""
    prob = heat_problem(1)
    plan = prob.checkpointed_adjoint(24, steps=20, snaps=snaps)
    state0, seed = _case_inputs(prob, 24, plan)
    plan.adjoint(state0, seed)
    assert plan.forward_steps == optimal_cost(20, snaps) - 20
