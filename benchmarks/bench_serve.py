"""Serving benchmark and CI perf gate for the kernel daemon.

Drives a live :class:`repro.runtime.KernelServer` with threaded client
traffic over three distinct kernels, measures end-to-end request
throughput and latency percentiles, verifies every response bitwise
against a fresh single-process bound run, and writes
``BENCH_serve.json``.

``--baseline benchmarks/baseline_serve.json`` turns the run into the
serving CI perf gate: the gated quantity is the served microseconds per
request, machine-corrected (exactly like the other gates — see
:func:`repro.cli._corrected_slowdown`) via the *direct* per-request
time of the same workload run through warm bound plans in this same
process.  A slow CI box slows both numbers; only a regression in the
serving path itself moves the corrected ratio.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_serve.py --quick \
        --baseline benchmarks/baseline_serve.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cli import _corrected_slowdown, _load_baseline  # noqa: E402
from repro.frontend import parse_stencil  # noqa: E402
from repro.runtime import Bindings, compile_nests  # noqa: E402
from repro.runtime.client import KernelClient  # noqa: E402
from repro.runtime.server import KernelServer, seeded_state  # noqa: E402

SPECS = [
    (
        "stencil smooth {\n"
        "  iterate i = 1 .. n-2\n"
        "  u[i] += c*(v[i-1] - 2.0*v[i] + v[i+1])\n"
        "}\n",
        {"c": 0.25},
    ),
    (
        "stencil blend {\n"
        "  iterate i = 1 .. n-2\n"
        "  w[i] = a*r[i-1] + b*r[i+1]\n"
        "}\n",
        {"a": 0.5, "b": 0.125},
    ),
    (
        "stencil drift {\n"
        "  iterate i = 2 .. n-3\n"
        "  u[i] += c*(v[i-2] - v[i+2])\n"
        "}\n",
        {"c": 0.0625},
    ),
]


def build_cases(args):
    """One (spec, params, sizes, seed, steps, state) tuple per request."""
    sizes = {"n": args.n}
    cases = []
    for r in range(args.requests):
        spec, params = SPECS[r % len(SPECS)]
        nest = parse_stencil(spec)
        seed = r % 4  # few distinct states -> same-kernel batching chances
        state = seeded_state(
            nest, Bindings(sizes=sizes, params=params), seed=seed
        )
        cases.append((spec, params, sizes, seed, args.steps, state))
    return cases


def references(cases):
    """Fresh single-process bound runs: the bitwise oracles."""
    out = []
    for spec, params, sizes, _seed, steps, state in cases:
        nest = parse_stencil(spec)
        kernel = compile_nests(
            [nest], Bindings(sizes=sizes, params=params), name=nest.name
        )
        arrays = {k: v.copy() for k, v in state.items()}
        bound = kernel.plan().bind(arrays)
        for _ in range(steps):
            bound.run()
        out.append(arrays)
    return out


def time_direct(cases):
    """Warm bound-plan time per request — the in-run machine reference.

    Mirrors the server's warm path for a single process: one bound plan
    per kernel, state copied in, ``steps`` runs, state copied out.
    """
    warm = {}
    for spec, params, sizes, _seed, _steps, state in cases:
        if spec in warm:
            continue
        nest = parse_stencil(spec)
        kernel = compile_nests(
            [nest], Bindings(sizes=sizes, params=params), name=nest.name
        )
        buffers = {k: np.zeros_like(v) for k, v in state.items()}
        warm[spec] = (kernel.plan().bind(buffers), buffers)
    t0 = time.perf_counter()
    for spec, _params, _sizes, _seed, steps, state in cases:
        bound, buffers = warm[spec]
        for name, arr in state.items():
            np.copyto(buffers[name], arr)
        for _ in range(steps):
            bound.run()
        out = {k: v.copy() for k, v in buffers.items()}
    elapsed = time.perf_counter() - t0
    del out
    return elapsed * 1e6 / len(cases)


def run_traffic(args, cases, refs):
    """Threaded client traffic against a live daemon; returns the record
    fragment (timings, latencies, batching counters, bitwise verdict)."""
    latencies = [0.0] * len(cases)
    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        server = KernelServer(
            os.path.join(tmp, "bench.sock"),
            workers=args.workers,
            max_batch=args.max_batch,
            batch_window_ms=args.batch_window_ms,
        )
        server.start()
        try:
            def worker(indices):
                with KernelClient(server.socket_path) as client:
                    for idx in indices:
                        spec, params, sizes, _seed, steps, state = cases[idx]
                        t0 = time.perf_counter()
                        result = client.run(
                            spec, sizes=sizes, params=params,
                            state=state, steps=steps,
                        )
                        latencies[idx] = time.perf_counter() - t0
                        for name, ref in refs[idx].items():
                            if ref.tobytes() != result.state[name].tobytes():
                                failures.append(
                                    f"request {idx} diverged on {name!r}"
                                )

            shards = [
                list(range(t, len(cases), args.threads))
                for t in range(args.threads)
            ]
            t0 = time.perf_counter()
            threads = [
                threading.Thread(target=worker, args=(shard,))
                for shard in shards if shard
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            wall = time.perf_counter() - t0
            stats = server.stats()
        finally:
            server.close()
    lat_ms = sorted(t * 1e3 for t in latencies)

    def pct(p):
        return lat_ms[min(len(lat_ms) - 1, int(p * len(lat_ms)))]

    return {
        "served_us_per_request": round(wall * 1e6 / len(cases), 3),
        "requests_per_second": round(len(cases) / wall, 3),
        "p50_ms": round(pct(0.50), 3),
        "p99_ms": round(pct(0.99), 3),
        "batched_runs": stats["batched_runs"],
        "batched_requests": stats["batched_requests"],
        "single_runs": stats["single_runs"],
        "batch_fallbacks": stats["batch_fallbacks"],
        "bitwise_identical": not failures,
        "failures": failures[:8],
    }


def check_serve_baseline(record, baseline_path, max_slowdown):
    """The serving CI perf gate, mirroring the other gates' semantics."""
    print(
        f"serve baseline gate vs {baseline_path} "
        f"(max slowdown {max_slowdown}x):"
    )
    baseline = _load_baseline(
        record, baseline_path,
        ("benchmark", "requests", "threads", "workers", "max_batch",
         "n", "steps", "backend"),
        "serve baseline gate",
    )
    if baseline is None:
        return False
    if not record["bitwise_identical"]:
        print("  FAIL: lost bitwise identity")
        print("  serve baseline gate: FAIL")
        return False
    raw, machine, slowdown = _corrected_slowdown(
        record["served_us_per_request"],
        baseline["served_us_per_request"],
        record["direct_us_per_request"],
        baseline["direct_us_per_request"],
    )
    ok = slowdown <= max_slowdown
    print(
        f"  served {record['served_us_per_request']:.1f} us/request "
        f"vs baseline {baseline['served_us_per_request']:.1f} "
        f"({raw:.2f}x raw, {machine:.2f}x machine factor, "
        f"{slowdown:.2f}x corrected)"
    )
    print("  serve baseline gate: " + ("PASS" if ok else "FAIL"))
    return ok


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--requests", type=int, default=96)
    ap.add_argument("--threads", type=int, default=8)
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--max-batch", type=int, default=8)
    ap.add_argument("--batch-window-ms", type=float, default=2.0)
    ap.add_argument("--n", type=int, default=4096)
    ap.add_argument("--steps", type=int, default=2)
    ap.add_argument("--backend", choices=["python"], default="python")
    ap.add_argument("--output", default="BENCH_serve.json")
    ap.add_argument("--baseline", default=None, metavar="PATH")
    ap.add_argument("--max-slowdown", type=float, default=2.0)
    ap.add_argument(
        "--quick", action="store_true",
        help="smaller workload (CI smoke / perf gate)",
    )
    args = ap.parse_args(argv)
    if args.quick:
        args.requests = min(args.requests, 36)
        args.n = min(args.n, 2048)

    cases = build_cases(args)
    refs = references(cases)
    direct_us = time_direct(cases)
    traffic = run_traffic(args, cases, refs)

    record = {
        "benchmark": "kernel_serving",
        "requests": args.requests,
        "threads": args.threads,
        "workers": args.workers,
        "max_batch": args.max_batch,
        "batch_window_ms": args.batch_window_ms,
        "n": args.n,
        "steps": args.steps,
        "backend": args.backend,
        "kernels": len(SPECS),
        "direct_us_per_request": round(direct_us, 3),
        "unix_time": round(time.time(), 1),
        **traffic,
    }
    with open(args.output, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(
        f"wrote {args.output} ({args.requests} requests, "
        f"{args.threads} client threads, n={args.n}, "
        f"workers={args.workers}, max_batch={args.max_batch})"
    )
    print(
        f"  served   {record['served_us_per_request']:8.1f} us/request  "
        f"({record['requests_per_second']:.0f} req/s, "
        f"p50 {record['p50_ms']:.1f} ms, p99 {record['p99_ms']:.1f} ms)\n"
        f"  direct   {record['direct_us_per_request']:8.1f} us/request  "
        f"(warm bound plans, same process)\n"
        f"  batching {record['batched_runs']} batched run(s) covering "
        f"{record['batched_requests']} request(s), "
        f"{record['single_runs']} single run(s)  "
        f"bitwise={'ok' if record['bitwise_identical'] else 'MISMATCH'}"
    )
    ok = record["bitwise_identical"]
    if args.baseline is not None:
        ok = check_serve_baseline(record, args.baseline, args.max_slowdown) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
