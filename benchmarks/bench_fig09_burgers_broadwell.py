"""Experiment fig9: Burgers-equation scalability on Broadwell (Figure 9).

The paper: "The PerforAD-generated adjoint has near-perfect scalability."
Measured part: one serial PerforAD Burgers adjoint execution at 2x10^6
cells.  Table: the model speedup series at 10^9 cells.
"""

from repro.experiments import fig09_burgers_broadwell, render_speedup


def test_fig09_burgers_broadwell_speedups(benchmark, capsys, burgers_case):
    benchmark.pedantic(
        burgers_case.gather_kernel,
        args=(burgers_case.arrays(),),
        rounds=3,
        iterations=1,
    )
    fig = fig09_burgers_broadwell()
    with capsys.disabled():
        print()
        print(render_speedup(fig))

    s = fig.series
    # Near-perfect scalability of the PerforAD adjoint up to 12 threads.
    assert s["PerforAD"][-1] > 10.0
    # The compute-heavy adjoint scales *better* than the bandwidth-bound
    # primal — visible in Figure 9 where the primal flattens earlier.
    assert s["PerforAD"][-1] >= s["Primal"][-1]
    assert all(v == 1.0 for v in s["Adjoint"])
    assert all(v < 0.5 for v in s["Atomics"])
    for label, series in fig.series.items():
        benchmark.extra_info[f"{label}@12t"] = round(series[-1], 2)
