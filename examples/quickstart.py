#!/usr/bin/env python
"""Quickstart: the paper's Section 3.2 example, end to end.

Builds the one-dimensional three-point stencil

    r[i] = c[i] * (2.0*u[i-1] - 3.0*u[i] + 4*u[i+1]),   i in [1, n-1]

generates its adjoint stencil loops (boundary remainders + core gather
loop), prints the generated C and Python code, executes both primal and
adjoint with the NumPy runtime, and verifies the adjoint against the
dot-product identity <J v, w> == <v, J^T w>.

Run:  python examples/quickstart.py
"""

import numpy as np
import sympy as sp

from repro import (
    Bindings,
    adjoint_loops,
    compile_nests,
    make_loop_nest,
    print_function_c,
    print_function_python,
)


def main() -> None:
    # --- 1. describe the stencil symbolically (the PerforAD front-end) ---
    i = sp.Symbol("i", integer=True)
    n = sp.Symbol("n", integer=True)
    u, c, r = sp.Function("u"), sp.Function("c"), sp.Function("r")
    u_b, r_b = sp.Function("u_b"), sp.Function("r_b")

    expr = c(i) * (2.0 * u(i - 1) - 3.0 * u(i) + 4 * u(i + 1))
    primal = make_loop_nest(
        lhs=r(i), rhs=expr, counters=[i], bounds={i: [1, n - 1]}, name="example"
    )
    print("Primal loop nest:")
    print(f"  {primal}\n")

    # --- 2. generate the adjoint stencil loops (Section 3.2's five loops) ---
    adjoint = adjoint_loops(primal, {r: r_b, u: u_b})
    print(f"Adjoint decomposes into {len(adjoint)} loop nests "
          "(4 unrolled remainders + 1 core gather loop).\n")

    print("Generated C (note the swapped coefficients 4/2 in the core loop):")
    print(print_function_c("example_b", adjoint))

    print("Generated Python/NumPy:")
    print(print_function_python("example_b", adjoint))

    # --- 3. execute with the NumPy runtime ---
    N = 1000
    rng = np.random.default_rng(0)
    bindings = Bindings(sizes={n: N})

    uv = rng.standard_normal(N + 1)
    cv = rng.standard_normal(N + 1)
    arrays = {"u": uv, "c": cv, "r": np.zeros(N + 1)}
    compile_nests([primal], bindings)(arrays)

    # Adjoint: seed r_b on the interior, accumulate into u_b.
    w = np.zeros(N + 1)
    w[1:N] = rng.standard_normal(N - 1)
    adj_arrays = {"u": uv, "c": cv, "r_b": w, "u_b": np.zeros(N + 1)}
    compile_nests(adjoint, bindings)(adj_arrays)

    # --- 4. verify: <J v, w> == <v, J^T w> (linear stencil: r = J u) ---
    lhs = float(np.vdot(arrays["r"], w))
    rhs = float(np.vdot(uv, adj_arrays["u_b"]))
    rel = abs(lhs - rhs) / abs(lhs)
    print(f"dot-product test:  <Ju, w> = {lhs:.12e}")
    print(f"                  <u, Jᵀw> = {rhs:.12e}")
    print(f"            relative error = {rel:.2e}")
    assert rel < 1e-12, "adjoint verification failed"
    print("\nOK: adjoint stencil verified at machine precision.")


if __name__ == "__main__":
    main()
