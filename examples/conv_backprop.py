#!/usr/bin/env python
"""CNN-style convolution back-propagation with adjoint stencils.

The paper's introduction lists convolutional neural networks as a primary
home of stencil loops, and Figure 1's "Stencil / Back-Propagation /
Adjoint Stencil" triptych is exactly a conv layer's forward and backward
pass.  This example builds a 3x3 cross-correlation layer, derives its
input-gradient ("backprop") kernel with the adjoint-stencil
transformation, and demonstrates the classic result that the adjoint of a
correlation is the correlation with the *flipped* kernel — the 2-D
generalisation of Section 3.2's "constant factors swapped their position".

Run:  python examples/conv_backprop.py
"""

import numpy as np

from repro import adjoint_loops, compile_nests, conv_problem, print_function_c


def main() -> None:
    prob = conv_problem(3)
    N = 128
    bindings = prob.bindings(N)
    shape = prob.array_shape(N)
    rng = np.random.default_rng(0)

    # --- forward pass ----------------------------------------------------
    img = rng.standard_normal(shape)
    fwd = compile_nests([prob.primal], bindings, name="conv_fwd")
    arrays = {"img": img, "out": np.zeros(shape)}
    fwd(arrays)
    activation = arrays["out"]

    # --- backward pass (input gradient) -----------------------------------
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    print(f"backprop decomposes into {len(nests)} loop nests "
          "(dense 3x3 stencil: 25 = (2*3-1)^2, Section 3.3.4)\n")
    bwd = compile_nests(nests, bindings, name="conv_bwd")

    # Upstream gradient: seeded on the interior output region.
    gout = np.zeros(shape)
    gout[1:N, 1:N] = rng.standard_normal((N - 1, N - 1))
    adj_arrays = {"img": img, "out_b": gout, "img_b": np.zeros(shape)}
    bwd(adj_arrays)
    gin = adj_arrays["img_b"]

    # --- verify the flipped-kernel identity ------------------------------
    # out = corr(img, W)  ==>  dimg = corr_full(gout, flip(W)).
    W = np.array(
        [[prob.param_defaults[f"w_{a}_{b}"] for b in range(3)] for a in range(3)]
    )
    expected = np.zeros(shape)
    Wf = W[::-1, ::-1]
    for a in (-1, 0, 1):
        for b in (-1, 0, 1):
            # shift gout by (-a, -b), weight by W[a, b]
            src = gout[1:N, 1:N]
            expected[1 + a : N + a, 1 + b : N + b] += W[a + 1, b + 1] * src
    np.testing.assert_allclose(gin, expected, rtol=1e-12, atol=1e-13)
    print("flipped-kernel identity verified: adjoint of corr(., W) is "
          "corr(., flip(W)) up to boundary handling")
    print(f"  W          = {W.round(3).tolist()}")
    print(f"  flip(W)    = {Wf.round(3).tolist()}")

    # --- dot-product test (layer-level backprop check) --------------------
    v = rng.standard_normal(shape)
    arrays_v = {"img": v, "out": np.zeros(shape)}
    fwd(arrays_v)
    lhs = float(np.vdot(arrays_v["out"], gout))
    rhs = float(np.vdot(v, gin))
    rel = abs(lhs - rhs) / abs(lhs)
    print(f"dot-product test: rel error = {rel:.2e}")
    assert rel < 1e-12

    # --- show the generated backprop kernel (core loop) -------------------
    core = [x for x in nests if x.name.endswith("core")]
    print("\ngenerated C for the backprop core loop:")
    print(print_function_c("conv3x3_backprop_core", core))
    print("OK: convolution back-propagation verified.")


if __name__ == "__main__":
    main()
