#!/usr/bin/env python
"""Regenerate every performance figure of the paper (Figures 8-15).

Characterises the actual loop nests produced by this reproduction's
transformation (operation counts, memory streams, scatter updates) and
pushes them through the calibrated Broadwell and KNL machine models at the
paper's problem sizes (a 1000^3 wave grid; 10^9 Burgers cells).  Prints
one table per figure, with the paper's published bar values alongside for
the runtime figures.

Run:  python examples/paper_figures.py
"""

from repro.experiments import render_all


def main() -> None:
    print(render_all())


if __name__ == "__main__":
    main()
