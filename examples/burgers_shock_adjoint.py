#!/usr/bin/env python
"""Burgers shock sensitivity: gather vs scatter adjoints on a CFD motif.

The paper's second test case (Section 4.2) is the upwinded viscous Burgers
equation — nonlinear, only piecewise differentiable, and the stress test
for complicated adjoint loop bodies (ternary Heaviside factors, Figure 7).

This example:

1. evolves a sine profile into a steepening front over several time steps;
2. computes the sensitivity of the final kinetic energy to the initial
   condition by running the PerforAD adjoint stencil kernels backwards
   through the time loop (the nonlinearity means every reverse step needs
   the saved primal state — the values Tapenade would push on its stack);
3. verifies the sensitivity against finite differences;
4. times the three adjoint execution disciplines the paper compares:
   gather (PerforAD), serial scatter slices (Tapenade-like), and
   ``np.add.at`` atomic-analogue scatter.

Run:  python examples/burgers_shock_adjoint.py
"""

import time

import numpy as np

from repro import (
    AtomicScatterKernel,
    adjoint_loops,
    burgers_problem,
    compile_nests,
    tapenade_style_adjoint,
)


def forward(kernel, u_init, steps, shape):
    history = [u_init.copy()]
    u_curr = u_init.copy()
    for _ in range(steps):
        arrays = {"u": np.zeros(shape), "u_1": u_curr}
        kernel(arrays)
        u_curr = arrays["u"]
        history.append(u_curr.copy())
    return u_curr, history


def energy(u):
    return 0.5 * float(np.sum(u * u))


def sensitivity(adjoint_kernel, history, shape):
    """d(energy of u^T) / d(u^0) via reverse time sweep."""
    lam = history[-1].copy()  # dE/du^T = u^T
    for t in reversed(range(len(history) - 1)):
        arrays = {
            "u_b": lam,
            "u_1": history[t],  # saved primal state (nonlinear adjoint)
            "u_1_b": np.zeros(shape),
        }
        adjoint_kernel(arrays)
        lam = arrays["u_1_b"]
    return lam


def main() -> None:
    prob = burgers_problem(1)
    N, steps = 100_000, 25
    bindings = prob.bindings(N, C=0.4, D=0.05)
    shape = prob.array_shape(N)

    primal_kernel = compile_nests([prob.primal], bindings, name="burgers_fwd")
    gather_nests = adjoint_loops(prob.primal, prob.adjoint_map)
    gather_kernel = compile_nests(gather_nests, bindings, name="burgers_adj")
    scatter_nest = tapenade_style_adjoint(prob.primal, prob.adjoint_map)
    scatter_kernel = compile_nests([scatter_nest], bindings, name="burgers_scat")
    atomic_kernel = AtomicScatterKernel(scatter_kernel)

    # Sine profile -> steepening front (the classic Burgers behaviour).
    x = np.linspace(0.0, 2 * np.pi, N + 1)
    u0 = np.sin(x) + 0.5
    u_final, history = forward(primal_kernel, u0, steps, shape)
    print(f"final energy after {steps} steps: {energy(u_final):.6f}")
    print(f"max |du/dx| grew from {np.max(np.abs(np.diff(u0))):.4f} "
          f"to {np.max(np.abs(np.diff(u_final))):.4f} (front steepening)")

    grad = sensitivity(gather_kernel, history, shape)
    print(f"sensitivity norm |dE/du0| = {np.linalg.norm(grad):.6f}")

    # --- verification vs finite differences -----------------------------
    rng = np.random.default_rng(1)
    v = rng.standard_normal(shape) * (np.abs(np.sin(x)) > 0.05)
    h = 1e-7
    Ep, _ = forward(primal_kernel, u0 + h * v, steps, shape)
    Em, _ = forward(primal_kernel, u0 - h * v, steps, shape)
    fd = (energy(Ep) - energy(Em)) / (2 * h)
    ad = float(np.vdot(grad, v))
    rel = abs(fd - ad) / max(abs(fd), 1e-30)
    print(f"directional FD={fd:.8e}  AD={ad:.8e}  rel={rel:.2e}")
    assert rel < 1e-5, "Burgers adjoint failed finite-difference check"

    # --- the paper's execution-discipline comparison, measured ----------
    lam = history[-1].copy()
    base = {"u_b": lam, "u_1": history[-2], "u_1_b": np.zeros(shape)}

    def bench(fn, reps=20):
        best = float("inf")
        for _ in range(reps):
            arrays = {k: v.copy() for k, v in base.items()}
            t0 = time.perf_counter()
            fn(arrays)
            best = min(best, time.perf_counter() - t0)
        return best

    t_gather = bench(gather_kernel)
    t_scatter = bench(scatter_kernel)
    t_atomic = bench(atomic_kernel)
    print("\nadjoint execution disciplines (one step, best of 20):")
    print(f"  PerforAD gather loops : {t_gather * 1e3:9.3f} ms")
    print(f"  scatter slices        : {t_scatter * 1e3:9.3f} ms")
    print(f"  np.add.at (atomics)   : {t_atomic * 1e3:9.3f} ms "
          f"({t_atomic / t_gather:.1f}x gather)")
    print("\nOK: Burgers shock sensitivity verified.")


if __name__ == "__main__":
    main()
