#!/usr/bin/env python
"""Revolve-checkpointed adjoint time stepping around stencil adjoints.

Adjoint time stepping needs the primal state at every reverse step.  For
long simulations on large grids, storing all states is impossible; the
classical remedy is binomial checkpointing (Griewank & Walther's
*revolve*), which this repository implements in ``repro.driver``.  This
example runs a Burgers simulation for 60 steps, reverses it with only 5
resident snapshots, and shows:

* the checkpointed gradient is **bitwise identical** to the store-all
  gradient (the reverse sweep consumes the same primal states);
* the evaluation count matches the provably optimal schedule cost;
* memory drops from 60 stored states to 5.

Run:  python examples/checkpointed_timeloop.py
"""

import numpy as np

from repro import adjoint_loops, burgers_problem, compile_nests
from repro.driver import AdjointTimeStepper, optimal_cost, schedule, schedule_cost


def main() -> None:
    prob = burgers_problem(1)
    n, steps, snaps = 20_000, 60, 5
    bindings = prob.bindings(n, C=0.3, D=0.05)
    shape = prob.array_shape(n)
    fwd = compile_nests([prob.primal], bindings)
    adj = compile_nests(adjoint_loops(prob.primal, prob.adjoint_map), bindings)

    def forward_step(state):
        arrays = {"u": np.zeros(shape), "u_1": state["u"]}
        fwd(arrays)
        return {"u": arrays["u"]}

    def reverse_step(saved, lam):
        arrays = {"u_b": lam["u"].copy(), "u_1": saved["u"],
                  "u_1_b": np.zeros(shape)}
        adj(arrays)
        return {"u": arrays["u_1_b"]}

    stepper = AdjointTimeStepper(forward_step, reverse_step)

    x = np.linspace(0, 2 * np.pi, n + 1)
    u0 = {"u": np.sin(x) + 0.3}
    final = stepper.run_forward(u0, steps)
    seed = {"u": final["u"].copy()}  # dJ/du_T for J = 0.5||u_T||^2

    grad_all = stepper.run_store_all(u0, steps, seed)
    grad_chk = stepper.run_checkpointed(u0, steps, seed, snaps=snaps)

    identical = np.array_equal(grad_all["u"], grad_chk["u"])
    acts = schedule(steps, snaps)
    cost = schedule_cost(acts)
    print(f"steps: {steps}, snapshots: {snaps}")
    print(f"checkpointed gradient bitwise identical to store-all: {identical}")
    print(f"schedule evaluations: {cost} "
          f"(DP optimum {optimal_cost(steps, snaps)}, "
          f"store-all {2 * steps - 1})")
    print(f"recomputation overhead: {cost / (2 * steps - 1):.2f}x evaluations")
    print(f"memory: {snaps} states resident instead of {steps + 1} "
          f"({(steps + 1) / snaps:.1f}x less)")
    assert identical
    assert cost == optimal_cost(steps, snaps)
    print("\nOK: revolve-checkpointed adjoint sweep verified.")


if __name__ == "__main__":
    main()
