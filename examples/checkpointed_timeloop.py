#!/usr/bin/env python
"""Revolve-checkpointed adjoint time stepping over bound plans.

Adjoint time stepping needs the primal state at every reverse step.
For long simulations on large grids, storing all states is impossible;
the classical remedy is binomial checkpointing (Griewank & Walther's
*revolve*).  This repository executes revolve schedules **through the
plan/bind runtime**: snapshots live in a preallocated pool, every
schedule action replays a bound ``run()``, and steady-state sweeps
allocate nothing.  This example runs a Burgers simulation for 60 steps,
reverses it with only 5 resident snapshots, and shows:

* the checkpointed gradient is **bitwise identical** to the store-all
  gradient (the reverse sweep consumes the same primal states) and to
  the generic-callable ``AdjointTimeStepper`` driver;
* the recompute count lands exactly on the provably optimal schedule
  cost;
* resident state memory drops from 60 stored states to 5.

Run:  python examples/checkpointed_timeloop.py
"""

import numpy as np

from repro import adjoint_loops, burgers_problem, compile_nests
from repro.driver import AdjointTimeStepper, optimal_cost

def main() -> None:
    prob = burgers_problem(1)
    n, steps, snaps = 20_000, 60, 5
    shape = prob.array_shape(n)

    x = np.linspace(0, 2 * np.pi, n + 1)
    u0 = np.sin(x) + 0.3

    # The runtime-native path: one object owns the schedule, the
    # snapshot pool and the bound forward/reverse plans.
    chk = prob.checkpointed_adjoint(n, steps=steps, snaps=snaps, C=0.3, D=0.05)
    (final,) = chk.run_forward([u0])
    seed = final.copy()  # dJ/du_T for J = 0.5||u_T||^2

    grad_all = {k: v.copy() for k, v in chk.run_store_all([u0], seed).items()}
    grad_chk = chk.adjoint([u0], seed)
    identical = np.array_equal(grad_all["u_1_b"], grad_chk["u_1_b"])

    # The generic-callable driver reverses the same loop through plain
    # step closures — same schedule, copy-based snapshots.
    bindings = prob.bindings(n, C=0.3, D=0.05)
    fwd = compile_nests([prob.primal], bindings)
    adj = compile_nests(adjoint_loops(prob.primal, prob.adjoint_map), bindings)

    def forward_step(state):
        arrays = {"u": np.zeros(shape), "u_1": state["u"]}
        fwd(arrays)
        return {"u": arrays["u"]}

    def reverse_step(saved, lam):
        arrays = {"u_b": lam["u"].copy(), "u_1": saved["u"],
                  "u_1_b": np.zeros(shape)}
        adj(arrays)
        return {"u": arrays["u_1_b"]}

    stepper = AdjointTimeStepper(forward_step, reverse_step)
    grad_generic = stepper.run_checkpointed(
        {"u": u0}, steps, {"u": seed}, snaps=snaps
    )
    generic_identical = np.array_equal(grad_chk["u_1_b"], grad_generic["u"])

    cost = chk.evaluation_cost
    print(f"steps: {steps}, snapshots: {snaps}")
    print(f"checkpointed gradient bitwise identical to store-all: {identical}")
    print(f"...and to the generic AdjointTimeStepper driver: {generic_identical}")
    print(f"forward steps per sweep: {chk.forward_steps} "
          f"(revolve optimum {cost - steps})")
    print(f"schedule evaluations: {cost} "
          f"(DP optimum {optimal_cost(steps, snaps)}, "
          f"store-all {2 * steps - 1})")
    print(f"memory: {chk.snapshot_bytes / 1e6:.1f} MB snapshot pool instead "
          f"of {chk.store_all_bytes / 1e6:.1f} MB stored states "
          f"({chk.store_all_bytes / chk.snapshot_bytes:.1f}x less)")
    assert identical and generic_identical
    assert cost == optimal_cost(steps, snaps)
    assert chk.forward_steps == cost - steps
    print("\nOK: revolve-checkpointed adjoint sweep verified.")

if __name__ == "__main__":
    main()
