#!/usr/bin/env python
"""A 64-member Burgers parameter sweep with per-member gradients.

Sweeps the upwinded 1-D Burgers adjoint over a 4x2 grid of the
convection/diffusion coefficients (C, D), 8 members per grid point with
distinct initial conditions, executed as batched ensembles
(`EnsemblePlan`): one kernel per grid point (compiled once each via the
content-addressed cache), all members of a grid point advanced per
`run()` call, bitwise identical to running each scenario alone.

Prints per-member gradient norms (d misfit / d initial state, i.e. the
`u_1_b` adjoint), the grid-point throughput against a naive per-member
loop, and verifies one member bitwise against its single-scenario run.

Run:  PYTHONPATH=src python examples/ensemble_sweep.py
See:  docs/ensembles.md for the how-to, `python -m repro sweep` for
      the CLI equivalent.
"""

import time

import numpy as np

from repro import adjoint_loops, burgers_problem, compile_nests, stack_arrays

N = 48          # grid size
MEMBERS = 64    # total ensemble members
STEPS = 25      # adjoint timesteps
C_GRID = [0.1, 0.15, 0.2, 0.25]
D_GRID = [0.05, 0.1]


def main() -> None:
    prob = burgers_problem(1)
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    grid = [(c, d) for c in C_GRID for d in D_GRID]

    # member m -> grid point m % len(grid), seed-m initial state
    groups: dict[tuple, list[int]] = {}
    for m in range(MEMBERS):
        groups.setdefault(grid[m % len(grid)], []).append(m)

    print(f"Burgers sweep: {MEMBERS} members over {len(grid)} (C, D) points, "
          f"n={N}, {STEPS} steps\n")
    gradients = {}
    total_batched = total_loop = 0.0
    for (c_val, d_val), member_ids in groups.items():
        kernel = compile_nests(
            nests, prob.bindings(N, C=c_val, D=d_val), name="sweep_example"
        )
        plan = kernel.plan()
        states = [prob.allocate_state(N, seed=m) for m in member_ids]

        # batched ensemble: all members of this grid point per call
        ensemble = plan.ensemble(stack_arrays(states))
        t0 = time.perf_counter()
        for _ in range(STEPS):
            ensemble.run()
        total_batched += time.perf_counter() - t0

        # the naive alternative, for the throughput comparison
        loop_arrays = [{k: v.copy() for k, v in st.items()} for st in states]
        bounds = [plan.bind(arrays) for arrays in loop_arrays]
        t0 = time.perf_counter()
        for _ in range(STEPS):
            for bound in bounds:
                bound.run()
        total_loop += time.perf_counter() - t0

        for local, m in enumerate(member_ids):
            views = ensemble.member_arrays(local)
            grad = views["u_1_b"]  # d misfit / d initial condition
            gradients[m] = (c_val, d_val, float(np.linalg.norm(grad)))
            # bitwise identity against the looped run, every member
            assert all(
                np.array_equal(views[k], loop_arrays[local][k])
                for k in views
            ), f"member {m} diverged from its single-scenario run"

    print("member   C      D      |grad u_1|")
    for m in sorted(gradients)[:8]:
        c_val, d_val, norm = gradients[m]
        print(f"  {m:3d}   {c_val:.2f}   {d_val:.2f}   {norm:12.6f}")
    print(f"  ... ({MEMBERS - 8} more members)\n")
    print(f"naive per-member loop : {total_loop:8.3f} s")
    print(f"batched ensembles     : {total_batched:8.3f} s "
          f"({total_loop / total_batched:.1f}x throughput)")
    print("all members bitwise identical to single-scenario runs")


if __name__ == "__main__":
    main()
