#!/usr/bin/env python
"""Seismic-imaging workload: gradient of a waveform misfit w.r.t. velocity.

The paper motivates adjoint stencils with seismic imaging (Section 4.1),
where the gradient of a data-misfit functional with respect to the wave
speed ``c`` drives full-waveform inversion.  This example runs the 3-D
wave stencil for several time steps, then propagates the misfit adjoint
*backwards in time* using the PerforAD-generated adjoint stencil kernels,
accumulating the velocity-model gradient on the way — and cross-checks the
gradient against finite differences.

Forward recurrence (one primal stencil application per step):

    u^{t+1} = 2 u^t - u^{t-1} + c * D * laplacian(u^t)

Reverse recurrence for the adjoint variables (lambda^t = dJ/du^t):

    lambda^t  = A1ᵀ lambda^{t+1} + A2ᵀ lambda^{t+2}
    grad_c   += (dU^{t+1}/dc)ᵀ lambda^{t+1}

where A1/A2 are the Jacobians w.r.t. u^t/u^{t-1}.  Each Aᵀ application is
exactly one execution of the adjoint stencil kernel, seeded with the next
step's adjoint — the stencil-level transformation (this paper) composes
with a conventional reverse sweep over the time loop, as Section 3.1
prescribes for the surrounding program.

Run:  python examples/seismic_wave_gradient.py
"""

import numpy as np

from repro import adjoint_loops, compile_nests, wave_problem


def forward(primal_kernel, c, u0, u1, steps):
    """Run the primal recurrence; return final field and the u^t history."""
    shape = u0.shape
    history = [u0.copy(), u1.copy()]
    u_prev, u_curr = u0.copy(), u1.copy()
    for _ in range(steps):
        arrays = {
            "u": np.zeros(shape),
            "u_1": u_curr,
            "u_2": u_prev,
            "c": c,
        }
        primal_kernel(arrays)
        u_prev, u_curr = u_curr, arrays["u"]
        history.append(u_curr.copy())
    return u_curr, history


def gradient(adjoint_kernel, c, history, residual):
    """Reverse time sweep: returns dJ/dc for J = 0.5 * ||u^T - d||^2."""
    shape = c.shape
    steps = len(history) - 2
    grad_c = np.zeros(shape)
    lam_next = residual.copy()  # lambda^{T}
    lam_next2 = np.zeros(shape)  # lambda^{T+1} (none)
    for t in reversed(range(steps)):
        # One adjoint stencil application, seeded with lambda^{t+1}:
        arrays = {
            "u_b": lam_next,
            "u_1": history[t + 1],  # primal value needed by dU/dc
            "u_1_b": np.zeros(shape),
            "u_2_b": np.zeros(shape),
            "c": c,
            "c_b": np.zeros(shape),
        }
        adjoint_kernel(arrays)
        grad_c += arrays["c_b"]
        # lambda^t = A1ᵀ lambda^{t+1} + A2ᵀ lambda^{t+2}; the kernel's
        # u_2_b output equals -lambda^{t+2}'s contribution one step later,
        # so carry it via the two-term recurrence:
        lam_t = arrays["u_1_b"] + lam_next2
        # A2ᵀ lambda^{t+1} = -lambda^{t+1} (coefficient of u_2 is -1), but
        # computed by the kernel for uniformity:
        arrays_next2 = arrays["u_2_b"]
        lam_next, lam_next2 = lam_t, arrays_next2
    return grad_c


def objective(primal_kernel, c, u0, u1, steps, data):
    u_final, _ = forward(primal_kernel, c, u0, u1, steps)
    return 0.5 * float(np.sum((u_final - data) ** 2))


def main() -> None:
    prob = wave_problem(3, active_c=True)
    N, steps = 20, 6
    bindings = prob.bindings(N)
    primal_kernel = compile_nests([prob.primal], bindings, name="wave_fwd")
    adjoint_kernel = compile_nests(
        adjoint_loops(prob.primal, prob.adjoint_map), bindings, name="wave_adj"
    )

    rng = np.random.default_rng(42)
    shape = prob.array_shape(N)

    # Smooth background velocity with a perturbation blob ("the anomaly").
    c_true = np.full(shape, 0.5)
    c_true[8:13, 8:13, 8:13] += 0.2
    c_init = np.full(shape, 0.5)

    # Initial condition: a point source ricocheting through the domain.
    u0 = np.zeros(shape)
    u1 = np.zeros(shape)
    u1[N // 2, N // 2, N // 2] = 1.0

    # Observed data = final field under the true model.
    data, _ = forward(primal_kernel, c_true, u0, u1, steps)

    # Misfit and gradient at the initial model.
    u_final, history = forward(primal_kernel, c_init, u0, u1, steps)
    residual = u_final - data
    J0 = 0.5 * float(np.sum(residual**2))
    grad = gradient(adjoint_kernel, c_init, history, residual)
    print(f"misfit at initial model: J = {J0:.6e}")
    print(f"gradient norm:          |g| = {np.linalg.norm(grad):.6e}")

    # --- verify against central finite differences along a random direction
    v = rng.standard_normal(shape)
    h = 1e-6
    Jp = objective(primal_kernel, c_init + h * v, u0, u1, steps, data)
    Jm = objective(primal_kernel, c_init - h * v, u0, u1, steps, data)
    fd = (Jp - Jm) / (2 * h)
    ad = float(np.vdot(grad, v))
    rel = abs(fd - ad) / max(abs(fd), 1e-30)
    print(f"directional derivative:  FD = {fd:.10e}")
    print(f"                         AD = {ad:.10e}")
    print(f"                 rel. error = {rel:.2e}")
    assert rel < 1e-6, "adjoint time-stepping gradient failed verification"

    # --- one gradient-descent step reduces the misfit -------------------
    step = 0.3 * J0 / float(np.vdot(grad, grad))
    J1 = objective(primal_kernel, c_init - step * grad, u0, u1, steps, data)
    print(f"misfit after one descent step: {J1:.6e}  (reduced: {J1 < J0})")
    assert J1 < J0
    print("\nOK: seismic gradient verified; descent reduces the misfit.")


if __name__ == "__main__":
    main()
