"""Additional property-based tests: tangent consistency, front-end round
trips, tiling invariance, scheduler partitioning."""

from __future__ import annotations

import numpy as np
import sympy as sp
from hypothesis import given, settings, strategies as st

from repro.core import adjoint_loops, make_loop_nest, tangent_loop
from repro.frontend import parse_stencil, to_source
from repro.runtime import Bindings, compile_nests, run_tiled, split_box

N_VAL = 14
n = sp.Symbol("n", integer=True)


@st.composite
def stencils(draw, max_dim=2, max_radius=2, max_points=5):
    dim = draw(st.integers(1, max_dim))
    offsets = draw(
        st.lists(
            st.tuples(*[st.integers(-max_radius, max_radius) for _ in range(dim)]),
            min_size=1, max_size=max_points, unique=True,
        )
    )
    coeffs = draw(
        st.lists(
            st.floats(-3, 3, allow_nan=False, allow_infinity=False).filter(
                lambda x: abs(x) > 1e-3
            ),
            min_size=len(offsets), max_size=len(offsets),
        )
    )
    return dim, offsets, coeffs


def build(dim, offsets, coeffs):
    counters = sp.symbols("i j", integer=True)[:dim]
    u, r = sp.Function("u"), sp.Function("r")
    radius = max(1, max(max(abs(o) for o in off) for off in offsets))
    expr = sum(
        co * u(*[c + o for c, o in zip(counters, off)])
        for off, co in zip(offsets, coeffs)
    )
    nest = make_loop_nest(
        lhs=r(*counters), rhs=expr, counters=list(counters),
        bounds={c: [radius, n - radius] for c in counters}, op="+=",
    )
    return nest, {r: sp.Function("r_b"), u: sp.Function("u_b")}, radius


@settings(max_examples=30, deadline=None)
@given(stencils())
def test_tangent_equals_primal_for_linear(params):
    """For linear stencils the tangent loop IS the primal on the seeds."""
    dim, offsets, coeffs = params
    nest, amap, radius = build(dim, offsets, coeffs)
    tmap = {k: sp.Function(k.__name__ + "_t") for k in amap}
    tan = tangent_loop(nest, tmap)
    bind = Bindings(sizes={n: N_VAL})
    rng = np.random.default_rng(1)
    shape = (N_VAL + 1,) * dim
    v = rng.standard_normal(shape)
    a_primal = {"u": v, "r": np.zeros(shape)}
    compile_nests([nest], bind)(a_primal)
    a_tan = {"u": rng.standard_normal(shape), "u_t": v, "r_t": np.zeros(shape)}
    compile_nests([tan], bind)(a_tan)
    np.testing.assert_allclose(a_primal["r"], a_tan["r_t"], rtol=1e-10, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(stencils())
def test_frontend_round_trip(params):
    """print -> parse -> print is a fixed point; execution agrees."""
    dim, offsets, coeffs = params
    nest, amap, radius = build(dim, offsets, coeffs)
    src = to_source(nest, name="rt")
    reparsed = parse_stencil(src)
    assert to_source(reparsed, name="rt") == src

    bind = Bindings(sizes={n: N_VAL})
    rng = np.random.default_rng(2)
    shape = (N_VAL + 1,) * dim
    uv = rng.standard_normal(shape)
    a1 = {"u": uv, "r": np.zeros(shape)}
    a2 = {"u": uv, "r": np.zeros(shape)}
    compile_nests([nest], bind)(a1)
    compile_nests([reparsed], bind)(a2)
    np.testing.assert_allclose(a1["r"], a2["r"], rtol=1e-10, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(stencils(max_dim=2), st.tuples(st.integers(1, 9), st.integers(1, 9)))
def test_tiled_adjoint_invariance(params, tile):
    dim, offsets, coeffs = params
    nest, amap, radius = build(dim, offsets, coeffs)
    bind = Bindings(sizes={n: N_VAL})
    kernel = compile_nests(adjoint_loops(nest, amap), bind)
    rng = np.random.default_rng(3)
    shape = (N_VAL + 1,) * dim
    w = np.zeros(shape)
    interior = tuple(slice(radius, N_VAL - radius + 1) for _ in range(dim))
    w[interior] = rng.standard_normal(w[interior].shape)
    base = {"u": rng.standard_normal(shape), "r_b": w, "u_b": np.zeros(shape)}
    ref = {k: v.copy() for k, v in base.items()}
    kernel(ref)
    tiled = {k: v.copy() for k, v in base.items()}
    run_tiled(kernel, tiled, tile[:dim])
    np.testing.assert_array_equal(ref["u_b"], tiled["u_b"])


@settings(max_examples=50, deadline=None)
@given(
    st.tuples(st.integers(0, 20), st.integers(0, 20)),
    st.integers(1, 8),
)
def test_split_box_partition_property(spans, nblocks):
    lo0, ext0 = spans
    box = ((lo0, lo0 + ext0),)
    blocks = split_box(box, nblocks)
    pts = []
    for ((a, b),) in blocks:
        assert a <= b
        pts.extend(range(a, b + 1))
    assert pts == list(range(lo0, lo0 + ext0 + 1))
    # Balanced: sizes differ by at most one.
    sizes = [b - a + 1 for ((a, b),) in blocks]
    assert max(sizes) - min(sizes) <= 1
