"""Tests for the application problem definitions."""

import numpy as np
import pytest
import sympy as sp

from repro.apps import (
    burgers_problem,
    conv_problem,
    conv_weight_names,
    heat_problem,
    wave_problem,
)
from repro.runtime import compile_nests


def test_wave_dims():
    for d in (1, 2, 3):
        prob = wave_problem(d)
        assert prob.dim == d
        assert prob.output_name == "u"
        assert set(prob.input_names()) == {"u_1", "u_2", "c"}
    with pytest.raises(ValueError):
        wave_problem(4)


def test_wave_active_c_toggle():
    assert "c" in wave_problem(3, active_c=True).active_input_names()
    assert "c" not in wave_problem(3, active_c=False).active_input_names()


def test_burgers_structure():
    prob = burgers_problem(1)
    assert prob.primal.statements[0].rhs.atoms(sp.Max)
    assert prob.primal.statements[0].rhs.atoms(sp.Min)
    with pytest.raises(ValueError):
        burgers_problem(3)


def test_heat_dims():
    for d in (1, 2, 3):
        assert heat_problem(d).dim == d


def test_conv_weights():
    names = conv_weight_names(3)
    assert len(names) == 9
    prob = conv_problem(3)
    assert set(prob.param_defaults) == set(names)
    assert abs(sum(prob.param_defaults.values()) - 1.0) < 1e-12
    with pytest.raises(ValueError):
        conv_problem(4)  # even kernel size


def test_conv_halo():
    assert conv_problem(5).halo == 2


def test_allocate_shapes(any_problem, rng):
    prob, N = any_problem
    arrays = prob.allocate(N, rng=rng)
    shape = prob.array_shape(N)
    for name, arr in arrays.items():
        assert arr.shape == shape
    assert not arrays[prob.output_name].any()


def test_allocate_adjoints_seed_zero_outside_interior(any_problem):
    prob, N = any_problem
    adj = prob.allocate_adjoints(N)
    out_adj = prob.adjoint_name_map()[prob.output_name]
    seed = adj[out_adj]
    bindings = prob.bindings(N)
    # Any index outside the primal write box must be zero (one-sided
    # stencils like advection have a boundary layer on one side only).
    c0 = prob.primal.counters[0]
    lo = bindings.int_bound(prob.primal.bounds[c0][0])
    hi = bindings.int_bound(prob.primal.bounds[c0][1])
    if lo > 0:
        assert not seed[tuple([0] + [lo] * (prob.dim - 1))].any()
    if hi < N:
        assert not seed[tuple([N] + [lo] * (prob.dim - 1))].any()
    assert np.abs(seed).max() > 0  # interior is seeded


def test_primal_runs_on_all_problems(any_problem, rng):
    prob, N = any_problem
    arrays = prob.allocate(N, rng=rng)
    compile_nests([prob.primal], prob.bindings(N))(arrays)
    out = arrays[prob.output_name]
    assert np.isfinite(out).all()
    assert np.abs(out).max() > 0


def test_bindings_param_override():
    prob = heat_problem(1)
    b = prob.bindings(10, alpha=0.5)
    assert b.param_subs()["alpha"] == 0.5


def test_with_interior_shrinks_bounds():
    prob = heat_problem(2)
    inner = prob.with_interior(1)
    c0 = prob.primal.counters[0]
    lo0, hi0 = prob.primal.bounds[c0]
    lo1, hi1 = inner.primal.bounds[c0]
    assert sp.expand(lo1 - lo0) == 1
    assert sp.expand(hi0 - hi1) == 1
    assert inner.halo == prob.halo + 1


def test_wave_physical_sanity():
    """A point disturbance spreads symmetrically after one step."""
    prob = wave_problem(2)
    N = 20
    arrays = {
        "u": np.zeros((N + 1, N + 1)),
        "u_1": np.zeros((N + 1, N + 1)),
        "u_2": np.zeros((N + 1, N + 1)),
        "c": np.ones((N + 1, N + 1)),
    }
    arrays["u_1"][10, 10] = 1.0
    compile_nests([prob.primal], prob.bindings(N))(arrays)
    u = arrays["u"]
    assert u[10, 10] == pytest.approx(2.0 - 4 * 0.125)
    assert u[9, 10] == u[11, 10] == u[10, 9] == u[10, 11] == pytest.approx(0.125)


def test_conv_constant_field_preserved():
    """Normalised blur preserves a constant field in the interior."""
    prob = conv_problem(3)
    N = 12
    arrays = {"img": np.ones((N + 1, N + 1)), "out": np.zeros((N + 1, N + 1))}
    compile_nests([prob.primal], prob.bindings(N))(arrays)
    np.testing.assert_allclose(arrays["out"][1:N, 1:N], 1.0, rtol=1e-12)
