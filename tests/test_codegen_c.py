"""C back-end tests: the generated code of Figures 5 and 7."""

import sympy as sp
import pytest

from repro.apps import burgers_problem, wave_problem
from repro.codegen import CodegenError, print_function_c
from repro.codegen.c import CPrinter
from repro.core import adjoint_loops, make_loop_nest

i = sp.Symbol("i", integer=True)
n = sp.Symbol("n", integer=True)
u, r = sp.Function("u"), sp.Function("r")


def test_access_printed_with_brackets():
    p = CPrinter()
    j = sp.Symbol("j", integer=True)
    assert p.doprint(u(i - 1, j + 2)) == "u[i - 1][j + 2]"


def test_heaviside_printed_as_ternary():
    p = CPrinter()
    assert p.doprint(sp.Heaviside(u(i))) == "((u[i] >= 0) ? 1.0 : 0.0)"


def test_max_min_printed_as_fmax_fmin():
    p = CPrinter()
    out = p.doprint(sp.Max(u(i), 0) + sp.Min(u(i), 0))
    assert "fmax(0, u[i])" in out and "fmin(0, u[i])" in out


def test_uninterpreted_derivative_printed_as_call():
    f = sp.Function("f")
    x = u(i - 1)
    expr = sp.diff(f(x, u(i)), x)
    p = CPrinter()
    out = p.doprint(expr)
    assert out == "f_d1(u[i - 1], u[i])"


def test_unmatchable_derivative_raises():
    p = CPrinter()
    t = sp.Symbol("t")
    with pytest.raises(CodegenError):
        p.doprint(sp.Derivative(sp.Function("g")(t), t, 2))


def test_wave_primal_matches_figure5():
    """Structural equivalents of Figure 5's primal stencil code."""
    prob = wave_problem(3)
    code = print_function_c("wave3d", [prob.primal])
    assert "#pragma omp parallel for private(i,j,k)" in code
    assert "for ( i=1; i<=n - 2; i++ )" in code
    assert "u[i][j][k] +=" in code
    assert "u_1[i][j][k - 1]" in code and "u_1[i + 1][j][k]" in code
    assert "c[i][j][k]" in code
    assert "int n" in code and "double D" in code


def test_wave_adjoint_core_matches_figure5():
    """The adjoint core loop of Figure 5: bounds [2, n-3], gather reads."""
    prob = wave_problem(3, active_c=False)
    nests = adjoint_loops(prob.primal, prob.adjoint_map, merge=False)
    core = [x for x in nests if x.name.endswith("core")]
    code = print_function_c("wave3d_perf_b", core)
    assert "for ( i=2; i<=n - 3; i++ )" in code
    assert "u_1_b[i][j][k] +=" in code
    assert "u_2_b[i][j][k] +=" in code
    assert "u_b[i][j][k + 1]" in code  # gathered neighbour reads
    assert "u_b[i - 1][j][k]" in code


def test_burgers_adjoint_matches_figure7():
    """Figure 7: ternaries from upwinding, fmax/fmin, core [2, n-3]."""
    prob = burgers_problem(1)
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    code = print_function_c("burgers1d_perf_b", nests)
    assert "for ( i=2; i<=n - 3; i++ )" in code
    assert "? 1.0 : 0.0" in code
    assert "fmax(0, u_1[i + 1])" in code
    assert "fmin(0, u_1[i - 1])" in code
    assert "u_1_b[i] +=" in code


def test_remainders_unrolled_in_output():
    """Single-iteration remainder loops appear as plain statements."""
    prob = burgers_problem(1)
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    code = print_function_c("b", nests)
    assert "u_1_b[0] +=" in code
    assert "u_1_b[n - 1] +=" in code


def test_guard_printed_as_if():
    prob = burgers_problem(1)
    nests = adjoint_loops(prob.primal, prob.adjoint_map, strategy="guarded")
    code = print_function_c("b", nests)
    assert "if (" in code and "&&" in code


def test_coefficient_swap_1d():
    """Section 3.2's signature effect: constants 2.0 and 4.0 swap sides."""
    c, u_b, r_b = sp.Function("c"), sp.Function("u_b"), sp.Function("r_b")
    expr = c(i) * (2.0 * u(i - 1) - 3.0 * u(i) + 4 * u(i + 1))
    nest = make_loop_nest(lhs=r(i), rhs=expr, counters=[i], bounds={i: [1, n - 1]})
    code = print_function_c("adj", adjoint_loops(nest, {r: r_b, u: u_b}))
    assert "4*c[i - 1]*r_b[i - 1]" in code
    assert "2.0*c[i + 1]*r_b[i + 1]" in code
