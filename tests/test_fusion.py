"""The dependence-aware fusion pass: legality, grouping, and exactness.

Three layers under test.  The pure analysis (``repro.core.fusion``)
decides from ``(axis, offset)`` footprints which contiguous statement
runs may share a loop nest — flow/anti/output dependences over the full
lexicographic order, slot-axis-map compatibility, the group-size cap.
The runtime integration (``BoundPlan``/``EnsemblePlan`` with
``fusion="auto"``) must substitute fused groups only on the serial
untiled native path, fall back group-by-group, and stay *bitwise*
identical to the per-statement reference path it replaces.  And the
hardened build cache underneath (satellite of the same PR) must survive
corrupt content-keyed entries and never expose half-written objects to
``*.so`` scans.
"""

from __future__ import annotations

import numpy as np
import pytest
import sympy as sp

from repro.apps import anisotropic_problem, burgers_problem, heat_problem
from repro.core import adjoint_loops, make_loop_nest
from repro.core.fusion import (
    MAX_GROUP_STATEMENTS,
    FusionEntry,
    FusionGroup,
    describe_groups,
    fusable_pair,
    plan_groups,
)
from repro.runtime import (
    Bindings,
    ExecutionConfig,
    compile_nests,
    native_available,
)
from repro.runtime import native as native_mod

needs_cc = pytest.mark.skipif(
    not native_available(), reason="no C toolchain on this machine"
)


# -- analysis: pair legality --------------------------------------------------


class _Acc:
    def __init__(self, name, slots):
        self.name, self.slots = name, slots


class _St:
    def __init__(self, target, reads, op="="):
        self.target, self.reads, self.op = target, reads, op


def _entry(st, dim=1, box=((1, 8),), dtype="float64", blocker=None):
    return FusionEntry(st, box, dim, dtype, blocker)


def _pair(writer_off, reader_off, dim=1):
    """producer writes u at writer_off; consumer reads u at reader_off."""
    a = _St(_Acc("u", ((0, writer_off),)), (_Acc("v", ((0, 0),)),))
    b = _St(_Acc("w", ((0, 0),)), (_Acc("u", ((0, reader_off),)),))
    return _entry(a, dim), _entry(b, dim)


def test_flow_dependence_behind_is_fusable():
    a, b = _pair(0, -1)  # consumer reads a point already written
    assert fusable_pair(a, b) is None


def test_flow_dependence_same_point_is_fusable():
    a, b = _pair(0, 0)
    assert fusable_pair(a, b) is None


def test_flow_dependence_ahead_rejects():
    a, b = _pair(0, +1)  # consumer would read a not-yet-written point
    why = fusable_pair(a, b)
    assert why is not None and "flow dependence on 'u'" in why


def test_anti_dependence_rejects():
    # a reads u[i+1]; b overwrites u[i] — in the fused nest b clobbers
    # u at point p before a (at point p+1) has read it.
    a = _St(_Acc("w", ((0, 0),)), (_Acc("u", ((0, -1),)),))
    b = _St(_Acc("u", ((0, 0),)), (_Acc("v", ((0, 0),)),))
    why = fusable_pair(_entry(a), _entry(b))
    assert why is not None and "anti dependence on 'u'" in why


def test_anti_dependence_ahead_is_fusable():
    # a reads u[i+1]; b writes u[i]: every read happens one point before
    # the overwrite reaches it.
    a = _St(_Acc("w", ((0, 0),)), (_Acc("u", ((0, 1),)),))
    b = _St(_Acc("u", ((0, 0),)), (_Acc("v", ((0, 0),)),))
    assert fusable_pair(_entry(a), _entry(b)) is None


def test_output_dependence_rejects_backward_write():
    a = _St(_Acc("u", ((0, 0),)), (_Acc("v", ((0, 0),)),))
    b = _St(_Acc("u", ((0, 1),)), (_Acc("v", ((0, 0),)),))
    why = fusable_pair(_entry(a), _entry(b))
    assert why is not None and "output dependence on 'u'" in why


def test_augmented_target_counts_as_read():
    # b accumulates into u at offset 0 while a writes u at offset -1:
    # the += read of u[i] races a's write of u[i-1] (distance +1).
    a = _St(_Acc("u", ((0, -1),)), (_Acc("v", ((0, 0),)),))
    b = _St(_Acc("u", ((0, -1),)), (_Acc("v", ((0, 1),)),), op="+=")
    assert fusable_pair(_entry(a), _entry(b)) is None
    c = _St(_Acc("u", ((0, 0),)), (_Acc("v", ((0, 1),)),), op="+=")
    why = fusable_pair(_entry(a), _entry(c))
    assert why is not None and "dependence on 'u'" in why


def test_transposed_access_is_unanalyzable():
    # writer addresses u via (axis0, axis1); reader via (axis1, axis0).
    a = _St(_Acc("u", ((0, 0), (1, 0))), (_Acc("v", ((0, 0), (1, 0))),))
    b = _St(
        _Acc("w", ((0, 0), (1, 0))), (_Acc("u", ((1, 0), (0, 0))),)
    )
    why = fusable_pair(
        _entry(a, dim=2, box=((1, 8), (1, 8))),
        _entry(b, dim=2, box=((1, 8), (1, 8))),
    )
    assert why is not None and "slot-axis maps" in why


def test_dtype_mismatch_rejects():
    a, b = _pair(0, -1)
    b32 = FusionEntry(b.stmt, b.box, b.dim, "float32")
    why = fusable_pair(a, b32)
    assert why is not None and "incompatible" in why


def test_lex_order_outer_axis_dominates():
    # 2D: consumer reads one row up (axis0 -1), one column ahead
    # (axis1 +1).  Lexicographically behind: fusable.
    a = _St(_Acc("u", ((0, 0), (1, 0))), (_Acc("v", ((0, 0), (1, 0))),))
    b = _St(
        _Acc("w", ((0, 0), (1, 0))), (_Acc("u", ((0, -1), (1, 1))),)
    )
    box = ((1, 8), (1, 8))
    assert fusable_pair(_entry(a, 2, box), _entry(b, 2, box)) is None


# -- analysis: grouping -------------------------------------------------------


def test_plan_groups_blocked_entries_are_singletons():
    a, b = _pair(0, -1)
    blocked = FusionEntry(b.stmt, b.box, b.dim, b.dtype, "no native lowering")
    groups = plan_groups([a, blocked, b])
    assert [len(g.entries) for g in groups] == [1, 1, 1]
    assert groups[1].reason == "no native lowering"


def test_plan_groups_candidate_checked_against_every_member():
    # a and b fuse; c is fine against b but conflicts with a — the
    # pairwise-with-all rule must cut before c.
    a = _St(_Acc("u", ((0, 0),)), (_Acc("v", ((0, 0),)),))
    b = _St(_Acc("w", ((0, 0),)), (_Acc("q", ((0, 0),)),))
    c = _St(_Acc("r", ((0, 0),)), (_Acc("u", ((0, 1),)),))
    groups = plan_groups([_entry(a), _entry(b), _entry(c)])
    assert [len(g.entries) for g in groups] == [2, 1]
    assert "flow dependence on 'u'" in groups[1].reason


def test_plan_groups_size_cap():
    sts = [
        _St(_Acc("u", ((0, 0),)), (_Acc("v", ((0, 0),)),), op="+=")
        for _ in range(MAX_GROUP_STATEMENTS + 3)
    ]
    groups = plan_groups([_entry(s) for s in sts])
    assert [len(g.entries) for g in groups] == [MAX_GROUP_STATEMENTS, 3]
    assert "cap" in groups[1].reason


def test_describe_groups_lines():
    a, b = _pair(0, -1)
    blocked = FusionEntry(a.stmt, a.box, a.dim, a.dtype, "gated: sin")
    lines = describe_groups(plan_groups([a, b, blocked]))
    assert lines[0].startswith("group 0: FUSED 2 statements")
    assert "statements 0-1" in lines[0]
    assert "gated: sin" in lines[1]


def test_fusion_group_fused_property():
    a, b = _pair(0, -1)
    assert FusionGroup((a, b)).fused
    assert not FusionGroup((a,)).fused


# -- runtime integration ------------------------------------------------------


def _adjoint_case(prob, n, dtype=np.float64, seed=0):
    nests = list(adjoint_loops(prob.primal, prob.adjoint_map))
    kernel = compile_nests(nests, prob.bindings(n, dtype=dtype), cache=False)
    rng = np.random.default_rng(seed)
    base = prob.allocate(n, rng=rng, dtype=dtype)
    base.update(prob.allocate_adjoints(n, rng=rng, dtype=dtype))
    return kernel, base


def _run_bound(kernel, base, runs=3, **plan_kwargs):
    arrays = {k: v.copy() for k, v in base.items()}
    plan = kernel.plan(backend="native", **plan_kwargs)
    try:
        bound = plan.bind(arrays)
        for _ in range(runs):
            bound.run()
        return arrays, bound
    finally:
        plan.close()


@needs_cc
def test_heat2d_fuses_to_one_sweep_bitwise(rng):
    kernel, base = _adjoint_case(heat_problem(2), 24)
    fused, fbound = _run_bound(kernel, base, fusion="auto")
    ref, rbound = _run_bound(kernel, base, fusion="off")
    assert fbound.sweep_count == 1
    assert fbound.fused_group_count == 1
    assert fbound.fused_statement_count == fbound.statement_count == 17
    assert rbound.fused_group_count == 0
    assert rbound.sweep_count == rbound.statement_count
    for name in base:
        assert ref[name].tobytes() == fused[name].tobytes(), name


@needs_cc
def test_fusion_off_by_config_validation():
    with pytest.raises(ValueError, match="fusion"):
        ExecutionConfig(fusion="maybe")
    assert ExecutionConfig(fusion="off").fusion == "off"


@needs_cc
def test_ineligible_statements_fall_back_groupwise(rng):
    """burgers2d f32: Heaviside statements are f32-ineligible, so the
    stream splits around them — fused groups for the eligible runs,
    per-statement execution elsewhere, results exact."""
    kernel, base = _adjoint_case(burgers_problem(2), 16, dtype=np.float32)
    fused, fbound = _run_bound(kernel, base, fusion="auto")
    ref, _ = _run_bound(kernel, base, fusion="off")
    assert 0 < fbound.fused_group_count
    assert fbound.fused_statement_count < fbound.statement_count
    assert fbound.statement_count > fbound.sweep_count > 1
    for name in base:
        assert ref[name].tobytes() == fused[name].tobytes(), name


@needs_cc
def test_group_cap_splits_anisotropic(rng):
    """anisotropic(active_k) has 34 adjoint statements — above the
    group cap — and must split rather than emit a degenerate nest."""
    kernel, base = _adjoint_case(anisotropic_problem(active_k=True), 14)
    fused, fbound = _run_bound(kernel, base, fusion="auto")
    ref, _ = _run_bound(kernel, base, fusion="off")
    assert fbound.statement_count > MAX_GROUP_STATEMENTS
    assert fbound.fused_group_count == 2
    assert fbound.sweep_count == 2
    for name in base:
        assert ref[name].tobytes() == fused[name].tobytes(), name


@needs_cc
@pytest.mark.parametrize(
    "config",
    [
        dict(num_threads=2, min_block_iterations=1),
        dict(tile_shape=(6, 6)),
    ],
    ids=["threads", "tiled"],
)
def test_fusion_inert_off_serial_path(rng, config):
    """Threaded/tiled disciplines keep the per-statement path (and its
    bitwise identity) even with fusion='auto'."""
    kernel, base = _adjoint_case(heat_problem(2), 24)
    fused, fbound = _run_bound(kernel, base, fusion="auto", **config)
    assert fbound.fused_group_count == 0
    ref, _ = _run_bound(kernel, base, fusion="off", **config)
    for name in base:
        assert ref[name].tobytes() == fused[name].tobytes(), name


@needs_cc
def test_value_forwarding_chain_bitwise(rng):
    """A same-point produce->consume chain (the scalarization case):
    v = f(u); w = g(v) at identical offsets must forward through the
    register and still match the two-sweep reference bitwise."""
    i = sp.Symbol("i", integer=True)
    nsym = sp.Symbol("n", integer=True)
    u, v, w = sp.Function("u"), sp.Function("v"), sp.Function("w")
    nests = [
        make_loop_nest(
            lhs=v(i), rhs=0.5 * u(i) ** 2 + 0.25 * u(i - 1),
            counters=[i], bounds={i: [1, nsym - 2]}, name="produce",
        ),
        make_loop_nest(
            lhs=w(i), rhs=sp.Max(v(i), 0.125 * u(i)) + v(i - 1),
            counters=[i], bounds={i: [1, nsym - 2]}, name="consume",
        ),
    ]
    kernel = compile_nests([nests[0], nests[1]], Bindings(sizes={nsym: 64}), cache=False)
    arrays = {
        "u": np.random.default_rng(9).standard_normal(65),
        "v": np.zeros(65),
        "w": np.zeros(65),
    }
    fused, fbound = _run_bound(kernel, arrays, fusion="auto")
    assert fbound.fused_group_count == 1 and fbound.sweep_count == 1
    ref, _ = _run_bound(kernel, arrays, fusion="off")
    for name in arrays:
        assert ref[name].tobytes() == fused[name].tobytes(), name


@needs_cc
def test_fusion_explain_reports_groups(rng):
    kernel, base = _adjoint_case(heat_problem(2), 18)
    plan = kernel.plan(backend="native", fusion="auto")
    try:
        bound = plan.bind({k: v.copy() for k, v in base.items()})
        lines = bound.fusion_explain()
        assert any("FUSED 17 statements" in line for line in lines)
        assert lines[-1].startswith("sweeps per timestep: 1")
    finally:
        plan.close()
    off = kernel.plan(backend="native", fusion="off")
    try:
        lines = off.bind({k: v.copy() for k, v in base.items()}).fusion_explain()
        assert any("inactive" in line for line in lines)
    finally:
        off.close()


@needs_cc
def test_ensemble_fusion_bitwise(rng):
    from repro.runtime.ensemble import EnsemblePlan, stack_arrays

    prob = heat_problem(2)
    kernel, base = _adjoint_case(prob, 16)
    members = [
        prob.allocate_state(16, seed=m) for m in range(3)
    ]

    def run(fusion):
        plan = kernel.plan(backend="native", fusion=fusion)
        batched = stack_arrays(members)
        ens = EnsemblePlan(plan, batched)
        for _ in range(3):
            ens.run()
        plan.close()
        return batched, ens

    fused_arrays, fens = run("auto")
    ref_arrays, rens = run("off")
    assert fens.fused_group_count == 3  # one group per member
    assert rens.fused_group_count == 0
    for name in fused_arrays:
        assert ref_arrays[name].tobytes() == fused_arrays[name].tobytes()


# -- build-cache hardening ----------------------------------------------------


@needs_cc
def test_corrupt_cache_entry_self_heals(monkeypatch, tmp_path):
    """Garbage at the content-keyed .so path must not wedge the backend:
    the loader deletes the corrupt entry and rebuilds once."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cc = native_mod.native_toolchain()
    source = "double repro_heal_probe(double x) { return x * 2.0; }\n"
    key = native_mod._build_key(source, cc)
    so_path = native_mod.native_cache_dir() / f"{key}.so"
    so_path.parent.mkdir(parents=True, exist_ok=True)
    so_path.write_bytes(b"this is not an ELF object")
    cdll, path = native_mod._build_and_load(source, cc)
    assert path == so_path
    assert so_path.read_bytes()[:4] != b"this"  # rebuilt in place
    fn = cdll.repro_heal_probe
    import ctypes

    fn.restype = ctypes.c_double
    fn.argtypes = (ctypes.c_double,)
    assert fn(ctypes.c_double(21.0)) == 42.0


@needs_cc
def test_build_leaves_no_partial_objects(monkeypatch, tmp_path):
    """In-flight compiles carry a .so.tmp suffix, so a concurrent cache
    scan matching *.so can only ever see complete objects; the finished
    files are world-readable (mkstemp's 0600 would break shared caches)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cc = native_mod.native_toolchain()
    real_run = native_mod.subprocess.run

    seen: list[list[str]] = []

    def checking_run(cmd, **kwargs):
        if isinstance(cmd, list) and "-shared" in cmd:
            out = cmd[cmd.index("-o") + 1]
            assert out.endswith(".so.tmp"), out
            seen.append(cmd)
            assert not list(native_mod.native_cache_dir().glob("*.so"))
        return real_run(cmd, **kwargs)

    monkeypatch.setattr(native_mod.subprocess, "run", checking_run)
    source = "double repro_tmp_probe(double x) { return x + 1.0; }\n"
    so_path = native_mod._build_shared_object(source, cc)
    assert seen and so_path.exists() and so_path.suffix == ".so"
    mode = so_path.stat().st_mode & 0o777
    assert mode & 0o044 == 0o044, oct(mode)
    c_mode = so_path.with_suffix(".c").stat().st_mode & 0o777
    assert c_mode & 0o044 == 0o044, oct(c_mode)


@needs_cc
def test_fused_build_failure_falls_back_per_statement(rng, monkeypatch):
    """If the fused compile itself dies, the group binds statement-wise
    and stays exact — fusion is an optimisation, never a requirement."""
    kernel, base = _adjoint_case(heat_problem(2), 16)
    ref, _ = _run_bound(kernel, base, fusion="off")

    def broken(*args, **kwargs):
        raise native_mod.NativeBuildError("injected fused-build failure")

    monkeypatch.setattr(native_mod, "generate_fused_source", broken)
    monkeypatch.setattr(native_mod, "_warned", set())
    with pytest.warns(RuntimeWarning, match="fused"):
        fused, fbound = _run_bound(kernel, base, fusion="auto")
    assert fbound.fused_group_count == 0
    assert fbound.native_statement_count == fbound.statement_count
    for name in base:
        assert ref[name].tobytes() == fused[name].tobytes(), name
