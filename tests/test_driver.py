"""Tests for revolve checkpointing and the adjoint time-stepping driver."""

import numpy as np
import pytest

from repro.apps import burgers_problem, heat_problem
from repro.core import adjoint_loops
from repro.driver import (
    Action,
    AdjointTimeStepper,
    execute_schedule,
    optimal_cost,
    schedule,
    schedule_cost,
)
from repro.runtime import compile_nests


def simulate_schedule(actions, steps, snaps):
    """Replay a schedule checking slot/step validity; returns the peak
    resident snapshot count.

    The simulator asserts the full execution contract: every snapshot
    stores the live step into a valid slot, every restore loads a slot
    holding exactly the step it claims, advances move forward from the
    live state, at most *snaps* snapshots are ever resident, and every
    step is reversed exactly once in descending order.
    """
    slots: dict[int, int] = {}
    live = 0
    reversed_steps = []
    max_resident = 0

    for a in actions:
        if a.kind == "snapshot":
            assert 0 <= a.slot < snaps, f"slot {a.slot} outside budget {snaps}"
            assert a.step == live, "snapshot of a non-live step"
            slots[a.slot] = live
            max_resident = max(max_resident, len(slots))
        elif a.kind == "advance":
            assert a.step == live, "advance from a non-live step"
            assert a.step < a.step2 <= steps, "advance outside the sweep"
            live = a.step2
        elif a.kind == "restore":
            assert a.slot in slots, f"restore from empty slot {a.slot}"
            assert slots[a.slot] == a.step, "restore claims the wrong step"
            live = a.step
        elif a.kind == "reverse":
            assert a.step == live, "reverse of a non-live step"
            reversed_steps.append(a.step)
        else:  # pragma: no cover - schedule only emits the four kinds
            raise AssertionError(f"unknown action {a.kind}")
    assert reversed_steps == list(range(steps - 1, -1, -1)), (
        "steps must be reversed exactly once, in descending order"
    )
    assert max_resident <= snaps
    return max_resident


# -- revolve schedule ------------------------------------------------------------


def test_optimal_cost_base_cases():
    assert optimal_cost(0, 1) == 0
    assert optimal_cost(1, 1) == 1
    assert optimal_cost(5, 1) == 15  # triangular
    assert optimal_cost(1, 10) == 1


def test_optimal_cost_enough_snaps_is_linear():
    # With snaps >= steps, each step is advanced once and re-evaluated
    # once inside its reverse: 2l - 1 evaluations (the last step is never
    # advanced past).
    assert optimal_cost(10, 10) == 19
    assert optimal_cost(10, 64) == 19


def test_optimal_cost_monotone_in_snaps():
    costs = [optimal_cost(30, s) for s in range(1, 10)]
    assert all(costs[k + 1] <= costs[k] for k in range(len(costs) - 1))


def test_optimal_cost_rejects_zero_snaps():
    with pytest.raises(ValueError):
        optimal_cost(5, 0)


@pytest.mark.parametrize("steps,snaps", [
    (1, 1), (2, 1), (7, 1), (10, 2), (10, 3), (17, 3), (25, 4), (33, 5), (40, 2),
])
def test_schedule_is_optimal(steps, snaps):
    """The emitted schedule's evaluation count equals the DP optimum."""
    acts = schedule(steps, snaps)
    assert schedule_cost(acts) == optimal_cost(steps, snaps)


@pytest.mark.parametrize("steps,snaps", [(10, 3), (17, 2), (25, 4), (7, 7)])
def test_schedule_semantics_by_simulation(steps, snaps):
    """Simulate the schedule: slot budget respected, every step reversed
    exactly once in descending order, states consistent."""
    simulate_schedule(schedule(steps, snaps), steps, snaps)


@pytest.mark.parametrize("snaps", range(1, 13))
def test_exhaustive_certification_over_full_grid(snaps):
    """Exhaustive revolve certification: for the full grid of sweep
    lengths l <= 64 and this snapshot budget, the emitted schedule (a)
    passes the validity simulator and (b) costs *exactly* the dynamic-
    programming optimum ``t(l, s)`` of Griewank & Walther's recurrence
    — the emitter is certified optimal, not just heuristically close."""
    for steps in range(1, 65):
        acts = schedule(steps, snaps)
        assert schedule_cost(acts) == optimal_cost(steps, snaps), (
            f"suboptimal schedule for steps={steps}, snaps={snaps}"
        )
        simulate_schedule(acts, steps, snaps)


def test_schedule_rejects_bad_args():
    with pytest.raises(ValueError):
        schedule(0, 1)
    with pytest.raises(ValueError):
        schedule(5, 0)


# -- the shared schedule executor -------------------------------------------------


def _recording_handlers(log):
    return dict(
        snapshot=lambda slot, step: log.append(("snapshot", slot, step)),
        advance=lambda begin, end: log.append(("advance", begin, end)),
        restore=lambda slot, step: log.append(("restore", slot, step)),
        reverse=lambda step: log.append(("reverse", step)),
    )


def test_execute_schedule_replays_every_action():
    acts = schedule(9, 3)
    log = []
    execute_schedule(acts, **_recording_handlers(log))
    assert len(log) == len(acts)
    assert [e for e in log if e[0] == "reverse"] == [
        ("reverse", t) for t in range(8, -1, -1)
    ]


@pytest.mark.parametrize("bad,match", [
    ([Action("snapshot", 3, slot=0)], "snapshot of step 3"),
    ([Action("advance", 2, 5)], "advance from step 2"),
    ([Action("advance", 0, 0)], "advance must move forward"),
    ([Action("advance", 0, 2), Action("reverse", 1)], "reverse of step 1"),
    ([Action("restore", 0, slot=1)], "holds no snapshot"),
    ([Action("snapshot", 0, slot=0), Action("advance", 0, 2),
      Action("restore", 1, slot=0)], "slot 0 holds step 0"),
    ([Action("noop", 0)], "unknown action"),
])
def test_execute_schedule_rejects_inconsistent_sequences(bad, match):
    """Hand-built action lists that desynchronise the live state fail
    loudly instead of adjoining the wrong step."""
    with pytest.raises(ValueError, match=match):
        execute_schedule(bad, **_recording_handlers([]))


# -- adjoint time-stepping driver -------------------------------------------------


def make_burgers_stepper(n=48):
    prob = burgers_problem(1)
    bindings = prob.bindings(n)
    shape = prob.array_shape(n)
    fwd = compile_nests([prob.primal], bindings)
    adj = compile_nests(adjoint_loops(prob.primal, prob.adjoint_map), bindings)

    def forward_step(state):
        arrays = {"u": np.zeros(shape), "u_1": state["u"]}
        fwd(arrays)
        return {"u": arrays["u"]}

    def reverse_step(saved, lam):
        arrays = {
            "u_b": lam["u"].copy(),
            "u_1": saved["u"],
            "u_1_b": np.zeros(shape),
        }
        adj(arrays)
        return {"u": arrays["u_1_b"]}

    return AdjointTimeStepper(forward_step, reverse_step), prob, n, shape


def test_forward_run_matches_manual(rng):
    stepper, prob, n, shape = make_burgers_stepper()
    u0 = rng.standard_normal(shape) * 0.1
    final = stepper.run_forward({"u": u0}, steps=5)
    # manual
    u = u0.copy()
    fwd = compile_nests([prob.primal], prob.bindings(n))
    for _ in range(5):
        arrays = {"u": np.zeros(shape), "u_1": u}
        fwd(arrays)
        u = arrays["u"]
    np.testing.assert_array_equal(final["u"], u)


def test_run_forward_result_survives_later_sweeps(rng):
    """run_forward's return value must not alias reusable step storage.

    make_stencil_steps' double-buffered forward_step returns views of
    internal buffers that later sweeps overwrite; run_forward copies its
    result so holding it across another sweep is safe."""
    from repro.driver import make_stencil_steps

    prob = burgers_problem(1)
    n = 48
    shape = prob.array_shape(n)
    fwd = compile_nests([prob.primal], prob.bindings(n))
    adj = compile_nests(
        adjoint_loops(prob.primal, prob.adjoint_map), prob.bindings(n)
    )
    fstep, rstep = make_stencil_steps(fwd.plan().run, adj.plan().run, shape)
    stepper = AdjointTimeStepper(fstep, rstep)
    u0 = rng.standard_normal(shape) * 0.1
    u1 = rng.standard_normal(shape) * 0.1
    y0 = stepper.run_forward({"u": u0}, 3)
    expected = y0["u"].copy()
    y1 = stepper.run_forward({"u": u1}, 3)
    assert y1["u"] is not y0["u"]
    np.testing.assert_array_equal(y0["u"], expected)
    # ... and an adjoint sweep must not corrupt it either.
    stepper.run_store_all({"u": u1}, 4, {"u": rng.standard_normal(shape)})
    np.testing.assert_array_equal(y0["u"], expected)


@pytest.mark.parametrize("steps,snaps", [(6, 2), (9, 3), (12, 2), (5, 5)])
def test_checkpointed_equals_store_all(rng, steps, snaps):
    """Revolve-checkpointed adjoint is bitwise identical to store-all."""
    stepper, prob, n, shape = make_burgers_stepper()
    u0 = rng.standard_normal(shape) * 0.1
    seed = {"u": rng.standard_normal(shape)}
    ref = stepper.run_store_all({"u": u0}, steps, seed)
    chk = stepper.run_checkpointed({"u": u0}, steps, seed, snaps=snaps)
    np.testing.assert_array_equal(ref["u"], chk["u"])


def test_checkpointed_gradient_verified_by_fd(rng):
    """d(0.5||u^T||^2)/du^0 via checkpointed sweep matches FD."""
    stepper, prob, n, shape = make_burgers_stepper()
    steps, snaps = 8, 3
    u0 = rng.standard_normal(shape) * 0.1

    def J(u_init):
        return 0.5 * float(
            np.sum(stepper.run_forward({"u": u_init}, steps)["u"] ** 2)
        )

    final = stepper.run_forward({"u": u0}, steps)
    grad = stepper.run_checkpointed({"u": u0}, steps, {"u": final["u"]}, snaps)
    v = rng.standard_normal(shape)
    h = 1e-7
    fd = (J(u0 + h * v) - J(u0 - h * v)) / (2 * h)
    ad = float(np.vdot(grad["u"], v))
    assert abs(fd - ad) / max(abs(fd), 1e-30) < 1e-6


def test_heat_two_array_state(rng):
    """Driver works for states with several arrays (heat with sources)."""
    prob = heat_problem(2)
    N = 12
    bindings = prob.bindings(N)
    shape = prob.array_shape(N)
    fwd = compile_nests([prob.primal], bindings)
    adj = compile_nests(adjoint_loops(prob.primal, prob.adjoint_map), bindings)

    def forward_step(state):
        arrays = {"u": np.zeros(shape), "u_1": state["u"]}
        fwd(arrays)
        return {"u": arrays["u"]}

    def reverse_step(saved, lam):
        arrays = {"u_b": lam["u"].copy(), "u_1": saved["u"],
                  "u_1_b": np.zeros(shape)}
        adj(arrays)
        return {"u": arrays["u_1_b"]}

    stepper = AdjointTimeStepper(forward_step, reverse_step)
    u0 = rng.standard_normal(shape) * 0.1
    seed = {"u": rng.standard_normal(shape)}
    ref = stepper.run_store_all({"u": u0}, 7, seed)
    chk = stepper.run_checkpointed({"u": u0}, 7, seed, snaps=2)
    np.testing.assert_array_equal(ref["u"], chk["u"])
