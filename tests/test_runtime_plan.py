"""ExecutionPlan tests: one entry point, identical results for every
discipline (serial, tiled, threaded, fused tiled+threaded) on every app.

The pointwise interpreter is the semantic oracle; the compiled kernels
evaluate the same expression trees element-wise, so agreement is exact
(bitwise), and every planned discipline must preserve that.
"""

import numpy as np
import pytest
import sympy as sp

from repro.core import adjoint_loops, make_loop_nest
from repro.runtime import (
    Bindings,
    ExecutionConfig,
    KernelError,
    compile_nests,
    interpret_nests,
)

CONFIGS = [
    ("serial", dict(num_threads=1)),
    ("tiled", dict(tile_shape=(8, 8, 8))),
    ("threads1", dict(num_threads=1, min_block_iterations=1)),
    ("threads2", dict(num_threads=2, min_block_iterations=1)),
    ("threads4", dict(num_threads=4, min_block_iterations=1)),
    (
        "tiled+threads4",
        dict(num_threads=4, tile_shape=(8, 8, 8), min_block_iterations=1),
    ),
]

# Interpreter results per (problem, n): the oracle is deterministic for
# the fixture rng seed, so it is computed once and shared across configs.
_ORACLE: dict = {}


def _oracle(prob, n, nests, base, bindings):
    key = (prob.name, n)
    if key not in _ORACLE:
        interp = {k: v.copy() for k, v in base.items()}
        interpret_nests(nests, interp, bindings)
        _ORACLE[key] = interp
    return _ORACLE[key]


@pytest.mark.parametrize("label,config", CONFIGS, ids=[c[0] for c in CONFIGS])
def test_plan_matches_interpreter_bitwise(any_problem, rng, label, config):
    prob, n = any_problem
    bindings = prob.bindings(n)
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    kernel = compile_nests(nests, bindings)
    base = prob.allocate(n, rng=rng)
    base.update(prob.allocate_adjoints(n, rng=rng))
    interp = _oracle(prob, n, nests, base, bindings)

    planned = {k: v.copy() for k, v in base.items()}
    plan = kernel.plan(**config)
    try:
        plan.run(planned)
    finally:
        plan.close()

    name_map = prob.adjoint_name_map()
    for prim in prob.active_input_names():
        np.testing.assert_array_equal(
            planned[name_map[prim]], interp[name_map[prim]]
        )


@pytest.mark.parametrize("label,config", CONFIGS[1:], ids=[c[0] for c in CONFIGS[1:]])
def test_plan_bitwise_identical_to_serial_kernel(any_problem, rng, label, config):
    """Every planned discipline reproduces the serial path bit for bit."""
    prob, n = any_problem
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    kernel = compile_nests(nests, prob.bindings(n))
    base = prob.allocate(n, rng=rng)
    base.update(prob.allocate_adjoints(n, rng=rng))

    serial = {k: v.copy() for k, v in base.items()}
    kernel(serial)

    planned = {k: v.copy() for k, v in base.items()}
    plan = kernel.plan(**config)
    try:
        plan.run(planned)
    finally:
        plan.close()

    for name in serial:
        np.testing.assert_array_equal(serial[name], planned[name])


def test_plan_memoised_per_config():
    from repro.apps import heat_problem

    prob = heat_problem(1)
    kernel = compile_nests(
        adjoint_loops(prob.primal, prob.adjoint_map), prob.bindings(24)
    )
    p1 = kernel.plan(num_threads=2, tile_shape=(8,))
    p2 = kernel.plan(num_threads=2, tile_shape=[8])
    p3 = kernel.plan(num_threads=2)
    assert p1 is p2
    assert p1 is not p3


def test_plan_unit_count_counts_tiles():
    i = sp.Symbol("i", integer=True)
    n = sp.Symbol("n", integer=True)
    u, r = sp.Function("u"), sp.Function("r")
    nest = make_loop_nest(
        lhs=r(i), rhs=u(i), counters=[i], bounds={i: [0, n]}
    )
    kernel = compile_nests([nest], Bindings(sizes={n: 31}), cache=False)
    plan = kernel.plan(tile_shape=(8,))
    assert plan.unit_count == 4  # 32 iterations in tiles of 8


def test_config_validation():
    with pytest.raises(ValueError):
        ExecutionConfig(num_threads=0)
    with pytest.raises(ValueError):
        ExecutionConfig(scatter=True, tile_shape=(8,))


def test_config_validates_min_block_iterations():
    with pytest.raises(ValueError, match="min_block_iterations"):
        ExecutionConfig(min_block_iterations=0)


@pytest.mark.parametrize("tile", [(0,), (8, -1), (8.5,), ()])
def test_config_validates_tile_shape_entries(tile):
    with pytest.raises(ValueError, match="tile_shape"):
        ExecutionConfig(tile_shape=tile)


def test_plan_rejects_tile_rank_below_kernel_dim():
    """A tile shape must cover every kernel axis (clear error, not an
    unsplit axis silently falling out of the decomposition)."""
    from repro.apps import heat_problem
    from repro.core import adjoint_loops

    prob = heat_problem(2)
    kernel = compile_nests(
        adjoint_loops(prob.primal, prob.adjoint_map), prob.bindings(16)
    )
    with pytest.raises(KernelError, match="tile_shape"):
        kernel.plan(tile_shape=(8,))


def _dependent_regions_kernel(N, delay):
    """Two nests where the second reads what the first writes.

    The first region is large (parallel tasks) and slowed down by a
    bound function; the second is tiny, so it runs inline on the
    submitting thread — the exact shape of the read-after-write hazard
    ``_run_threaded`` used to have before regions were separated by
    conflict barriers.
    """
    import time as _time

    i = sp.Symbol("i", integer=True)
    n = sp.Symbol("n", integer=True)
    u, a, b = sp.Function("u"), sp.Function("a"), sp.Function("b")
    f = sp.Function("f")
    produce = make_loop_nest(
        lhs=a(i), rhs=f(u(i)), counters=[i], bounds={i: [0, n]}, name="produce"
    )
    consume = make_loop_nest(
        lhs=b(i), rhs=a(i), counters=[i], bounds={i: [0, 1]}, name="consume"
    )

    def slow_double(x):
        _time.sleep(delay)
        return x * 2.0

    bindings = Bindings(sizes={n: N}, functions={"f": slow_double})
    return compile_nests([produce, consume], bindings, cache=False)


def test_threaded_plan_barrier_between_dependent_regions(rng):
    """Read-after-write across regions: the consumer must see the
    producer's values, not stale zeros, for both execution paths."""
    N = 4000
    kernel = _dependent_regions_kernel(N, delay=0.05)
    plan = kernel.plan(num_threads=2)
    assert plan.barriers == (False, True)
    for runner in (plan.run, plan.run_unbound):
        arrays = {
            "u": rng.standard_normal(N + 1),
            "a": np.zeros(N + 1),
            "b": np.zeros(N + 1),
        }
        runner(arrays)
        np.testing.assert_array_equal(arrays["b"][:2], 2.0 * arrays["u"][:2])
    plan.close()


def test_threaded_plan_no_barrier_for_disjoint_adjoint_regions():
    """PerforAD adjoint regions write disjoint boxes of one array: they
    must keep the single final join (no barriers), per Section 1."""
    from repro.apps import wave_problem
    from repro.core import adjoint_loops

    prob = wave_problem(2)
    kernel = compile_nests(
        adjoint_loops(prob.primal, prob.adjoint_map), prob.bindings(18)
    )
    plan = kernel.plan(num_threads=4, min_block_iterations=1)
    assert not any(plan.barriers)


def test_empty_region_has_no_plan_work():
    i = sp.Symbol("i", integer=True)
    n = sp.Symbol("n", integer=True)
    u, r = sp.Function("u"), sp.Function("r")
    nest = make_loop_nest(lhs=r(i), rhs=u(i), counters=[i], bounds={i: [5, n]})
    kernel = compile_nests([nest], Bindings(sizes={n: 3}), cache=False)
    plan = kernel.plan()
    assert plan.unit_count == 0
    arrays = {"u": np.ones(10), "r": np.zeros(10)}
    plan.run(arrays)
    assert not arrays["r"].any()


def test_threaded_plan_propagates_exceptions():
    i = sp.Symbol("i", integer=True)
    n = sp.Symbol("n", integer=True)
    u, r = sp.Function("u"), sp.Function("r")
    nest = make_loop_nest(
        lhs=r(i), rhs=u(i - 1), counters=[i], bounds={i: [0, n]}
    )
    kernel = compile_nests([nest], Bindings(sizes={n: 4000}), cache=False)
    arrays = {"u": np.zeros(4001), "r": np.zeros(4001)}  # u(i-1) at i=0 OOB
    with kernel.plan(num_threads=2, min_block_iterations=1) as plan:
        with pytest.raises(KernelError):
            plan.run(arrays)
