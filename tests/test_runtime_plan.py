"""ExecutionPlan tests: one entry point, identical results for every
discipline (serial, tiled, threaded, fused tiled+threaded) on every app.

The pointwise interpreter is the semantic oracle; the compiled kernels
evaluate the same expression trees element-wise, so agreement is exact
(bitwise), and every planned discipline must preserve that.
"""

import numpy as np
import pytest
import sympy as sp

from repro.core import adjoint_loops, make_loop_nest
from repro.runtime import (
    Bindings,
    ExecutionConfig,
    KernelError,
    compile_nests,
    interpret_nests,
)

CONFIGS = [
    ("serial", dict(num_threads=1)),
    ("tiled", dict(tile_shape=(8, 8, 8))),
    ("threads1", dict(num_threads=1, min_block_iterations=1)),
    ("threads2", dict(num_threads=2, min_block_iterations=1)),
    ("threads4", dict(num_threads=4, min_block_iterations=1)),
    (
        "tiled+threads4",
        dict(num_threads=4, tile_shape=(8, 8, 8), min_block_iterations=1),
    ),
]

# Interpreter results per (problem, n): the oracle is deterministic for
# the fixture rng seed, so it is computed once and shared across configs.
_ORACLE: dict = {}


def _oracle(prob, n, nests, base, bindings):
    key = (prob.name, n)
    if key not in _ORACLE:
        interp = {k: v.copy() for k, v in base.items()}
        interpret_nests(nests, interp, bindings)
        _ORACLE[key] = interp
    return _ORACLE[key]


@pytest.mark.parametrize("label,config", CONFIGS, ids=[c[0] for c in CONFIGS])
def test_plan_matches_interpreter_bitwise(any_problem, rng, label, config):
    prob, n = any_problem
    bindings = prob.bindings(n)
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    kernel = compile_nests(nests, bindings)
    base = prob.allocate(n, rng=rng)
    base.update(prob.allocate_adjoints(n, rng=rng))
    interp = _oracle(prob, n, nests, base, bindings)

    planned = {k: v.copy() for k, v in base.items()}
    plan = kernel.plan(**config)
    try:
        plan.run(planned)
    finally:
        plan.close()

    name_map = prob.adjoint_name_map()
    for prim in prob.active_input_names():
        np.testing.assert_array_equal(
            planned[name_map[prim]], interp[name_map[prim]]
        )


@pytest.mark.parametrize("label,config", CONFIGS[1:], ids=[c[0] for c in CONFIGS[1:]])
def test_plan_bitwise_identical_to_serial_kernel(any_problem, rng, label, config):
    """Every planned discipline reproduces the serial path bit for bit."""
    prob, n = any_problem
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    kernel = compile_nests(nests, prob.bindings(n))
    base = prob.allocate(n, rng=rng)
    base.update(prob.allocate_adjoints(n, rng=rng))

    serial = {k: v.copy() for k, v in base.items()}
    kernel(serial)

    planned = {k: v.copy() for k, v in base.items()}
    plan = kernel.plan(**config)
    try:
        plan.run(planned)
    finally:
        plan.close()

    for name in serial:
        np.testing.assert_array_equal(serial[name], planned[name])


def test_plan_memoised_per_config():
    from repro.apps import heat_problem

    prob = heat_problem(1)
    kernel = compile_nests(
        adjoint_loops(prob.primal, prob.adjoint_map), prob.bindings(24)
    )
    p1 = kernel.plan(num_threads=2, tile_shape=(8,))
    p2 = kernel.plan(num_threads=2, tile_shape=[8])
    p3 = kernel.plan(num_threads=2)
    assert p1 is p2
    assert p1 is not p3


def test_plan_unit_count_counts_tiles():
    i = sp.Symbol("i", integer=True)
    n = sp.Symbol("n", integer=True)
    u, r = sp.Function("u"), sp.Function("r")
    nest = make_loop_nest(
        lhs=r(i), rhs=u(i), counters=[i], bounds={i: [0, n]}
    )
    kernel = compile_nests([nest], Bindings(sizes={n: 31}), cache=False)
    plan = kernel.plan(tile_shape=(8,))
    assert plan.unit_count == 4  # 32 iterations in tiles of 8


def test_config_validation():
    with pytest.raises(ValueError):
        ExecutionConfig(num_threads=0)
    with pytest.raises(ValueError):
        ExecutionConfig(scatter=True, tile_shape=(8,))


def test_empty_region_has_no_plan_work():
    i = sp.Symbol("i", integer=True)
    n = sp.Symbol("n", integer=True)
    u, r = sp.Function("u"), sp.Function("r")
    nest = make_loop_nest(lhs=r(i), rhs=u(i), counters=[i], bounds={i: [5, n]})
    kernel = compile_nests([nest], Bindings(sizes={n: 3}), cache=False)
    plan = kernel.plan()
    assert plan.unit_count == 0
    arrays = {"u": np.ones(10), "r": np.zeros(10)}
    plan.run(arrays)
    assert not arrays["r"].any()


def test_threaded_plan_propagates_exceptions():
    i = sp.Symbol("i", integer=True)
    n = sp.Symbol("n", integer=True)
    u, r = sp.Function("u"), sp.Function("r")
    nest = make_loop_nest(
        lhs=r(i), rhs=u(i - 1), counters=[i], bounds={i: [0, n]}
    )
    kernel = compile_nests([nest], Bindings(sizes={n: 4000}), cache=False)
    arrays = {"u": np.zeros(4001), "r": np.zeros(4001)}  # u(i-1) at i=0 OOB
    with kernel.plan(num_threads=2, min_block_iterations=1) as plan:
        with pytest.raises(KernelError):
            plan.run(arrays)
