"""Parallel executor and scheduler tests.

On this machine the thread pool exercises the decomposition and
synchronisation structure (the results must be identical for any thread
count); the performance claims are the machine model's job.
"""

import numpy as np
import pytest
import sympy as sp

from repro.baselines.scatter import tapenade_style_adjoint
from repro.core import adjoint_loops
from repro.core.loopnest import LoopNest, Statement
from repro.runtime import (
    Bindings,
    KernelError,
    ParallelExecutor,
    compile_nests,
    split_box,
)
from repro.runtime.scheduler import choose_split_axis


# -- scheduler ---------------------------------------------------------------


def test_split_box_partitions_exactly():
    box = ((0, 9), (3, 7))
    blocks = split_box(box, 4)
    pts = set()
    for blk in blocks:
        for x in range(blk[0][0], blk[0][1] + 1):
            for y in range(blk[1][0], blk[1][1] + 1):
                assert (x, y) not in pts
                pts.add((x, y))
    assert len(pts) == 10 * 5


def test_split_box_respects_axis():
    blocks = split_box(((0, 1), (0, 99)), 4, axis=1)
    assert len(blocks) == 4
    assert all(blk[0] == (0, 1) for blk in blocks)


def test_split_box_caps_at_extent():
    assert len(split_box(((0, 2),), 10)) == 3


def test_split_box_empty():
    assert split_box(((5, 2),), 4) == []


def test_split_box_single_block():
    assert split_box(((0, 9),), 1) == [((0, 9),)]


def test_choose_split_axis_widest():
    assert choose_split_axis(((0, 3), (0, 99), (0, 9))) == 1


def test_uneven_split_sizes_balanced():
    blocks = split_box(((0, 9),), 3)
    sizes = [hi - lo + 1 for ((lo, hi),) in blocks]
    assert sorted(sizes) == [3, 3, 4]
    assert max(sizes) - min(sizes) <= 1


# -- parallel gather execution -------------------------------------------------


@pytest.mark.parametrize("threads", [1, 2, 3, 7])
def test_gather_identical_across_thread_counts(any_problem, rng, threads):
    prob, N = any_problem
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    kernel = compile_nests(nests, prob.bindings(N))
    base = prob.allocate(N, rng=rng)
    base.update(prob.allocate_adjoints(N, rng=rng))

    serial = {k: v.copy() for k, v in base.items()}
    kernel(serial)

    parallel = {k: v.copy() for k, v in base.items()}
    with ParallelExecutor(num_threads=threads, min_block_iterations=1) as ex:
        ex.run(kernel, parallel)

    name_map = prob.adjoint_name_map()
    for prim in prob.active_input_names():
        np.testing.assert_array_equal(
            serial[name_map[prim]], parallel[name_map[prim]]
        )


def test_scatter_locked_execution_matches_serial(rng):
    from repro.apps import wave_problem

    prob = wave_problem(2)
    N = 16
    scat = tapenade_style_adjoint(prob.primal, prob.adjoint_map)
    kernel = compile_nests([scat], prob.bindings(N))
    base = prob.allocate(N, rng=rng)
    base.update(prob.allocate_adjoints(N, rng=rng))

    serial = {k: v.copy() for k, v in base.items()}
    kernel(serial)
    parallel = {k: v.copy() for k, v in base.items()}
    with ParallelExecutor(num_threads=4, min_block_iterations=1) as ex:
        ex.run_scatter(kernel, parallel)
    np.testing.assert_allclose(
        serial["u_1_b"], parallel["u_1_b"], rtol=1e-12, atol=1e-13
    )


def _mixed_op_kernel(N: int):
    """A kernel with one '=' and one '+=' statement on the same target.

    Regression case for the scatter-merge bug: the threaded scatter
    discipline used to merge thread-private scratch with ``+=``
    unconditionally, which silently *adds* the '='-statement's values to
    the global array instead of storing them.
    """
    i = sp.Symbol("i", integer=True)
    n = sp.Symbol("n", integer=True)
    u, r = sp.Function("u"), sp.Function("r")
    nest = LoopNest(
        statements=(
            Statement(lhs=r(i), rhs=u(i), op="="),
            Statement(lhs=r(i), rhs=2 * u(i - 1), op="+="),
        ),
        counters=(i,),
        bounds={i: (1, n - 1)},
    )
    return compile_nests([nest], Bindings(sizes={n: N}), cache=False)


def test_scatter_rejects_mixed_assignment_kernel(rng):
    """run_scatter must refuse kernels whose merge would corrupt results."""
    N = 64
    kernel = _mixed_op_kernel(N)
    arrays = {"u": rng.standard_normal(N + 1), "r": rng.standard_normal(N + 1)}
    with ParallelExecutor(num_threads=2, min_block_iterations=1) as ex:
        with pytest.raises(KernelError, match="scatter"):
            ex.run_scatter(kernel, arrays)


def test_scatter_single_thread_runs_mixed_kernel(rng):
    """Serial scatter execution needs no merge, so mixed kernels are fine."""
    N = 64
    kernel = _mixed_op_kernel(N)
    base = {"u": rng.standard_normal(N + 1), "r": rng.standard_normal(N + 1)}
    serial = {k: v.copy() for k, v in base.items()}
    kernel(serial)
    scat = {k: v.copy() for k, v in base.items()}
    with ParallelExecutor(num_threads=1) as ex:
        ex.run_scatter(kernel, scat)
    np.testing.assert_array_equal(serial["r"], scat["r"])


def test_scatter_rejects_read_of_written_array():
    """Reads of a region-written array would observe zeroed scratch."""
    i = sp.Symbol("i", integer=True)
    n = sp.Symbol("n", integer=True)
    u, r = sp.Function("u"), sp.Function("r")
    nest = LoopNest(
        statements=(Statement(lhs=r(i), rhs=r(i - 1) + u(i), op="+="),),
        counters=(i,),
        bounds={i: (1, n - 1)},
    )
    kernel = compile_nests([nest], Bindings(sizes={n: 32}), cache=False)
    arrays = {"u": np.ones(33), "r": np.zeros(33)}
    with ParallelExecutor(num_threads=2, min_block_iterations=1) as ex:
        with pytest.raises(KernelError, match="reads"):
            ex.run_scatter(kernel, arrays)


def test_invalid_thread_count():
    with pytest.raises(ValueError):
        ParallelExecutor(num_threads=0)


def test_small_regions_run_inline(rng):
    """Regions below the blocking threshold execute serially (no futures)."""
    from repro.apps import heat_problem

    prob = heat_problem(1)
    N = 30
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    kernel = compile_nests(nests, prob.bindings(N))
    base = prob.allocate(N, rng=rng)
    base.update(prob.allocate_adjoints(N, rng=rng))
    serial = {k: v.copy() for k, v in base.items()}
    kernel(serial)
    par = {k: v.copy() for k, v in base.items()}
    with ParallelExecutor(num_threads=4, min_block_iterations=10**9) as ex:
        ex.run(kernel, par)
    np.testing.assert_array_equal(serial["u_1_b"], par["u_1_b"])


def test_exceptions_propagate():
    import sympy as sp

    from repro.core import make_loop_nest

    i = sp.Symbol("i", integer=True)
    nsym = sp.Symbol("n", integer=True)
    u, r = sp.Function("u"), sp.Function("r")
    nest = make_loop_nest(
        lhs=r(i), rhs=u(i - 1), counters=[i], bounds={i: [0, nsym]}
    )
    kernel = compile_nests([nest], Bindings(sizes={nsym: 4000}))
    arrays = {"u": np.zeros(4001), "r": np.zeros(4001)}  # u(i-1) at i=0 OOB
    with ParallelExecutor(num_threads=2, min_block_iterations=1) as ex:
        with pytest.raises(Exception):
            ex.run(kernel, arrays)
