"""Tests for the experiment-regeneration module (Figures 8-15 tables)."""

import pytest

from repro.experiments import (
    PAPER,
    burgers_descriptors,
    fig08_wave_broadwell,
    fig09_burgers_broadwell,
    fig10_wave_runtimes_broadwell,
    fig11_burgers_runtimes_broadwell,
    fig12_wave_knl,
    fig13_burgers_knl,
    fig14_wave_runtimes_knl,
    fig15_burgers_runtimes_knl,
    render_all,
    render_bars,
    render_factors,
    render_speedup,
    wave_descriptors,
)

SPEEDUP_FIGS = [
    fig08_wave_broadwell,
    fig09_burgers_broadwell,
    fig12_wave_knl,
    fig13_burgers_knl,
]
BAR_FIGS = [
    fig10_wave_runtimes_broadwell,
    fig11_burgers_runtimes_broadwell,
    fig14_wave_runtimes_knl,
    fig15_burgers_runtimes_knl,
]


@pytest.mark.parametrize("build", SPEEDUP_FIGS)
def test_speedup_series_structure(build):
    fig = build()
    assert set(fig.series) == {"Primal", "Adjoint", "Atomics", "PerforAD", "Ideal"}
    for series in fig.series.values():
        assert len(series) == len(fig.threads)
    # Speedups normalised: every series starts near 1 except Atomics
    # (plotted relative to the serial conventional adjoint) and Ideal.
    assert fig.series["Primal"][0] == pytest.approx(1.0)
    assert fig.series["PerforAD"][0] == pytest.approx(1.0)
    assert fig.series["Ideal"] == tuple(float(p) for p in fig.threads)


@pytest.mark.parametrize("build", SPEEDUP_FIGS)
def test_rows_and_header_consistent(build):
    fig = build()
    rows = fig.rows()
    hdr = fig.header()
    assert len(rows) == len(fig.threads)
    assert len(hdr) == 1 + len(fig.series)
    assert rows[0][0] == fig.threads[0]


@pytest.mark.parametrize("build", BAR_FIGS)
def test_bar_figures_have_all_five_bars(build):
    fig = build()
    assert set(fig.bars) == {
        "Primal Serial",
        "PerforAD Serial",
        "Adjoint Serial",
        "Primal Parallel",
        "PerforAD Parallel",
    }
    for model, paper in fig.bars.values():
        assert model > 0 and paper > 0


def test_paper_constants_complete():
    for key in ("fig10", "fig11", "fig14", "fig15"):
        assert len(PAPER[key]) == 5
    assert PAPER["fig10"]["Primal Serial"] == 4.14
    assert PAPER["fig15"]["Adjoint Serial"] == 95.74
    assert PAPER["factors"]["burgers_knl_best_vs_conventional"] == 125.0


def test_descriptors_at_paper_scale():
    w = wave_descriptors()
    assert w.primal.points == 998**3
    b = burgers_descriptors()
    assert b.primal.points == 10**9 - 2
    assert b.stack.stack_bytes_per_point == 32.0


def test_render_speedup_contains_table():
    text = render_speedup(fig08_wave_broadwell())
    assert "fig08" in text and "threads" in text and "PerforAD" in text
    assert text.count("\n") >= 7


def test_render_bars_contains_ratios():
    text = render_bars(fig10_wave_runtimes_broadwell())
    assert "ratio" in text and "4.14" in text


def test_render_factors_lists_all_cases():
    text = render_factors()
    assert "125.0" in text and "19.0" in text


def test_render_all_covers_every_figure():
    text = render_all()
    for fig in ("fig08", "fig09", "fig10", "fig11", "fig12", "fig13",
                "fig14", "fig15"):
        assert fig in text
