"""Unit tests for the differentiation engine (Section 3.3.1)."""

import sympy as sp
import pytest

from repro.core import make_loop_nest
from repro.core.diff import (
    ActivityError,
    adjoint_scatter_loop,
    adjoint_scatter_statements,
    tangent_loop,
)

i = sp.Symbol("i", integer=True)
n = sp.Symbol("n", integer=True)
u, c, r = sp.Function("u"), sp.Function("c"), sp.Function("r")
u_b, r_b = sp.Function("u_b"), sp.Function("r_b")


def section32_nest():
    expr = c(i) * (2.0 * u(i - 1) - 3.0 * u(i) + 4 * u(i + 1))
    return make_loop_nest(lhs=r(i), rhs=expr, counters=[i], bounds={i: [1, n - 1]})


def test_scatter_statements_match_section32():
    """The three scatter updates of Section 3.2, with exact coefficients."""
    contribs = adjoint_scatter_statements(section32_nest(), {r: r_b, u: u_b})
    assert len(contribs) == 3
    by_offset = {cb.offset: cb.statement for cb in contribs}
    assert set(by_offset) == {(-1,), (0,), (1,)}
    assert sp.expand(by_offset[(-1,)].rhs - 2.0 * c(i) * r_b(i)) == 0
    assert sp.expand(by_offset[(0,)].rhs - (-3.0) * c(i) * r_b(i)) == 0
    assert sp.expand(by_offset[(1,)].rhs - 4 * c(i) * r_b(i)) == 0
    assert all(cb.statement.op == "+=" for cb in contribs)
    assert by_offset[(-1,)].lhs == u_b(i - 1)


def test_passive_arrays_skipped():
    """c is passive: no c_b statements are generated."""
    contribs = adjoint_scatter_statements(section32_nest(), {r: r_b, u: u_b})
    assert all(cb.statement.target_name == "u_b" for cb in contribs)


def test_active_coefficient_generates_adjoint():
    c_b = sp.Function("c_b")
    contribs = adjoint_scatter_statements(
        section32_nest(), {r: r_b, u: u_b, c: c_b}
    )
    targets = {cb.statement.target_name for cb in contribs}
    assert targets == {"u_b", "c_b"}


def test_missing_output_adjoint_raises():
    with pytest.raises(ActivityError):
        adjoint_scatter_statements(section32_nest(), {u: u_b})


def test_zero_partial_dropped():
    # u(i+1) appears with coefficient 0 after simplification.
    expr = u(i - 1) + 0 * u(i + 1)
    nest = make_loop_nest(lhs=r(i), rhs=expr, counters=[i], bounds={i: [1, n - 1]})
    contribs = adjoint_scatter_statements(nest, {r: r_b, u: u_b})
    assert len(contribs) == 1


def test_nonlinear_partial_reads_primal():
    """d(u^2)/du = 2u: the adjoint must read the primal value (Section 3.1)."""
    nest = make_loop_nest(
        lhs=r(i), rhs=u(i - 1) ** 2, counters=[i], bounds={i: [1, n - 1]}
    )
    (contrib,) = adjoint_scatter_statements(nest, {r: r_b, u: u_b})
    assert sp.expand(contrib.statement.rhs - 2 * u(i - 1) * r_b(i)) == 0


def test_minmax_yields_heaviside():
    """Upwinding derivatives are piecewise: Heaviside factors (Section 4.2)."""
    nest = make_loop_nest(
        lhs=r(i), rhs=sp.Max(u(i), 0) * u(i), counters=[i], bounds={i: [1, n - 1]}
    )
    (contrib,) = adjoint_scatter_statements(nest, {r: r_b, u: u_b})
    assert contrib.statement.rhs.atoms(sp.Heaviside)


def test_uninterpreted_function_derivative():
    """Large bodies can use uninterpreted f; partials stay symbolic calls."""
    f = sp.Function("f")
    nest = make_loop_nest(
        lhs=r(i), rhs=f(u(i - 1), u(i)), counters=[i], bounds={i: [1, n - 1]}
    )
    contribs = adjoint_scatter_statements(nest, {r: r_b, u: u_b})
    assert len(contribs) == 2
    for cb in contribs:
        assert cb.statement.rhs.atoms(sp.Subs) or cb.statement.rhs.atoms(sp.Derivative)


def test_scatter_loop_keeps_primal_bounds():
    nest = section32_nest()
    scat = adjoint_scatter_loop(nest, {r: r_b, u: u_b})
    assert scat.bounds[i] == nest.bounds[i]
    assert len(scat.statements) == 3


def test_multi_statement_reverse_order():
    """Reverse-mode AD differentiates body statements in reverse order."""
    from repro.core import LoopNest, Statement

    s, t = sp.Function("s"), sp.Function("t")
    nest = LoopNest(
        statements=(
            Statement(lhs=s(i), rhs=u(i - 1), op="+="),
            Statement(lhs=t(i), rhs=u(i + 1), op="+="),
        ),
        counters=(i,),
        bounds={i: (1, n - 1)},
    )
    contribs = adjoint_scatter_statements(
        nest, {s: sp.Function("s_b"), t: sp.Function("t_b"), u: u_b}
    )
    # t's contribution (last primal statement) comes first.
    assert contribs[0].statement.rhs.atoms(sp.Function("t_b")(i))


def test_tangent_structure():
    tan = tangent_loop(section32_nest(), {r: sp.Function("r_d"), u: sp.Function("u_d")})
    assert len(tan.statements) == 1
    st = tan.statements[0]
    assert st.target_name == "r_d"
    # Tangent gathers from the same offsets as the primal.
    u_d = sp.Function("u_d")
    assert u_d(i - 1) in st.rhs.atoms(sp.core.function.AppliedUndef)


def test_tangent_missing_output_raises():
    with pytest.raises(ActivityError):
        tangent_loop(section32_nest(), {u: sp.Function("u_d")})
