"""Chaos suite: the graceful-degradation contract, fault point by fault point.

Three layers:

* the **registry contract** — every fault point declared in
  :mod:`repro.runtime.faults` has a covering chaos scenario
  (:mod:`repro.verify.chaos`), and each scenario passes: bitwise-identical
  fallback for ``contract="fallback"`` points, one typed
  :class:`~repro.errors.ReproError` subclass with intact/restored user
  arrays for ``contract="typed-error"`` points;
* **end-to-end compiler hardening** with stub ``REPRO_CC`` compilers
  (a hanging compiler, a flaky signal-killed one, a missing one) — the
  real subprocess ladder, not the injector;
* **regression tests** for the satellite behaviours: scheduler
  cancellation, ``.so`` cache corruption self-healing across all four
  native consumers, the NaN watchdog, transactional runs, untrusted-spec
  resource caps, CLI exit codes and thread-safe one-shot warnings.
"""

from __future__ import annotations

import os
import stat
import threading
import warnings

import numpy as np
import pytest

from repro import cli
from repro.apps import heat_problem
from repro.core import adjoint_loops
from repro.core.validate import SpecLimits
from repro.errors import (
    CheckpointError,
    EnsembleBindError,
    KernelError,
    NativeBuildError,
    NumericalDivergenceError,
    ReproError,
    SchedulerError,
    ValidationError,
)
from repro.frontend.parser import parse_stencil, parse_stencils
from repro.runtime import (
    ExecutionConfig,
    clear_kernel_cache,
    compile_nests,
    faults,
    native_available,
    stack_arrays,
)
from repro.runtime import native as native_mod
from repro.runtime.cache import native_cache_dir
from repro.runtime.scheduler import WorkStealingScheduler
from repro.verify.chaos import ChaosResult, _fresh_case, chaos_scenarios, run_chaos

N = 12


def _reference(kernel, base):
    ref = {k: v.copy() for k, v in base.items()}
    kernel(ref)
    return ref


def _assert_bitwise(ref, got):
    bad = sorted(k for k in ref if not np.array_equal(ref[k], got[k]))
    assert not bad, f"results diverged on {bad}"


# -- the chaos suite over the registry ----------------------------------------


def test_every_registered_point_has_a_scenario():
    registered = {p.name for p in faults.registered_fault_points()}
    covered = set(chaos_scenarios())
    assert covered == registered


@pytest.mark.parametrize(
    "point", sorted(p.name for p in faults.registered_fault_points())
)
def test_chaos_scenario(point):
    """Each fault point satisfies its declared degradation contract."""
    detail = chaos_scenarios()[point]()
    assert isinstance(detail, str) and detail


def test_run_chaos_reports_every_point():
    results = run_chaos()
    assert [r.point for r in results] == [
        p.name for p in faults.registered_fault_points()
    ]
    assert all(isinstance(r, ChaosResult) for r in results)
    assert faults.active_injector() is None  # never leaks an injector


# -- injector mechanics -------------------------------------------------------


def test_check_is_noop_without_injector():
    assert faults.active_injector() is None
    faults.check("bound.run")  # must not raise


def test_inject_scripted_skip_and_times():
    hits = []
    with faults.inject("bound.run", times=2, skip=1) as inj:
        for _ in range(5):
            try:
                faults.check("bound.run")
                hits.append("ok")
            except RuntimeError:
                hits.append("boom")
    assert hits == ["ok", "boom", "boom", "ok", "ok"]
    assert inj.hits("bound.run") == 5
    assert inj.fired("bound.run") == 2


def test_inject_custom_exception_and_nesting():
    with faults.inject("scheduler.task", exc=OSError("outer")) as outer:
        with faults.inject("bound.run") as inner:
            assert inner is outer  # nested scopes share one injector
            with pytest.raises(RuntimeError):
                faults.check("bound.run")
        faults.check("bound.run")  # inner disarmed on exit
        with pytest.raises(OSError, match="outer"):
            faults.check("scheduler.task")
    assert faults.active_injector() is None


def test_unregistered_names_are_rejected():
    with pytest.raises(KeyError):
        faults.FaultInjector().arm("no.such.point")
    with faults.inject("bound.run"):
        with pytest.raises(LookupError, match="unregistered"):
            faults.check("no.such.point")


def test_random_mode_is_seeded_and_deterministic():
    def firing_pattern():
        inj = faults.activate(faults.FaultInjector(seed=7, rate=0.5))
        try:
            pattern = []
            for _ in range(32):
                try:
                    faults.check("bound.run")
                    pattern.append(0)
                except RuntimeError:
                    pattern.append(1)
            return pattern, inj.fired("bound.run")
        finally:
            faults.deactivate()

    first, fired = firing_pattern()
    assert firing_pattern() == (first, fired)
    assert 0 < fired < 32  # rate=0.5 actually fires, but not always


def test_injector_rejects_bad_rate():
    with pytest.raises(ValueError):
        faults.FaultInjector(rate=1.5)


# -- compiler hardening, end to end with stub compilers -----------------------


def _stub_cc(tmp_path, name, body):
    script = tmp_path / name
    script.write_text("#!/bin/sh\n" + body)
    script.chmod(script.stat().st_mode | stat.S_IXUSR)
    return str(script)


@pytest.fixture
def fresh_native(tmp_path, monkeypatch):
    """Isolated native state: private cache dir, cleared memos."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    with native_mod._toolchain_lock:
        native_mod._toolchain_memo.clear()
    native_mod._reset_warnings()
    yield tmp_path
    with native_mod._toolchain_lock:
        native_mod._toolchain_memo.clear()
    native_mod._reset_warnings()


def test_missing_compiler_falls_back_with_cache_path(fresh_native, monkeypatch):
    monkeypatch.setenv("REPRO_CC", str(fresh_native / "no-such-cc"))
    kernel, base = _fresh_case()
    ref = _reference(kernel, base)
    got = {k: v.copy() for k, v in base.items()}
    with pytest.warns(RuntimeWarning, match="no C compiler"):
        plan = kernel.plan(backend="native")
        try:
            plan.bind(got).run()
        finally:
            plan.close()
    _assert_bitwise(ref, got)


def test_hung_compiler_times_out_and_falls_back(fresh_native, monkeypatch):
    cc = _stub_cc(
        fresh_native,
        "hang-cc",
        'case "$1" in --version) echo hang-cc-1.0; exit 0;; esac\nsleep 30\n',
    )
    monkeypatch.setenv("REPRO_CC", cc)
    monkeypatch.setenv("REPRO_CC_TIMEOUT", "0.3")
    kernel, base = _fresh_case()
    ref = _reference(kernel, base)
    got = {k: v.copy() for k, v in base.items()}
    with pytest.warns(RuntimeWarning, match="timed out") as rec:
        plan = kernel.plan(backend="native")
        try:
            plan.bind(got).run()
        finally:
            plan.close()
    _assert_bitwise(ref, got)
    # The fallback warning points operators at the cache directory.
    assert any(str(native_cache_dir()) in str(w.message) for w in rec)


@pytest.mark.skipif(not native_available(), reason="needs a real C compiler")
def test_flaky_compiler_is_retried_and_recovers(fresh_native, monkeypatch):
    """A signal-killed compiler is transient: one retry, native path wins."""
    real_cc = native_mod.native_toolchain()
    marker = fresh_native / "flaked"
    cc = _stub_cc(
        fresh_native,
        "flaky-cc",
        f'case "$1" in --version) echo flaky-cc-1.0; exit 0;; esac\n'
        f'if [ ! -e "{marker}" ]; then touch "{marker}"; kill -9 $$; fi\n'
        f'exec "{real_cc}" "$@"\n',
    )
    with native_mod._toolchain_lock:
        native_mod._toolchain_memo.clear()
    monkeypatch.setenv("REPRO_CC", cc)
    monkeypatch.setenv("REPRO_CC_BACKOFF", "0")
    kernel, base = _fresh_case()
    ref = _reference(kernel, base)
    got = {k: v.copy() for k, v in base.items()}
    plan = kernel.plan(backend="native")
    try:
        plan.bind(got).run()
    finally:
        plan.close()
    assert marker.exists()  # the stub really was killed once
    assert kernel._native[1] is not None  # and the retry recovered native
    _assert_bitwise(ref, got)


def test_deterministic_compile_failure_is_not_retried(fresh_native, monkeypatch):
    """Nonzero exit = the source does not compile; exactly one attempt."""
    count = fresh_native / "attempts"
    cc = _stub_cc(
        fresh_native,
        "broken-cc",
        f'case "$1" in --version) echo broken-cc-1.0; exit 0;; esac\n'
        f'echo attempt >> "{count}"\n'
        "echo 'fatal error: no' >&2\nexit 1\n",
    )
    monkeypatch.setenv("REPRO_CC", cc)
    monkeypatch.setenv("REPRO_CC_BACKOFF", "0")
    kernel, base = _fresh_case()
    ref = _reference(kernel, base)
    got = {k: v.copy() for k, v in base.items()}
    with pytest.warns(RuntimeWarning, match="falling back"):
        plan = kernel.plan(backend="native")
        try:
            plan.bind(got).run()
        finally:
            plan.close()
    _assert_bitwise(ref, got)
    assert count.read_text().count("attempt") == 1


def test_cc_limit_knobs_fall_back_on_invalid_values(monkeypatch):
    monkeypatch.setenv("REPRO_CC_TIMEOUT", "not-a-number")
    monkeypatch.setenv("REPRO_CC_RETRIES", "-3")
    monkeypatch.setenv("REPRO_CC_BACKOFF", "0.25")
    timeout, retries, backoff = native_mod._cc_limits()
    assert timeout == 300.0  # unparsable -> default
    assert retries == 2  # negative -> default
    assert backoff == 0.25  # valid values win


def test_warn_once_is_thread_safe():
    native_mod._reset_warnings()
    try:
        with warnings.catch_warnings(record=True) as rec:
            warnings.simplefilter("always")
            threads = [
                threading.Thread(
                    target=native_mod._warn_once, args=("race-key", "only once")
                )
                for _ in range(16)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(rec) == 1
    finally:
        native_mod._reset_warnings()


# -- .so cache corruption self-heals for every native consumer ----------------


def _corrupt_cache_and_reset():
    so_files = sorted(native_cache_dir().glob("*.so"))
    assert so_files, "warm phase left no cached objects"
    for path in so_files:
        # Replace, don't rewrite in place: libraries loaded by the warm
        # phase stay mapped in this process, and truncating their inode
        # under them would SIGBUS the interpreter rather than simulate
        # a corrupt entry found on disk.
        garbage = path.with_suffix(".corrupt")
        garbage.write_bytes(b"\x7fNOT-AN-ELF garbage " * 8)
        os.replace(garbage, path)
    with native_mod._lib_lock:
        native_mod._lib_memo.clear()
    clear_kernel_cache()


@pytest.mark.skipif(not native_available(), reason="needs a real C compiler")
@pytest.mark.parametrize("consumer", ["bound", "fused", "ensemble", "checkpoint"])
def test_so_cache_corruption_self_heals(consumer, fresh_native):
    """Every native consumer recovers a corrupt cache entry transparently.

    A garbage ``.so`` under the content-keyed path makes ``dlopen``
    fail; the runtime unlinks and rebuilds it once, so the very next
    bind works natively and bitwise-identically — for plain bound
    plans, fused plans, ensembles and checkpointed adjoints alike.
    """
    prob = heat_problem(1)
    nests = adjoint_loops(prob.primal, prob.adjoint_map)

    def fresh_kernel():
        return compile_nests(nests, prob.bindings(N), name="heal", cache=False)

    fusion = "auto" if consumer == "fused" else "off"

    if consumer in ("bound", "fused"):
        rng = np.random.default_rng(0)
        base = prob.allocate(N, rng=rng)
        base.update(prob.allocate_adjoints(N, rng=rng))
        ref = _reference(fresh_kernel(), base)

        def drive():
            kernel = fresh_kernel()
            got = {k: v.copy() for k, v in base.items()}
            plan = kernel.plan(backend="native", fusion=fusion)
            try:
                plan.bind(got).run()
            finally:
                plan.close()
            return kernel, got

        drive()  # warm: populates the cache
        _corrupt_cache_and_reset()
        kernel, got = drive()
        assert kernel._native[1] is not None
        _assert_bitwise(ref, got)
    elif consumer == "ensemble":
        states = [prob.allocate_state(N, seed=m) for m in range(2)]
        refs = []
        for st in states:
            ref = {k: v.copy() for k, v in st.items()}
            fresh_kernel()(ref)
            refs.append(ref)

        def drive():
            kernel = fresh_kernel()
            ens = kernel.plan(backend="native").ensemble(
                stack_arrays(states)
            )
            with ens:
                ens.run()
                out = [
                    {k: v.copy() for k, v in ens.member_arrays(m).items()}
                    for m in range(2)
                ]
            return kernel, out

        drive()
        _corrupt_cache_and_reset()
        kernel, out = drive()
        assert kernel._native[1] is not None
        for ref, got in zip(refs, out):
            _assert_bitwise(ref, got)
    else:  # checkpoint
        u0 = prob.allocate_state(N, seed=0)["u_1"]
        seed = prob.allocate_adjoints(N)["u_b"]
        with prob.checkpointed_adjoint(N, steps=4, snaps=2) as py_plan:
            ref = {
                k: v.copy() for k, v in py_plan.adjoint([u0], seed).items()
            }

        def drive():
            with prob.checkpointed_adjoint(
                N, steps=4, snaps=2, backend="native"
            ) as plan:
                return {
                    k: v.copy() for k, v in plan.adjoint([u0], seed).items()
                }

        drive()
        _corrupt_cache_and_reset()
        _assert_bitwise(ref, drive())


# -- scheduler cancellation ---------------------------------------------------


def test_scheduler_cancels_queued_tasks_after_failure():
    """Satellite regression: one worker makes cancellation deterministic."""
    ran = []

    def boom():
        raise ValueError("task 0 failed")

    with WorkStealingScheduler(1) as sched:
        tasks = [boom] + [lambda i=i: ran.append(i) for i in range(1, 4)]
        with pytest.raises(SchedulerError, match="task 0 failed"):
            sched.run(tasks)
        assert ran == []  # everything queued behind the failure was dropped
        assert sched.last_cancelled == 3
        sched.run([lambda: ran.append("ok")])  # scheduler survives
        assert ran == ["ok"]
        assert sched.last_cancelled == 0  # a clean batch resets the count


def test_scheduler_first_failure_accounting_under_contention():
    """Satellite: steal-victim selection snapshots lengths under the lock.

    With four workers all stealing from each other, whichever
    interleaving the OS produces, first-failure cancellation must
    account for every task exactly once: tasks that ran plus tasks
    cancelled equals the batch size minus the failing task — no task
    double-popped by racing thieves, none lost.
    """
    with WorkStealingScheduler(4) as sched:
        for _ in range(20):
            ran = []

            def boom():
                raise ValueError("first failure")

            tasks = [boom] + [lambda: ran.append(1) for _ in range(63)]
            with pytest.raises(SchedulerError, match="cancelled"):
                sched.run(tasks)
            assert len(ran) + sched.last_cancelled == 63
        done = []
        sched.run([lambda: done.append("ok")])  # still usable afterwards
        assert done == ["ok"]


def test_scheduler_passes_typed_errors_through_unchanged():
    with WorkStealingScheduler(1) as sched:

        def diverge():
            raise NumericalDivergenceError("nan at step 3", step=3)

        with pytest.raises(NumericalDivergenceError) as excinfo:
            sched.run([diverge])
        assert excinfo.value.step == 3


# -- divergence watchdog and transactional runs -------------------------------


def test_execution_config_rejects_unknown_check_mode():
    with pytest.raises(ValueError, match="check"):
        ExecutionConfig(check="inf")


def test_nan_watchdog_reports_step_and_statement():
    kernel, base = _fresh_case()
    arrays = {k: v.copy() for k, v in base.items()}
    plan = kernel.plan(check="nan")
    try:
        bound = plan.bind(arrays)
        bound.run()  # finite state: no report
        for arr in arrays.values():
            arr.flat[arr.size // 2] = np.nan
        with pytest.raises(NumericalDivergenceError) as excinfo:
            bound.run()
    finally:
        plan.close()
    err = excinfo.value
    assert err.step == 2  # second run of this binding
    assert err.statement is not None
    assert "index" in str(err) and str(err.step) in str(err)
    assert isinstance(err, FloatingPointError)  # historic base preserved


def test_watchdog_off_by_default():
    kernel, base = _fresh_case()
    arrays = {k: v.copy() for k, v in base.items()}
    for arr in arrays.values():
        arr.flat[0] = np.nan
    plan = kernel.plan()
    try:
        plan.bind(arrays).run()  # silently propagates NaN, as NumPy does
    finally:
        plan.close()


def test_transactional_run_restores_arrays_and_types_error():
    kernel, base = _fresh_case()
    got = {k: v.copy() for k, v in base.items()}
    plan = kernel.plan(transactional=True)
    try:
        bound = plan.bind(got)
        with faults.inject("bound.run", skip=2, exc=ValueError("mid-run")):
            with pytest.raises(KernelError, match="restored"):
                bound.run()
        _assert_bitwise(base, got)  # rolled back to the pre-call state
        bound.run()
        _assert_bitwise(_reference(kernel, base), got)
    finally:
        plan.close()


# -- untrusted-spec resource caps ---------------------------------------------

_GOOD_SRC = """
stencil ok {
  iterate i = 1 .. n-2
  u[i] += v[i-1] + v[i+1]
}
"""


def test_untrusted_caps_are_on_by_default():
    deep = "(" * 300 + "v[i-1]" + ")" * 300
    src = f"stencil deep {{\n  iterate i = 1 .. n-2\n  u[i] += {deep}\n}}\n"
    with pytest.raises(ValidationError, match="nesting exceeds"):
        parse_stencil(src)


def test_trusted_parse_skips_resource_caps():
    # Tight custom caps reject the good spec; limits=None trusts it.
    with pytest.raises(ValidationError, match="expression nodes"):
        parse_stencil(_GOOD_SRC, limits=SpecLimits(max_expr_nodes=2))
    nest = parse_stencil(_GOOD_SRC, limits=None)
    assert nest.name == "ok"


def test_source_size_cap():
    src = _GOOD_SRC + "#" + " " * (1 << 20)
    with pytest.raises(ValidationError, match="bytes"):
        parse_stencils(src)


def test_statement_count_cap():
    with pytest.raises(ValidationError, match="statements"):
        parse_stencil(_GOOD_SRC, limits=SpecLimits(max_statements=0))


def test_loop_extent_cap():
    src = "stencil huge {\n  iterate i = 0 .. 8589934593\n  u[i] += v[i]\n}\n"
    with pytest.raises(ValidationError, match="iterations"):
        parse_stencil(src)
    assert parse_stencil(src, limits=None).name == "huge"


# -- CLI exit codes -----------------------------------------------------------


def test_cli_exit_code_mapping():
    assert cli.exit_code_for(ValidationError("x")) == cli.EXIT_VALIDATION == 3
    assert cli.exit_code_for(NativeBuildError("x")) == cli.EXIT_BUILD == 4
    assert (
        cli.exit_code_for(NumericalDivergenceError("x"))
        == cli.EXIT_DIVERGENCE
        == 5
    )
    assert cli.exit_code_for(KernelError("x")) == cli.EXIT_ERROR == 1
    assert cli.exit_code_for(CheckpointError("x")) == 1
    assert cli.exit_code_for(EnsembleBindError("x")) == 1
    assert cli.exit_code_for(SchedulerError("x")) == 1


def test_cli_validation_error_exits_3(tmp_path, capsys):
    bad = tmp_path / "bad.stencil"
    bad.write_text("this is not a stencil\n")
    assert cli.main(["generate", "--file", str(bad)]) == 3
    assert "error:" in capsys.readouterr().err


@pytest.mark.parametrize(
    "exc, code",
    [
        (NativeBuildError("cc exploded"), 4),
        (NumericalDivergenceError("nan"), 5),
        (KernelError("other"), 1),
        (ReproError("generic"), 1),
    ],
)
def test_cli_typed_errors_map_to_exit_codes(monkeypatch, capsys, exc, code):
    def blow_up(args):
        raise exc

    monkeypatch.setattr(cli, "_cmd_loop_counts", blow_up)
    assert cli.main(["loop-counts"]) == code
    assert str(exc) in capsys.readouterr().err


def test_cli_verify_requires_problem_or_chaos(capsys):
    assert cli.main(["verify"]) == 2
    assert "--chaos" in capsys.readouterr().err
