"""Unit tests for the Section 3.4 restriction checker."""

import sympy as sp
import pytest

from repro.core import LoopNest, Statement, StencilRestrictionError, make_loop_nest
from repro.core.validate import validate_loop_nest

i, j = sp.symbols("i j", integer=True)
n, m = sp.symbols("n m", integer=True)
u, r = sp.Function("u"), sp.Function("r")


def test_valid_nest_passes():
    make_loop_nest(lhs=r(i), rhs=u(i - 1), counters=[i], bounds={i: [1, n - 1]})


def test_output_offset_rejected():
    """Outputs must be written at bare loop counters."""
    with pytest.raises(StencilRestrictionError):
        make_loop_nest(lhs=r(i + 1), rhs=u(i), counters=[i], bounds={i: [1, n - 1]})


def test_read_write_overlap_rejected():
    """No array may be both read and written (Section 3.4)."""
    with pytest.raises(StencilRestrictionError):
        make_loop_nest(lhs=u(i), rhs=u(i - 1), counters=[i], bounds={i: [1, n - 1]})


def test_cross_statement_read_write_overlap_rejected():
    nest = LoopNest(
        statements=(
            Statement(lhs=r(i), rhs=u(i - 1)),
            Statement(lhs=u(i), rhs=r(i)),  # writes u, which stmt 1 reads
        ),
        counters=(i,),
        bounds={i: (1, n - 1)},
    )
    with pytest.raises(StencilRestrictionError):
        validate_loop_nest(nest)


def test_nonaffine_bound_rejected():
    with pytest.raises(StencilRestrictionError):
        make_loop_nest(lhs=r(i), rhs=u(i), counters=[i], bounds={i: [1, n * n]})


def test_bound_with_two_sizes_allowed():
    make_loop_nest(lhs=r(i), rhs=u(i), counters=[i], bounds={i: [1, n + m - 2]})


def test_counter_dependent_bound_rejected():
    with pytest.raises(StencilRestrictionError):
        make_loop_nest(
            lhs=r(i, j),
            rhs=u(i, j),
            counters=[i, j],
            bounds={i: [1, n - 1], j: [1, i]},  # triangular space
        )


def test_nonconstant_offset_rejected():
    with pytest.raises(StencilRestrictionError):
        make_loop_nest(lhs=r(i), rhs=u(2 * i), counters=[i], bounds={i: [1, n - 1]})


def test_duplicate_counters_rejected():
    nest = LoopNest(
        statements=(Statement(lhs=r(i), rhs=u(i - 1)),),
        counters=(i, i),
        bounds={i: (1, n - 1)},
    )
    with pytest.raises(StencilRestrictionError):
        validate_loop_nest(nest)


def test_permuted_output_counters_allowed():
    """r[i_1][i_3][i_2]-style permuted writes are allowed (Section 3.4)."""
    k = sp.Symbol("k", integer=True)
    make_loop_nest(
        lhs=r(i, k, j),
        rhs=u(i + 1, j - 1, k),
        counters=[i, j, k],
        bounds={i: [1, n - 2], j: [1, n - 2], k: [1, n - 2]},
    )


def test_reduction_output_subset_allowed():
    make_loop_nest(
        lhs=r(i),
        rhs=u(i, j),
        counters=[i, j],
        bounds={i: [1, n - 2], j: [1, n - 2]},
        op="+=",
    )


def test_uninterpreted_function_body_allowed():
    f = sp.Function("f")
    make_loop_nest(
        lhs=r(i), rhs=f(u(i - 1), u(i)), counters=[i], bounds={i: [1, n - 1]}
    )
