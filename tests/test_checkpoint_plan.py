"""Checkpointed adjoint runtime: bitwise identity, memory, allocations.

The contract of :class:`repro.runtime.checkpoint.CheckpointedAdjointPlan`:

* adjoints are **bitwise identical** to :meth:`run_store_all` — and to
  an independent, unbound-kernel store-all reference — across
  heat/wave/burgers, python/native backends, f64/f32 and snapshot
  counts (the reverse sweep consumes the same primal states by
  construction);
* steady-state sweeps (after the recording warm-up) perform **zero
  array allocations**;
* the forward evaluation count per sweep equals the revolve optimum
  ``optimal_cost(steps, snaps) - steps`` exactly, and snapshot memory
  is ``snaps / steps`` of the store-all state bytes;
* with ``members``, one schedule runs the whole ensemble, each member
  bitwise identical to its single-scenario checkpointed run.
"""

import tracemalloc

import numpy as np
import pytest

from repro.apps import burgers_problem, heat_problem, wave_problem
from repro.core import adjoint_loops
from repro.driver import optimal_cost
from repro.experiments.steady import bitwise_equal as _bitwise
from repro.runtime import (
    KernelError,
    SnapshotPool,
    compile_nests,
    native_available,
)

PROBLEMS = {
    "heat1d": (lambda: heat_problem(1), 16),
    "heat2d": (lambda: heat_problem(2), 12),
    "wave1d": (lambda: wave_problem(1), 16),
    "wave2d": (lambda: wave_problem(2), 10),
    "burgers1d": (lambda: burgers_problem(1), 20),
}

BACKENDS = ["python"] + (["native"] if native_available() else [])


def _inputs(prob, n, dtype=np.float64, seed_offset=0):
    shape = prob.array_shape(n)
    rng = np.random.default_rng(11 + seed_offset)
    state0 = [
        (rng.standard_normal(shape) * 0.1).astype(dtype)
        for _ in prob.history_fields()
    ]
    seed = rng.standard_normal(shape).astype(dtype)
    constants = {
        name: (rng.standard_normal(shape) * 0.1).astype(dtype)
        for name in prob.constant_fields()
    }
    return state0, seed, constants


def _reference_store_all(prob, n, steps, state0, seed, constants, dtype):
    """Store-all adjoint via unbound kernel calls — independent of the
    checkpoint runtime's buffers, bindings and schedule execution."""
    shape = prob.array_shape(n)
    bindings = prob.bindings(n, dtype=dtype)
    fwd = compile_nests([prob.primal], bindings)
    adj = compile_nests(adjoint_loops(prob.primal, prob.adjoint_map), bindings)
    history = prob.history_fields()
    name_map = prob.adjoint_name_map()
    h = len(history)

    states = [tuple(arr.copy() for arr in state0)]
    for _ in range(steps):
        arrays = {prob.output_name: np.zeros(shape, dtype=dtype), **constants}
        arrays.update(
            {history[k]: states[-1][k] for k in range(h)}
        )
        fwd(arrays)
        states.append((arrays[prob.output_name], *states[-1][:h - 1]))

    lam = [seed.copy()] + [np.zeros(shape, dtype=dtype) for _ in range(h - 1)]
    const_adj = {
        name_map[c]: np.zeros(shape, dtype=dtype)
        for c in prob.constant_fields()
        if c in name_map
    }
    for t in reversed(range(steps)):
        arrays = {
            name_map[prob.output_name]: lam[0].copy(),
            **{history[k]: states[t][k] for k in range(h)},
            **{
                name_map[history[k]]: (
                    lam[k + 1].copy() if k + 1 < h else np.zeros(shape, dtype=dtype)
                )
                for k in range(h)
            },
            **constants,
            **const_adj,
        }
        adj(arrays)
        lam = [arrays[name_map[history[k]]] for k in range(h)]
    out = {name_map[history[k]]: lam[k] for k in range(h)}
    out.update(const_adj)
    return out


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("dtype", [np.float64, np.float32], ids=["f64", "f32"])
@pytest.mark.parametrize("label", sorted(PROBLEMS))
def test_checkpointed_bitwise_identical_to_store_all(label, backend, dtype):
    factory, n = PROBLEMS[label]
    prob = factory()
    steps, snaps = 9, 3
    state0, seed, constants = _inputs(prob, n, dtype)
    plan = prob.checkpointed_adjoint(
        n, steps=steps, snaps=snaps, dtype=dtype, backend=backend,
        constants=constants,
    )
    ref = {k: v.copy() for k, v in plan.run_store_all(state0, seed).items()}
    out = plan.adjoint(state0, seed)
    assert sorted(out) == sorted(ref)
    for k in ref:
        assert _bitwise(out[k], ref[k]), f"{k} diverged from store-all"

    indep = _reference_store_all(prob, n, steps, state0, seed, constants, dtype)
    for k in indep:
        assert _bitwise(out[k], indep[k]), (
            f"{k} diverged from the independent unbound reference"
        )


@pytest.mark.parametrize("snaps", [1, 2, 4, 9])
def test_snapshot_counts_change_cost_not_bits(snaps):
    prob = burgers_problem(1)
    n, steps = 20, 9
    plan = prob.checkpointed_adjoint(n, steps=steps, snaps=snaps)
    state0, seed, _ = _inputs(prob, n)
    ref = {k: v.copy() for k, v in plan.run_store_all(state0, seed).items()}
    out = plan.adjoint(state0, seed)
    for k in ref:
        assert _bitwise(out[k], ref[k])
    assert plan.forward_steps == optimal_cost(steps, snaps) - steps
    assert plan.snapshot_bytes == snaps * (n + 1) * 8
    assert plan.store_all_bytes == steps * (n + 1) * 8


def test_steady_state_sweeps_allocate_no_arrays():
    """Post-warm-up adjoint sweeps must not allocate NumPy arrays."""
    prob = heat_problem(1)
    n = 2000  # one state array is 16 KB: any array allocation is visible
    plan = prob.checkpointed_adjoint(n, steps=8, snaps=3)
    state0, seed, _ = _inputs(prob, n)
    plan.adjoint(state0, seed)  # records the slot tapes
    plan.adjoint(state0, seed)  # steady state reached

    tracemalloc.start()
    tracemalloc.reset_peak()
    before = tracemalloc.get_traced_memory()[0]
    for _ in range(3):
        plan.adjoint(state0, seed)
    current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    state_bytes = (n + 1) * 8
    assert current - before <= 256, "steady-state sweep retained memory"
    assert peak - before < state_bytes, (
        f"steady-state sweep transiently allocated {peak - before} bytes "
        f"(>= one {state_bytes}-byte state array)"
    )


def test_result_buffers_are_stable_objects():
    """adjoint() returns the plan's persistent buffers every call."""
    prob = heat_problem(1)
    plan = prob.checkpointed_adjoint(12, steps=5, snaps=2)
    state0, seed, _ = _inputs(prob, 12)
    first = plan.adjoint(state0, seed)
    second = plan.adjoint(state0, seed)
    assert all(first[k] is second[k] for k in first)


def test_wave_constant_gradient_accumulates_once_per_step():
    """The velocity-model gradient matches store-all despite recompute:
    reverse runs exactly once per step, so `c_b` accumulates exactly
    once per step even though forward steps replay."""
    prob = wave_problem(1)
    n, steps = 16, 11
    shape = prob.array_shape(n)
    rng = np.random.default_rng(2)
    c = rng.standard_normal(shape) * 0.1
    plan = prob.checkpointed_adjoint(n, steps=steps, snaps=2, constants={"c": c})
    state0, seed, _ = _inputs(prob, n)
    ref = {k: v.copy() for k, v in plan.run_store_all(state0, seed).items()}
    out = plan.adjoint(state0, seed)
    assert _bitwise(out["c_b"], ref["c_b"])
    assert float(np.abs(out["c_b"]).max()) > 0.0


def test_run_forward_matches_manual_loop():
    prob = heat_problem(1)
    n, steps = 16, 6
    shape = prob.array_shape(n)
    plan = prob.checkpointed_adjoint(n, steps=steps, snaps=2)
    state0, _, _ = _inputs(prob, n)
    (final,) = plan.run_forward(state0)
    fwd = compile_nests([prob.primal], prob.bindings(n))
    u = state0[0].copy()
    for _ in range(steps):
        arrays = {"u": np.zeros(shape), "u_1": u}
        fwd(arrays)
        u = arrays["u"]
    np.testing.assert_array_equal(final, u)


def test_checkpointed_gradient_verified_by_finite_differences():
    prob = burgers_problem(1)
    n, steps = 24, 7
    shape = prob.array_shape(n)
    plan = prob.checkpointed_adjoint(n, steps=steps, snaps=3)
    rng = np.random.default_rng(9)
    u0 = rng.standard_normal(shape) * 0.1

    def J(u_init):
        (final,) = plan.run_forward([u_init])
        return 0.5 * float(np.sum(final**2))

    (final,) = plan.run_forward([u0])
    grad = plan.adjoint([u0], final)["u_1_b"].copy()
    v = rng.standard_normal(shape)
    h = 1e-7
    fd = (J(u0 + h * v) - J(u0 - h * v)) / (2 * h)
    ad = float(np.vdot(grad, v))
    assert abs(fd - ad) / max(abs(fd), 1e-30) < 1e-6


# -- ensemble mode ---------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_ensemble_members_bitwise_equal_singles(backend):
    prob = burgers_problem(1)
    n, steps, snaps, members = 16, 7, 3, 3
    shape = prob.array_shape(n)
    cases = []
    for m in range(members):
        rng = np.random.default_rng(50 + m)
        cases.append(
            (rng.standard_normal(shape) * 0.1, rng.standard_normal(shape))
        )
    ens = prob.checkpointed_adjoint(
        n, steps=steps, snaps=snaps, backend=backend, members=members
    )
    out = ens.adjoint(
        [np.stack([u0 for u0, _ in cases])], np.stack([s for _, s in cases])
    )
    assert out["u_1_b"].shape == (members, *shape)
    for m, (u0, seed) in enumerate(cases):
        single = prob.checkpointed_adjoint(
            n, steps=steps, snaps=snaps, backend=backend
        )
        ref = single.adjoint([u0], seed)
        assert _bitwise(out["u_1_b"][m], ref["u_1_b"]), f"member {m} diverged"


def test_ensemble_workers_do_not_change_bits():
    prob = heat_problem(1)
    n, steps, members = 14, 6, 8
    shape = prob.array_shape(n)
    rng = np.random.default_rng(4)
    u0 = rng.standard_normal((members, *shape)) * 0.1
    seed = rng.standard_normal((members, *shape))
    fused = prob.checkpointed_adjoint(n, steps=steps, snaps=2, members=members)
    ref = {k: v.copy() for k, v in fused.adjoint([u0], seed).items()}
    with prob.checkpointed_adjoint(
        n, steps=steps, snaps=2, members=members, workers=3
    ) as threaded:
        out = threaded.adjoint([u0], seed)
        for k in ref:
            assert _bitwise(out[k], ref[k])


def test_ensemble_bindings_share_one_scheduler():
    """All parity bindings run on one plan-owned worker pool; none of
    them spawns (or tears down) a private scheduler."""
    prob = heat_problem(1)
    n, members = 14, 8
    shape = prob.array_shape(n)
    rng = np.random.default_rng(6)
    plan = prob.checkpointed_adjoint(n, steps=6, snaps=2, members=members,
                                     workers=2)
    plan.adjoint(
        [rng.standard_normal((members, *shape)) * 0.1],
        rng.standard_normal((members, *shape)),
    )
    assert plan._scheduler is not None
    for bound in (*plan._fwd, *plan._rev):
        assert bound._shared_scheduler is plan._scheduler
        assert bound._scheduler is None  # no private pool was created
        bound.close()  # must leave the shared scheduler running
    assert not plan._scheduler._closed  # alive until the plan closes
    plan.close()
    assert plan._scheduler is None


def test_ensemble_helper_broadcasts_per_scenario_constants():
    """A per-scenario constant field works in ensemble mode exactly as
    it does single-scenario: the helper broadcasts it over members."""
    prob = wave_problem(1)
    n, members = 12, 3
    shape = prob.array_shape(n)
    rng = np.random.default_rng(13)
    c = rng.standard_normal(shape) * 0.1
    ens = prob.checkpointed_adjoint(
        n, steps=5, snaps=2, members=members, constants={"c": c}
    )
    u0 = rng.standard_normal((members, *shape)) * 0.1
    um1 = rng.standard_normal((members, *shape)) * 0.1
    seed = rng.standard_normal((members, *shape))
    out = ens.adjoint([u0, um1], seed)
    single = prob.checkpointed_adjoint(n, steps=5, snaps=2, constants={"c": c})
    ref = single.adjoint([u0[1], um1[1]], seed[1])
    for k in ref:
        assert _bitwise(out[k][1], ref[k])


def test_ensemble_store_all_matches_checkpointed():
    prob = wave_problem(1)
    n, steps, members = 12, 6, 2
    shape = prob.array_shape(n)
    rng = np.random.default_rng(8)
    consts = {
        "c": rng.standard_normal((members, *shape)) * 0.1
    }
    plan = prob.checkpointed_adjoint(
        n, steps=steps, snaps=2, members=members, constants=consts
    )
    state0 = [
        rng.standard_normal((members, *shape)) * 0.1,
        rng.standard_normal((members, *shape)) * 0.1,
    ]
    seed = rng.standard_normal((members, *shape))
    ref = {k: v.copy() for k, v in plan.run_store_all(state0, seed).items()}
    out = plan.adjoint(state0, seed)
    for k in ref:
        assert _bitwise(out[k], ref[k])


# -- construction / input validation ---------------------------------------------


def test_snapshot_pool_validation():
    with pytest.raises(ValueError):
        SnapshotPool(0, (4,), np.float64)
    with pytest.raises(ValueError):
        SnapshotPool(2, (4,), np.float64, fields=0)
    pool = SnapshotPool(2, (4,), np.float64, fields=2)
    with pytest.raises(ValueError):
        pool.store(0, [np.zeros(4)])  # wrong field count
    with pytest.raises(ValueError):
        pool.load(0, [np.zeros(4)])
    with pytest.raises(IndexError):
        pool.store(5, [np.zeros(4), np.zeros(4)])


def test_plan_rejects_bad_arguments():
    prob = heat_problem(1)
    with pytest.raises(ValueError, match="steps"):
        prob.checkpointed_adjoint(12, steps=0, snaps=1)
    with pytest.raises(ValueError, match="snaps"):
        prob.checkpointed_adjoint(12, steps=4, snaps=0)
    with pytest.raises(ValueError, match="members"):
        prob.checkpointed_adjoint(12, steps=4, snaps=2, members=0)


def test_plan_rejects_scatter_plans():
    prob = heat_problem(1)
    n = 12
    fwd = compile_nests([prob.primal], prob.bindings(n))
    rev = compile_nests(
        adjoint_loops(prob.primal, prob.adjoint_map, strategy="guarded"),
        prob.bindings(n),
    )
    scatter_plan = fwd.plan(scatter=True)
    with pytest.raises(KernelError, match="scatter"):
        scatter_plan.checkpointed_adjoint(
            rev.plan(), prob.array_shape(n), steps=4, snaps=2
        )


def test_plan_rejects_state_model_mismatches():
    prob = wave_problem(1)
    n = 12
    fwd = compile_nests([prob.primal], prob.bindings(n))
    rev = compile_nests(
        adjoint_loops(prob.primal, prob.adjoint_map), prob.bindings(n)
    )
    shape = prob.array_shape(n)
    # forward kernel reads u_2 and c, neither declared
    with pytest.raises(KernelError, match="forward kernel"):
        fwd.plan().checkpointed_adjoint(
            rev.plan(), shape, steps=4, snaps=2, history=("u_1",)
        )
    # constant with the wrong shape
    with pytest.raises(ValueError, match="constant 'c'"):
        fwd.plan().checkpointed_adjoint(
            rev.plan(), shape, steps=4, snaps=2, history=("u_1", "u_2"),
            constants={"c": np.zeros((3,))},
        )
    # constant with a promoted dtype silently widening an f32 sweep
    with pytest.raises(ValueError, match="reduced-precision"):
        fwd.plan().checkpointed_adjoint(
            rev.plan(), shape, steps=4, snaps=2, history=("u_1", "u_2"),
            constants={"c": np.zeros(shape)}, dtype=np.float32,
        )
    # a reverse kernel reading the primal *output* has no binding slot:
    # reject at construction, not as a KeyError from binding
    with pytest.raises(KernelError, match="reverse kernel"):
        fwd.plan().checkpointed_adjoint(
            fwd.plan(), shape, steps=4, snaps=2, history=("u_1", "u_2"),
            constants={"c": np.zeros(shape)},
        )


def test_adjoint_validates_state0_and_seed():
    prob = wave_problem(1)
    n = 12
    shape = prob.array_shape(n)
    plan = prob.checkpointed_adjoint(n, steps=4, snaps=2)
    good = [np.zeros(shape), np.zeros(shape)]
    with pytest.raises(ValueError, match="state0 must hold 2"):
        plan.adjoint([np.zeros(shape)], np.zeros(shape))
    with pytest.raises(ValueError, match="state0 arrays"):
        plan.adjoint([np.zeros(3), np.zeros(shape)], np.zeros(shape))
    with pytest.raises(ValueError, match="seed"):
        plan.adjoint(good, np.zeros(3))
    with pytest.raises(ValueError, match="seed"):
        plan.run_store_all(good, np.zeros(3))


def test_execution_plan_surface_method():
    """plan.checkpointed_adjoint wires through to the runtime class."""
    prob = heat_problem(1)
    n = 16
    fwd = compile_nests([prob.primal], prob.bindings(n))
    rev = compile_nests(
        adjoint_loops(prob.primal, prob.adjoint_map), prob.bindings(n)
    )
    chk = fwd.plan().checkpointed_adjoint(
        rev.plan(), prob.array_shape(n), steps=6, snaps=2
    )
    assert chk.evaluation_cost == optimal_cost(6, 2)
    helper = prob.checkpointed_adjoint(n, steps=6, snaps=2)
    state0, seed, _ = _inputs(prob, n)
    a = {k: v.copy() for k, v in chk.adjoint(state0, seed).items()}
    b = helper.adjoint(state0, seed)
    for k in a:
        assert _bitwise(a[k], b[k])
