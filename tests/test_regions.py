"""Unit tests for iteration-space splitting (Sections 3.3.3-3.3.4)."""

import itertools

import numpy as np
import sympy as sp
import pytest

from repro.core import make_loop_nest
from repro.core.diff import adjoint_scatter_statements
from repro.core.regions import (
    core_bounds,
    min_extent_required,
    split_disjoint,
    union_bounds,
)
from repro.core.shift import shift_all

n = sp.Symbol("n", integer=True)


def build_shifted(offsets_list, dim):
    """Shifted statements for a synthetic stencil with given read offsets."""
    counters = sp.symbols("i j k", integer=True)[:dim]
    u, r = sp.Function("u"), sp.Function("r")
    expr = sum(
        u(*[c + o for c, o in zip(counters, offs)]) for offs in offsets_list
    )
    nest = make_loop_nest(
        lhs=r(*counters), rhs=expr, counters=list(counters),
        bounds={c: [1, n - 2] for c in counters},
    )
    contribs = adjoint_scatter_statements(
        nest, {r: sp.Function("r_b"), u: sp.Function("u_b")}
    )
    return shift_all(contribs, nest.counters), nest


def test_core_bounds_formula():
    """Core bounds = [s + max(o), e + min(o)] per dimension (Section 3.3.3)."""
    shifted, nest = build_shifted([(-1,), (0,), (2,)], 1)
    cb = core_bounds(shifted, nest.counters, nest.bounds)
    i = nest.counters[0]
    assert cb[i] == (1 + 2, (n - 2) + (-1))


def test_union_bounds_formula():
    shifted, nest = build_shifted([(-1,), (0,), (2,)], 1)
    ub = union_bounds(shifted, nest.counters, nest.bounds)
    i = nest.counters[0]
    assert ub[i] == (1 - 1, (n - 2) + 2)


def test_min_extent():
    shifted, _ = build_shifted([(-1,), (0,), (2,)], 1)
    assert min_extent_required(shifted, 0) == 4


def test_exactly_one_core_region():
    shifted, nest = build_shifted([(-1,), (0,), (1,)], 1)
    regions = split_disjoint(shifted, nest.counters, nest.bounds)
    cores = [r for r in regions if r.is_core]
    assert len(cores) == 1
    assert len(cores[0].statements) == len(shifted)


def test_every_region_nonempty_statements():
    shifted, nest = build_shifted(
        [(-1, 0), (1, 0), (0, -1), (0, 1), (0, 0)], 2
    )
    for region in split_disjoint(shifted, nest.counters, nest.bounds):
        assert region.statements


@pytest.mark.parametrize(
    "offsets,dim,expected",
    [
        ([(-1,), (0,), (1,)], 1, 5),  # Section 3.2: five loops
        ([(o1, o2) for o1 in (-1, 0, 1) for o2 in (-1, 0, 1)], 2, 25),
        ([(-1, 0, 0), (1, 0, 0), (0, -1, 0), (0, 1, 0),
          (0, 0, -1), (0, 0, 1), (0, 0, 0)], 3, 53),  # 7-pt star
    ],
)
def test_region_counts_from_section334(offsets, dim, expected):
    shifted, nest = build_shifted(offsets, dim)
    regions = split_disjoint(shifted, nest.counters, nest.bounds)
    assert len(regions) == expected


def _concrete_box(region, counters, nval):
    box = []
    for c in counters:
        lo, hi = region.bounds[c]
        box.append((int(lo.subs({n: nval})), int(hi.subs({n: nval}))))
    return box


def _enumerate(box):
    return set(
        itertools.product(*[range(lo, hi + 1) for lo, hi in box])
    )


@pytest.mark.parametrize("dim", [1, 2])
def test_partition_disjoint_and_covering(dim):
    """Regions partition the union of shifted iteration spaces exactly,
    and each region's statements are exactly those valid there."""
    offsets = (
        [(-1,), (0,), (2,)] if dim == 1
        else [(-1, 0), (0, 1), (1, -1), (0, 0)]
    )
    shifted, nest = build_shifted(offsets, dim)
    regions = split_disjoint(shifted, nest.counters, nest.bounds)
    nval = 12

    seen = {}
    for ridx, region in enumerate(regions):
        pts = _enumerate(_concrete_box(region, nest.counters, nval))
        for p in pts:
            assert p not in seen, f"point {p} in two regions"
            seen[p] = region

    # Coverage + per-point statement validity.
    prim = [(1, nval - 2)] * dim
    for sh in shifted:
        box = [(lo + o, hi + o) for (lo, hi), o in zip(prim, sh.offset)]
        for p in _enumerate(box):
            assert p in seen, f"point {p} uncovered"
            assert sh in seen[p].statements, (
                f"statement offset {sh.offset} missing at {p}"
            )
    # No statement is attached anywhere it is invalid.
    for p, region in seen.items():
        for sh in region.statements:
            for d in range(dim):
                lo, hi = prim[d]
                assert lo + sh.offset[d] <= p[d] <= hi + sh.offset[d]


def test_asymmetric_stencil_split():
    """Asymmetric (non-symmetric data flow) stencils split correctly —
    the case TF-MAD [14] could not handle, motivating this paper."""
    shifted, nest = build_shifted([(0,), (1,), (2,)], 1)
    regions = split_disjoint(shifted, nest.counters, nest.bounds)
    assert len(regions) == 5
    core = [r for r in regions if r.is_core][0]
    i = nest.counters[0]
    assert core.bounds[i] == (3, n - 2)


def test_single_offset_single_region():
    shifted, nest = build_shifted([(1,)], 1)
    regions = split_disjoint(shifted, nest.counters, nest.bounds)
    assert len(regions) == 1
    assert regions[0].is_core


def test_region_extent_helper():
    shifted, nest = build_shifted([(-1,), (1,)], 1)
    regions = split_disjoint(shifted, nest.counters, nest.bounds)
    core = [r for r in regions if r.is_core][0]
    # bounds [1, n-2] = [1, 8]; core [1+1, 8-1] = [2, 7] -> extent 6
    assert core.extent({n: 10}, nest.counters) == (6,)
