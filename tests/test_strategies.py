"""Unit tests for the guarded and padded boundary strategies (Section 3.3.4)."""

import itertools

import sympy as sp
import pytest

from repro.core import make_loop_nest
from repro.core.diff import adjoint_scatter_statements
from repro.core.regions import union_bounds
from repro.core.shift import shift_all
from repro.core.strategies import (
    guard_condition,
    split_guarded,
    split_padded,
    statement_valid_box,
)

n = sp.Symbol("n", integer=True)


def build(offsets_list, dim):
    counters = sp.symbols("i j k", integer=True)[:dim]
    u, r = sp.Function("u"), sp.Function("r")
    expr = sum(u(*[c + o for c, o in zip(counters, offs)]) for offs in offsets_list)
    nest = make_loop_nest(
        lhs=r(*counters), rhs=expr, counters=list(counters),
        bounds={c: [1, n - 2] for c in counters},
    )
    contribs = adjoint_scatter_statements(
        nest, {r: sp.Function("r_b"), u: sp.Function("u_b")}
    )
    return shift_all(contribs, nest.counters), nest


def test_statement_valid_box_translation():
    shifted, nest = build([(2,)], 1)
    (sh,) = shifted
    box = statement_valid_box(sh, nest.counters, nest.bounds)
    i = nest.counters[0]
    assert box[i] == (3, n)


def test_guard_condition_bounds_both_sides():
    shifted, nest = build([(1,)], 1)
    cond = guard_condition(shifted[0], nest.counters, nest.bounds)
    i = nest.counters[0]
    assert cond == sp.And(sp.Ge(i, 2), sp.Le(i, n - 1))


@pytest.mark.parametrize("dim", [1, 2, 3])
def test_guarded_region_count_is_2d_plus_1(dim):
    """The guarded strategy emits one slab per side per dim plus the core."""
    offsets = [tuple(0 for _ in range(dim))]
    offsets += [
        tuple(1 if d == dd else 0 for d in range(dim)) for dd in range(dim)
    ]
    offsets += [
        tuple(-1 if d == dd else 0 for d in range(dim)) for dd in range(dim)
    ]
    shifted, nest = build(offsets, dim)
    regions = split_guarded(shifted, nest.counters, nest.bounds)
    assert len(regions) == 2 * dim + 1


def test_guarded_core_has_no_guards():
    shifted, nest = build([(-1,), (0,), (1,)], 1)
    regions = split_guarded(shifted, nest.counters, nest.bounds)
    core = [r for r in regions if r.is_core][0]
    assert all(s.statement.guard is None for s in core.statements)


def test_guarded_slabs_carry_all_statements():
    shifted, nest = build([(-1,), (0,), (1,)], 1)
    regions = split_guarded(shifted, nest.counters, nest.bounds)
    for region in regions:
        assert len(region.statements) == len(shifted)


def test_guarded_cover_is_disjoint_2d():
    shifted, nest = build([(-1, 0), (1, 0), (0, -1), (0, 1), (0, 0)], 2)
    regions = split_guarded(shifted, nest.counters, nest.bounds)
    nval = 10
    seen = set()
    for region in regions:
        box = []
        for c in nest.counters:
            lo, hi = region.bounds[c]
            box.append((int(lo.subs({n: nval})), int(hi.subs({n: nval}))))
        pts = set(itertools.product(*[range(lo, hi + 1) for lo, hi in box]))
        assert not (pts & seen)
        seen |= pts
    # Cover equals the union bounding box.
    ub = union_bounds(shifted, nest.counters, nest.bounds)
    expected = set(
        itertools.product(
            *[
                range(int(ub[c][0].subs({n: nval})), int(ub[c][1].subs({n: nval})) + 1)
                for c in nest.counters
            ]
        )
    )
    assert seen == expected


def test_padded_single_region_over_union():
    shifted, nest = build([(-1,), (0,), (1,)], 1)
    regions = split_padded(shifted, nest.counters, nest.bounds)
    assert len(regions) == 1
    i = nest.counters[0]
    assert regions[0].bounds[i] == (0, n - 1)
    assert regions[0].is_core
    assert all(s.statement.guard is None for s in regions[0].statements)
