"""Tests for the kernel-as-a-service daemon and its client.

Every response must be bitwise identical to a fresh single-process
bound run of the same kernel on the same state — batched or not, over
shared memory or inline base64, and under chaos at the three server
fault points.  The batching assertions are plan-level: the server's
``last_batch`` evidence records how many members one
:class:`~repro.runtime.EnsemblePlan` run covered.
"""

import json
import os
import socket
import struct
import tempfile
import threading

import numpy as np
import pytest

from repro.errors import ServeError, ValidationError
from repro.frontend import parse_stencil
from repro.runtime import Bindings, compile_nests, faults
from repro.runtime.client import KernelClient
from repro.runtime.server import (
    KernelServer,
    MAX_FRAME_BYTES,
    recv_frame,
    seeded_state,
    state_shapes,
)

SMOOTH = (
    "stencil smooth {\n"
    "  iterate i = 1 .. n-2\n"
    "  u[i] += c*(v[i-1] - 2.0*v[i] + v[i+1])\n"
    "}\n"
)
SMOOTH_SIZES = {"n": 32}
SMOOTH_PARAMS = {"c": 0.25}

DECAY = (
    "stencil decay {\n"
    "  iterate i = 0 .. n-1\n"
    "  w[i] = a*r[i] + b*s[i]\n"
    "}\n"
)
DECAY_SIZES = {"n": 24}
DECAY_PARAMS = {"a": 0.5, "b": 0.125}


def make_state(spec, sizes, params, seed):
    nest = parse_stencil(spec)
    return seeded_state(nest, Bindings(sizes=sizes, params=params), seed=seed)


def reference(spec, sizes, params, state, steps=1):
    """Fresh single-process bound run — the bitwise oracle."""
    nest = parse_stencil(spec)
    kernel = compile_nests(
        [nest], Bindings(sizes=sizes, params=params), name=nest.name
    )
    arrays = {k: v.copy() for k, v in state.items()}
    bound = kernel.plan().bind(arrays)
    for _ in range(steps):
        bound.run()
    return arrays


def assert_bitwise(expected, got):
    assert sorted(expected) == sorted(got)
    for name in expected:
        a, b = expected[name], got[name]
        assert a.dtype == b.dtype and a.shape == b.shape, name
        assert a.tobytes() == b.tobytes(), f"{name} diverged bitwise"


@pytest.fixture
def server_factory():
    """Yields a KernelServer factory; every server is closed on teardown."""
    servers = []
    dirs = []

    def make(**kwargs):
        tmp = tempfile.TemporaryDirectory()
        dirs.append(tmp)
        kwargs.setdefault("workers", 2)
        kwargs.setdefault("batch_window_ms", 0.0)
        server = KernelServer(os.path.join(tmp.name, "serve.sock"), **kwargs)
        server.start()
        servers.append(server)
        return server

    yield make
    for server in servers:
        server.close()
    for tmp in dirs:
        tmp.cleanup()


def test_ping_and_stats(server_factory):
    server = server_factory()
    with KernelClient(server.socket_path) as client:
        assert client.ping() is True
        stats = client.stats()
    assert stats["requests"] == 0
    assert stats["kernels"] == 0
    assert stats["workers"] == 2


def test_inline_run_bitwise_identical(server_factory):
    server = server_factory()
    state = make_state(SMOOTH, SMOOTH_SIZES, SMOOTH_PARAMS, seed=3)
    ref = reference(SMOOTH, SMOOTH_SIZES, SMOOTH_PARAMS, state, steps=4)
    with KernelClient(server.socket_path, shm_threshold=None) as client:
        result = client.run(
            SMOOTH, sizes=SMOOTH_SIZES, params=SMOOTH_PARAMS,
            state=state, steps=4,
        )
    assert result.batched is False and result.batch_size == 1
    assert result.steps == 4
    assert len(result.kernel_id) == 64  # content-addressed (sha256 hex)
    assert_bitwise(ref, result.state)
    # The caller's arrays were never written in place.
    assert_bitwise(make_state(SMOOTH, SMOOTH_SIZES, SMOOTH_PARAMS, 3), state)


def test_shared_memory_run_bitwise_identical(server_factory):
    server = server_factory()
    state = make_state(SMOOTH, SMOOTH_SIZES, SMOOTH_PARAMS, seed=5)
    ref = reference(SMOOTH, SMOOTH_SIZES, SMOOTH_PARAMS, state, steps=2)
    # threshold 1 byte: every array ships through shared memory
    with KernelClient(server.socket_path, shm_threshold=1) as client:
        result = client.run(
            SMOOTH, sizes=SMOOTH_SIZES, params=SMOOTH_PARAMS,
            state=state, steps=2,
        )
    assert_bitwise(ref, result.state)
    assert_bitwise(make_state(SMOOTH, SMOOTH_SIZES, SMOOTH_PARAMS, 5), state)


def test_shm_and_inline_paths_agree_bitwise(server_factory):
    server = server_factory()
    state = make_state(DECAY, DECAY_SIZES, DECAY_PARAMS, seed=11)
    kwargs = dict(sizes=DECAY_SIZES, params=DECAY_PARAMS, state=state, steps=3)
    with KernelClient(server.socket_path, shm_threshold=1) as shm_client:
        via_shm = shm_client.run(DECAY, **kwargs)
    with KernelClient(server.socket_path, shm_threshold=None) as inline:
        via_inline = inline.run(DECAY, **kwargs)
    assert_bitwise(via_shm.state, via_inline.state)


def test_compile_then_run_by_kernel_id(server_factory):
    server = server_factory()
    state = make_state(DECAY, DECAY_SIZES, DECAY_PARAMS, seed=2)
    ref = reference(DECAY, DECAY_SIZES, DECAY_PARAMS, state)
    with KernelClient(server.socket_path) as client:
        kid = client.compile(DECAY, sizes=DECAY_SIZES, params=DECAY_PARAMS)
        result = client.run(kernel_id=kid, state=state)
        assert result.kernel_id == kid
        assert_bitwise(ref, result.state)
        # Re-sending the same spec resolves to the same content address.
        again = client.run(
            DECAY, sizes=DECAY_SIZES, params=DECAY_PARAMS, state=state
        )
        assert again.kernel_id == kid
    assert server.stats()["kernels"] == 1


def test_concurrent_requests_coalesce_into_one_ensemble_run(server_factory):
    server = server_factory(workers=2, max_batch=4, batch_window_ms=250.0)
    seeds = [0, 1, 2, 3]
    states = {
        s: make_state(SMOOTH, SMOOTH_SIZES, SMOOTH_PARAMS, seed=s)
        for s in seeds
    }
    refs = {
        s: reference(SMOOTH, SMOOTH_SIZES, SMOOTH_PARAMS, states[s])
        for s in seeds
    }
    results: dict[int, object] = {}
    errors: list[BaseException] = []

    def worker(seed):
        try:
            with KernelClient(server.socket_path) as client:
                results[seed] = client.run(
                    SMOOTH, sizes=SMOOTH_SIZES, params=SMOOTH_PARAMS,
                    state=states[seed],
                )
        except BaseException as exc:  # noqa: BLE001 - asserted below
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(s,)) for s in seeds]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    stats = server.stats()
    # Plan-level evidence: all four requests ran as ONE EnsemblePlan run.
    assert stats["batched_runs"] == 1
    assert stats["batched_requests"] == 4
    assert stats["single_runs"] == 0
    assert stats["last_batch"]["members"] == 4
    assert stats["last_batch"]["batched_statements"] >= 1
    for seed in seeds:
        assert results[seed].batched is True
        assert results[seed].batch_size == 4
        assert_bitwise(refs[seed], results[seed].state)


def test_batched_and_window_zero_responses_are_identical_bytes(server_factory):
    batching = server_factory(workers=2, max_batch=2, batch_window_ms=250.0)
    immediate = server_factory(workers=2, batch_window_ms=0.0)
    states = {
        s: make_state(SMOOTH, SMOOTH_SIZES, SMOOTH_PARAMS, seed=s)
        for s in (0, 1)
    }
    batched: dict[int, object] = {}

    def worker(seed):
        with KernelClient(batching.socket_path) as client:
            batched[seed] = client.run(
                SMOOTH, sizes=SMOOTH_SIZES, params=SMOOTH_PARAMS,
                state=states[seed],
            )

    threads = [threading.Thread(target=worker, args=(s,)) for s in (0, 1)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert batching.stats()["batched_runs"] == 1
    for seed in (0, 1):
        with KernelClient(immediate.socket_path) as client:
            single = client.run(
                SMOOTH, sizes=SMOOTH_SIZES, params=SMOOTH_PARAMS,
                state=states[seed],
            )
        assert single.batched is False
        assert batched[seed].batched is True
        assert_bitwise(single.state, batched[seed].state)


def test_sixteen_thread_hammer_every_response_bitwise(server_factory):
    server = server_factory(workers=4, max_batch=8, batch_window_ms=5.0)
    cases = []
    for t in range(16):
        if t % 2:
            cases.append((DECAY, DECAY_SIZES, DECAY_PARAMS, t, 1 + t % 3))
        else:
            cases.append((SMOOTH, SMOOTH_SIZES, SMOOTH_PARAMS, t, 1 + t % 3))
    refs = []
    for spec, sizes, params, seed, steps in cases:
        state = make_state(spec, sizes, params, seed)
        refs.append(reference(spec, sizes, params, state, steps=steps))
    results: list = [None] * 16
    errors: list[BaseException] = []

    def worker(idx):
        spec, sizes, params, seed, steps = cases[idx]
        try:
            with KernelClient(server.socket_path, shm_threshold=64) as client:
                results[idx] = client.run(
                    spec, sizes=sizes, params=params,
                    state=make_state(spec, sizes, params, seed), steps=steps,
                )
        except BaseException as exc:  # noqa: BLE001 - asserted below
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(16)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    stats = server.stats()
    assert stats["ok"] == 16 and stats["errors"] == 0
    for idx in range(16):
        assert_bitwise(refs[idx], results[idx].state)


def test_malformed_spec_is_a_client_side_validation_error(server_factory):
    server = server_factory()
    with KernelClient(server.socket_path) as client:
        with pytest.raises(ValidationError):
            client.run(
                "stencil broken {\n  iterate i = 1 .. n-2\n  u[i] +=\n}\n",
                sizes={"n": 8}, state={"u": np.zeros(8)},
            )
        # The connection survives a rejected request.
        assert client.ping() is True
    assert server.stats()["errors"] == 1


def test_unknown_kernel_id_rejected(server_factory):
    server = server_factory()
    with KernelClient(server.socket_path) as client:
        with pytest.raises(ValidationError, match="spec"):
            client.run(kernel_id="0" * 64, state={"u": np.zeros(8)})


def test_missing_and_wrong_state_rejected(server_factory):
    server = server_factory()
    with KernelClient(server.socket_path) as client:
        with pytest.raises(ValidationError, match="missing"):
            client.run(
                SMOOTH, sizes=SMOOTH_SIZES, params=SMOOTH_PARAMS,
                state={"u": np.zeros(32)},
            )
        with pytest.raises(ValidationError):
            client.run(
                SMOOTH, sizes=SMOOTH_SIZES, params=SMOOTH_PARAMS,
                state={"u": np.zeros(32), "v": np.zeros(2)},  # too small
            )
        with pytest.raises(ValidationError):
            client.run(
                SMOOTH, sizes=SMOOTH_SIZES,  # c unbound
                state=make_state(SMOOTH, SMOOTH_SIZES, SMOOTH_PARAMS, 0),
            )


def test_garbage_frame_gets_typed_error_then_server_lives(server_factory):
    server = server_factory()
    raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    raw.connect(server.socket_path)
    try:
        body = b"this is not json"
        raw.sendall(struct.pack(">I", len(body)) + body)
        resp = recv_frame(raw)
        assert resp["status"] == "error"
        assert resp["error"] == "ServeError"
        assert resp["exit_code"] == 1
    finally:
        raw.close()
    with KernelClient(server.socket_path) as client:
        assert client.ping() is True


def test_oversized_frame_rejected(server_factory):
    server = server_factory()
    raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    raw.connect(server.socket_path)
    try:
        raw.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        resp = recv_frame(raw)
        assert resp["status"] == "error"
        assert "cap" in resp["message"]
    finally:
        raw.close()


def test_response_frames_are_deterministic_json(server_factory):
    """Same request twice -> byte-identical response frames (sorted keys)."""
    server = server_factory()
    state = make_state(DECAY, DECAY_SIZES, DECAY_PARAMS, seed=0)
    frames = []
    for _ in range(2):
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.connect(server.socket_path)
        try:
            enc = {
                name: {
                    "shape": list(arr.shape),
                    "dtype": arr.dtype.str,
                    "data": __import__("base64").b64encode(
                        np.ascontiguousarray(arr).tobytes()
                    ).decode("ascii"),
                }
                for name, arr in state.items()
            }
            msg = {
                "op": "run", "spec": DECAY, "sizes": DECAY_SIZES,
                "params": DECAY_PARAMS, "dtype": "f64", "steps": 1,
                "backend": "python", "state": enc,
            }
            body = json.dumps(msg, sort_keys=True).encode()
            raw.sendall(struct.pack(">I", len(body)) + body)
            header = raw.recv(4, socket.MSG_WAITALL)
            (length,) = struct.unpack(">I", header)
            frames.append(raw.recv(length, socket.MSG_WAITALL))
        finally:
            raw.close()
    assert frames[0] == frames[1]


def test_shutdown_op_stops_the_server(server_factory):
    server = server_factory()
    with KernelClient(server.socket_path) as client:
        client.shutdown()
    server.wait()  # returns promptly once the shutdown op landed
    assert not os.path.exists(server.socket_path) or True  # close() unlinks
    server.close()
    assert not os.path.exists(server.socket_path)


def test_state_shapes_and_seeded_state_cover_minimal_extents():
    nest = parse_stencil(SMOOTH)
    bindings = Bindings(sizes={"n": 8}, params=SMOOTH_PARAMS)
    shapes = state_shapes(nest, bindings)
    assert shapes == {"u": (7,), "v": (8,)}
    state = seeded_state(nest, bindings, seed=1)
    assert sorted(state) == ["u", "v"]
    assert state["u"].shape == (7,) and state["v"].shape == (8,)
    # Deterministic: same seed, same bytes.
    again = seeded_state(nest, bindings, seed=1)
    assert_bitwise(state, again)


# -- chaos at the three server fault points -----------------------------------


def test_fault_accept_drop_is_retried_bitwise(server_factory):
    server = server_factory(workers=1)
    state = make_state(SMOOTH, SMOOTH_SIZES, SMOOTH_PARAMS, seed=9)
    ref = reference(SMOOTH, SMOOTH_SIZES, SMOOTH_PARAMS, state)
    with KernelClient(server.socket_path, shm_threshold=None, retries=1) as c:
        with faults.inject("server.accept") as inj:
            result = c.run(
                SMOOTH, sizes=SMOOTH_SIZES, params=SMOOTH_PARAMS, state=state
            )
            assert inj.fired("server.accept") == 1
    assert server.stats()["accept_drops"] == 1
    assert_bitwise(ref, result.state)


def test_fault_batch_bind_falls_back_to_singles_bitwise(server_factory):
    server = server_factory(workers=2, max_batch=2, batch_window_ms=400.0)
    states = {
        s: make_state(SMOOTH, SMOOTH_SIZES, SMOOTH_PARAMS, seed=s)
        for s in (0, 1)
    }
    refs = {
        s: reference(SMOOTH, SMOOTH_SIZES, SMOOTH_PARAMS, states[s])
        for s in (0, 1)
    }
    results: dict[int, object] = {}
    errors: list[BaseException] = []

    def worker(seed):
        try:
            with KernelClient(server.socket_path) as client:
                results[seed] = client.run(
                    SMOOTH, sizes=SMOOTH_SIZES, params=SMOOTH_PARAMS,
                    state=states[seed],
                )
        except BaseException as exc:  # noqa: BLE001 - asserted below
            errors.append(exc)

    with faults.inject("server.batch.bind") as inj:
        threads = [threading.Thread(target=worker, args=(s,)) for s in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert inj.fired("server.batch.bind") == 1
    assert not errors
    assert server.stats()["batch_fallbacks"] == 1
    for seed in (0, 1):
        # The degraded path serves each batchmate its own single run.
        assert results[seed].batched is False
        assert_bitwise(refs[seed], results[seed].state)


def test_fault_shm_attach_is_typed_and_arrays_intact(server_factory):
    server = server_factory()
    state = make_state(SMOOTH, SMOOTH_SIZES, SMOOTH_PARAMS, seed=4)
    snap = {k: v.copy() for k, v in state.items()}
    ref = reference(SMOOTH, SMOOTH_SIZES, SMOOTH_PARAMS, state)
    with KernelClient(server.socket_path, shm_threshold=1) as client:
        with faults.inject("server.shm.attach") as inj:
            with pytest.raises(ServeError):
                client.run(
                    SMOOTH, sizes=SMOOTH_SIZES, params=SMOOTH_PARAMS,
                    state=state,
                )
            assert inj.fired("server.shm.attach") == 1
        assert_bitwise(snap, state)
        # Same connection, next request: served normally.
        result = client.run(
            SMOOTH, sizes=SMOOTH_SIZES, params=SMOOTH_PARAMS, state=state
        )
    assert_bitwise(ref, result.state)
