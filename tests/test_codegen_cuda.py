"""CUDA back-end tests (structural: no GPU available in CI)."""

import sympy as sp
import pytest

from repro.apps import burgers_problem, heat_problem, wave_problem
from repro.codegen import CodegenError, print_function_cuda
from repro.core import adjoint_loops, make_loop_nest


def test_wave3d_adjoint_kernels():
    prob = wave_problem(3, active_c=False)
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    code = print_function_cuda("wave3d_b", nests)
    # One kernel per region nest (53 for the 3-D star).
    assert code.count("__global__") == 53
    assert code.count("<<<grid, block>>>") == 53
    # Single final sync: disjoint regions need no barriers in between.
    assert code.count("cudaDeviceSynchronize()") == 1
    # Innermost counter coalesced on threadIdx.x.
    assert "int k = blockIdx.x * blockDim.x + threadIdx.x" in code
    assert "dim3 block(32, 4, 2);" in code


def test_bounds_guards_emitted():
    prob = heat_problem(2)
    code = print_function_cuda("heat2d", [prob.primal])
    assert "if (j > (n - 2)) return;" in code
    assert "if (i > (n - 2)) return;" in code


def test_flat_indexing_row_major():
    prob = heat_problem(2)
    code = print_function_cuda("heat2d", [prob.primal])
    assert "u_1[(i)*(n + 1) + j]" in code


def test_1d_launch_configuration():
    prob = burgers_problem(1)
    code = print_function_cuda("burgers1d", [prob.primal])
    assert "dim3 block(256);" in code
    assert "fmax" in code and "fmin" in code


def test_ternary_in_device_code():
    prob = burgers_problem(1)
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    code = print_function_cuda("burgers1d_b", nests)
    assert "? 1.0 : 0.0" in code


def test_guarded_strategy_emits_device_ifs():
    prob = heat_problem(2)
    nests = adjoint_loops(prob.primal, prob.adjoint_map, strategy="guarded")
    code = print_function_cuda("heat2d_b", nests)
    assert "if ((" in code and "&&" in code


def test_scalar_and_size_parameters():
    prob = wave_problem(1)
    code = print_function_cuda("wave1d", [prob.primal])
    assert "double D" in code and "int n" in code


def test_rejects_too_many_dims():
    i, j, k, l = sp.symbols("i j k l", integer=True)
    n = sp.Symbol("n", integer=True)
    u, r = sp.Function("u"), sp.Function("r")
    nest = make_loop_nest(
        lhs=r(i, j, k, l), rhs=u(i, j, k, l),
        counters=[i, j, k, l],
        bounds={c: [0, n] for c in (i, j, k, l)},
    )
    with pytest.raises(CodegenError):
        print_function_cuda("x", [nest])


def test_rejects_empty():
    with pytest.raises(CodegenError):
        print_function_cuda("x", [])


def test_gpu_preset_extension_predictions():
    """The V100 extension preset: PerforAD adjoint stays within ~2x of the
    primal and atomics remain catastrophic — the paper's expectation for
    GPUs stated in the conclusion."""
    from repro.experiments import wave_descriptors
    from repro.machine import V100

    d = wave_descriptors()
    t_primal = V100.best_time(d.primal, "gather")[1]
    t_adjoint = V100.best_time(d.perforad, "gather")[1]
    t_atomic = V100.best_time(d.scatter, "atomic")[1]
    assert t_adjoint < 3.0 * t_primal
    assert t_atomic > 10.0 * t_adjoint
